"""Fairness auditing with SliceLine (the paper's future-work direction).

Section 7 names "slice finding for bias and fairness (instead of
accuracy)" as future work.  The mechanism is unchanged: SliceLine only
sees a non-negative per-row "error" vector, so any per-row unfairness
signal works.  Here we audit a loan-approval model for *disparate
mistreatment*: the per-row signal is 1 where the model denies a qualified
applicant (false negative) — slices maximizing it are subgroups suffering
the most harmful mistake.

Run:  python examples/fairness_audit.py
"""

import numpy as np

from repro.core import SliceLine
from repro.linalg import to_dense
from repro.ml import MultinomialLogisticRegression

rng = np.random.default_rng(11)

num_rows = 12_000
x0 = np.column_stack(
    [
        rng.integers(1, 4, size=num_rows),  # region      (1..3)
        rng.integers(1, 3, size=num_rows),  # gender      (1..2)
        rng.integers(1, 6, size=num_rows),  # income bin  (1..5)
        rng.integers(1, 5, size=num_rows),  # age bin     (1..4)
    ]
)
feature_names = ["region", "gender", "income_bin", "age_bin"]

# Ground truth: qualification depends only on income.
qualified = (x0[:, 2] + rng.normal(0, 0.8, size=num_rows) > 3).astype(int)

# Historical labels carry bias: qualified applicants from region 2 with
# gender 1 were frequently denied; a model trained on them inherits it.
labels = qualified.copy()
biased = (x0[:, 0] == 2) & (x0[:, 1] == 1) & (qualified == 1)
labels[biased & (rng.random(num_rows) < 0.7)] = 0

from repro.core import FeatureSpace

dense = to_dense(FeatureSpace.from_matrix(x0).encode(x0))
model = MultinomialLogisticRegression(num_iterations=120).fit(dense, labels)
predictions = model.predict(dense)
accuracy_vs_truth = (predictions == qualified).mean()
print(f"model accuracy against ground truth: {accuracy_vs_truth:.3f}")

# Fairness error signal: false negatives against the *ground truth*.
false_negative = ((qualified == 1) & (predictions == 0)).astype(float)
print(f"overall false-negative rate on qualified applicants: "
      f"{false_negative[qualified == 1].mean():.3f}")

auditor = SliceLine(k=4, alpha=0.95)
auditor.fit(x0, false_negative, feature_names=feature_names)

print("\nsubgroups with the highest wrongful-denial concentration:")
print(auditor.report())
print("\nthe audit surfaces the historically-biased subgroup "
      "(region=2 AND gender=1) without being told protected attributes.")
