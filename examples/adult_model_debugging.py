"""End-to-end model debugging on the Adult-like dataset (the paper's lead
use case): train a classifier, compute its error vector, and let SliceLine
explain where the model fails.

This is the honest full pipeline — labels are generated from a mechanism
the model can mostly learn, except inside planted slices where labels are
noisy; the trained model then genuinely underperforms there, and SliceLine
recovers those regions from the error vector alone.

Run:  python examples/adult_model_debugging.py
"""

import numpy as np

from repro.core import FeatureSpace, SliceLine
from repro.datasets import adult, make_classification_labels, plant_slices
from repro.linalg import to_dense
from repro.ml import MultinomialLogisticRegression, inaccuracy, train_test_split

rng = np.random.default_rng(42)

print("generating Adult-like data (schema of UCI Adult after binning) ...")
x0 = adult.generate_features(8_000, rng)
planted = plant_slices(x0, rng, num_slices=2, levels=(2, 2), min_fraction=0.02)
data = make_classification_labels(x0, planted, rng, num_classes=2)

print("planted ground-truth problem slices:")
for sl in planted:
    names = {adult.FEATURE_NAMES[f]: v for f, v in sl.predicates.items()}
    print(f"  {names} (label-noise rate {sl.error_rate:.2f})")

# -- train a multinomial logistic regression (the paper's mlogit) ----------
space = FeatureSpace.from_matrix(x0, feature_names=adult.FEATURE_NAMES)
dense = to_dense(space.encode(x0))
x_tr, x_te, y_tr, y_te, raw_tr, raw_te = train_test_split(
    dense, data.labels, x0, test_fraction=0.3, seed=1
)
model = MultinomialLogisticRegression(num_iterations=150).fit(x_tr, y_tr)
print(f"\ntest accuracy: {model.accuracy(x_te, y_te):.3f}")

# -- debug the model on the test split -------------------------------------
errors = inaccuracy(y_te, model.predict(x_te))
finder = SliceLine(k=5, alpha=0.95, max_level=3)
finder.fit(raw_te, errors, feature_names=adult.FEATURE_NAMES)

print("\nSliceLine top-5 problematic slices on the test split:")
print(finder.report())

found = {frozenset(s.predicates.items()) for s in finder.top_slices_}
target = {frozenset(p.predicates.items()) for p in planted}
recovered = sum(any(t <= f or f <= t for f in found) for t in target)
print(f"\nrecovered {recovered}/{len(target)} planted slices "
      "(directly or via a sub/superset)")
