"""Regression debugging with the full preprocessing pipeline, plus a
comparison against the SliceFinder and decision-tree baselines.

The Salaries dataset (the paper's ablation dataset) hides a systematic
model failure: senior professors in discipline A with long service are
underpaid relative to the additive trend a linear model can learn.  The
linear model's squared residuals concentrate there, and SliceLine pins the
region down as a conjunction of predicates.

Run:  python examples/salaries_regression.py
"""

import numpy as np

from repro.baselines import DecisionTreeSlicer, SliceFinderBaseline
from repro.core import SliceLine
from repro.datasets import salaries
from repro.linalg import to_dense
from repro.ml import LinearRegression, squared_loss
from repro.preprocessing import Preprocessor

# -- raw table -> encoded matrix via the paper's preprocessing -------------
table, salary = salaries.generate_table(num_rows=2_000, seed=3)
pipeline = Preprocessor(salaries.column_specs())
encoded = pipeline.fit_transform(table)
print(f"encoded: n={encoded.num_rows}, m={encoded.num_features}, "
      f"l={encoded.num_onehot_columns} one-hot columns")

# -- train lm, compute squared-loss errors ---------------------------------
dense = to_dense(encoded.feature_space.encode(encoded.x0))
model = LinearRegression(l2=1e-6).fit(dense, salary)
errors = squared_loss(salary, model.predict(dense))
print(f"model R^2 = {model.score(dense, salary):.3f}, "
      f"mean squared error = {errors.mean():,.0f}")

# -- SliceLine --------------------------------------------------------------
finder = SliceLine(k=4, alpha=0.95)
finder.fit(encoded.x0, errors, feature_names=encoded.feature_names)
print("\nSliceLine top slices (with decoded value labels):")
for rank, sl in enumerate(finder.top_slices_, start=1):
    desc = sl.describe(encoded.feature_names, encoded.value_labels)
    print(f"  #{rank} score={sl.score:+.3f} size={sl.size} :: {desc}")

# -- baselines for comparison ----------------------------------------------
print("\nSliceFinder baseline (effect size + Welch t-test + dominance):")
for cand in SliceFinderBaseline(k=4, max_level=3).find(encoded.x0, errors):
    desc = " AND ".join(
        f"{encoded.feature_names[f]}={encoded.value_labels[f][v - 1]}"
        for f, v in sorted(cand.predicates.items())
    )
    print(f"  effect={cand.effect_size:.2f} p={cand.p_value:.2e} "
          f"size={cand.size} :: {desc}")

print("\nDecision-tree baseline (non-overlapping slices):")
for leaf in DecisionTreeSlicer(max_depth=3, min_leaf_size=32, k=4).find(
    encoded.x0, errors
):
    desc = " AND ".join(
        f"{encoded.feature_names[f]}={encoded.value_labels[f][v - 1]}"
        for f, v in sorted(leaf.predicates.items())
    )
    print(f"  avg_err={leaf.average_error:,.0f} size={leaf.size} :: {desc}")

print("\nNote how the tree can only report disjoint regions while SliceLine"
      "\nenumerates overlapping conjunctions exactly — the paper's core point.")
