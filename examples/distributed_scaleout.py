"""Parallelization strategies for slice evaluation (Section 4.4 / Figure 7b).

Evaluates one lattice level of candidates under the four execution
strategies — serial, MT-Ops (barrier per operation), MT-PFor (parallel
for-loop), and simulated Dist-PFor (broadcast-S / scan-local-X over
simulated workers) — verifies they produce identical statistics, and uses
the cluster cost model to project what a 12-node cluster would do.

Run:  python examples/distributed_scaleout.py
"""

import time

import numpy as np

from repro.core import FeatureSpace, SliceLineConfig, slice_line
from repro.core.basic import create_and_score_basic_slices
from repro.core.pairs import get_pair_candidates
from repro.datasets import load_dataset
from repro.distributed import ClusterCostModel, make_executor
from repro.distributed.simulate import WorkProfile

bundle = load_dataset("uscensus", scale=0.005, seed=0)
print(f"dataset: uscensus-like, n={bundle.num_rows}, m={bundle.num_features}")

space = FeatureSpace.from_matrix(bundle.x0)
x = space.encode(bundle.x0)
sigma = max(1, bundle.num_rows // 100)
basic = create_and_score_basic_slices(x, bundle.errors, sigma, alpha=0.95)
feature_map = np.searchsorted(space.ends, basic.selected_columns, side="right")
x_projected = x[:, basic.selected_columns].tocsr()
candidates, _ = get_pair_candidates(
    basic.slices, basic.stats, 2,
    num_rows=bundle.num_rows, total_error=float(bundle.errors.sum()),
    sigma=sigma, alpha=0.95, topk_min_score=0.0, feature_map=feature_map,
)
print(f"level-2 candidates to evaluate: {candidates.shape[0]}")

reference = None
for strategy, kwargs in [
    ("serial", {"block_size": 64}),
    ("mt-ops", {"num_threads": 4}),
    ("mt-pfor", {"num_threads": 4, "block_size": 64}),
    ("dist-pfor", {"num_nodes": 4, "executors_per_node": 2}),
]:
    executor = make_executor(strategy, **kwargs)
    started = time.perf_counter()
    stats = executor.evaluate(x_projected, bundle.errors, candidates, 2, 0.95)
    elapsed = time.perf_counter() - started
    if reference is None:
        reference = stats
        agreement = "reference"
    else:
        agreement = (
            "identical" if np.allclose(stats, reference) else "MISMATCH!"
        )
    print(f"  {strategy:10s} {elapsed * 1000:8.1f} ms  ({agreement})")

# -- project onto the paper's 1+12-node cluster with the cost model --------
serial_executor = make_executor("serial", block_size=64)
started = time.perf_counter()
serial_executor.evaluate(x_projected, bundle.errors, candidates, 2, 0.95)
serial_seconds = time.perf_counter() - started

work = WorkProfile(
    serial_compute_seconds=serial_seconds * 200,  # pretend 200 such rounds
    slice_matrix_mb=candidates.data.nbytes / 1e6,
    stats_mb=candidates.shape[0] * 4 * 8 / 1e6,
    num_jobs=3,
)
projection = ClusterCostModel().compare(work, num_threads=32)
print("\nprojected elapsed seconds on the paper's cluster shape "
      "(1+12 nodes, 32 vcores):")
for strategy, seconds in projection.items():
    print(f"  {strategy:10s} {seconds:8.2f} s")
print("expected shape: MT-PFor ~2x faster than MT-Ops; "
      "Dist-PFor ~1.9x faster again (Figure 7b).")

# For completeness: the same dataset end-to-end through the public API.
result = slice_line(
    bundle.x0, bundle.errors,
    SliceLineConfig(k=4, sigma=sigma, max_level=2, block_size=64),
    num_threads=4,
)
print(f"\nend-to-end top-1 slice: {result.top_slices[0].describe()} "
      f"(score {result.top_slices[0].score:+.3f})")
