"""Quickstart: find the top-K problematic slices of a model's errors.

Generates a small tabular dataset with a planted problematic subgroup,
computes a per-row error vector, and runs SliceLine with paper defaults.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SliceLine

rng = np.random.default_rng(7)

# Integer-encoded features (1-based codes), e.g. after recoding/binning.
num_rows = 5_000
x0 = np.column_stack(
    [
        rng.integers(1, 6, size=num_rows),  # age bin        (1..5)
        rng.integers(1, 4, size=num_rows),  # education      (1..3)
        rng.integers(1, 3, size=num_rows),  # sex            (1..2)
        rng.integers(1, 8, size=num_rows),  # occupation     (1..7)
    ]
)
feature_names = ["age_bin", "education", "sex", "occupation"]

# Per-row model errors (0/1 misclassification): the model is bad for
# young customers with education level 1.
errors = (rng.random(num_rows) < 0.08).astype(float)
problem = (x0[:, 0] == 1) & (x0[:, 1] == 1)
errors[problem] = (rng.random(int(problem.sum())) < 0.85).astype(float)

finder = SliceLine(k=4, alpha=0.95)
finder.fit(x0, errors, feature_names=feature_names)

print(finder.report())
print()
top = finder.top_slices_[0]
print(f"worst slice covers {top.size} rows "
      f"({100 * top.size / num_rows:.1f}% of the data) "
      f"with average error {top.average_error:.2f} "
      f"vs {errors.mean():.2f} overall")
