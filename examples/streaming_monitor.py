"""Incremental slice monitoring over a stream of prediction-log batches.

The batch algorithm answers "where does my model fail *on this dataset*";
the streaming monitor answers "where does it fail *right now*" — it keeps
the top-K problematic slices fresh as mini-batches arrive, warm-starting
each re-ranking with the previous winners (provably identical results,
less work) and raising drift signals when a tracked slice degrades.

This script replays a synthetic prediction log in which one subgroup's
error rate jumps halfway through the stream, and shows the monitor (a)
tracking the stable problem slices, (b) flagging the jump via a Welch
test the moment it enters the window, and (c) doing less enumeration work
on warm ticks than a cold restart would.

Run:  python examples/streaming_monitor.py
"""

import os

import numpy as np

from repro import SliceMonitor
from repro.core import SliceLineConfig
from repro.datasets import replay_batches

rng = np.random.default_rng(23)

# Allow CI to shrink the workload; the behaviour is scale-free.
num_rows = int(os.environ.get("REPRO_EXAMPLE_ROWS", 12_000))

# -- a prediction log with a mid-stream regression -------------------------
x0 = np.column_stack(
    [
        rng.integers(1, 5, size=num_rows),  # device     (1..4)
        rng.integers(1, 4, size=num_rows),  # country    (1..3)
        rng.integers(1, 6, size=num_rows),  # app ver    (1..5)
    ]
)
feature_names = ["device", "country", "app_version"]

errors = (rng.random(num_rows) < 0.05).astype(float)
# a persistently weak subgroup, present from the start
weak = (x0[:, 0] == 2) & (x0[:, 1] == 1)
errors[weak] = (rng.random(int(weak.sum())) < 0.55).astype(float)
# a regression shipped mid-stream: app_version=5 degrades in the second half
shipped = (x0[:, 2] == 5) & (np.arange(num_rows) >= num_rows // 2)
errors[shipped] = (rng.random(int(shipped.sum())) < 0.70).astype(float)

# -- drive the monitor over the replayed stream ----------------------------
monitor = SliceMonitor(
    config=SliceLineConfig(k=3, alpha=0.95, sigma=max(32, num_rows // 200)),
    window_size=4,
    policy="sliding",
)

batch_size = max(200, num_rows // 12)
for batch in replay_batches(x0, errors, batch_size, interval_seconds=60.0):
    monitor.ingest(batch)
    tick = monitor.tick()
    warm = tick.warm_start
    seeded = f", seeded {warm.requested} slices" if warm is not None else ""
    print(
        f"t={tick.timestamp:5.0f}s  window={tick.num_rows} rows"
        f"  ({tick.seconds * 1000:.0f} ms{seeded})"
    )
    for rank, sl in enumerate(tick.top_slices, start=1):
        print(
            f"    #{rank} score={sl.score:+.3f} size={sl.size} "
            f"avg_err={sl.average_error:.3f} :: {sl.describe(feature_names)}"
        )
    for signal in tick.degraded_slices(significance=0.01):
        print(
            f"    DRIFT: {signal.slice.describe(feature_names)} worsened "
            f"{signal.baseline_mean_error:.3f} -> "
            f"{signal.current_mean_error:.3f} (p={signal.p_value:.2g})"
        )

# -- warm vs cold: identical answers, less work ----------------------------
warm_ticks = [t for t in monitor.ticks if t.warm_start is not None]
if warm_ticks:
    hit_rate = np.mean([t.warm_start.hit_rate for t in warm_ticks])
    print(
        f"\n{len(warm_ticks)}/{len(monitor.ticks)} ticks were warm-started; "
        f"mean seed hit rate {hit_rate:.0%}.  Warm starts only tighten the "
        "score-pruning threshold, so every tick above is bitwise identical "
        "to a cold re-run on the same window."
    )
