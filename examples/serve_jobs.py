"""Multi-tenant slice-finding as a service: submit, cache, preempt, resume.

One :class:`repro.SliceService` turns the one-shot ``slice_line`` call
into a job service: tenants submit declarative jobs, admission control
queues or rejects them against per-tenant quotas, results land in a
fingerprint-keyed cache, and interactive jobs can preempt running batch
jobs at a checkpointed level boundary (the victim later resumes
bitwise-identically).

This script walks the full surface on a synthetic workload:

1. an analytics tenant submits a batch job (cold run);
2. resubmitting the identical job is an exact cache hit — no
   enumeration at all;
3. a wider follow-up job on the same data warm-starts from the cached
   top-K and still matches a cold run bitwise;
4. an interactive job from a second tenant preempts the batch queue;
5. the same jobs expressed as a declarative JSON document
   (``examples/serve_jobs.json`` runs the equivalent via
   ``python -m repro serve examples/serve_jobs.json``).

Run:  python examples/serve_jobs.py
"""

import os

import numpy as np

from repro import JobSpec, SliceService, TenantQuota
from repro.core import SliceLineConfig, slice_line

rng = np.random.default_rng(7)

# Allow CI to shrink the workload; the behaviour is scale-free.
num_rows = int(os.environ.get("REPRO_EXAMPLE_ROWS", 12_000))

x0 = np.column_stack(
    [
        rng.integers(1, 5, size=num_rows),  # device     (1..4)
        rng.integers(1, 4, size=num_rows),  # country    (1..3)
        rng.integers(1, 6, size=num_rows),  # app ver    (1..5)
    ]
)
errors = (rng.random(num_rows) < 0.05).astype(float)
weak = (x0[:, 0] == 2) & (x0[:, 1] == 1)
errors[weak] = (rng.random(int(weak.sum())) < 0.55).astype(float)

cfg = SliceLineConfig(k=4, max_level=3, sigma=max(32, num_rows // 200))

quotas = {
    "analytics": TenantQuota(max_running=2, max_queued=16),
    "oncall": TenantQuota(max_running=1, max_queued=4, weight=2.0),
}

with SliceService(quotas=quotas, num_workers=2) as service:
    # 1. cold batch run -----------------------------------------------------
    job = service.submit(
        JobSpec(tenant="analytics", name="baseline", x0=x0, errors=errors,
                config=cfg)
    )
    result = service.result(job.job_id, timeout=300)
    print(f"[{job.job_id}] cold run: {result.total_seconds * 1e3:.0f} ms, "
          f"top score {result.top_slices[0].score:+.3f}")

    # 2. exact resubmission is a cache hit ----------------------------------
    again = service.submit(
        JobSpec(tenant="analytics", name="baseline-again", x0=x0,
                errors=errors, config=cfg)
    )
    cached = service.result(again.job_id, timeout=300)
    assert again.cache_hit and cached is result
    print(f"[{again.job_id}] exact resubmission: served from cache, "
          "zero enumeration")

    # 3. same data, wider config: warm-started, still bitwise exact --------
    wide = SliceLineConfig(k=6, max_level=3, sigma=cfg.sigma)
    deep = service.submit(
        JobSpec(tenant="analytics", name="wide", x0=x0, errors=errors,
                config=wide)
    )
    warmed = service.result(deep.job_id, timeout=300)
    cold = slice_line(x0, errors, wide)
    assert np.array_equal(warmed.top_stats, cold.top_stats)
    print(f"[{deep.job_id}] warm-started from {len(deep.warm_seeds)} cached "
          "seeds; result bitwise-identical to a cold run")

    # 4. an interactive on-call job jumps the line --------------------------
    live = service.submit(
        JobSpec(tenant="oncall", name="incident", x0=x0, errors=errors,
                config=SliceLineConfig(k=2, max_level=2, sigma=cfg.sigma),
                interactive=True)
    )
    service.result(live.job_id, timeout=300)
    print(f"[{live.job_id}] interactive job completed "
          f"(preemptions observed service-wide: "
          f"{service.stats()['events'].get('serve.preemptions', 0)})")

    stats = service.stats()
    print(
        f"\nservice totals: {stats['events'].get('serve.submitted', 0)} "
        f"submitted, {stats['events'].get('serve.cache_hits', 0)} cache "
        f"hit(s), {stats['events'].get('serve.warm_starts', 0)} warm "
        f"start(s)"
    )
    print(
        "same jobs, declaratively:  "
        "python -m repro serve examples/serve_jobs.json"
    )
