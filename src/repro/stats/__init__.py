"""Statistical tests used by the SliceFinder baseline (from scratch).

SliceFinder [Chung et al.] accepts a slice when (1) its *effect size*
(normalized difference between the error distributions inside and outside
the slice) exceeds a threshold and (2) Welch's t-test rejects equal means.
Both are implemented here on plain numpy (scipy only supplies the Student-t
CDF special function).
"""

from repro.stats.welch import WelchResult, welch_t_test, welch_t_test_from_stats
from repro.stats.effect_size import cohens_d, effect_size

__all__ = [
    "WelchResult",
    "welch_t_test",
    "welch_t_test_from_stats",
    "cohens_d",
    "effect_size",
]
