"""Effect-size measures for comparing slice error distributions."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def cohens_d(sample_a: np.ndarray, sample_b: np.ndarray) -> float:
    """Cohen's d with a pooled standard deviation.

    ``d = (mean(a) - mean(b)) / s_pooled``; returns 0.0 when both samples
    are constant and equal, ``inf`` when they are constant but different.
    """
    a = np.asarray(sample_a, dtype=np.float64).ravel()
    b = np.asarray(sample_b, dtype=np.float64).ravel()
    if a.size < 2 or b.size < 2:
        raise ValidationError("cohens_d requires >= 2 observations per sample")
    var_a = a.var(ddof=1)
    var_b = b.var(ddof=1)
    pooled_var = ((a.size - 1) * var_a + (b.size - 1) * var_b) / (a.size + b.size - 2)
    diff = a.mean() - b.mean()
    if pooled_var == 0.0:
        if diff == 0.0:
            return 0.0
        return float(np.inf) if diff > 0 else float(-np.inf)
    return float(diff / np.sqrt(pooled_var))


def effect_size(slice_errors: np.ndarray, rest_errors: np.ndarray) -> float:
    """SliceFinder's effect size: the psi-style normalized mean difference.

    SliceFinder measures how much worse the error distribution of ``S`` is
    than that of ``NOT S``; we follow the common formulation
    ``(mean(S) - mean(NOT S)) / sqrt((var(S) + var(NOT S)) / 2)``.
    """
    a = np.asarray(slice_errors, dtype=np.float64).ravel()
    b = np.asarray(rest_errors, dtype=np.float64).ravel()
    if a.size < 2 or b.size < 2:
        raise ValidationError("effect_size requires >= 2 observations per sample")
    denom = np.sqrt((a.var(ddof=1) + b.var(ddof=1)) / 2.0)
    diff = a.mean() - b.mean()
    if denom == 0.0:
        if diff == 0.0:
            return 0.0
        return float(np.inf) if diff > 0 else float(-np.inf)
    return float(diff / denom)
