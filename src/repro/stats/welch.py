"""Welch's unequal-variances t-test, implemented from first principles."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import stdtr

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class WelchResult:
    """Outcome of a one-sided Welch t-test (alternative: mean(a) > mean(b))."""

    statistic: float
    degrees_of_freedom: float
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def welch_t_test(sample_a: np.ndarray, sample_b: np.ndarray) -> WelchResult:
    """One-sided Welch t-test for ``mean(a) > mean(b)``.

    Uses the Welch-Satterthwaite degrees-of-freedom approximation.  Each
    sample needs at least two observations; when both samples have zero
    variance the test degenerates (statistic ``0`` or ``+/-inf`` depending
    on the mean difference).
    """
    a = np.asarray(sample_a, dtype=np.float64).ravel()
    b = np.asarray(sample_b, dtype=np.float64).ravel()
    if a.size < 2 or b.size < 2:
        raise ValidationError("welch_t_test requires >= 2 observations per sample")

    mean_a, mean_b = a.mean(), b.mean()
    var_a = a.var(ddof=1)
    var_b = b.var(ddof=1)
    pooled = var_a / a.size + var_b / b.size

    if pooled == 0.0:
        if mean_a > mean_b:
            return WelchResult(np.inf, float(a.size + b.size - 2), 0.0)
        return WelchResult(0.0 if mean_a == mean_b else -np.inf, float(a.size + b.size - 2), 1.0)

    statistic = (mean_a - mean_b) / np.sqrt(pooled)
    df_num = pooled**2
    df_den = (var_a / a.size) ** 2 / (a.size - 1) + (var_b / b.size) ** 2 / (b.size - 1)
    dof = df_num / df_den if df_den > 0 else float(a.size + b.size - 2)
    # One-sided p-value: P(T >= statistic) under Student-t with `dof`.
    p_value = float(1.0 - stdtr(dof, statistic))
    return WelchResult(float(statistic), float(dof), p_value)
