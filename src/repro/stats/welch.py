"""Welch's unequal-variances t-test, implemented from first principles."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import stdtr

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class WelchResult:
    """Outcome of a one-sided Welch t-test (alternative: mean(a) > mean(b))."""

    statistic: float
    degrees_of_freedom: float
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def welch_t_test_from_stats(
    mean_a: float,
    var_a: float,
    num_a: int,
    mean_b: float,
    var_b: float,
    num_b: int,
) -> WelchResult:
    """One-sided Welch t-test (``mean(a) > mean(b)``) from summary statistics.

    Welch's statistic only depends on each sample through ``(mean, sample
    variance, n)``, so the test can run on merged streaming accumulators
    without ever materializing the raw observations (variances use the
    ``ddof=1`` convention, matching :func:`welch_t_test` on raw samples).
    """
    num_a, num_b = int(num_a), int(num_b)
    if num_a < 2 or num_b < 2:
        raise ValidationError("welch_t_test requires >= 2 observations per sample")
    if var_a < 0 or var_b < 0:
        raise ValidationError("sample variances must be non-negative")

    pooled = var_a / num_a + var_b / num_b
    if pooled == 0.0:
        if mean_a > mean_b:
            return WelchResult(np.inf, float(num_a + num_b - 2), 0.0)
        return WelchResult(
            0.0 if mean_a == mean_b else -np.inf, float(num_a + num_b - 2), 1.0
        )

    statistic = (mean_a - mean_b) / np.sqrt(pooled)
    df_num = pooled**2
    df_den = (var_a / num_a) ** 2 / (num_a - 1) + (var_b / num_b) ** 2 / (num_b - 1)
    dof = df_num / df_den if df_den > 0 else float(num_a + num_b - 2)
    # One-sided p-value: P(T >= statistic) under Student-t with `dof`.
    p_value = float(1.0 - stdtr(dof, statistic))
    return WelchResult(float(statistic), float(dof), p_value)


def welch_t_test(sample_a: np.ndarray, sample_b: np.ndarray) -> WelchResult:
    """One-sided Welch t-test for ``mean(a) > mean(b)``.

    Uses the Welch-Satterthwaite degrees-of-freedom approximation.  Each
    sample needs at least two observations; when both samples have zero
    variance the test degenerates (statistic ``0`` or ``+/-inf`` depending
    on the mean difference).
    """
    a = np.asarray(sample_a, dtype=np.float64).ravel()
    b = np.asarray(sample_b, dtype=np.float64).ravel()
    if a.size < 2 or b.size < 2:
        raise ValidationError("welch_t_test requires >= 2 observations per sample")
    return welch_t_test_from_stats(
        float(a.mean()), float(a.var(ddof=1)), a.size,
        float(b.mean()), float(b.var(ddof=1)), b.size,
    )
