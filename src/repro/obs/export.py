"""Sinks for observability data: JSON documents and plain-text tables.

The JSON schema (``repro.obs/v1``) is documented in EXPERIMENTS.md; it is
what the ``--trace-json`` CLI flag writes per run and what the benchmark
suite aggregates into ``benchmarks/BENCH_obs.json`` as the perf baseline
compared PR-over-PR.
"""

from __future__ import annotations

import json
from typing import IO, Any

from repro.obs.counters import CounterRegistry
from repro.obs.trace import NullTracer, Span, Tracer

#: Version tag stamped on every exported observability document.
SCHEMA = "repro.obs/v1"

#: Per-level table columns (counter name -> short header).
_TABLE_COLUMNS = (
    ("level", "level"),
    ("input_slices", "parents"),
    ("pairs_generated", "pairs"),
    ("invalid_feature_pairs", "invalid"),
    ("dedup_removed", "dups"),
    ("pruned_by_size", "pr_size"),
    ("pruned_by_score", "pr_score"),
    ("pruned_by_parents", "pr_parents"),
    ("skipped_by_priority", "skipped"),
    ("evaluated", "evaluated"),
    ("valid", "valid"),
    ("indicator_nnz", "nnz"),
    ("backend_chosen", "backend"),
    ("elapsed_seconds", "seconds"),
)


def run_to_dict(result: Any) -> dict:
    """Serialize a :class:`~repro.core.types.SliceLineResult` to obs JSON.

    The document always carries run metadata and the per-level counters;
    the ``trace`` key is ``None`` when the run was executed untraced.
    """
    trace = getattr(result, "trace", None)
    counters = getattr(result, "counters", None)
    warm = getattr(result, "warm_start", None)
    trip = getattr(result, "budget_trip", None)
    return {
        "schema": SCHEMA,
        "run": {
            "num_rows": result.num_rows,
            "num_features": result.num_features,
            "num_onehot_columns": result.num_onehot_columns,
            "average_error": result.average_error,
            "total_seconds": result.total_seconds,
            "num_top_slices": len(result.top_slices),
            "top_scores": [s.score for s in result.top_slices],
            "completed": getattr(result, "completed", True),
            "budget_trip": trip.to_dict() if trip is not None else None,
            "suspended": getattr(result, "suspended", False),
        },
        "warm_start": (
            {
                "requested": warm.requested,
                "encoded": warm.encoded,
                "valid": warm.valid,
                "hits": warm.hits,
                "hit_rate": warm.hit_rate,
            }
            if warm is not None
            else None
        ),
        "counters": counters.to_dict() if counters is not None else None,
        "trace": trace.to_dict() if trace is not None else None,
    }


def write_json(result: Any, path_or_file: "str | IO[str]", indent: int = 2) -> dict:
    """Write the obs JSON document for *result*; returns the document."""
    doc = run_to_dict(result)
    if hasattr(path_or_file, "write"):
        json.dump(doc, path_or_file, indent=indent)
    else:
        with open(path_or_file, "w") as handle:
            json.dump(doc, handle, indent=indent)
    return doc


def counters_table(counters: CounterRegistry, title: str | None = None) -> str:
    """Render the per-level counters as an aligned monospace table."""
    records = []
    for record in counters.levels:
        as_dict = record.to_dict()
        records.append(
            {
                header: (
                    round(as_dict[name], 3)
                    if name == "elapsed_seconds"
                    else as_dict[name]
                )
                for name, header in _TABLE_COLUMNS
            }
        )
    if not records:
        return f"{title or 'trace'}: <no levels recorded>"
    # Local import: repro.experiments pulls in repro.core, which imports
    # repro.obs — importing it lazily keeps module loading acyclic.
    from repro.experiments.recorder import format_table

    return format_table(records, title=title)


def format_trace(
    tracer: "Tracer | NullTracer | Span", max_depth: int | None = None
) -> str:
    """Render a span tree as an indented text outline."""
    roots = [tracer] if isinstance(tracer, Span) else list(tracer.spans)
    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        attrs = " ".join(f"{k}={v}" for k, v in span.attrs.items())
        mem = (
            f" mem_peak={span.mem_peak_bytes / 1e6:.1f}MB"
            if span.mem_peak_bytes is not None
            else ""
        )
        lines.append(
            f"{'  ' * depth}{span.name}: {span.elapsed_seconds * 1e3:.2f}ms"
            + (f" [{attrs}]" if attrs else "")
            + mem
        )
        for child in span.children:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines) if lines else "<no spans recorded>"
