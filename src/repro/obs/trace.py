"""Hierarchical tracing for the SliceLine search.

A :class:`Tracer` hands out :class:`Span` context managers::

    tracer = Tracer()
    with tracer.span("level2.pairs", candidates=123):
        ...

Spans nest (a span opened while another is active becomes its child), carry
wall-clock time, free-form attributes, and — when the tracer is created with
``track_memory=True`` — the ``tracemalloc`` traced-allocation high-water
mark observed by span exit.

When tracing is off the instrumented code paths receive :data:`NULL_TRACER`,
whose ``span`` method returns a shared no-op context manager.  The no-op
path allocates nothing and does no timing, so the disabled-mode cost of an
instrumentation point is one method call (see
``benchmarks/bench_obs_overhead.py`` for the <2% end-to-end bound).

Tracers are not thread-safe: spans must be opened and closed from one
thread.  Parallel sections (thread pools in the executors and the blocked
evaluation) are recorded as a single span around the fork/join point.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any


@dataclass
class Span:
    """One node of the trace tree."""

    name: str
    elapsed_seconds: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    #: tracemalloc traced-allocation high-water mark (bytes) observed by
    #: span exit; ``None`` when memory tracking is off
    mem_peak_bytes: int | None = None

    def annotate(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on an open or closed span."""
        self.attrs.update(attrs)

    def find(self, name: str) -> "Span | None":
        """Depth-first search for the first descendant named *name*."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def iter_spans(self):
        """Yield this span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def to_dict(self) -> dict:
        """JSON-ready representation (schema documented in EXPERIMENTS.md)."""
        out: dict[str, Any] = {
            "name": self.name,
            "elapsed_seconds": self.elapsed_seconds,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.mem_peak_bytes is not None:
            out["mem_peak_bytes"] = self.mem_peak_bytes
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


class _OpenSpan:
    """Context manager that times one span and links it into the tree."""

    __slots__ = ("_tracer", "_span", "_started")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._started = 0.0

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        self._started = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span.elapsed_seconds = time.perf_counter() - self._started
        if self._tracer.track_memory:
            self._span.mem_peak_bytes = tracemalloc.get_traced_memory()[1]
        popped = self._tracer._stack.pop()
        assert popped is self._span, "span stack corrupted (nested misuse)"


class Tracer:
    """Collects a tree of timed spans for one (or more) SliceLine runs.

    Parameters
    ----------
    track_memory:
        When true, ``tracemalloc`` is started (if not already tracing) and
        every span records the traced-allocation high-water mark at exit.
        The tracer stops ``tracemalloc`` again in :meth:`close` only if it
        was the one to start it.
    """

    enabled = True

    def __init__(self, track_memory: bool = False) -> None:
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self.num_spans = 0
        self.track_memory = track_memory
        self._started_tracemalloc = False
        if track_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True

    def span(self, name: str, **attrs: Any) -> _OpenSpan:
        """Open a new span as a child of the innermost active span."""
        span = Span(name=name, attrs=attrs)
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(span)
        else:
            self.spans.append(span)
        self.num_spans += 1
        return _OpenSpan(self, span)

    @property
    def current(self) -> Span | None:
        """The innermost open span (``None`` outside any span)."""
        return self._stack[-1] if self._stack else None

    def find(self, name: str) -> Span | None:
        """First span named *name* anywhere in the recorded trees."""
        for root in self.spans:
            if root.name == name:
                return root
            found = root.find(name)
            if found is not None:
                return found
        return None

    def iter_spans(self):
        for root in self.spans:
            yield from root.iter_spans()

    def to_dict(self) -> dict:
        return {"spans": [span.to_dict() for span in self.spans]}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def close(self) -> None:
        """Release resources (stops tracemalloc if this tracer started it)."""
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracemalloc = False


class _NullSpan:
    """Shared no-op span: enters/exits without timing or allocation."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def annotate(self, **attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled-mode tracer: every ``span()`` is the shared no-op span."""

    enabled = False
    track_memory = False
    spans: tuple = ()
    num_spans = 0

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def find(self, name: str) -> None:
        return None

    def iter_spans(self):
        return iter(())

    def to_dict(self) -> dict:
        return {"spans": []}

    def close(self) -> None:
        return None


#: Shared disabled-mode tracer instance (the default everywhere).
NULL_TRACER = NullTracer()


def resolve_tracer(trace: "bool | Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Normalize a user-facing ``trace`` argument to a tracer instance.

    ``None``/``False`` yield :data:`NULL_TRACER`; ``True`` creates a fresh
    :class:`Tracer`; ``"memory"`` creates one with allocation tracking; an
    existing tracer is returned unchanged.
    """
    if trace is None or trace is False:
        return NULL_TRACER
    if trace is True:
        return Tracer()
    if trace == "memory":
        return Tracer(track_memory=True)
    if isinstance(trace, (Tracer, NullTracer)):
        return trace
    raise TypeError(
        f"trace must be None, bool, 'memory', or a Tracer, got {trace!r}"
    )
