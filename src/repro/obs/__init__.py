"""Observability for the SliceLine search: tracing, counters, and sinks.

Three pieces, all optional and zero-overhead when unused:

* :mod:`repro.obs.trace` — a hierarchical wall-clock (and optionally
  allocation) tracer the enumeration kernels and executors report into.
* :mod:`repro.obs.counters` — the per-level search-space accounting
  (pruning effectiveness, dedup, priority skips, sparse fill) exported on
  every :class:`~repro.core.types.SliceLineResult`.
* :mod:`repro.obs.export` — JSON and plain-text sinks (the ``--trace`` CLI
  flag and the ``BENCH_obs.json`` benchmark baseline).
"""

from repro.obs.counters import (
    EXECUTION_FIELDS,
    CounterRegistry,
    LevelCounters,
)
from repro.obs.export import (
    SCHEMA,
    counters_table,
    format_trace,
    run_to_dict,
    write_json,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    resolve_tracer,
)

__all__ = [
    "CounterRegistry",
    "EXECUTION_FIELDS",
    "LevelCounters",
    "SCHEMA",
    "counters_table",
    "format_trace",
    "run_to_dict",
    "write_json",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "resolve_tracer",
]
