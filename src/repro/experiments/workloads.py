"""Standard workload parameters for each experiment of Section 5."""

from __future__ import annotations

import math

from repro.core.config import SliceLineConfig

#: Figure 5 sweeps alpha over these values.
ALPHA_SWEEP_VALUES = (0.36, 0.68, 0.84, 0.92, 0.96, 0.98, 0.99)

#: Per-dataset lattice-level caps for the benchmarks.  The paper caps the
#: correlated datasets at 3-4 levels on a 112-vcore node; on a laptop we
#: additionally cap KDD98 at 2 (its level-3 self-join over ~1e5 surviving
#: parents is the one workload that genuinely needs the paper's hardware).
BENCH_LEVEL_CAPS = {
    "adult": 3,
    "covtype": 3,
    "kdd98": 2,
    "uscensus": 3,
    "uscensus10x": 3,
    "criteod21": 6,
    "salaries": None,
    "salaries2x2": None,
}


def bench_sigma(num_rows: int) -> int:
    """The experiments' minimum-support default ``sigma = ceil(n/100)``."""
    return max(1, math.ceil(num_rows / 100))


def bench_config(
    dataset: str,
    num_rows: int,
    k: int = 10,
    alpha: float = 0.95,
    **overrides,
) -> SliceLineConfig:
    """The Section 5 default configuration for *dataset*.

    ``alpha = 0.95``, ``sigma = ceil(n/100)``, dataset-specific level cap,
    block size 128 (the laptop equivalent of the paper's b=16 on 112
    vcores: larger blocks amortize scipy's per-call overhead).
    """
    params = {
        "k": k,
        "alpha": alpha,
        "sigma": bench_sigma(num_rows),
        "max_level": BENCH_LEVEL_CAPS.get(dataset),
        "block_size": 128,
    }
    params.update(overrides)
    return SliceLineConfig(**params)
