"""Runners that execute a workload and collect enumeration reports."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import PruningConfig, SliceLineConfig, slice_line
from repro.core.types import SliceLineResult


@dataclass
class EnumerationReport:
    """Per-level slice counts and timings of one SliceLine run.

    This is the data behind Figures 3-4 and Table 2: evaluated candidates,
    valid slices, pruning/skipping counters, and elapsed seconds per level.
    """

    dataset: str
    config_label: str
    levels: list[int] = field(default_factory=list)
    evaluated: list[int] = field(default_factory=list)
    valid: list[int] = field(default_factory=list)
    candidates_emitted: list[int] = field(default_factory=list)
    dedup_removed: list[int] = field(default_factory=list)
    pruned_by_size: list[int] = field(default_factory=list)
    pruned_by_score: list[int] = field(default_factory=list)
    pruned_by_parents: list[int] = field(default_factory=list)
    skipped_by_priority: list[int] = field(default_factory=list)
    elapsed_seconds: list[float] = field(default_factory=list)
    total_seconds: float = 0.0
    top_scores: list[float] = field(default_factory=list)
    top_sizes: list[int] = field(default_factory=list)

    @classmethod
    def from_result(
        cls, result: SliceLineResult, dataset: str, config_label: str
    ) -> "EnumerationReport":
        report = cls(dataset=dataset, config_label=config_label)
        for ls in result.level_stats:
            report.levels.append(ls.level)
            report.evaluated.append(ls.evaluated)
            report.valid.append(ls.valid)
            report.candidates_emitted.append(ls.candidates_emitted)
            report.dedup_removed.append(ls.dedup_removed)
            report.pruned_by_size.append(ls.pruned_by_size)
            report.pruned_by_score.append(ls.pruned_by_score)
            report.pruned_by_parents.append(ls.pruned_by_parents)
            report.skipped_by_priority.append(ls.skipped_by_priority)
            report.elapsed_seconds.append(ls.elapsed_seconds)
        report.total_seconds = result.total_seconds
        report.top_scores = [s.score for s in result.top_slices]
        report.top_sizes = [s.size for s in result.top_slices]
        return report

    @property
    def total_evaluated(self) -> int:
        return int(sum(self.evaluated))

    def rows(self) -> list[dict]:
        """One dict per level, for tabular output."""
        return [
            {
                "dataset": self.dataset,
                "config": self.config_label,
                "level": self.levels[i],
                "emitted": self.candidates_emitted[i],
                "evaluated": self.evaluated[i],
                "valid": self.valid[i],
                "dups": self.dedup_removed[i],
                "pruned_size": self.pruned_by_size[i],
                "pruned_score": self.pruned_by_score[i],
                "pruned_parents": self.pruned_by_parents[i],
                "skipped": self.skipped_by_priority[i],
                "seconds": round(self.elapsed_seconds[i], 3),
            }
            for i in range(len(self.levels))
        ]


def run_sliceline(
    x0: np.ndarray,
    errors: np.ndarray,
    config: SliceLineConfig,
    dataset: str = "?",
    config_label: str = "default",
    num_threads: int = 1,
    trace: bool | str | None = None,
) -> tuple[SliceLineResult, EnumerationReport]:
    """Execute one workload and return result plus enumeration report.

    Pass ``trace=True`` (or ``"memory"``) to attach a span trace to the
    returned result — the report itself is built from the counters either way.
    """
    result = slice_line(x0, errors, config, num_threads=num_threads, trace=trace)
    return result, EnumerationReport.from_result(result, dataset, config_label)


def run_pruning_ablation(
    x0: np.ndarray,
    errors: np.ndarray,
    base_config: SliceLineConfig,
    dataset: str = "salaries2x2",
    num_threads: int = 1,
    arms: dict[str, PruningConfig] | None = None,
) -> dict[str, EnumerationReport]:
    """The Figure 3 ablation: one run per pruning configuration.

    Priority evaluation is disabled for all arms so the per-level counts
    reflect the pruning techniques alone (as in the paper).
    """
    arms = arms or PruningConfig.ablation_arms()
    reports: dict[str, EnumerationReport] = {}
    for label, pruning in arms.items():
        cfg = base_config.with_overrides(
            pruning=pruning, priority_evaluation=False
        )
        _, reports[label] = run_sliceline(
            x0, errors, cfg, dataset=dataset, config_label=label,
            num_threads=num_threads,
        )
    return reports
