"""Plain-text/CSV rendering of experiment records (no plotting deps)."""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(records: Sequence[Mapping], title: str | None = None) -> str:
    """Render a list of dict records as an aligned monospace table."""
    if not records:
        return f"{title or 'table'}: <no rows>"
    columns = list(records[0].keys())
    rows = [[str(rec.get(col, "")) for col in columns] for rec in records]
    widths = [
        max(len(columns[i]), *(len(row[i]) for row in rows))
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def records_to_csv(records: Sequence[Mapping]) -> str:
    """Serialize records to CSV text (header from the first record)."""
    if not records:
        return ""
    columns = list(records[0].keys())
    lines = [",".join(columns)]
    for rec in records:
        lines.append(",".join(str(rec.get(col, "")) for col in columns))
    return "\n".join(lines)
