"""Experiment harness: workload configs, runners, and result recording.

One workload per table/figure of the paper's evaluation (Section 5); the
benchmark scripts under ``benchmarks/`` are thin wrappers that execute
these workloads and print the regenerated rows/series.
"""

from repro.experiments.harness import (
    EnumerationReport,
    run_pruning_ablation,
    run_sliceline,
)
from repro.experiments.recorder import format_table, records_to_csv
from repro.experiments.workloads import (
    ALPHA_SWEEP_VALUES,
    BENCH_LEVEL_CAPS,
    bench_config,
    bench_sigma,
)

__all__ = [
    "EnumerationReport",
    "run_pruning_ablation",
    "run_sliceline",
    "format_table",
    "records_to_csv",
    "ALPHA_SWEEP_VALUES",
    "BENCH_LEVEL_CAPS",
    "bench_config",
    "bench_sigma",
]
