"""Shared type aliases used across the package."""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

#: A two-dimensional matrix accepted by most linear-algebra helpers: either a
#: dense numpy array or any scipy sparse matrix.
Matrix = Union[np.ndarray, sp.spmatrix]

#: A one-dimensional float vector.
Vector = np.ndarray

#: An integer-encoded feature matrix (1-based contiguous codes per column).
IntMatrix = np.ndarray
