"""Baseline slice-finding algorithms for comparison and verification.

* :mod:`repro.baselines.naive` — exhaustive lattice enumeration by set
  intersection.  Exponential, but exact by construction: the oracle used by
  the property-based tests to certify SliceLine's exactness.
* :mod:`repro.baselines.slicefinder` — a reimplementation of the
  SliceFinder [Chung et al., ICDE'19] lattice search with effect size,
  Welch's t-test, and level-wise top-K termination (the ">100s on Adult"
  comparison point of Section 5.4).
* :mod:`repro.baselines.dtree` — decision-tree based, *non-overlapping*
  slices (the alternative SliceFinder proposes for disjoint slices).
* :mod:`repro.baselines.clustering` — error-weighted clustering baseline.
"""

from repro.baselines.naive import NaiveSlice, enumerate_all_slices, naive_top_k
from repro.baselines.slicefinder import SliceFinderBaseline, SliceFinderCandidate
from repro.baselines.dtree import DecisionTreeSlicer, TreeNode
from repro.baselines.clustering import ClusteringSlicer

__all__ = [
    "NaiveSlice",
    "enumerate_all_slices",
    "naive_top_k",
    "SliceFinderBaseline",
    "SliceFinderCandidate",
    "DecisionTreeSlicer",
    "TreeNode",
    "ClusteringSlicer",
]
