"""Exhaustive slice enumeration: the exactness oracle.

Enumerates *every* node of the slice lattice (all conjunctions of at most
one predicate per feature) by explicit row-set intersection, scores each
with the paper's scoring function, and returns the exact top-K under the
``|S| >= sigma`` and ``sc > 0`` constraints of Definition 2.

This is exponential in the number of features and is only intended for
small inputs; the test suite uses it to certify that SliceLine's pruned,
vectorized enumeration returns identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product
from typing import Iterator, Mapping

import numpy as np

from repro.core.onehot import validate_encoded_matrix
from repro.core.scoring import score_single
from repro.linalg import ensure_vector


@dataclass(frozen=True)
class NaiveSlice:
    """One fully evaluated lattice node from the exhaustive enumeration."""

    predicates: Mapping[int, int]
    score: float
    error: float
    max_error: float
    size: int

    @property
    def level(self) -> int:
        return len(self.predicates)

    def sort_key(self) -> tuple:
        """Deterministic ordering: score desc, size desc, error desc."""
        return (-self.score, -self.size, -self.error, tuple(sorted(self.predicates.items())))


def enumerate_all_slices(
    x0: np.ndarray,
    errors: np.ndarray,
    alpha: float,
    max_level: int | None = None,
) -> Iterator[NaiveSlice]:
    """Yield every non-empty lattice node with its exact statistics.

    The search space follows Section 3.1: all subsets of features with one
    value per chosen feature, levels 1..``max_level`` (default ``m``).
    """
    x0 = validate_encoded_matrix(x0, allow_missing=True)
    num_rows, num_features = x0.shape
    errors = ensure_vector(errors, num_rows, "errors")
    total_error = float(errors.sum())
    domains = x0.max(axis=0)
    depth = num_features if max_level is None else min(max_level, num_features)

    for level in range(1, depth + 1):
        for features in combinations(range(num_features), level):
            domain_ranges = [range(1, domains[f] + 1) for f in features]
            for values in product(*domain_ranges):
                mask = np.ones(num_rows, dtype=bool)
                for feature, value in zip(features, values):
                    mask &= x0[:, feature] == value
                size = int(mask.sum())
                if size == 0:
                    continue
                slice_errors = errors[mask]
                yield NaiveSlice(
                    predicates=dict(zip(features, values)),
                    score=score_single(size, float(slice_errors.sum()), num_rows, total_error, alpha),
                    error=float(slice_errors.sum()),
                    max_error=float(slice_errors.max()),
                    size=size,
                )


def naive_top_k(
    x0: np.ndarray,
    errors: np.ndarray,
    k: int,
    sigma: int,
    alpha: float,
    max_level: int | None = None,
) -> list[NaiveSlice]:
    """Exact top-K problematic slices per Definition 2 (brute force).

    Returns at most *k* slices with ``|S| >= sigma`` and ``sc > 0``, sorted
    by descending score (ties broken by size, then error, then predicates).
    """
    valid = [
        s
        for s in enumerate_all_slices(x0, errors, alpha, max_level)
        if s.size >= sigma and s.score > 0
    ]
    valid.sort(key=NaiveSlice.sort_key)
    return valid[:k]
