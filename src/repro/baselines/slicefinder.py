"""SliceFinder-style lattice search baseline (Chung et al., ICDE 2019).

This is the heuristic comparator of Section 5.4: a hand-crafted, level-wise
lattice search that accepts a slice when its *effect size* exceeds a
threshold ``T`` and Welch's t-test finds its errors significantly larger
than the rest, subject to a *dominance* constraint (no accepted coarser
slice), and terminates as soon as ``K`` slices are found.

Unlike SliceLine it is neither exact (the level-wise termination can miss
higher-scoring finer slices) nor vectorized (slices are evaluated one by
one) — exactly the limitations the paper motivates against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Mapping

import numpy as np

from repro.core.onehot import validate_encoded_matrix
from repro.exceptions import ValidationError
from repro.linalg import ensure_vector
from repro.stats import effect_size, welch_t_test


@dataclass(frozen=True)
class SliceFinderCandidate:
    """A slice accepted by the SliceFinder search with its test statistics."""

    predicates: Mapping[int, int]
    effect_size: float
    p_value: float
    size: int
    average_error: float

    @property
    def level(self) -> int:
        return len(self.predicates)


@dataclass
class SliceFinderBaseline:
    """Level-wise top-K lattice search with statistical acceptance tests.

    Parameters
    ----------
    k:
        Stop as soon as this many slices are accepted (level-wise heuristic
        termination — the search still finishes the current level).
    effect_size_threshold:
        Minimum effect size ``T`` for acceptance (default 0.4, the
        SliceFinder paper's recommendation).
    significance_level:
        Welch's t-test significance level.
    min_size:
        Minimum slice size (slices below it are not expanded either).
    max_level:
        Lattice depth cap.
    """

    k: int = 4
    effect_size_threshold: float = 0.4
    significance_level: float = 0.05
    min_size: int = 2
    max_level: int | None = None
    #: populated by :meth:`find`: candidates evaluated per level
    evaluated_per_level: list[int] = field(default_factory=list)

    def find(self, x0: np.ndarray, errors: np.ndarray) -> list[SliceFinderCandidate]:
        """Run the search and return accepted slices in discovery order."""
        x0 = validate_encoded_matrix(x0, allow_missing=True)
        num_rows, num_features = x0.shape
        errors = ensure_vector(errors, num_rows, "errors")
        if self.k < 1:
            raise ValidationError("k must be >= 1")
        depth = (
            num_features
            if self.max_level is None
            else min(self.max_level, num_features)
        )
        domains = x0.max(axis=0)

        accepted: list[SliceFinderCandidate] = []
        accepted_keys: list[frozenset] = []
        self.evaluated_per_level = []

        # Level 1 candidates: all single predicates; deeper levels extend the
        # *expandable* frontier (large-enough but not-yet-accepted slices).
        frontier: list[dict[int, int]] = [
            {f: v} for f in range(num_features) for v in range(1, domains[f] + 1)
        ]
        for level in range(1, depth + 1):
            evaluated = 0
            # Decreasing slice size is SliceFinder's secondary ordering.
            sized = sorted(
                frontier, key=lambda p: -self._slice_size(x0, p)
            )
            next_frontier: list[dict[int, int]] = []
            seen: set[frozenset] = set()
            for predicates in sized:
                key = frozenset(predicates.items())
                if key in seen:
                    continue
                seen.add(key)
                mask = self._slice_mask(x0, predicates)
                size = int(mask.sum())
                if size < self.min_size or size == num_rows:
                    continue
                evaluated += 1
                if self._dominated(key, accepted_keys):
                    continue
                inside, outside = errors[mask], errors[~mask]
                es = effect_size(inside, outside)
                if es >= self.effect_size_threshold:
                    test = welch_t_test(inside, outside)
                    if test.p_value < self.significance_level:
                        accepted.append(
                            SliceFinderCandidate(
                                predicates=dict(predicates),
                                effect_size=es,
                                p_value=test.p_value,
                                size=size,
                                average_error=float(inside.mean()),
                            )
                        )
                        accepted_keys.append(key)
                        continue
                next_frontier.append(predicates)
            self.evaluated_per_level.append(evaluated)
            if len(accepted) >= self.k:
                break
            frontier = self._expand(next_frontier, domains, num_features)
            if not frontier:
                break
        return accepted[: self.k]

    @staticmethod
    def _slice_mask(x0: np.ndarray, predicates: Mapping[int, int]) -> np.ndarray:
        mask = np.ones(x0.shape[0], dtype=bool)
        for feature, value in predicates.items():
            mask &= x0[:, feature] == value
        return mask

    @classmethod
    def _slice_size(cls, x0: np.ndarray, predicates: Mapping[int, int]) -> int:
        return int(cls._slice_mask(x0, predicates).sum())

    @staticmethod
    def _dominated(key: frozenset, accepted_keys: list[frozenset]) -> bool:
        """True when an accepted coarser slice subsumes this candidate."""
        return any(acc < key for acc in accepted_keys)

    @staticmethod
    def _expand(
        frontier: list[dict[int, int]], domains: np.ndarray, num_features: int
    ) -> list[dict[int, int]]:
        """Extend every frontier slice by one new predicate (all values)."""
        expanded: list[dict[int, int]] = []
        seen: set[frozenset] = set()
        for predicates in frontier:
            for feature in range(num_features):
                if feature in predicates:
                    continue
                for value in range(1, domains[feature] + 1):
                    child = dict(predicates)
                    child[feature] = value
                    key = frozenset(child.items())
                    if key not in seen:
                        seen.add(key)
                        expanded.append(child)
        return expanded


def _pairs_of(predicates: Mapping[int, int]):
    """All one-smaller parents of a predicate set (for dominance checks)."""
    items = sorted(predicates.items())
    for subset in combinations(items, len(items) - 1):
        yield dict(subset)
