"""Decision-tree slice finding: non-overlapping slices via greedy splits.

SliceFinder proposes decision trees as the alternative when *disjoint*
slices are desired; the paper's introduction contrasts SliceLine against
this restriction.  The tree greedily splits on equality predicates
``F_j == v`` (one-vs-rest) to maximize the error-variance reduction, then
reports leaves whose average error exceeds the dataset average as slices.

Because every row belongs to exactly one leaf, the reported slices never
overlap — which is precisely why the tree can miss high-scoring overlapping
slices that SliceLine finds (demonstrated in the baseline benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from repro.core.onehot import validate_encoded_matrix
from repro.core.scoring import score_single
from repro.linalg import ensure_vector


@dataclass
class TreeNode:
    """One node of the slice tree; leaves carry the slice statistics."""

    predicates: dict[int, int]
    size: int
    average_error: float
    feature: Optional[int] = None
    value: Optional[int] = None
    matched: Optional["TreeNode"] = None
    rest: Optional["TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.matched is None

    def leaves(self) -> list["TreeNode"]:
        if self.is_leaf:
            return [self]
        return self.matched.leaves() + self.rest.leaves()


@dataclass
class DecisionTreeSlicer:
    """Greedy error-driven tree producing disjoint problematic slices."""

    max_depth: int = 3
    min_leaf_size: int = 32
    k: int = 4
    #: set by :meth:`find`
    root_: Optional[TreeNode] = field(default=None, repr=False)

    def find(self, x0: np.ndarray, errors: np.ndarray) -> list[TreeNode]:
        """Fit the tree and return the top-k worst leaves (by score)."""
        x0 = validate_encoded_matrix(x0, allow_missing=True)
        errors = ensure_vector(errors, x0.shape[0], "errors")
        num_rows = x0.shape[0]
        total_error = float(errors.sum())
        self.root_ = self._grow(x0, errors, np.arange(num_rows), {}, 0)
        overall_avg = total_error / num_rows if num_rows else 0.0
        bad_leaves = [
            leaf
            for leaf in self.root_.leaves()
            if leaf.average_error > overall_avg and leaf.predicates
        ]
        if total_error > 0:
            bad_leaves.sort(
                key=lambda leaf: -score_single(
                    leaf.size,
                    leaf.average_error * leaf.size,
                    num_rows,
                    total_error,
                    alpha=0.95,
                )
            )
        return bad_leaves[: self.k]

    def _grow(
        self,
        x0: np.ndarray,
        errors: np.ndarray,
        rows: np.ndarray,
        predicates: dict[int, int],
        depth: int,
    ) -> TreeNode:
        subset_errors = errors[rows]
        node = TreeNode(
            predicates=dict(predicates),
            size=int(rows.size),
            average_error=float(subset_errors.mean()) if rows.size else 0.0,
        )
        if depth >= self.max_depth or rows.size < 2 * self.min_leaf_size:
            return node
        split = self._best_split(x0, errors, rows, predicates)
        if split is None:
            return node
        feature, value, matched_rows, rest_rows = split
        node.feature, node.value = feature, value
        matched_preds = dict(predicates)
        matched_preds[feature] = value
        node.matched = self._grow(x0, errors, matched_rows, matched_preds, depth + 1)
        node.rest = self._grow(x0, errors, rest_rows, predicates, depth + 1)
        return node

    def _best_split(
        self,
        x0: np.ndarray,
        errors: np.ndarray,
        rows: np.ndarray,
        predicates: Mapping[int, int],
    ) -> tuple[int, int, np.ndarray, np.ndarray] | None:
        """Pick the ``feature == value`` split maximizing variance reduction."""
        subset = x0[rows]
        subset_errors = errors[rows]
        base_sse = self._sse(subset_errors)
        best_gain = 0.0
        best: tuple[int, int, np.ndarray, np.ndarray] | None = None
        for feature in range(x0.shape[1]):
            if feature in predicates:
                continue
            for value in np.unique(subset[:, feature]):
                if value == 0:
                    continue
                mask = subset[:, feature] == value
                n_in = int(mask.sum())
                if n_in < self.min_leaf_size or rows.size - n_in < self.min_leaf_size:
                    continue
                gain = base_sse - self._sse(subset_errors[mask]) - self._sse(
                    subset_errors[~mask]
                )
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, int(value), rows[mask], rows[~mask])
        return best

    @staticmethod
    def _sse(values: np.ndarray) -> float:
        """Sum of squared deviations from the mean (impurity for errors)."""
        if values.size == 0:
            return 0.0
        return float(((values - values.mean()) ** 2).sum())
