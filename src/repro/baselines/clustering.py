"""Clustering-based slice finding baseline.

SliceFinder's third strategy clusters the (featurized) data and inspects
clusters with elevated error.  We reproduce that idea: K-Means over the
one-hot encoding, then for each high-error cluster a slice *description* is
distilled as the set of feature values that dominate the cluster (purity
above a threshold).  The output is approximate — descriptions need not
match the cluster exactly — which is the known weakness the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.onehot import FeatureSpace, validate_encoded_matrix
from repro.linalg import ensure_vector, to_dense
from repro.ml.kmeans import KMeans


@dataclass(frozen=True)
class ClusterSlice:
    """A cluster-derived slice description with its cluster statistics."""

    predicates: Mapping[int, int]
    cluster_size: int
    cluster_average_error: float
    description_purity: float


@dataclass
class ClusteringSlicer:
    """K-Means over one-hot features; high-error clusters become slices."""

    num_clusters: int = 8
    purity_threshold: float = 0.8
    k: int = 4
    seed: int = 7
    #: set by :meth:`find`
    cluster_errors_: np.ndarray = field(default=None, repr=False)

    def find(self, x0: np.ndarray, errors: np.ndarray) -> list[ClusterSlice]:
        """Cluster the data and describe the worst clusters as slices."""
        x0 = validate_encoded_matrix(x0, allow_missing=True)
        errors = ensure_vector(errors, x0.shape[0], "errors")
        space = FeatureSpace.from_matrix(x0)
        dense = to_dense(space.encode(x0))

        model = KMeans(
            num_clusters=min(self.num_clusters, x0.shape[0]), seed=self.seed
        )
        labels = model.fit_predict(dense)

        overall = float(errors.mean())
        cluster_avg = np.array(
            [
                errors[labels == c].mean() if (labels == c).any() else 0.0
                for c in range(model.num_clusters)
            ]
        )
        self.cluster_errors_ = cluster_avg

        results: list[ClusterSlice] = []
        for cluster in np.argsort(-cluster_avg):
            if cluster_avg[cluster] <= overall:
                break
            member_rows = x0[labels == cluster]
            if member_rows.shape[0] == 0:
                continue
            predicates, purity = self._describe(member_rows)
            if predicates:
                results.append(
                    ClusterSlice(
                        predicates=predicates,
                        cluster_size=int(member_rows.shape[0]),
                        cluster_average_error=float(cluster_avg[cluster]),
                        description_purity=purity,
                    )
                )
            if len(results) >= self.k:
                break
        return results

    def _describe(
        self, member_rows: np.ndarray
    ) -> tuple[dict[int, int], float]:
        """Dominant value per feature where purity clears the threshold."""
        predicates: dict[int, int] = {}
        purities: list[float] = []
        for feature in range(member_rows.shape[1]):
            values, counts = np.unique(member_rows[:, feature], return_counts=True)
            top = counts.argmax()
            purity = counts[top] / member_rows.shape[0]
            if purity >= self.purity_threshold and values[top] > 0:
                predicates[feature] = int(values[top])
                purities.append(float(purity))
        overall_purity = float(np.mean(purities)) if purities else 0.0
        return predicates, overall_purity
