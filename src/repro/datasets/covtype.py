"""Covtype-like dataset (UCI Forest Cover Type).

Paper characteristics (Table 1): ``n = 581,012``, ``m = 54``, ``l = 188``,
7-class task.  The schema is 10 continuous features (10 equi-width bins
each), 4 binary wilderness-area indicators, and 40 binary soil-type
indicators: ``10*10 + 4*2 + 40*2 = 188``.  Covtype is *known to exhibit
correlations* (the paper cites compression work to that effect): the
terrain features and soil indicators are all driven by elevation.  Those
correlated column groups are what forces the ``ceil(L)`` cap in Figure 4(b)
— conjunctions of many features still yield large slices.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synth import (
    PlantedSlice,
    inject_classification_errors,
    plant_slices,
    sample_categorical,
)

DEFAULT_NUM_ROWS = 581_012
NUM_CONTINUOUS = 10
NUM_WILDERNESS = 4
NUM_SOIL = 40

FEATURE_NAMES = tuple(
    [f"terrain_{i}" for i in range(NUM_CONTINUOUS)]
    + [f"wilderness_{i}" for i in range(NUM_WILDERNESS)]
    + [f"soil_{i}" for i in range(NUM_SOIL)]
)
DOMAINS = tuple([10] * NUM_CONTINUOUS + [2] * (NUM_WILDERNESS + NUM_SOIL))


def generate_features(num_rows: int, rng: np.random.Generator) -> np.ndarray:
    """Sample terrain/wilderness/soil columns all driven by elevation."""
    elevation = sample_categorical(rng, num_rows, 10, skew=0.3)

    columns: list[np.ndarray] = []
    # Continuous terrain features: strongly correlated with elevation.
    for i in range(NUM_CONTINUOUS):
        strength = 0.85 if i < 6 else 0.5
        independent = sample_categorical(rng, num_rows, 10, skew=0.3)
        use_latent = rng.random(num_rows) < strength
        # Derived features shift the elevation code by a per-feature offset.
        derived = (elevation + i) % 10 + 1
        columns.append(np.where(use_latent, derived, independent))

    # Wilderness areas: one-of-four regions loosely tied to elevation.
    region = ((elevation - 1) * NUM_WILDERNESS) // 10
    for i in range(NUM_WILDERNESS):
        base = (region == i).astype(np.int64) + 1
        noise = rng.random(num_rows) < 0.1
        flipped = np.where(noise, 3 - base, base)
        columns.append(flipped)

    # Soil types: each indicator is active mostly within one elevation band.
    for i in range(NUM_SOIL):
        band = i % 10 + 1
        active = (elevation == band) & (rng.random(num_rows) < 0.8)
        stray = rng.random(num_rows) < 0.02
        columns.append(((active | stray).astype(np.int64)) + 1)

    return np.column_stack(columns)


def generate(
    num_rows: int | None = None,
    seed: int = 0,
    scale: float = 0.05,
    base_error_rate: float = 0.25,
    num_planted: int = 4,
) -> tuple[np.ndarray, np.ndarray, list[PlantedSlice]]:
    """Features, 0/1 errors (7-class inaccuracy), planted ground truth.

    The full ``n = 581,012`` is scaled by *scale* by default (29,050 rows)
    to keep benchmark turnaround reasonable; pass ``num_rows`` explicitly
    for other sizes.
    """
    if num_rows is None:
        num_rows = max(1000, int(DEFAULT_NUM_ROWS * scale))
    rng = np.random.default_rng(seed)
    x0 = generate_features(num_rows, rng)
    planted = plant_slices(
        x0, rng, num_slices=num_planted, levels=(1, 3), min_fraction=0.02
    )
    errors = inject_classification_errors(x0, planted, rng, base_rate=base_error_rate)
    return x0, errors, planted
