"""Dataset registry: one named loader per Table 1 dataset.

:func:`load_dataset` is the single entry point used by tests, examples and
benchmarks; it returns a :class:`DatasetBundle` with the encoded features,
error vector, planted ground truth, and bookkeeping for the Table 1
characteristics report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets import adult, census, covtype, criteo, kdd98, salaries
from repro.datasets.synth import PlantedSlice, replicate_dataset
from repro.exceptions import DatasetError


@dataclass
class DatasetBundle:
    """A ready-to-debug dataset: encoded features plus model errors."""

    name: str
    task: str
    x0: np.ndarray
    errors: np.ndarray
    feature_names: tuple[str, ...]
    planted: list[PlantedSlice] = field(default_factory=list)
    notes: str = ""

    @property
    def num_rows(self) -> int:
        return int(self.x0.shape[0])

    @property
    def num_features(self) -> int:
        return int(self.x0.shape[1])

    @property
    def num_onehot_columns(self) -> int:
        """``l`` — width after one-hot encoding (sum of observed domains)."""
        return int(self.x0.max(axis=0).sum())


def _load_adult(scale: float, seed: int) -> DatasetBundle:
    num_rows = max(1000, int(adult.DEFAULT_NUM_ROWS * scale))
    x0, errors, planted = adult.generate(num_rows=num_rows, seed=seed)
    return DatasetBundle(
        "adult", "2-class", x0, errors, adult.FEATURE_NAMES, planted
    )


def _load_covtype(scale: float, seed: int) -> DatasetBundle:
    x0, errors, planted = covtype.generate(scale=scale, seed=seed)
    return DatasetBundle(
        "covtype", "7-class", x0, errors, covtype.FEATURE_NAMES, planted,
        notes="correlated column groups; cap max_level at 3-4",
    )


def _load_kdd98(scale: float, seed: int) -> DatasetBundle:
    x0, errors, planted = kdd98.generate(scale=scale, seed=seed)
    return DatasetBundle(
        "kdd98", "regression", x0, errors, kdd98.FEATURE_NAMES, planted,
        notes="many features; thousands of basic slices",
    )


def _load_uscensus(scale: float, seed: int) -> DatasetBundle:
    x0, errors, planted = census.generate(scale=scale, seed=seed)
    return DatasetBundle(
        "uscensus", "4-class", x0, errors, census.FEATURE_NAMES, planted,
        notes="strong correlations; labels via K-Means in the paper",
    )


def _load_uscensus10x(scale: float, seed: int) -> DatasetBundle:
    base = _load_uscensus(scale, seed)
    x_rep, e_rep = replicate_dataset(base.x0, base.errors, row_factor=10)
    return DatasetBundle(
        "uscensus10x", "4-class", x_rep, e_rep, base.feature_names, base.planted,
        notes="uscensus replicated 10x row-wise (Figure 7a setup)",
    )


def _load_criteod21(scale: float, seed: int) -> DatasetBundle:
    num_rows = max(10_000, int(100_000 * scale * 10))  # scale=0.1 -> 100k rows
    x0, errors, planted = criteo.generate(num_rows=num_rows, seed=seed)
    return DatasetBundle(
        "criteod21", "2-class", x0, errors, criteo.FEATURE_NAMES, planted,
        notes="ultra-sparse; huge categorical domains; Table 2 setup",
    )


def _load_salaries(scale: float, seed: int) -> DatasetBundle:
    num_rows = max(50, int(salaries.DEFAULT_NUM_ROWS * scale))
    x0, errors, planted = salaries.generate(num_rows=num_rows, seed=seed)
    return DatasetBundle(
        "salaries", "regression", x0, errors, salaries.FEATURE_NAMES, planted,
        notes="tiny ablation dataset; use salaries2x2 for Figure 3",
    )


def _load_salaries2x2(scale: float, seed: int) -> DatasetBundle:
    num_rows = max(50, int(salaries.DEFAULT_NUM_ROWS * scale))
    x0, errors = salaries.generate_2x2(num_rows=num_rows, seed=seed)
    names = tuple(
        f"{name}_copy{c}" for c in (1, 2) for name in salaries.FEATURE_NAMES
    )
    return DatasetBundle(
        "salaries2x2", "regression", x0, errors, names,
        notes="rows and columns replicated 2x (Figure 3 ablation input)",
    )


_LOADERS = {
    "adult": (_load_adult, 1.0),
    "covtype": (_load_covtype, 0.05),
    "kdd98": (_load_kdd98, 0.025),
    "uscensus": (_load_uscensus, 0.01),
    "uscensus10x": (_load_uscensus10x, 0.01),
    "criteod21": (_load_criteod21, 0.1),
    "salaries": (_load_salaries, 1.0),
    "salaries2x2": (_load_salaries2x2, 1.0),
}

DATASET_NAMES = tuple(_LOADERS)

#: Table 1 reference characteristics (full-scale n, m, l) for reporting.
PAPER_CHARACTERISTICS = {
    "adult": (32_561, 14, 162),
    "covtype": (581_012, 54, 188),
    "kdd98": (95_412, 469, 8_378),
    "uscensus": (2_458_285, 68, 378),
    "uscensus10x": (24_582_850, 68, 378),
    "criteod21": (192_215_183, 39, 75_573_541),
    "salaries": (397, 5, 27),
}


def load_dataset(
    name: str, scale: float | None = None, seed: int = 0
) -> DatasetBundle:
    """Load a registry dataset by *name*.

    *scale* multiplies the paper's row count (each dataset has a sensible
    laptop-scale default); *seed* controls the generator.  Raises
    :class:`DatasetError` for unknown names.
    """
    if name not in _LOADERS:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(DATASET_NAMES)}"
        )
    loader, default_scale = _LOADERS[name]
    effective = default_scale if scale is None else scale
    if effective <= 0:
        raise DatasetError("scale must be positive")
    return loader(effective, seed)


def dataset_summary(bundle: DatasetBundle) -> dict:
    """One Table 1 row for *bundle* (measured, plus the paper's reference)."""
    paper = PAPER_CHARACTERISTICS.get(bundle.name)
    return {
        "dataset": bundle.name,
        "task": bundle.task,
        "n": bundle.num_rows,
        "m": bundle.num_features,
        "l": bundle.num_onehot_columns,
        "paper_n": paper[0] if paper else None,
        "paper_m": paper[1] if paper else None,
        "paper_l": paper[2] if paper else None,
        "notes": bundle.notes,
    }
