"""KDD98-like dataset (KDD Cup 1998 donation regression).

Paper characteristics (Table 1): ``n = 95,412``, ``m = 469``, ``l = 8,378``,
regression task.  KDD98 is the *many features* stress case: hundreds of
columns, thousands of qualifying basic slices (Figure 4(b) shows ~1e4
level-1 slices), which stresses the pair join ``(S S^T)`` and
deduplication far more than the data scan.

Schema: 300 binned continuous features (10 bins), 100 categoricals of
domain 20, 50 of domain 40, 18 of domain 72, and 1 of domain 82 —
``3000 + 2000 + 2000 + 1296 + 82 = 8,378`` one-hot columns over 469
features.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synth import (
    PlantedSlice,
    inject_regression_errors,
    plant_slices,
    sample_categorical,
)

DEFAULT_NUM_ROWS = 95_412

#: (count, domain, skew) blocks; counts sum to m = 469, count*domain to l = 8378.
#: Real KDD98 columns are heavily skewed (dominant "missing"/zero codes with
#: long tails), which is what keeps the number of frequent values per feature
#: small; the Zipf skews below reproduce that.
SCHEMA_BLOCKS: list[tuple[int, int, float]] = [
    (300, 10, 1.5),
    (100, 20, 1.8),
    (50, 40, 2.0),
    (18, 72, 2.2),
    (1, 82, 2.2),
]

FEATURE_NAMES = tuple(
    f"f{block}_{i}"
    for block, (count, _, _) in enumerate(SCHEMA_BLOCKS)
    for i in range(count)
)
DOMAINS = tuple(
    domain for count, domain, _ in SCHEMA_BLOCKS for _ in range(count)
)


def generate_features(num_rows: int, rng: np.random.Generator) -> np.ndarray:
    """Sample all 469 columns (mildly skewed, mutually independent)."""
    columns = [
        sample_categorical(rng, num_rows, domain, skew)
        for count, domain, skew in SCHEMA_BLOCKS
        for _ in range(count)
    ]
    return np.column_stack(columns)


def generate(
    num_rows: int | None = None,
    seed: int = 0,
    scale: float = 0.1,
    num_planted: int = 3,
) -> tuple[np.ndarray, np.ndarray, list[PlantedSlice]]:
    """Features, squared-loss errors, planted ground truth.

    The full ``n = 95,412`` is scaled by *scale* (default 9,541 rows); the
    column dimension is always kept at the full ``m = 469`` because the
    enumeration characteristics come from the columns, not the rows.
    """
    if num_rows is None:
        num_rows = max(1000, int(DEFAULT_NUM_ROWS * scale))
    rng = np.random.default_rng(seed)
    x0 = generate_features(num_rows, rng)
    # Planted slices must be large enough that their score is positive at
    # alpha=0.95 despite the size penalty (several percent of the rows), yet
    # small enough that they do not inflate the global average error and
    # thereby depress their own relative-error ratio.
    # Boost/coverage arithmetic (see DESIGN.md): with ~9% total planted
    # coverage at 8x the background error, planted slices score ~2 at
    # alpha=0.95 while the global max/average error ratio stays below the
    # ~6.2 score-pruning break-even at sigma = n/100.
    planted = plant_slices(
        x0,
        rng,
        num_slices=num_planted,
        levels=(1, 2),
        min_fraction=0.02,
        max_fraction=0.04,
        error_rates=(0.5, 0.75),
    )
    errors = inject_regression_errors(x0, planted, rng, slice_boost=8.0)
    return x0, errors, planted
