"""Adult-like dataset (UCI Adult / "Census Income").

Paper characteristics (Table 1): ``n = 32,561``, ``m = 14``, ``l = 162``,
2-class task.  The 14 feature domains below reproduce the real Adult schema
after 10-equi-width binning of the six continuous features: their sum is
exactly 162.  Adult mixes large and small slices (heavy value skew on
capital-gain/-loss and native-country) and has mild correlations
(education/education-num, marital-status/relationship) — the combination
that gives the good pruning and early termination of Figure 4(a).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synth import (
    PlantedSlice,
    correlated_group,
    inject_classification_errors,
    plant_slices,
    sample_categorical,
)

#: (name, domain, zipf skew) per feature; domains sum to l = 162.
SCHEMA: list[tuple[str, int, float]] = [
    ("age", 10, 0.4),
    ("workclass", 9, 1.2),
    ("fnlwgt", 10, 0.2),
    ("education", 16, 0.8),
    ("education_num", 10, 0.8),
    ("marital_status", 7, 0.9),
    ("occupation", 15, 0.6),
    ("relationship", 6, 0.9),
    ("race", 5, 1.8),
    ("sex", 2, 0.5),
    ("capital_gain", 10, 2.5),
    ("capital_loss", 10, 2.5),
    ("hours_per_week", 10, 1.0),
    ("native_country", 42, 2.2),
]

DEFAULT_NUM_ROWS = 32_561
FEATURE_NAMES = tuple(name for name, _, _ in SCHEMA)
DOMAINS = tuple(domain for _, domain, _ in SCHEMA)

#: feature-name -> index, for the correlated pairs below
_INDEX = {name: i for i, (name, _, _) in enumerate(SCHEMA)}


def generate_features(num_rows: int, rng: np.random.Generator) -> np.ndarray:
    """Sample the integer-encoded feature matrix with Adult's correlations."""
    columns: dict[int, np.ndarray] = {}
    # education and education_num are two encodings of the same quantity;
    # marital_status and relationship are strongly dependent.
    edu = correlated_group(
        rng,
        num_rows,
        [SCHEMA[_INDEX["education"]][1], SCHEMA[_INDEX["education_num"]][1]],
        strength=0.9,
        skew=0.8,
    )
    columns[_INDEX["education"]] = edu[:, 0]
    columns[_INDEX["education_num"]] = edu[:, 1]
    marital = correlated_group(
        rng,
        num_rows,
        [SCHEMA[_INDEX["marital_status"]][1], SCHEMA[_INDEX["relationship"]][1]],
        strength=0.8,
        skew=0.9,
    )
    columns[_INDEX["marital_status"]] = marital[:, 0]
    columns[_INDEX["relationship"]] = marital[:, 1]
    for index, (_, domain, skew) in enumerate(SCHEMA):
        if index not in columns:
            columns[index] = sample_categorical(rng, num_rows, domain, skew)
    return np.column_stack([columns[i] for i in range(len(SCHEMA))])


def generate(
    num_rows: int = DEFAULT_NUM_ROWS,
    seed: int = 0,
    base_error_rate: float = 0.15,
    num_planted: int = 4,
) -> tuple[np.ndarray, np.ndarray, list[PlantedSlice]]:
    """Features, 0/1 classification errors, and the planted ground truth."""
    rng = np.random.default_rng(seed)
    x0 = generate_features(num_rows, rng)
    planted = plant_slices(
        x0, rng, num_slices=num_planted, levels=(1, 3), min_fraction=0.01
    )
    errors = inject_classification_errors(x0, planted, rng, base_rate=base_error_rate)
    return x0, errors, planted
