"""CriteoD21-like dataset (one day of the Criteo 1TB click logs).

Paper characteristics (Table 1/2): ``n = 192,215,183``, ``m = 39``,
``l = 75,573,541``, 2-class task, density ``4.9e-7`` after one-hot
encoding.  The defining phenomenon (Table 2) is *ultra-sparsity from
high-cardinality categoricals*: of 75.5M one-hot columns only 209 satisfy
the minimum-support constraint, and pruning keeps pair candidates close to
the true number of valid slices on every level.

We reproduce that regime at laptop scale: 13 integer features (10 skewed
bins each) plus 26 categorical features whose domain grows with ``n``
(~30% of the rows are distinct tail values) while a handful of *head*
values per feature carry most of the mass.  Head values pass ``sigma``;
the millions of tail values do not — reproducing the
"tiny-valid-fraction, candidates ~= valid" enumeration shape.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synth import PlantedSlice, inject_classification_errors

DEFAULT_NUM_ROWS = 192_215_183
NUM_INTEGER = 13
NUM_CATEGORICAL = 26
HEAD_VALUES = 8
HEAD_MASS = 0.6

FEATURE_NAMES = tuple(
    [f"int_{i}" for i in range(NUM_INTEGER)]
    + [f"cat_{i}" for i in range(NUM_CATEGORICAL)]
)


def generate_features(
    num_rows: int, rng: np.random.Generator, tail_fraction: float = 0.3
) -> np.ndarray:
    """Sample 39 Criteo-like columns with huge-domain categoricals.

    Each categorical has ``HEAD_VALUES`` frequent codes sharing
    ``HEAD_MASS`` of the probability and a tail of ``tail_fraction * n``
    rare codes sharing the rest; pairs of adjacent categoricals share their
    head latent (correlation, as the paper observes on Criteo).
    """
    columns: list[np.ndarray] = []
    # Integer features: heavily skewed bins so only the top bins pass sigma.
    for i in range(NUM_INTEGER):
        raw = rng.exponential(scale=1.0, size=num_rows)
        bins = np.minimum((raw * 3).astype(np.int64), 9) + 1
        columns.append(bins)

    tail_domain = max(2, int(num_rows * tail_fraction))
    shared_head = None
    for i in range(NUM_CATEGORICAL):
        if i % 2 == 0:
            shared_head = rng.integers(0, HEAD_VALUES, size=num_rows)
        is_head = rng.random(num_rows) < HEAD_MASS
        # Odd-indexed features reuse the previous feature's head latent with
        # high probability -> correlated frequent values.
        if i % 2 == 1:
            own_head = rng.integers(0, HEAD_VALUES, size=num_rows)
            reuse = rng.random(num_rows) < 0.85
            head_codes = np.where(reuse, shared_head, own_head)
        else:
            head_codes = shared_head
        tail_codes = rng.integers(0, tail_domain, size=num_rows) + HEAD_VALUES
        codes = np.where(is_head, head_codes, tail_codes) + 1
        columns.append(codes.astype(np.int64))
    return np.column_stack(columns)


def generate(
    num_rows: int = 100_000,
    seed: int = 0,
    base_error_rate: float = 0.2,
) -> tuple[np.ndarray, np.ndarray, list[PlantedSlice]]:
    """Features, 0/1 click-prediction errors, planted ground truth.

    Planted slices are conjunctions of *head* values only (tail values have
    no support), mirroring where real problematic slices can live.
    """
    rng = np.random.default_rng(seed)
    x0 = generate_features(num_rows, rng)
    planted = _plant_head_slices(x0, rng)
    errors = inject_classification_errors(x0, planted, rng, base_rate=base_error_rate)
    return x0, errors, planted


def _plant_head_slices(
    x0: np.ndarray, rng: np.random.Generator, num_slices: int = 3
) -> list[PlantedSlice]:
    """Plant slices over frequent (head) categorical values and top bins."""
    planted: list[PlantedSlice] = []
    for _ in range(num_slices):
        cat_feature = int(rng.integers(NUM_INTEGER, NUM_INTEGER + NUM_CATEGORICAL))
        head_value = int(rng.integers(1, HEAD_VALUES + 1))
        int_feature = int(rng.integers(0, NUM_INTEGER))
        int_value = int(rng.integers(1, 3))
        planted.append(
            PlantedSlice(
                predicates={cat_feature: head_value, int_feature: int_value},
                error_rate=float(rng.uniform(0.6, 0.9)),
            )
        )
    return planted
