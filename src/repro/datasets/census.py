"""USCensus-like dataset (UCI US Census 1990).

Paper characteristics (Table 1): ``n = 2,458,285``, ``m = 68``, ``l = 378``,
4-class task with labels derived by K-Means (the raw data is unlabeled).
USCensus is the *many rows + strong correlations* case: several correlated
column groups where conjunctions of many features still yield large slices,
so exact enumeration must be capped at ``ceil(L) = 3`` (Figure 4(b)), and
the row count drives the scalability study (Figure 7(a) replicates it up to
10x).

Schema: 40 features of domain 4, 20 of domain 8, 7 of domain 7, 1 of
domain 9 — ``160 + 160 + 49 + 9 = 378`` one-hot columns over 68 features,
organized into four strongly correlated groups plus independents.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synth import (
    PlantedSlice,
    correlated_group,
    inject_classification_errors,
    plant_slices,
    sample_categorical,
)
from repro.ml.kmeans import KMeans

DEFAULT_NUM_ROWS = 2_458_285

#: (count, domain) blocks; counts sum to m = 68, count*domain to l = 378.
SCHEMA_BLOCKS: list[tuple[int, int]] = [(40, 4), (20, 8), (7, 7), (1, 9)]

FEATURE_NAMES = tuple(
    f"c{block}_{i}"
    for block, (count, _) in enumerate(SCHEMA_BLOCKS)
    for i in range(count)
)
DOMAINS = tuple(domain for count, domain in SCHEMA_BLOCKS for _ in range(count))

#: number of leading domain-4 features organized into correlated groups
_NUM_CORRELATED_GROUPS = 4
_GROUP_WIDTH = 8


def generate_features(num_rows: int, rng: np.random.Generator) -> np.ndarray:
    """Sample 68 columns with four strongly correlated groups."""
    columns: list[np.ndarray] = []
    # Four groups of eight domain-4 features, each driven by one latent.
    for _ in range(_NUM_CORRELATED_GROUPS):
        group = correlated_group(
            rng, num_rows, [4] * _GROUP_WIDTH, strength=0.92, skew=0.4
        )
        columns.extend(group.T)
    # Remaining domain-4 features are independent.
    remaining_small = SCHEMA_BLOCKS[0][0] - _NUM_CORRELATED_GROUPS * _GROUP_WIDTH
    for _ in range(remaining_small):
        columns.append(sample_categorical(rng, num_rows, 4, skew=0.5))
    for count, domain in SCHEMA_BLOCKS[1:]:
        for _ in range(count):
            columns.append(sample_categorical(rng, num_rows, domain, skew=0.7))
    return np.column_stack(columns)


def derive_kmeans_labels(
    x0: np.ndarray, num_classes: int = 4, seed: int = 0
) -> np.ndarray:
    """Artificial labels via K-Means over the one-hot encoding (paper's recipe).

    Clustering runs on a row sample for tractability, then every row is
    assigned to its nearest centroid.
    """
    from repro.core.onehot import FeatureSpace
    from repro.linalg import to_dense

    rng = np.random.default_rng(seed)
    space = FeatureSpace.from_matrix(x0)
    sample_size = min(x0.shape[0], 20_000)
    sample_rows = rng.choice(x0.shape[0], size=sample_size, replace=False)
    dense_sample = to_dense(space.encode(x0[sample_rows]))
    model = KMeans(num_clusters=num_classes, seed=seed).fit(dense_sample)
    dense_all = to_dense(space.encode(x0))
    return model.predict(dense_all)


def generate(
    num_rows: int | None = None,
    seed: int = 0,
    scale: float = 0.01,
    base_error_rate: float = 0.3,
    num_planted: int = 4,
) -> tuple[np.ndarray, np.ndarray, list[PlantedSlice]]:
    """Features, 0/1 errors (4-class inaccuracy), planted ground truth.

    The full ``n = 2,458,285`` is scaled by *scale* (default 24,582 rows);
    Figure 7(a) row-scaling replicates the result of this generator instead
    of regenerating, matching the paper's replication setup.
    """
    if num_rows is None:
        num_rows = max(1000, int(DEFAULT_NUM_ROWS * scale))
    rng = np.random.default_rng(seed)
    x0 = generate_features(num_rows, rng)
    planted = plant_slices(
        x0, rng, num_slices=num_planted, levels=(1, 3), min_fraction=0.02
    )
    errors = inject_classification_errors(x0, planted, rng, base_rate=base_error_rate)
    return x0, errors, planted
