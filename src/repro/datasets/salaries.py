"""Salaries dataset (the R ``carData::Salaries`` professor-salary table).

Paper characteristics (Table 1): ``n = 397``, ``m = 5``, ``l = 27``,
regression task — the tiny ablation dataset of Figure 3, used there in a
"2x2" replication (rows and columns doubled, giving ``m = 10`` and extra
correlation) to stress pruning and deduplication.

This module *synthesizes* the table from its published schema — rank
(AsstProf/AssocProf/Prof), discipline (A/B), years-since-PhD, years of
service, sex, and a salary driven by rank/discipline/experience — and runs
it through the real preprocessing pipeline (recode + 10 equi-width bins),
yielding exactly ``l = 27`` one-hot columns (3 + 2 + 10 + 10 + 2).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synth import PlantedSlice, replicate_dataset
from repro.ml.errors import squared_loss
from repro.ml.linreg import LinearRegression
from repro.preprocessing import ColumnSpec, Preprocessor

DEFAULT_NUM_ROWS = 397
RANKS = ("AsstProf", "AssocProf", "Prof")
DISCIPLINES = ("A", "B")
SEXES = ("Female", "Male")

FEATURE_NAMES = ("rank", "discipline", "yrs_since_phd", "yrs_service", "sex")


def generate_table(
    num_rows: int = DEFAULT_NUM_ROWS, seed: int = 0
) -> tuple[dict[str, np.ndarray], np.ndarray]:
    """Raw column table plus the salary target vector."""
    rng = np.random.default_rng(seed)
    rank_idx = rng.choice(3, size=num_rows, p=[0.17, 0.16, 0.67])
    discipline_idx = rng.choice(2, size=num_rows, p=[0.45, 0.55])
    sex_idx = rng.choice(2, size=num_rows, p=[0.1, 0.9])
    yrs_phd = np.clip(rng.gamma(shape=4.0, scale=5.5, size=num_rows), 1, 56)
    yrs_service = np.clip(yrs_phd - rng.gamma(2.0, 2.0, size=num_rows), 0, 60)

    base = np.array([80_000.0, 93_000.0, 126_000.0])[rank_idx]
    discipline_bonus = np.array([0.0, 9_000.0])[discipline_idx]
    experience = 500.0 * yrs_phd - 120.0 * yrs_service
    noise = rng.normal(0.0, 18_000.0, size=num_rows)
    # A planted interaction the linear model cannot represent: senior
    # professors in discipline A with long service are systematically
    # underpaid relative to the additive trend.
    problem = (rank_idx == 2) & (discipline_idx == 0) & (yrs_service > 20)
    salary = base + discipline_bonus + experience + noise - 35_000.0 * problem

    table = {
        "rank": np.array(RANKS)[rank_idx],
        "discipline": np.array(DISCIPLINES)[discipline_idx],
        "yrs_since_phd": yrs_phd,
        "yrs_service": yrs_service,
        "sex": np.array(SEXES)[sex_idx],
    }
    return table, salary


def column_specs() -> list[ColumnSpec]:
    """Paper preprocessing: recode categoricals, 10 equi-width bins."""
    return [
        ColumnSpec("rank", "categorical"),
        ColumnSpec("discipline", "categorical"),
        ColumnSpec("yrs_since_phd", "numeric", num_bins=10),
        ColumnSpec("yrs_service", "numeric", num_bins=10),
        ColumnSpec("sex", "categorical"),
    ]


def generate(
    num_rows: int = DEFAULT_NUM_ROWS, seed: int = 0
) -> tuple[np.ndarray, np.ndarray, list[PlantedSlice]]:
    """Encoded features and squared-loss errors of a genuinely trained lm.

    This dataset always takes the honest model path (train linear
    regression on the one-hot features, errors are its squared residuals)
    because it is tiny; the planted ground truth is the underpaid
    senior-Prof/discipline-A interaction described in :func:`generate_table`.
    """
    table, salary = generate_table(num_rows, seed)
    encoded = Preprocessor(column_specs()).fit_transform(table)
    from repro.linalg import to_dense

    dense = to_dense(encoded.feature_space.encode(encoded.x0))
    model = LinearRegression(l2=1e-6).fit(dense, salary)
    errors = squared_loss(salary, model.predict(dense))
    rank_code = 1 + sorted(RANKS).index("Prof")
    discipline_code = 1 + sorted(DISCIPLINES).index("A")
    planted = [
        PlantedSlice(
            predicates={0: rank_code, 1: discipline_code}, error_rate=1.0
        )
    ]
    return encoded.x0, errors, planted


def generate_2x2(
    num_rows: int = DEFAULT_NUM_ROWS, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """The Figure 3 ablation input: rows and columns replicated 2x each.

    Column replication doubles ``m`` to 10 with perfectly correlated copies
    (extra redundancy for deduplication); row replication doubles ``n`` to
    794.
    """
    x0, errors, _ = generate(num_rows, seed)
    return replicate_dataset(x0, errors, row_factor=2, col_factor=2)
