"""Schema-driven synthetic datasets reproducing Table 1's characteristics.

No network access is available (and Criteo-scale data would not fit a
laptop anyway), so each dataset of the paper's evaluation is reproduced as
a *generator* matching the published characteristics: row count ``n``
(scalable), feature count ``m``, one-hot width ``l``, task type, value
skew, correlated column groups, and planted problematic slices that give
SliceLine something real to find.

Use :func:`load_dataset` with a registry name (``adult``, ``covtype``,
``kdd98``, ``uscensus``, ``uscensus10x``, ``criteod21``, ``salaries``).
"""

from repro.datasets.registry import (
    DATASET_NAMES,
    DatasetBundle,
    dataset_summary,
    load_dataset,
)
from repro.datasets.replay import replay_batches, replay_dataset
from repro.datasets.synth import (
    LabeledData,
    PlantedSlice,
    correlated_group,
    inject_classification_errors,
    inject_regression_errors,
    make_classification_labels,
    make_regression_targets,
    plant_slices,
    replicate_dataset,
    sample_categorical,
)

__all__ = [
    "DATASET_NAMES",
    "DatasetBundle",
    "dataset_summary",
    "load_dataset",
    "replay_batches",
    "replay_dataset",
    "LabeledData",
    "PlantedSlice",
    "correlated_group",
    "inject_classification_errors",
    "inject_regression_errors",
    "make_classification_labels",
    "make_regression_targets",
    "plant_slices",
    "replicate_dataset",
    "sample_categorical",
]
