"""Synthetic data machinery: feature sampling, correlation, error injection.

The pruning behaviour SliceLine's evaluation studies depends on three data
characteristics: the distribution of slice sizes (value skew), correlated
column groups (Covtype/USCensus), and where model errors concentrate
(planted problematic slices).  The helpers here control exactly those
properties, so the schema-driven dataset generators in this package can
reproduce the *shape* of each Table 1 dataset without the original files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import DatasetError


def sample_categorical(
    rng: np.random.Generator, num_rows: int, domain: int, skew: float = 1.0
) -> np.ndarray:
    """Sample 1-based codes from a Zipf-like distribution over ``1..domain``.

    ``skew = 0`` is uniform; larger values concentrate mass on low codes
    (one dominant category, a long tail), which is what produces the mix of
    large and small basic slices the paper observes on Adult.
    """
    if domain < 1:
        raise DatasetError("domain must be >= 1")
    if domain == 1:
        return np.ones(num_rows, dtype=np.int64)
    ranks = np.arange(1, domain + 1, dtype=np.float64)
    weights = ranks ** (-skew) if skew > 0 else np.ones(domain)
    probs = weights / weights.sum()
    return rng.choice(domain, size=num_rows, p=probs).astype(np.int64) + 1


def correlated_group(
    rng: np.random.Generator,
    num_rows: int,
    domains: Sequence[int],
    strength: float = 0.9,
    skew: float = 0.5,
) -> np.ndarray:
    """Generate a group of columns driven by one shared latent variable.

    With probability *strength* a column repeats (a scaled version of) the
    latent code; otherwise it samples independently.  High strength makes
    conjunctions across the group nearly as large as single predicates —
    the correlation structure that defeats early termination on Covtype and
    USCensus (Figure 4(b)).
    """
    if not (0.0 <= strength <= 1.0):
        raise DatasetError("strength must be within [0, 1]")
    latent_domain = max(domains)
    latent = sample_categorical(rng, num_rows, latent_domain, skew)
    columns = []
    for domain in domains:
        derived = ((latent - 1) * domain) // latent_domain + 1
        independent = sample_categorical(rng, num_rows, domain, skew)
        use_latent = rng.random(num_rows) < strength
        columns.append(np.where(use_latent, derived, independent))
    return np.column_stack(columns).astype(np.int64)


@dataclass(frozen=True)
class PlantedSlice:
    """A ground-truth problematic slice injected into a synthetic dataset."""

    predicates: Mapping[int, int]
    error_rate: float

    def mask(self, x0: np.ndarray) -> np.ndarray:
        mask = np.ones(x0.shape[0], dtype=bool)
        for feature, value in self.predicates.items():
            mask &= x0[:, feature] == value
        return mask


def plant_slices(
    x0: np.ndarray,
    rng: np.random.Generator,
    num_slices: int = 3,
    levels: tuple[int, int] = (1, 3),
    min_fraction: float = 0.01,
    max_fraction: float = 0.2,
    error_rates: tuple[float, float] = (0.6, 0.95),
    max_attempts: int = 500,
) -> list[PlantedSlice]:
    """Pick random conjunctions with real support to act as problem slices.

    Each planted slice is sampled by picking a random data row and keeping a
    random subset of its feature values, so the slice is guaranteed
    non-empty; candidates outside ``[min_fraction, max_fraction]`` of the
    rows are rejected (a "problematic slice" that covers half the dataset
    would dominate the average error rather than hide below it).
    """
    num_rows, num_features = x0.shape
    planted: list[PlantedSlice] = []
    seen: set[frozenset] = set()
    attempts = 0
    while len(planted) < num_slices and attempts < max_attempts:
        attempts += 1
        level = int(rng.integers(levels[0], levels[1] + 1))
        level = min(level, num_features)
        anchor = x0[rng.integers(num_rows)]
        features = rng.choice(num_features, size=level, replace=False)
        predicates = {int(f): int(anchor[f]) for f in features}
        key = frozenset(predicates.items())
        if key in seen:
            continue
        candidate = PlantedSlice(
            predicates=predicates,
            error_rate=float(rng.uniform(*error_rates)),
        )
        fraction = candidate.mask(x0).mean()
        if min_fraction <= fraction <= max_fraction:
            seen.add(key)
            planted.append(candidate)
    if not planted:
        raise DatasetError(
            "could not plant any slice with the requested support; "
            "lower min_fraction or the level range"
        )
    return planted


def inject_classification_errors(
    x0: np.ndarray,
    planted: Sequence[PlantedSlice],
    rng: np.random.Generator,
    base_rate: float = 0.08,
) -> np.ndarray:
    """0/1 error vector: *base_rate* everywhere, elevated inside planted slices.

    This is the fast, deterministic-ground-truth alternative to actually
    training a model; the error distribution matches what a trained
    classifier produces on data with planted label noise.
    """
    num_rows = x0.shape[0]
    errors = (rng.random(num_rows) < base_rate).astype(np.float64)
    for sl in planted:
        mask = sl.mask(x0)
        errors[mask] = (rng.random(int(mask.sum())) < sl.error_rate).astype(np.float64)
    return errors


def inject_regression_errors(
    x0: np.ndarray,
    planted: Sequence[PlantedSlice],
    rng: np.random.Generator,
    base_scale: float = 1.0,
    slice_boost: float = 3.5,
    background_spread: float = 0.3,
    jitter: float = 0.2,
) -> np.ndarray:
    """Squared-loss-like error vector with uniformly elevated planted slices.

    The background models a *well-fit* regressor: per-tuple errors uniform
    in ``base_scale * [1 - spread, 1 + spread]`` (homoscedastic, bounded —
    as squared residuals of bounded targets like KDD98 donation amounts
    are).  Planted slices receive errors ``slice_boost * error_rate`` times
    the background average with ``+/- jitter`` relative noise.

    Both choices are deliberate and load-bearing for pruning behaviour: a
    heavy error tail anywhere inflates the ``sm`` (maximum tuple error)
    upper bound of *every* slice overlapping it, which makes the Equation-3
    score bound vacuous and defeats score pruning globally — neither how
    systematic model failures look nor how the paper's datasets behave.
    """
    num_rows = x0.shape[0]
    errors = base_scale * rng.uniform(
        1.0 - background_spread, 1.0 + background_spread, size=num_rows
    )
    background_avg = float(errors.mean())
    for sl in planted:
        mask = sl.mask(x0)
        count = int(mask.sum())
        level = background_avg * max(1.5, slice_boost * sl.error_rate)
        errors[mask] = level * rng.uniform(1.0 - jitter, 1.0 + jitter, size=count)
    return errors


@dataclass
class LabeledData:
    """Features plus labels generated from a ground-truth mechanism."""

    x0: np.ndarray
    labels: np.ndarray
    planted: list[PlantedSlice] = field(default_factory=list)


def make_classification_labels(
    x0: np.ndarray,
    planted: Sequence[PlantedSlice],
    rng: np.random.Generator,
    num_classes: int = 2,
    label_noise: float = 0.02,
) -> LabeledData:
    """Generate labels a linear model can mostly learn — except in slices.

    Labels follow a random linear score of the one-hot features (so a
    trained classifier achieves good accuracy), then labels inside each
    planted slice are re-randomized with probability ``error_rate``.  A
    model trained on this data genuinely underperforms on the planted
    slices, giving the honest end-to-end debugging workflow.
    """
    from repro.core.onehot import FeatureSpace
    from repro.linalg import to_dense

    space = FeatureSpace.from_matrix(x0)
    dense = to_dense(space.encode(x0))
    weights = rng.normal(0.0, 1.0, size=(dense.shape[1], num_classes))
    scores = dense @ weights
    labels = scores.argmax(axis=1)

    flip = rng.random(x0.shape[0]) < label_noise
    labels[flip] = rng.integers(0, num_classes, size=int(flip.sum()))
    for sl in planted:
        mask = sl.mask(x0)
        corrupt = mask & (rng.random(x0.shape[0]) < sl.error_rate)
        labels[corrupt] = rng.integers(0, num_classes, size=int(corrupt.sum()))
    return LabeledData(x0=x0, labels=labels.astype(np.int64), planted=list(planted))


def make_regression_targets(
    x0: np.ndarray,
    planted: Sequence[PlantedSlice],
    rng: np.random.Generator,
    noise_scale: float = 0.5,
) -> LabeledData:
    """Linear targets with extra noise inside planted slices (regression)."""
    from repro.core.onehot import FeatureSpace
    from repro.linalg import to_dense

    space = FeatureSpace.from_matrix(x0)
    dense = to_dense(space.encode(x0))
    weights = rng.normal(0.0, 1.0, size=dense.shape[1])
    targets = dense @ weights + rng.normal(0.0, noise_scale, size=x0.shape[0])
    for sl in planted:
        mask = sl.mask(x0)
        targets[mask] += rng.normal(
            0.0, noise_scale * 8.0 * sl.error_rate, size=int(mask.sum())
        )
    return LabeledData(x0=x0, labels=targets, planted=list(planted))


def replicate_dataset(
    x0: np.ndarray,
    errors: np.ndarray,
    row_factor: int = 1,
    col_factor: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Replicate rows and/or columns (the paper's "Salaries 2x2" and
    "USCensus 10x" constructions).

    Row replication tiles the data (errors tile along); column replication
    appends copies of all feature columns, which creates perfectly
    correlated features — the stress case for deduplication and pruning.
    """
    if row_factor < 1 or col_factor < 1:
        raise DatasetError("replication factors must be >= 1")
    x_rep = np.tile(x0, (row_factor, col_factor))
    e_rep = np.tile(np.asarray(errors, dtype=np.float64), row_factor)
    return x_rep.astype(np.int64), e_rep
