"""Stream-replay adapter: chop any dataset into timestamped mini-batches.

Turns a static ``(x0, errors)`` pair — typically a registry dataset — into
the :class:`~repro.streaming.PredictionBatch` stream a
:class:`~repro.streaming.SliceMonitor` consumes, with synthetic event times
at a fixed inter-batch interval.  Row order is preserved by default so a
replayed stream concatenates back to the original dataset exactly; pass
``shuffle=True`` (seeded) to simulate traffic that is not time-correlated
with the original row order.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.datasets.registry import load_dataset
from repro.exceptions import DatasetError
from repro.streaming.batches import PredictionBatch


def replay_batches(
    x0: np.ndarray,
    errors: np.ndarray,
    batch_size: int,
    start_time: float = 0.0,
    interval_seconds: float = 1.0,
    shuffle: bool = False,
    seed: int = 0,
) -> Iterator[PredictionBatch]:
    """Yield consecutive :class:`PredictionBatch` chunks of ``(x0, errors)``.

    Every batch has ``batch_size`` rows except possibly the last (the
    remainder is never dropped); ``batch_id`` counts from 0 and timestamps
    advance by *interval_seconds* per batch.
    """
    if batch_size < 1:
        raise DatasetError("batch_size must be >= 1")
    x0 = np.asarray(x0)
    errors = np.asarray(errors, dtype=np.float64).ravel()
    if x0.ndim != 2 or x0.shape[0] != errors.shape[0]:
        raise DatasetError("x0 must be 2-D and row-aligned with errors")
    order = np.arange(x0.shape[0])
    if shuffle:
        np.random.default_rng(seed).shuffle(order)
    for batch_id, start in enumerate(range(0, x0.shape[0], batch_size)):
        rows = order[start : start + batch_size]
        yield PredictionBatch(
            x0=x0[rows],
            errors=errors[rows],
            timestamp=start_time + batch_id * interval_seconds,
            batch_id=batch_id,
        )


def replay_dataset(
    name: str,
    batch_size: int,
    scale: float | None = None,
    seed: int = 0,
    start_time: float = 0.0,
    interval_seconds: float = 1.0,
    shuffle: bool = False,
) -> Iterator[PredictionBatch]:
    """Replay a registry dataset (see :func:`load_dataset`) as a stream."""
    bundle = load_dataset(name, scale=scale, seed=seed)
    return replay_batches(
        bundle.x0,
        bundle.errors,
        batch_size,
        start_time=start_time,
        interval_seconds=interval_seconds,
        shuffle=shuffle,
        seed=seed,
    )


__all__ = ["replay_batches", "replay_dataset"]
