"""The end-to-end preprocessing pipeline: raw table -> encoded ``X0``.

Mirrors the paper's preparation recipe: recode categorical features, bin
continuous features into 10 equi-width bins, drop ID columns.  A raw table
is simply a ``dict`` mapping column names to 1-D arrays (no pandas
dependency); the result bundles the integer matrix, the fitted
:class:`~repro.core.onehot.FeatureSpace`, and per-feature value labels for
decoding slices back into human-readable predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.onehot import FeatureSpace
from repro.exceptions import ValidationError
from repro.preprocessing.binning import EquiWidthBinner, QuantileBinner, coerce_numeric
from repro.preprocessing.recode import Recoder

#: Paper default: continuous features are binned into 10 equi-width bins.
DEFAULT_NUM_BINS = 10


@dataclass(frozen=True)
class ColumnSpec:
    """Declares how one raw column is treated by the pipeline.

    ``kind`` is one of ``categorical`` (dictionary recode), ``numeric``
    (equi-width binning), ``numeric_quantile`` (equi-height binning),
    ``integer`` (already 1-based codes; validated and passed through), or
    ``drop`` (ID columns and other exclusions).
    """

    name: str
    kind: str = "categorical"
    num_bins: int = DEFAULT_NUM_BINS

    _KINDS = ("categorical", "numeric", "numeric_quantile", "integer", "drop")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValidationError(
                f"unknown column kind {self.kind!r}; expected one of {self._KINDS}"
            )
        if self.num_bins < 1:
            raise ValidationError("num_bins must be >= 1")


@dataclass
class EncodedDataset:
    """Output of the pipeline: ``X0`` plus all decoding metadata."""

    x0: np.ndarray
    feature_names: tuple[str, ...]
    value_labels: tuple[tuple[str, ...], ...]
    feature_space: FeatureSpace

    @property
    def num_rows(self) -> int:
        return int(self.x0.shape[0])

    @property
    def num_features(self) -> int:
        return int(self.x0.shape[1])

    @property
    def num_onehot_columns(self) -> int:
        return self.feature_space.num_onehot


class Preprocessor:
    """Fit/transform pipeline from a raw column table to ``X0``.

    Example
    -------
    >>> table = {"age": np.array([23.0, 54.0]), "job": np.array(["a", "b"])}
    >>> specs = [ColumnSpec("age", "numeric"), ColumnSpec("job", "categorical")]
    >>> encoded = Preprocessor(specs).fit_transform(table)
    >>> encoded.x0.shape
    (2, 2)
    """

    def __init__(self, specs: Sequence[ColumnSpec]) -> None:
        if not specs:
            raise ValidationError("at least one column spec is required")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValidationError("duplicate column names in specs")
        self.specs = list(specs)
        self._encoders: dict[str, object] = {}
        self._fitted = False

    @property
    def active_specs(self) -> list[ColumnSpec]:
        """Specs that survive into the encoded matrix (non-``drop``)."""
        return [s for s in self.specs if s.kind != "drop"]

    def fit(self, table: Mapping[str, np.ndarray]) -> "Preprocessor":
        self._validate_table(table)
        self._encoders = {}
        for spec in self.active_specs:
            column = np.asarray(table[spec.name])
            if spec.kind == "categorical":
                self._encoders[spec.name] = Recoder().fit(column)
            elif spec.kind == "numeric":
                self._encoders[spec.name] = EquiWidthBinner(
                    spec.num_bins, allow_missing=True
                ).fit(coerce_numeric(column))
            elif spec.kind == "numeric_quantile":
                self._encoders[spec.name] = QuantileBinner(
                    spec.num_bins, allow_missing=True
                ).fit(coerce_numeric(column))
            elif spec.kind == "integer":
                self._validate_integer_column(column, spec.name)
                self._encoders[spec.name] = None
        self._fitted = True
        return self

    def transform(self, table: Mapping[str, np.ndarray]) -> EncodedDataset:
        if not self._fitted:
            raise RuntimeError("preprocessor is not fitted yet")
        self._validate_table(table)
        columns: list[np.ndarray] = []
        labels: list[tuple[str, ...]] = []
        for spec in self.active_specs:
            raw = np.asarray(table[spec.name])
            encoder = self._encoders[spec.name]
            if spec.kind == "categorical":
                codes = encoder.transform(raw)
                labels.append(tuple(encoder.value_labels()))
            elif spec.kind in ("numeric", "numeric_quantile"):
                codes = encoder.transform(coerce_numeric(raw))
                if spec.kind == "numeric":
                    labels.append(tuple(encoder.bin_labels()))
                else:
                    labels.append(
                        tuple(
                            f"q{i + 1}" for i in range(encoder.num_effective_bins)
                        )
                    )
            else:  # integer pass-through
                self._validate_integer_column(raw, spec.name)
                codes = raw.astype(np.int64)
                labels.append(tuple(str(v) for v in range(1, int(codes.max()) + 1)))
            columns.append(codes)
        x0 = np.column_stack(columns)
        names = tuple(s.name for s in self.active_specs)
        space = FeatureSpace.from_matrix(x0, feature_names=names)
        return EncodedDataset(
            x0=x0,
            feature_names=names,
            value_labels=tuple(labels),
            feature_space=space,
        )

    def fit_transform(self, table: Mapping[str, np.ndarray]) -> EncodedDataset:
        return self.fit(table).transform(table)

    def _validate_table(self, table: Mapping[str, np.ndarray]) -> None:
        lengths = set()
        for spec in self.active_specs:
            if spec.name not in table:
                raise ValidationError(f"table is missing column {spec.name!r}")
            lengths.add(np.asarray(table[spec.name]).shape[0])
        if len(lengths) > 1:
            raise ValidationError(f"columns have differing lengths: {lengths}")
        if lengths == {0}:
            raise ValidationError("table has zero rows")

    @staticmethod
    def _validate_integer_column(column: np.ndarray, name: str) -> None:
        arr = np.asarray(column)
        if not np.issubdtype(arr.dtype, np.integer):
            raise ValidationError(f"integer column {name!r} must hold integers")
        if arr.min() < 1:
            raise ValidationError(f"integer column {name!r} must be 1-based")
