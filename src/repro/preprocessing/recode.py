"""Recoding of categorical values into 1-based contiguous integer codes."""

from __future__ import annotations

import numpy as np

from repro.exceptions import EncodingError, ValidationError


class Recoder:
    """Dictionary-encode arbitrary hashable category values to ``1..d``.

    Codes are assigned in sorted order of the distinct values for
    determinism.  Unseen categories at transform time either raise (default)
    or map to a dedicated ``unknown`` code ``d+1``.
    """

    def __init__(self, handle_unknown: str = "error") -> None:
        if handle_unknown not in ("error", "code"):
            raise ValidationError("handle_unknown must be 'error' or 'code'")
        self.handle_unknown = handle_unknown
        self.mapping_: dict | None = None
        self.categories_: list | None = None

    def fit(self, values) -> "Recoder":
        arr = np.asarray(values).ravel()
        if arr.size == 0:
            raise ValidationError("cannot fit a recoder on an empty column")
        categories = sorted(set(arr.tolist()), key=lambda v: (str(type(v)), v))
        self.categories_ = categories
        self.mapping_ = {value: code for code, value in enumerate(categories, start=1)}
        return self

    def transform(self, values) -> np.ndarray:
        if self.mapping_ is None:
            raise RuntimeError("recoder is not fitted yet")
        arr = np.asarray(values).ravel()
        unknown_code = len(self.mapping_) + 1
        codes = np.empty(arr.shape[0], dtype=np.int64)
        for i, value in enumerate(arr.tolist()):
            code = self.mapping_.get(value)
            if code is None:
                if self.handle_unknown == "error":
                    raise EncodingError(f"unseen category {value!r}")
                code = unknown_code
            codes[i] = code
        return codes

    def fit_transform(self, values) -> np.ndarray:
        return self.fit(values).transform(values)

    def inverse(self, codes: np.ndarray) -> list:
        """Map integer codes back to the original category values."""
        if self.categories_ is None:
            raise RuntimeError("recoder is not fitted yet")
        out = []
        for code in np.asarray(codes).ravel().tolist():
            if 1 <= code <= len(self.categories_):
                out.append(self.categories_[code - 1])
            elif code == len(self.categories_) + 1 and self.handle_unknown == "code":
                out.append("<unknown>")
            else:
                raise EncodingError(f"code {code} outside the fitted domain")
        return out

    @property
    def domain_size(self) -> int:
        if self.mapping_ is None:
            raise RuntimeError("recoder is not fitted yet")
        return len(self.mapping_) + (1 if self.handle_unknown == "code" else 0)

    def value_labels(self) -> list[str]:
        """String labels aligned with codes ``1..domain_size``."""
        if self.categories_ is None:
            raise RuntimeError("recoder is not fitted yet")
        labels = [str(c) for c in self.categories_]
        if self.handle_unknown == "code":
            labels.append("<unknown>")
        return labels
