"""Binning of continuous features into 1-based integer codes.

The paper uses 10 equi-width bins per continuous feature; a quantile
(equi-height) binner is provided as the common alternative for heavily
skewed features.  Both binners reject NaN by default; with
``allow_missing=True`` they fit on the finite values only and transform
NaN to code ``0``, the encoding's missing-value marker (a row with a
missing cell then simply belongs to no slice of that feature).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def coerce_numeric(values: np.ndarray) -> np.ndarray:
    """Parse a raw column into ``float64``, mapping empty cells to NaN.

    Numeric dtypes pass through unchanged.  String columns treat ``""``
    (or all-whitespace) cells as missing; any other cell that does not
    parse as a float raises :class:`ValidationError` naming the value, so
    a genuinely categorical column is never silently mangled.
    """
    arr = np.asarray(values).ravel()
    if np.issubdtype(arr.dtype, np.number):
        return arr.astype(np.float64)
    out = np.empty(arr.shape[0], dtype=np.float64)
    for i, cell in enumerate(arr.tolist()):
        text = str(cell).strip()
        if not text:
            out[i] = np.nan
            continue
        try:
            out[i] = float(text)
        except ValueError:
            raise ValidationError(
                f"cell {cell!r} is not numeric (empty cells count as missing)"
            ) from None
    return out


def _split_missing(values: np.ndarray, allow_missing: bool) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(float64 array, missing mask)``; reject NaN when strict."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    missing = np.isnan(arr)
    if missing.any() and not allow_missing:
        raise ValidationError("binner input must not contain NaN")
    return arr, missing


class EquiWidthBinner:
    """Equal-width bins over the observed value range.

    Produces codes ``1..num_bins``.  Degenerate (constant) features map to a
    single bin.  Values outside the fitted range are clipped into the
    boundary bins, so transform never fails on unseen data.  With
    ``allow_missing=True`` the range is fitted on finite values and NaN
    transforms to the missing code ``0``.
    """

    def __init__(self, num_bins: int = 10, allow_missing: bool = False) -> None:
        if num_bins < 1:
            raise ValidationError("num_bins must be >= 1")
        self.num_bins = num_bins
        self.allow_missing = allow_missing
        self.minimum_: float | None = None
        self.maximum_: float | None = None

    def fit(self, values: np.ndarray) -> "EquiWidthBinner":
        arr, missing = _split_missing(values, self.allow_missing)
        if arr.size == 0:
            raise ValidationError("cannot fit a binner on an empty column")
        finite = arr[~missing]
        if finite.size == 0:
            raise ValidationError("cannot fit a binner on an all-missing column")
        self.minimum_ = float(finite.min())
        self.maximum_ = float(finite.max())
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        if self.minimum_ is None:
            raise RuntimeError("binner is not fitted yet")
        arr, missing = _split_missing(values, self.allow_missing)
        span = self.maximum_ - self.minimum_
        if span == 0.0:
            codes = np.ones(arr.shape[0], dtype=np.int64)
        else:
            scaled = (np.where(missing, 0.0, arr) - self.minimum_) / span
            codes = np.floor(scaled * self.num_bins).astype(np.int64) + 1
            codes = np.clip(codes, 1, self.num_bins)
        codes[missing] = 0
        return codes

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    def bin_labels(self) -> list[str]:
        """Human-readable ``[lo, hi)`` interval label per bin code."""
        if self.minimum_ is None:
            raise RuntimeError("binner is not fitted yet")
        edges = np.linspace(self.minimum_, self.maximum_, self.num_bins + 1)
        return [
            f"[{edges[i]:.4g},{edges[i + 1]:.4g}{']' if i == self.num_bins - 1 else ')'}"
            for i in range(self.num_bins)
        ]


class QuantileBinner:
    """Equi-height bins: roughly equal row counts per bin.

    Bin edges are the empirical quantiles; duplicate edges (heavy ties) are
    collapsed, so fewer than ``num_bins`` distinct codes can result.  With
    ``allow_missing=True`` the quantiles are fitted on finite values and
    NaN transforms to the missing code ``0``.
    """

    def __init__(self, num_bins: int = 10, allow_missing: bool = False) -> None:
        if num_bins < 1:
            raise ValidationError("num_bins must be >= 1")
        self.num_bins = num_bins
        self.allow_missing = allow_missing
        self.edges_: np.ndarray | None = None

    def fit(self, values: np.ndarray) -> "QuantileBinner":
        arr, missing = _split_missing(values, self.allow_missing)
        if arr.size == 0:
            raise ValidationError("cannot fit a binner on an empty column")
        finite = arr[~missing]
        if finite.size == 0:
            raise ValidationError("cannot fit a binner on an all-missing column")
        quantiles = np.linspace(0.0, 1.0, self.num_bins + 1)
        self.edges_ = np.unique(np.quantile(finite, quantiles))
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("binner is not fitted yet")
        arr, missing = _split_missing(values, self.allow_missing)
        inner_edges = self.edges_[1:-1]
        codes = np.searchsorted(inner_edges, np.where(missing, 0.0, arr), side="right") + 1
        codes = codes.astype(np.int64)
        codes[missing] = 0
        return codes

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    @property
    def num_effective_bins(self) -> int:
        if self.edges_ is None:
            raise RuntimeError("binner is not fitted yet")
        return max(1, self.edges_.size - 1)
