"""Binning of continuous features into 1-based integer codes.

The paper uses 10 equi-width bins per continuous feature; a quantile
(equi-height) binner is provided as the common alternative for heavily
skewed features.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


class EquiWidthBinner:
    """Equal-width bins over the observed value range.

    Produces codes ``1..num_bins``.  Degenerate (constant) features map to a
    single bin.  Values outside the fitted range are clipped into the
    boundary bins, so transform never fails on unseen data.
    """

    def __init__(self, num_bins: int = 10) -> None:
        if num_bins < 1:
            raise ValidationError("num_bins must be >= 1")
        self.num_bins = num_bins
        self.minimum_: float | None = None
        self.maximum_: float | None = None

    def fit(self, values: np.ndarray) -> "EquiWidthBinner":
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size == 0:
            raise ValidationError("cannot fit a binner on an empty column")
        if np.isnan(arr).any():
            raise ValidationError("binner input must not contain NaN")
        self.minimum_ = float(arr.min())
        self.maximum_ = float(arr.max())
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        if self.minimum_ is None:
            raise RuntimeError("binner is not fitted yet")
        arr = np.asarray(values, dtype=np.float64).ravel()
        span = self.maximum_ - self.minimum_
        if span == 0.0:
            return np.ones(arr.shape[0], dtype=np.int64)
        scaled = (arr - self.minimum_) / span * self.num_bins
        codes = np.floor(scaled).astype(np.int64) + 1
        return np.clip(codes, 1, self.num_bins)

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    def bin_labels(self) -> list[str]:
        """Human-readable ``[lo, hi)`` interval label per bin code."""
        if self.minimum_ is None:
            raise RuntimeError("binner is not fitted yet")
        edges = np.linspace(self.minimum_, self.maximum_, self.num_bins + 1)
        return [
            f"[{edges[i]:.4g},{edges[i + 1]:.4g}{']' if i == self.num_bins - 1 else ')'}"
            for i in range(self.num_bins)
        ]


class QuantileBinner:
    """Equi-height bins: roughly equal row counts per bin.

    Bin edges are the empirical quantiles; duplicate edges (heavy ties) are
    collapsed, so fewer than ``num_bins`` distinct codes can result.
    """

    def __init__(self, num_bins: int = 10) -> None:
        if num_bins < 1:
            raise ValidationError("num_bins must be >= 1")
        self.num_bins = num_bins
        self.edges_: np.ndarray | None = None

    def fit(self, values: np.ndarray) -> "QuantileBinner":
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size == 0:
            raise ValidationError("cannot fit a binner on an empty column")
        if np.isnan(arr).any():
            raise ValidationError("binner input must not contain NaN")
        quantiles = np.linspace(0.0, 1.0, self.num_bins + 1)
        self.edges_ = np.unique(np.quantile(arr, quantiles))
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("binner is not fitted yet")
        arr = np.asarray(values, dtype=np.float64).ravel()
        inner_edges = self.edges_[1:-1]
        codes = np.searchsorted(inner_edges, arr, side="right") + 1
        return codes.astype(np.int64)

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    @property
    def num_effective_bins(self) -> int:
        if self.edges_ is None:
            raise RuntimeError("binner is not fitted yet")
        return max(1, self.edges_.size - 1)
