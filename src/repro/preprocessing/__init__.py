"""Data preparation: recoding, binning, and the dataset pipeline.

The paper pre-processes every dataset by "recoding categorical features,
binning continuous features (except labels) into 10 equi-width bins, and
dropping ID columns", producing the 1-based integer-encoded matrix ``X0``
SliceLine consumes.  This subpackage implements those transforms with full
metadata (feature names, value labels) and inverse mappings.
"""

from repro.preprocessing.binning import EquiWidthBinner, QuantileBinner, coerce_numeric
from repro.preprocessing.recode import Recoder
from repro.preprocessing.pipeline import ColumnSpec, Preprocessor, EncodedDataset

__all__ = [
    "EquiWidthBinner",
    "QuantileBinner",
    "coerce_numeric",
    "Recoder",
    "ColumnSpec",
    "Preprocessor",
    "EncodedDataset",
]
