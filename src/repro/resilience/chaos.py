"""Deterministic fault injection for testing the resilience layer.

Chaos testing is only useful when it is *reproducible*: a failure seen under
seed 7 must replay under seed 7.  Every injection decision here — does this
(task, attempt) fail? stall? is this batch corrupt, and how? — is a pure
hash of ``(seed, decision kind, identity)`` via
:func:`repro.resilience.retry.unit_hash`; no global RNG state, no
wall-clock, no ordering dependence between threads.

Three fault families, matching what the resilience layer must absorb:

* **worker exceptions** — :meth:`ChaosInjector.perturb` raises
  :class:`InjectedFault` at task start (retried by
  :func:`~repro.resilience.retry.map_with_retries`);
* **delays/stragglers** — :meth:`perturb` sleeps ``delay_s`` (long delays +
  a straggler timeout exercise speculative reassignment);
* **corrupt batches** — :meth:`corrupt_batch` deterministically mangles a
  :class:`~repro.streaming.PredictionBatch` (NaN errors, negative errors,
  row misalignment, fractional codes, dropped feature), *bypassing*
  construction-time validation exactly like a buggy producer would, so the
  monitor's quarantine is what has to catch it.

Faults per task are capped at ``max_faults_per_task`` so a retry policy
with ``max_attempts > max_faults_per_task`` always converges — the fault
plans are adversarial, not unwinnable (an unwinnable plan just asserts that
exhaustion raises, which has its own test).

A fourth family covers **process- and storage-level faults** for the
crash-durability suite: :func:`kill_process` (the ``kill -9`` a worker or
the whole service must survive), :func:`pick_kill_delay` (a deterministic
hash-picked kill time, so "killed mid-level 2 under seed 7" replays),
:func:`truncate_file` (torn-tail WAL sweeps at every byte boundary), and
:func:`corrupt_file` (deterministic byte flips in cache spill files that
recovery must quarantine, not trust).
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigError, ExecutionError
from repro.resilience.retry import unit_hash

#: Corruption kinds corrupt_batch cycles through (hash-picked per batch).
CORRUPTION_KINDS = (
    "nonfinite-errors",
    "negative-errors",
    "shape-mismatch",
    "encoding",
    "feature-mismatch",
)


class InjectedFault(ExecutionError):
    """A deterministically injected worker failure (retryable by design)."""


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of which faults to inject at which rates.

    Rates are per *decision*: each ``(task, attempt)`` fails with
    probability ``failure_rate`` and stalls with probability ``delay_rate``
    (both only while ``attempt <= max_faults_per_task``); each batch id is
    corrupted with probability ``corrupt_rate``.
    """

    seed: int = 0
    failure_rate: float = 0.0
    delay_rate: float = 0.0
    delay_s: float = 0.05
    corrupt_rate: float = 0.0
    max_faults_per_task: int = 2

    def __post_init__(self) -> None:
        for name in ("failure_rate", "delay_rate", "corrupt_rate"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.delay_s < 0:
            raise ConfigError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.max_faults_per_task < 0:
            raise ConfigError(
                f"max_faults_per_task must be >= 0, got "
                f"{self.max_faults_per_task}"
            )


class ChaosInjector:
    """Executes a :class:`FaultPlan`; safe to share across worker threads.

    ``injected_failures`` / ``injected_delays`` / ``corrupted_batches``
    count what was actually injected (reads are approximate under
    concurrency; tests that assert exact counts run single-threaded).
    """

    def __init__(self, plan: FaultPlan, sleep=time.sleep) -> None:
        self.plan = plan
        self._sleep = sleep
        self.injected_failures = 0
        self.injected_delays = 0
        self.corrupted_batches = 0

    # -- worker faults -------------------------------------------------------

    def perturb(self, task, attempt: int) -> None:
        """Inject this ``(task, attempt)``'s faults (call at task start).

        *task* is any hashable task identity that is stable across retries
        (e.g. ``("partition", 3)``); *attempt* is the 1-based attempt
        number.  Attempts past ``max_faults_per_task`` are never faulted,
        which is what lets retries and reassigned backups converge.
        """
        plan = self.plan
        if attempt > plan.max_faults_per_task:
            return
        if unit_hash(plan.seed, "delay", task, attempt) < plan.delay_rate:
            self.injected_delays += 1
            self._sleep(plan.delay_s)
        if unit_hash(plan.seed, "fail", task, attempt) < plan.failure_rate:
            self.injected_failures += 1
            raise InjectedFault(
                f"injected failure for task {task!r} attempt {attempt} "
                f"(seed {plan.seed})"
            )

    def wrap(self, fn, scope: str):
        """``fn(item, attempt) -> fn`` with faults keyed by ``(scope, index)``.

        For item-index-keyed task lists (the shape
        :func:`~repro.resilience.retry.map_with_retries` runs); the wrapped
        callable carries its own per-call index via closure-free pairing:
        the *item* must be ``(index, payload)``.
        """

        def wrapped(pair, attempt):
            index, payload = pair
            self.perturb((scope, index), attempt)
            return fn(payload)

        return wrapped

    # -- batch corruption ----------------------------------------------------

    def corrupt_batch(self, batch):
        """Deterministically corrupt *batch* (or pass it through unharmed).

        Returns the original batch or a mangled copy whose corruption kind
        is hash-picked from :data:`CORRUPTION_KINDS`.
        """
        plan = self.plan
        batch_id = int(getattr(batch, "batch_id", 0))
        if unit_hash(plan.seed, "corrupt", batch_id) >= plan.corrupt_rate:
            return batch
        kind = CORRUPTION_KINDS[
            int(
                unit_hash(plan.seed, "corrupt-kind", batch_id)
                * len(CORRUPTION_KINDS)
            )
        ]
        self.corrupted_batches += 1
        return make_corrupt_batch(batch, kind)


def make_corrupt_batch(batch, kind: str):
    """A copy of *batch* mangled per *kind*, bypassing validation.

    Construction-time checks are skipped on purpose (``object.__new__``):
    the corrupted object models data that went bad *after* the producer's
    own checks — exactly what the monitor-side quarantine exists to catch.
    """
    # Local import: chaos must stay importable without the streaming layer
    # (repro.streaming imports repro.core, whose driver imports resilience).
    from repro.streaming.batches import PredictionBatch

    x0 = np.array(batch.x0, copy=True)
    errors = np.array(batch.errors, dtype=np.float64, copy=True)
    if kind == "nonfinite-errors":
        errors[0] = np.nan
        if errors.shape[0] > 1:
            errors[-1] = np.inf
    elif kind == "negative-errors":
        errors[0] = -1.0
    elif kind == "shape-mismatch":
        errors = errors[:-1] if errors.shape[0] > 1 else np.zeros(0)
    elif kind == "encoding":
        x0 = x0.astype(np.float64)
        x0[0, 0] = 0.5
    elif kind == "feature-mismatch":
        x0 = x0[:, :-1] if x0.shape[1] > 1 else np.hstack([x0, x0])
    else:
        raise ConfigError(f"unknown corruption kind {kind!r}")
    corrupt = object.__new__(PredictionBatch)
    object.__setattr__(corrupt, "x0", x0)
    object.__setattr__(corrupt, "errors", errors)
    object.__setattr__(corrupt, "timestamp", getattr(batch, "timestamp", 0.0))
    object.__setattr__(corrupt, "batch_id", getattr(batch, "batch_id", 0))
    return corrupt


# -- process- and storage-level faults ---------------------------------------


def pick_kill_delay(
    seed: int, identity, min_s: float, max_s: float
) -> float:
    """A deterministic kill time in ``[min_s, max_s]`` for *identity*.

    Same hash discipline as every other injection decision: the delay is
    a pure function of ``(seed, identity)``, so a chaos run that killed a
    worker 0.37 s into job X replays exactly under the same seed.
    """
    if max_s < min_s:
        raise ConfigError(
            f"max_s must be >= min_s, got [{min_s}, {max_s}]"
        )
    return min_s + unit_hash(seed, "kill-delay", identity) * (max_s - min_s)


def kill_process(pid: int, sig: int = signal.SIGKILL) -> bool:
    """SIGKILL *pid*; True when the signal was delivered.

    A process that already exited (``ProcessLookupError``) returns False
    instead of raising — chaos races the victim by design.
    """
    try:
        os.kill(pid, sig)
    except (ProcessLookupError, PermissionError):
        return False
    return True


def truncate_file(path: str, length: int) -> int:
    """Truncate *path* to *length* bytes; returns the bytes removed.

    Models a crash mid-append: the WAL sweep truncates the journal at
    every byte boundary of its last record and asserts recovery treats
    each prefix as a torn tail, never as data.
    """
    if length < 0:
        raise ConfigError(f"length must be >= 0, got {length}")
    size = os.path.getsize(path)
    if length >= size:
        return 0
    with open(path, "r+b") as handle:
        handle.truncate(length)
    return size - length


def corrupt_file(path: str, seed: int = 0, nflips: int = 1) -> list[int]:
    """Deterministically flip *nflips* bytes of *path*; returns offsets.

    Offsets and XOR masks are hash-picked from ``(seed, flip index)``, so
    a corruption that slipped past recovery replays bit-for-bit.  Flips
    on an empty file are a no-op (nothing to corrupt).
    """
    if nflips < 1:
        raise ConfigError(f"nflips must be >= 1, got {nflips}")
    size = os.path.getsize(path)
    if size == 0:
        return []
    offsets: list[int] = []
    with open(path, "r+b") as handle:
        for index in range(nflips):
            offset = int(unit_hash(seed, "flip-at", path, index) * size)
            offset = min(offset, size - 1)
            mask = 1 + int(unit_hash(seed, "flip-mask", path, index) * 255)
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ mask]))
            offsets.append(offset)
    return offsets


__all__ = [
    "CORRUPTION_KINDS",
    "ChaosInjector",
    "FaultPlan",
    "InjectedFault",
    "corrupt_file",
    "kill_process",
    "make_corrupt_batch",
    "pick_kill_delay",
    "truncate_file",
]
