"""Batch quarantine: validate prediction-log batches, isolate the bad ones.

A long-running :class:`~repro.streaming.SliceMonitor` must not die because
one upstream batch arrived with NaN errors or a wrong column count — it
quarantines the batch with a structured reason and keeps ticking on the
healthy window.  :func:`validate_batch` is the single source of truth for
what "healthy" means (mirroring the contracts :func:`repro.core.slice_line`
enforces at its own boundary), and :class:`BatchQuarantine` is the holding
pen: an in-memory record list, optionally persisted to disk
(``--quarantine-dir``) as ``.npz`` + ``.json`` pairs for offline
inspection.

Validation is duck-typed over ``batch.x0`` / ``batch.errors`` on purpose:
corrupt batches — from a buggy producer or the chaos injector — may bypass
:class:`~repro.streaming.PredictionBatch` construction-time checks entirely,
so the monitor re-validates what actually arrives.

This module imports nothing from :mod:`repro.streaming` at module scope so
the streaming layer can import it without cycles.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuarantineRecord:
    """Why one batch was quarantined.

    ``reason`` is machine-readable (stable vocabulary:
    ``shape-mismatch``, ``nonfinite-errors``, ``negative-errors``,
    ``encoding``, ``feature-mismatch``); ``detail`` is the human-readable
    specifics.
    """

    batch_id: int
    timestamp: float
    reason: str
    detail: str
    num_rows: int | None = None
    num_features: int | None = None

    def to_dict(self) -> dict:
        return {
            "batch_id": self.batch_id,
            "timestamp": self.timestamp,
            "reason": self.reason,
            "detail": self.detail,
            "num_rows": self.num_rows,
            "num_features": self.num_features,
        }


def validate_batch(batch, expected_features: int | None = None):
    """Return ``(reason, detail)`` when *batch* is unhealthy, else ``None``.

    Checks, in order: array shapes and x0/errors row alignment, error-vector
    finiteness and sign, the 1-based integer encoding contract of ``x0``
    (0 allowed as the missing code), and — when *expected_features* is given
    — agreement with the feature count the monitor is tracking.
    """
    try:
        x0 = np.asarray(batch.x0)
        errors = np.asarray(batch.errors, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        return "shape-mismatch", f"batch arrays are not numeric: {exc}"
    if errors.ndim == 2 and 1 in errors.shape:
        errors = errors.ravel()
    if x0.ndim != 2 or x0.size == 0:
        return "shape-mismatch", f"x0 must be a non-empty 2-D matrix, got shape {x0.shape}"
    if errors.ndim != 1 or errors.shape[0] != x0.shape[0]:
        return (
            "shape-mismatch",
            f"errors has shape {np.asarray(batch.errors).shape}, expected "
            f"({x0.shape[0]},) to align with x0 rows",
        )
    if not np.isfinite(errors).all():
        bad = int(np.count_nonzero(~np.isfinite(errors)))
        return "nonfinite-errors", f"{bad} NaN/inf entries in the error vector"
    if (errors < 0).any():
        bad = int(np.count_nonzero(errors < 0))
        return "negative-errors", f"{bad} negative entries in the error vector"
    if not np.issubdtype(x0.dtype, np.integer):
        if not np.isfinite(x0).all():
            return "encoding", "x0 holds NaN/inf values"
        as_int = x0.astype(np.int64)
        if not np.array_equal(as_int, x0):
            return "encoding", "x0 holds fractional codes (recode/bin first)"
        x0 = as_int
    if x0.min() < 0:
        return "encoding", "x0 codes must be >= 0 (1-based; 0 marks missing)"
    if expected_features is not None and x0.shape[1] != expected_features:
        return (
            "feature-mismatch",
            f"batch has {x0.shape[1]} features, monitor tracks "
            f"{expected_features}",
        )
    return None


class BatchQuarantine:
    """Holding pen for batches that failed validation.

    Parameters
    ----------
    persist_dir:
        When given, each quarantined batch is persisted as
        ``batch-<id>.npz`` (the raw arrays, so the offending data can be
        replayed/inspected offline) plus ``batch-<id>.json`` (the
        :class:`QuarantineRecord`).  Created on first use.
    """

    def __init__(self, persist_dir: str | None = None) -> None:
        self.persist_dir = persist_dir
        self.records: list[QuarantineRecord] = []

    def __len__(self) -> int:
        return len(self.records)

    def reasons(self) -> dict[str, int]:
        """Histogram of quarantine reasons."""
        out: dict[str, int] = {}
        for record in self.records:
            out[record.reason] = out.get(record.reason, 0) + 1
        return out

    def admit(self, batch, expected_features: int | None = None):
        """Validate *batch*; quarantine and return the record when unhealthy.

        Returns ``None`` for a healthy batch (the caller should ingest it)
        or the :class:`QuarantineRecord` for a quarantined one (the caller
        must drop it).
        """
        verdict = validate_batch(batch, expected_features=expected_features)
        if verdict is None:
            return None
        reason, detail = verdict
        x0 = np.asarray(batch.x0)
        record = QuarantineRecord(
            batch_id=int(getattr(batch, "batch_id", -1)),
            timestamp=float(getattr(batch, "timestamp", 0.0)),
            reason=reason,
            detail=detail,
            num_rows=int(x0.shape[0]) if x0.ndim >= 1 else None,
            num_features=int(x0.shape[1]) if x0.ndim == 2 else None,
        )
        self.records.append(record)
        if self.persist_dir is not None:
            self._persist(batch, record)
        return record

    def _persist(self, batch, record: QuarantineRecord) -> None:
        os.makedirs(self.persist_dir, exist_ok=True)
        stem = os.path.join(
            self.persist_dir, f"batch-{record.batch_id:06d}"
        )
        np.savez(
            stem + ".npz",
            x0=np.asarray(batch.x0),
            errors=np.asarray(batch.errors, dtype=np.float64),
        )
        with open(stem + ".json", "w") as handle:
            json.dump(record.to_dict(), handle, indent=2, sort_keys=True)


__all__ = ["BatchQuarantine", "QuarantineRecord", "validate_batch"]
