"""Resilience layer: anytime budgets, checkpoint/resume, retries, quarantine.

Production slice finding must degrade gracefully instead of dying: a
combinatorial level is stopped by a budget (best-so-far top-K with
``completed=False``), a killed run resumes bitwise-identically from a
``repro.ckpt/v1`` bundle, a failed partition worker is retried with backoff
(stragglers are speculatively reassigned), and a corrupt prediction-log
batch is quarantined with a structured reason while the monitor keeps
ticking.  :mod:`repro.resilience.chaos` injects all of those faults
deterministically by seed so every guarantee is testable.

No module here imports :mod:`repro.core`, :mod:`repro.streaming`, or
:mod:`repro.distributed` at import time — the dependency points the other
way, which is what lets the core driver check budgets and write checkpoints
without an import cycle.
"""

from repro.resilience.atomic import (
    atomic_replace_dir,
    atomic_write_bytes,
    atomic_write_json,
    fsync_dir,
    fsync_file,
    remove_stale_tmp,
)
from repro.resilience.budgets import (
    BudgetConfig,
    BudgetTracker,
    BudgetTrip,
    SuspendHook,
    estimate_level_memory,
)
from repro.resilience.chaos import (
    ChaosInjector,
    FaultPlan,
    InjectedFault,
    corrupt_file,
    kill_process,
    make_corrupt_batch,
    pick_kill_delay,
    truncate_file,
)
from repro.resilience.checkpoint import (
    CKPT_SCHEMA,
    CheckpointState,
    fingerprint_config,
    fingerprint_digest,
    fingerprint_inputs,
    job_fingerprint,
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
    verify_checkpoint,
)
from repro.resilience.quarantine import (
    BatchQuarantine,
    QuarantineRecord,
    validate_batch,
)
from repro.resilience.retry import (
    RetryPolicy,
    RetryStats,
    map_with_retries,
    unit_hash,
)

__all__ = [
    "atomic_replace_dir",
    "atomic_write_bytes",
    "atomic_write_json",
    "fsync_dir",
    "fsync_file",
    "remove_stale_tmp",
    "BudgetConfig",
    "BudgetTracker",
    "BudgetTrip",
    "SuspendHook",
    "estimate_level_memory",
    "ChaosInjector",
    "FaultPlan",
    "InjectedFault",
    "corrupt_file",
    "kill_process",
    "make_corrupt_batch",
    "pick_kill_delay",
    "truncate_file",
    "CKPT_SCHEMA",
    "CheckpointState",
    "fingerprint_config",
    "fingerprint_digest",
    "fingerprint_inputs",
    "job_fingerprint",
    "latest_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "verify_checkpoint",
    "BatchQuarantine",
    "QuarantineRecord",
    "validate_batch",
    "RetryPolicy",
    "RetryStats",
    "map_with_retries",
    "unit_hash",
]
