"""Versioned checkpoint/resume bundles for the enumeration (``repro.ckpt/v1``).

A checkpoint captures the *level boundary* state of Algorithm 1 — exactly
the loop variables carried from one lattice level to the next — so a run
killed between levels can be resumed with::

    result = slice_line(x0, errors, cfg, resume_from=path)

and produce **bitwise-identical** top-K slices, scores, and pruning counters
to the uninterrupted run.  That guarantee holds because the enumeration is
deterministic and RNG-free by construction: given the same ``(x0, errors,
config)`` and the same level-boundary frontier, every later pair join,
kernel call, and top-K merge replays identically.  The bundle therefore only
needs the frontier (the level's evaluated slices and their statistics), the
running top-K, the per-level counters, and the compaction row/column maps —
the data matrix itself is re-derived from the caller's ``x0`` (whose
identity is enforced by content fingerprints).

Bundle layout (one directory per level)::

    <checkpoint_dir>/level-0002/
        meta.json     # version, level, fingerprints, counters, warm state
        arrays.npz    # CSR components + statistic matrices + index maps

This module imports nothing from :mod:`repro.core` at module scope so the
core can import it without cycles.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.exceptions import CheckpointError
from repro.resilience.atomic import atomic_replace_dir, remove_stale_tmp
from repro.obs.counters import CounterRegistry, LevelCounters

#: Version tag stamped on (and required of) every checkpoint bundle.
CKPT_SCHEMA = "repro.ckpt/v1"

#: LevelCounters keys that are derived properties, not fields.
_DERIVED_COUNTER_KEYS = ("dedup_removed", "pruned_total")


def _sha256(array: np.ndarray) -> str:
    """Content hash of an array (C-order bytes, dtype-tagged)."""
    arr = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(str(arr.dtype).encode())
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())
    return digest.hexdigest()


def fingerprint_inputs(x0: np.ndarray, errors: np.ndarray) -> dict:
    """Content fingerprint of the ``(x0, errors)`` pair a run enumerates."""
    return {
        "num_rows": int(x0.shape[0]),
        "num_features": int(x0.shape[1]),
        "x0_sha256": _sha256(np.asarray(x0)),
        "errors_sha256": _sha256(np.asarray(errors, dtype=np.float64)),
    }


def fingerprint_digest(*fingerprints: dict) -> str:
    """Stable hex digest of one or more fingerprint dicts.

    The digest is computed over the canonical (sorted-key, separator-free)
    JSON of each dict in order, so it is reproducible across processes and
    platforms.  ``fingerprint_digest(data_fp)`` identifies a dataset;
    ``fingerprint_digest(data_fp, config_fp)`` identifies a job.
    """
    digest = hashlib.sha256()
    for fingerprint in fingerprints:
        digest.update(
            json.dumps(
                fingerprint, sort_keys=True, separators=(",", ":")
            ).encode()
        )
    return digest.hexdigest()


def job_fingerprint(x0: np.ndarray, errors: np.ndarray, config) -> str:
    """Deterministic identity of one slice-finding job (stable hex digest).

    Two calls with bitwise-equal ``(x0, errors)`` and an equal
    result-affecting configuration produce the same digest — the property
    the serving layer's result cache and job ids rely on, and exactly the
    equality :func:`verify_checkpoint` enforces for resume.
    """
    return fingerprint_digest(
        fingerprint_inputs(x0, errors), fingerprint_config(config)
    )


def fingerprint_mismatch(kind: str, expected: dict, got: dict) -> str:
    """The single fingerprint-mismatch error text.

    *kind* names what disagreed (``"input data"`` or ``"configuration"``);
    the stored
    state (checkpoint bundle, cached result) is only valid for the exact
    identity it was produced from, so mismatches must fail loudly instead
    of producing silently wrong slices.
    """
    return (
        f"{kind} fingerprint mismatch: the stored state is only valid for "
        f"the exact {kind} it was produced from; expected {expected}, "
        f"got {got}"
    )


def fingerprint_config(config) -> dict:
    """JSON fingerprint of every result-affecting config field."""
    pruning = config.pruning
    return {
        "k": config.k,
        "sigma": config.sigma,
        "alpha": config.alpha,
        "max_level": config.max_level,
        "block_size": config.block_size,
        "compaction": config.compaction,
        "priority_evaluation": config.priority_evaluation,
        "priority_chunk": config.priority_chunk,
        "pruning": {
            "by_size": pruning.by_size,
            "by_score": pruning.by_score,
            "handle_missing_parents": pruning.handle_missing_parents,
            "deduplicate": pruning.deduplicate,
            "filter_input_slices": pruning.filter_input_slices,
        },
    }


@dataclass
class CheckpointState:
    """Everything ``repro.ckpt/v1`` persists at one level boundary."""

    level: int
    #: the level's evaluated slice frontier (projected column space) + stats
    slices: sp.csr_matrix
    stats: np.ndarray
    #: running top-K
    top_slices: sp.csr_matrix
    top_stats: np.ndarray
    #: per-level counter records (list of plain dicts)
    counters: list[dict]
    #: projected one-hot columns (verifies the re-derived basic pass)
    selected_columns: np.ndarray
    data_fingerprint: dict
    config_fingerprint: dict
    #: compaction maps (``None`` when the run had compaction disabled)
    row_indices: np.ndarray | None = None
    col_map: np.ndarray | None = None
    row_coverage: np.ndarray | None = None
    #: warm-start carry-over (counts + projected-column seed keys)
    warm_info: dict | None = None
    seed_keys: list[list[int]] = field(default_factory=list)
    #: event counters accumulated so far (checkpoint.write etc.)
    events: dict = field(default_factory=dict)

    def restore_counters(self) -> CounterRegistry:
        """Rebuild a :class:`CounterRegistry` from the persisted records."""
        registry = CounterRegistry()
        valid = {f.name for f in dataclasses.fields(LevelCounters)}
        for record in self.counters:
            target = registry.level(int(record["level"]))
            for key, value in record.items():
                if key in valid and key != "level":
                    setattr(target, key, value)
        for name, count in self.events.items():
            registry.event(name, int(count))
        return registry


def _csr_parts(prefix: str, matrix: sp.csr_matrix) -> dict:
    matrix = matrix.tocsr()
    return {
        f"{prefix}_data": matrix.data,
        f"{prefix}_indices": matrix.indices,
        f"{prefix}_indptr": matrix.indptr,
        f"{prefix}_shape": np.asarray(matrix.shape, dtype=np.int64),
    }


def _csr_load(prefix: str, arrays) -> sp.csr_matrix:
    shape = tuple(int(v) for v in arrays[f"{prefix}_shape"])
    return sp.csr_matrix(
        (
            np.asarray(arrays[f"{prefix}_data"], dtype=np.float64),
            np.asarray(arrays[f"{prefix}_indices"]),
            np.asarray(arrays[f"{prefix}_indptr"]),
        ),
        shape=shape,
    )


def save_checkpoint(directory: str, state: CheckpointState) -> str:
    """Write one ``repro.ckpt/v1`` bundle; returns the bundle path.

    The bundle is written to a temporary directory first and renamed into
    place so a crash mid-write never leaves a half-bundle behind that
    :func:`latest_checkpoint` could pick up.
    """
    bundle = os.path.join(directory, f"level-{state.level:04d}")
    staging = bundle + ".tmp"
    remove_stale_tmp(directory)
    os.makedirs(staging, exist_ok=True)
    meta = {
        "schema": CKPT_SCHEMA,
        "level": int(state.level),
        "data": state.data_fingerprint,
        "config": state.config_fingerprint,
        "warm_info": state.warm_info,
        "seed_keys": [list(map(int, key)) for key in state.seed_keys],
        "counters": state.counters,
        "events": dict(state.events),
        "compaction": state.row_indices is not None,
        "has_row_coverage": state.row_coverage is not None,
    }
    arrays = {
        "stats": state.stats,
        "top_stats": state.top_stats,
        "selected_columns": state.selected_columns,
        **_csr_parts("slices", state.slices),
        **_csr_parts("top_slices", state.top_slices),
    }
    if state.row_indices is not None:
        arrays["row_indices"] = state.row_indices
        arrays["col_map"] = state.col_map
    if state.row_coverage is not None:
        arrays["row_coverage"] = state.row_coverage
    try:
        with open(os.path.join(staging, "meta.json"), "w") as handle:
            json.dump(meta, handle, indent=2, sort_keys=True)
        np.savez(os.path.join(staging, "arrays.npz"), **arrays)
        # The staging copy is complete; committing it (fsync files, swap
        # in over any previous bundle for this level, fsync the parent
        # entry) is the shared atomic-directory-replace dance.
        atomic_replace_dir(staging, bundle)
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint bundle: {exc}") from exc
    return bundle


def load_checkpoint(path: str) -> CheckpointState:
    """Load one bundle (or the latest bundle of a checkpoint directory)."""
    bundle = path
    meta_path = os.path.join(bundle, "meta.json")
    if not os.path.exists(meta_path):
        latest = latest_checkpoint(path)
        if latest is None:
            raise CheckpointError(
                f"{path!r} is neither a checkpoint bundle nor a directory "
                "containing one"
            )
        bundle = latest
        meta_path = os.path.join(bundle, "meta.json")
    try:
        with open(meta_path) as handle:
            meta = json.load(handle)
        arrays = np.load(os.path.join(bundle, "arrays.npz"))
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"cannot read checkpoint {bundle!r}: {exc}") from exc
    if meta.get("schema") != CKPT_SCHEMA:
        raise CheckpointError(
            f"checkpoint {bundle!r} has schema {meta.get('schema')!r}, "
            f"expected {CKPT_SCHEMA!r}"
        )
    try:
        state = CheckpointState(
            level=int(meta["level"]),
            slices=_csr_load("slices", arrays),
            stats=np.asarray(arrays["stats"], dtype=np.float64),
            top_slices=_csr_load("top_slices", arrays),
            top_stats=np.asarray(arrays["top_stats"], dtype=np.float64),
            counters=meta["counters"],
            selected_columns=np.asarray(
                arrays["selected_columns"], dtype=np.int64
            ),
            data_fingerprint=meta["data"],
            config_fingerprint=meta["config"],
            row_indices=(
                np.asarray(arrays["row_indices"], dtype=np.int64)
                if meta.get("compaction")
                else None
            ),
            col_map=(
                np.asarray(arrays["col_map"], dtype=np.int64)
                if meta.get("compaction")
                else None
            ),
            row_coverage=(
                np.asarray(arrays["row_coverage"], dtype=bool)
                if meta.get("has_row_coverage")
                else None
            ),
            warm_info=meta.get("warm_info"),
            seed_keys=[
                [int(v) for v in key] for key in meta.get("seed_keys", [])
            ],
            events={
                str(k): int(v) for k, v in (meta.get("events") or {}).items()
            },
        )
    except KeyError as exc:
        raise CheckpointError(
            f"checkpoint {bundle!r} is missing field {exc}"
        ) from exc
    return state


def latest_checkpoint(directory: str) -> str | None:
    """Deepest-level bundle inside *directory* (``None`` when empty)."""
    if not os.path.isdir(directory):
        return None
    bundles = sorted(
        name
        for name in os.listdir(directory)
        if name.startswith("level-")
        and not name.endswith(".tmp")
        and os.path.exists(os.path.join(directory, name, "meta.json"))
    )
    if not bundles:
        return None
    return os.path.join(directory, bundles[-1])


def verify_checkpoint(
    state: CheckpointState, x0: np.ndarray, errors: np.ndarray, config
) -> None:
    """Raise :class:`CheckpointError` unless the bundle matches this run.

    Resume equivalence is only defined against the *same* data and the same
    result-affecting configuration; both are enforced by content hash so a
    stale or foreign bundle fails loudly instead of producing silently
    wrong slices.
    """
    data = fingerprint_inputs(x0, errors)
    if data != state.data_fingerprint:
        raise CheckpointError(
            fingerprint_mismatch("input data", state.data_fingerprint, data)
        )
    cfg = fingerprint_config(config)
    if cfg != state.config_fingerprint:
        raise CheckpointError(
            fingerprint_mismatch(
                "configuration", state.config_fingerprint, cfg
            )
        )


__all__ = [
    "CKPT_SCHEMA",
    "CheckpointState",
    "fingerprint_config",
    "fingerprint_digest",
    "fingerprint_inputs",
    "fingerprint_mismatch",
    "job_fingerprint",
    "latest_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "verify_checkpoint",
]
