"""Crash-safe filesystem primitives shared by the durability layers.

Three consumers need the same "write a temporary sibling, fsync it, then
``os.replace`` it into place and fsync the directory" dance: ``repro.ckpt/v1``
checkpoint bundles, ``repro.wal/v1`` journal segments, and the serving
layer's cache spill files.  The primitives live here once so every layer
gets identical crash semantics:

* after :func:`atomic_write_bytes` returns, the file at *path* holds either
  its previous content or the new content in full — never a torn mix, even
  across power loss (the payload is fsync'd before the rename and the
  directory entry after);
* a crash mid-write leaves at most a ``*.tmp-*`` sibling behind, which
  :func:`remove_stale_tmp` sweeps on the next start-up;
* :func:`atomic_replace_dir` gives whole directories (checkpoint bundles)
  the same either-old-or-new guarantee, minus the window inherent in
  replacing a non-empty directory (the staging copy is always complete
  before the target is touched).

``durable=False`` skips every fsync — same atomicity against process
crashes (the rename is still atomic), no durability against power loss —
for callers like heartbeat files where freshness matters more than
persistence.

This module imports nothing from the rest of the package (exceptions
aside) so every layer can use it without cycles.
"""

from __future__ import annotations

import json
import os
import uuid


def fsync_file(handle) -> None:
    """Flush *handle*'s buffers and fsync its descriptor."""
    handle.flush()
    os.fsync(handle.fileno())


def fsync_dir(path: str) -> None:
    """Best-effort fsync of a directory entry (no-op where unsupported)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes, durable: bool = True) -> None:
    """Write *data* to *path* atomically (tmp sibling + ``os.replace``).

    After return the file holds either its old content or *data* in full.
    With ``durable=True`` the payload is fsync'd before the rename and the
    directory entry after, so the guarantee extends to power loss.
    """
    directory = os.path.dirname(path) or "."
    tmp = os.path.join(
        directory, f"{os.path.basename(path)}.tmp-{uuid.uuid4().hex[:8]}"
    )
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            if durable:
                fsync_file(handle)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if durable:
        fsync_dir(directory)


def atomic_write_json(
    path: str, obj, durable: bool = True, indent: int | None = 2
) -> None:
    """:func:`atomic_write_bytes` for a JSON document."""
    atomic_write_bytes(
        path,
        json.dumps(obj, indent=indent, sort_keys=True).encode(),
        durable=durable,
    )


def atomic_replace_dir(staging: str, target: str, durable: bool = True) -> None:
    """Move a fully-written *staging* directory into place as *target*.

    An existing *target* is emptied and removed first (its content is
    superseded by the staging copy, which is complete before this call),
    then the staging directory is renamed over the name and the parent
    directory entry fsync'd.
    """
    if durable:
        for name in os.listdir(staging):
            with open(os.path.join(staging, name), "rb") as handle:
                fsync_file(handle)
        fsync_dir(staging)
    if os.path.isdir(target):
        for name in os.listdir(target):
            os.unlink(os.path.join(target, name))
        os.rmdir(target)
    os.rename(staging, target)
    if durable:
        fsync_dir(os.path.dirname(target) or ".")


def remove_stale_tmp(directory: str) -> int:
    """Delete leftover ``*.tmp*`` siblings of interrupted atomic writes.

    Returns the number of entries removed.  Safe to call on every start-up:
    a ``.tmp`` name is never the committed copy of anything.
    """
    if not os.path.isdir(directory):
        return 0
    removed = 0
    for name in os.listdir(directory):
        if ".tmp" not in name:
            continue
        path = os.path.join(directory, name)
        try:
            if os.path.isdir(path):
                for inner in os.listdir(path):
                    os.unlink(os.path.join(path, inner))
                os.rmdir(path)
            else:
                os.unlink(path)
            removed += 1
        except OSError:
            continue
    return removed


__all__ = [
    "atomic_replace_dir",
    "atomic_write_bytes",
    "atomic_write_json",
    "fsync_dir",
    "fsync_file",
    "remove_stale_tmp",
]
