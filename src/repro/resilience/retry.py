"""Retry with exponential backoff + straggler reassignment for pure tasks.

The distributed paths (partition workers in
:class:`~repro.distributed.DistributedPForExecutor` and the partitioned
streaming accumulation) run *pure* tasks: each computes partial statistics
from an immutable row partition, so a task can be re-executed — or executed
twice concurrently — without affecting the result.  That purity is what
makes cheap fault tolerance exact:

* a **failed** task is retried with exponential backoff and deterministic
  jitter (derived by hash from ``(seed, task, attempt)``, never from global
  RNG state, so runs are reproducible);
* a **straggler** past ``straggler_timeout_s`` is *reassigned* — a backup
  copy is submitted and whichever copy finishes first wins (speculative
  execution, the classic MapReduce trick);
* results are collected **by task index**, so the driver-side merge order
  is independent of completion/retry order; combined with the exact
  associative merge of :class:`~repro.streaming.MergeableSliceStats`, final
  statistics are bitwise identical to a fault-free run.

This module imports nothing from :mod:`repro.core` / :mod:`repro.streaming`
so either side can import it without cycles.
"""

from __future__ import annotations

import hashlib
import struct
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field

from repro.exceptions import ConfigError, ExecutionError


def unit_hash(*key) -> float:
    """Deterministic hash of *key* into ``[0, 1)`` (no RNG state involved)."""
    digest = hashlib.sha256(repr(key).encode()).digest()
    (value,) = struct.unpack("<Q", digest[:8])
    return value / 2.0**64


@dataclass(frozen=True)
class RetryPolicy:
    """How failed and straggling tasks are re-executed.

    ``max_attempts`` counts executions of one task including the first (so
    ``1`` disables retries); the delay before attempt ``a+1`` is
    ``min(backoff_base_s * backoff_multiplier**(a-1), backoff_cap_s)``
    scaled by a deterministic jitter factor in ``[1 - jitter, 1]`` derived
    from ``(seed, task, attempt)``.  ``straggler_timeout_s`` bounds how long
    the driver waits for any single attempt before submitting a backup copy
    of the task (``None`` disables speculative reassignment).
    """

    max_attempts: int = 4
    backoff_base_s: float = 0.02
    backoff_multiplier: float = 2.0
    backoff_cap_s: float = 1.0
    jitter: float = 0.5
    straggler_timeout_s: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ConfigError("backoff delays must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigError("backoff_multiplier must be >= 1")
        if not (0.0 <= self.jitter <= 1.0):
            raise ConfigError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.straggler_timeout_s is not None and self.straggler_timeout_s <= 0:
            raise ConfigError("straggler_timeout_s must be > 0")

    def backoff_delay(self, task: int, attempt: int) -> float:
        """Jittered delay before re-running *task* after failed *attempt*."""
        base = min(
            self.backoff_base_s * self.backoff_multiplier ** max(attempt - 1, 0),
            self.backoff_cap_s,
        )
        factor = 1.0 - self.jitter * unit_hash(self.seed, task, attempt)
        return base * factor


@dataclass
class RetryStats:
    """What fault handling actually did during one :func:`map_with_retries`."""

    #: total task executions, including first attempts and backups
    attempts: int = 0
    #: re-executions after a failure (the ``retry.attempt`` counter)
    retries: int = 0
    #: backup copies submitted after a straggler timeout
    stragglers_reassigned: int = 0
    #: last error message per task index that needed >= 1 retry
    errors: dict = field(default_factory=dict)

    def merge_into(self, counters=None, tracer_span=None) -> None:
        """Publish onto a counter registry / span (both optional)."""
        if counters is not None and self.retries:
            counters.event("retry.attempt", self.retries)
        if tracer_span is not None:
            tracer_span.annotate(
                attempts=self.attempts,
                retries=self.retries,
                stragglers_reassigned=self.stragglers_reassigned,
            )


def map_with_retries(
    fn,
    items,
    *,
    policy: RetryPolicy | None = None,
    num_threads: int = 1,
    sleep=time.sleep,
    task_name: str = "task",
) -> tuple[list, RetryStats]:
    """Run ``fn(item, attempt)`` per item with retries; results in item order.

    *fn* receives the 1-based attempt number so fault injectors can make
    attempt 1 fail and attempt 2 succeed deterministically; ordinary callers
    just ignore it.  Exceptions (any :class:`Exception`) are retried up to
    ``policy.max_attempts`` executions with backoff; exhaustion raises
    :class:`~repro.exceptions.ExecutionError` carrying the last cause.

    With ``num_threads > 1`` the tasks run on a transient thread pool; when
    ``policy.straggler_timeout_s`` is set, the driver waits at most that
    long for each task before submitting a backup copy (attempt numbers of
    backups continue past ``max_attempts`` so a deterministic injector that
    caps its faults per task leaves them clean) and takes whichever copy
    completes first.  Because tasks are pure and results are collected by
    index, retry and completion order never affect the returned list.
    """
    policy = policy or RetryPolicy()
    stats = RetryStats()
    stats_lock = threading.Lock()
    items = list(items)

    def attempt_loop(index: int, item, first_attempt: int = 1):
        attempt = first_attempt
        while True:
            with stats_lock:
                stats.attempts += 1
            try:
                return fn(item, attempt)
            except Exception as exc:  # noqa: BLE001 — retry any task failure
                with stats_lock:
                    stats.errors[index] = repr(exc)
                if attempt - first_attempt + 1 >= policy.max_attempts:
                    raise ExecutionError(
                        f"{task_name} {index} failed after "
                        f"{attempt - first_attempt + 1} attempts: {exc!r}"
                    ) from exc
                with stats_lock:
                    stats.retries += 1
                sleep(policy.backoff_delay(index, attempt))
                attempt += 1

    if num_threads <= 1 or len(items) <= 1:
        results = [attempt_loop(i, item) for i, item in enumerate(items)]
        return results, stats

    results: list = [None] * len(items)
    with ThreadPoolExecutor(max_workers=num_threads) as pool:
        futures = [
            pool.submit(attempt_loop, i, item) for i, item in enumerate(items)
        ]
        for index, future in enumerate(futures):
            if policy.straggler_timeout_s is None:
                results[index] = future.result()
                continue
            try:
                results[index] = future.result(
                    timeout=policy.straggler_timeout_s
                )
                continue
            except FuturesTimeoutError:
                pass
            # Straggler: submit a backup copy and take the first finisher.
            # Backup attempts are numbered past max_attempts so seeded
            # injectors (which cap faults per task) leave them clean.
            stats.stragglers_reassigned += 1
            backup = pool.submit(
                attempt_loop, index, items[index],
                policy.max_attempts * (stats.stragglers_reassigned + 1),
            )
            waiting = {future, backup}
            winner = None
            last_error: BaseException | None = None
            while waiting and winner is None:
                done, waiting = wait(waiting, return_when=FIRST_COMPLETED)
                for finished in done:
                    if finished.exception() is None:
                        winner = finished
                        break
                    last_error = finished.exception()
            if winner is None:
                raise ExecutionError(
                    f"{task_name} {index} failed on both the original and "
                    f"the reassigned copy: {last_error!r}"
                ) from last_error
            results[index] = winner.result()
    return results, stats


__all__ = ["RetryPolicy", "RetryStats", "map_with_retries", "unit_hash"]
