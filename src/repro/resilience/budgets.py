"""Anytime budgets for the level-wise enumeration.

SliceLine's lattice enumeration can blow up combinatorially on hostile
inputs; the paper caps the level (``ceil(L)``) and relies on pruning, but a
production deployment additionally needs *anytime* behaviour: stop within a
wall-clock deadline, refuse to materialize an oversized candidate set, and
bail before an evaluation whose intermediates would not fit in memory —
returning the best-so-far top-K instead of dying.

:class:`BudgetConfig` declares the limits, :class:`BudgetTracker` checks
them between levels (and, for the deadline, between evaluation chunks inside
a level), and a :class:`BudgetTrip` records which budget fired where.  The
driver (:func:`repro.core.algorithm.slice_line`) turns a trip into a result
with ``completed=False`` — never an exception — whose partial top-K is
exactly the top-K of the work that was actually done (every merged slice was
fully evaluated and scored, so the partial answer is correct, just possibly
not yet optimal over the whole lattice).

This module deliberately imports nothing from :mod:`repro.core` so the core
can import it without cycles.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.exceptions import ConfigError


@dataclass(frozen=True)
class BudgetConfig:
    """Resource limits for one enumeration run; ``None`` disables a limit.

    Parameters
    ----------
    deadline_s:
        Wall-clock budget in seconds, measured from :func:`slice_line`
        entry.  Checked between levels and between evaluation chunks, so a
        single level cannot overshoot by more than one chunk's worth of
        kernel work.
    max_candidates_per_level:
        Upper bound on the deduplicated candidate count any single level may
        emit to evaluation.  Checked right after pair generation, before the
        candidate matrix is multiplied against the data.
    max_memory_bytes:
        Upper bound on the *estimated* transient memory of one level's
        evaluation (see :func:`estimate_level_memory`).  An estimate — the
        point is to catch the pathological level that would allocate orders
        of magnitude too much, not to meter allocations byte-exactly.
    """

    deadline_s: float | None = None
    max_candidates_per_level: int | None = None
    max_memory_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ConfigError(f"deadline_s must be >= 0, got {self.deadline_s}")
        if (
            self.max_candidates_per_level is not None
            and self.max_candidates_per_level < 1
        ):
            raise ConfigError(
                "max_candidates_per_level must be >= 1, got "
                f"{self.max_candidates_per_level}"
            )
        if self.max_memory_bytes is not None and self.max_memory_bytes < 1:
            raise ConfigError(
                f"max_memory_bytes must be >= 1, got {self.max_memory_bytes}"
            )

    @property
    def enabled(self) -> bool:
        """True when at least one limit is set."""
        return (
            self.deadline_s is not None
            or self.max_candidates_per_level is not None
            or self.max_memory_bytes is not None
        )

    def merged(self, other: "BudgetConfig | None") -> "BudgetConfig":
        """Compose two budget sets, tightest-wins on every field.

        A limit set on either side survives; when both sides set the same
        limit the smaller one wins.  This is how a tenant quota composes
        with a user-supplied per-job budget: neither can *loosen* the
        other, so over-quota jobs cannot buy themselves more resources by
        passing their own ``BudgetConfig``.
        """
        if other is None:
            return self
        if not isinstance(other, BudgetConfig):
            raise ConfigError(
                f"merged() expects a BudgetConfig or None, got {other!r}"
            )

        def tightest(a, b):
            if a is None:
                return b
            if b is None:
                return a
            return min(a, b)

        return BudgetConfig(
            deadline_s=tightest(self.deadline_s, other.deadline_s),
            max_candidates_per_level=tightest(
                self.max_candidates_per_level, other.max_candidates_per_level
            ),
            max_memory_bytes=tightest(
                self.max_memory_bytes, other.max_memory_bytes
            ),
        )


@dataclass(frozen=True)
class BudgetTrip:
    """Record of the budget that stopped a run.

    ``budget`` is one of ``"deadline"``, ``"candidates"``, or ``"memory"``;
    ``level`` is the lattice level being worked on when the budget fired
    (its evaluation may be partial or not started); ``value``/``limit`` are
    the observed measurement and the configured bound in the budget's own
    unit (seconds, candidates, or bytes).
    """

    budget: str
    level: int
    value: float
    limit: float
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "budget": self.budget,
            "level": self.level,
            "value": self.value,
            "limit": self.limit,
            "detail": self.detail,
        }


class BudgetTracker:
    """Checks one run's budgets; remembers the first trip.

    All checks are cheap (a clock read or an integer compare) so the
    fault-free overhead of budgets-on runs stays in the noise; once a trip
    is recorded every later check short-circuits to it.
    """

    def __init__(self, config: BudgetConfig, started: float | None = None) -> None:
        self.config = config
        self.started = time.perf_counter() if started is None else started
        self.trip: BudgetTrip | None = None

    @property
    def has_deadline(self) -> bool:
        return self.config.deadline_s is not None

    def elapsed(self) -> float:
        return time.perf_counter() - self.started

    def _record(self, budget: str, level: int, value: float, limit: float,
                detail: str) -> BudgetTrip:
        if self.trip is None:
            self.trip = BudgetTrip(
                budget=budget, level=level, value=value, limit=limit,
                detail=detail,
            )
        return self.trip

    def check_deadline(self, level: int) -> BudgetTrip | None:
        """Trip when the wall clock has passed the deadline."""
        if self.trip is not None:
            return self.trip
        if self.config.deadline_s is None:
            return None
        elapsed = self.elapsed()
        if elapsed >= self.config.deadline_s:
            return self._record(
                "deadline", level, elapsed, self.config.deadline_s,
                f"elapsed {elapsed:.3f}s >= deadline "
                f"{self.config.deadline_s:.3f}s",
            )
        return None

    def check_candidates(self, level: int, num_candidates: int) -> BudgetTrip | None:
        """Trip when a level emitted more candidates than allowed."""
        if self.trip is not None:
            return self.trip
        limit = self.config.max_candidates_per_level
        if limit is None or num_candidates <= limit:
            return None
        return self._record(
            "candidates", level, float(num_candidates), float(limit),
            f"level {level} emitted {num_candidates} candidates > {limit}",
        )

    def check_memory(self, level: int, estimated_bytes: int) -> BudgetTrip | None:
        """Trip when a level's estimated evaluation memory exceeds the cap."""
        if self.trip is not None:
            return self.trip
        limit = self.config.max_memory_bytes
        if limit is None or estimated_bytes <= limit:
            return None
        return self._record(
            "memory", level, float(estimated_bytes), float(limit),
            f"level {level} evaluation estimated at {estimated_bytes} bytes "
            f"> {limit}",
        )


class SuspendHook:
    """Cooperative suspension flag checked at every level boundary.

    A scheduler (or any controller thread) calls :meth:`request`; the
    enumeration observes it at the top of its level loop, writes its
    level-boundary checkpoint as usual, and returns a ``suspended=True``
    partial result.  Because suspension only ever lands on a level
    boundary — the exact state ``repro.ckpt/v1`` persists — resuming the
    checkpoint later is bitwise-identical to never having stopped.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def request(self) -> None:
        """Ask the running enumeration to stop at the next level boundary."""
        self._event.set()

    def clear(self) -> None:
        """Re-arm the hook (called before resuming a suspended run)."""
        self._event.clear()

    @property
    def requested(self) -> bool:
        return self._event.is_set()


def estimate_level_memory(
    num_candidates: int,
    level: int,
    rows_alive: int,
    data_nnz: int,
    block_size: int,
    num_threads: int = 1,
) -> int:
    """Rough upper estimate of one level's transient evaluation bytes.

    Accounts for the dominant allocations of the blocked ``(X S^T) == L``
    kernel: the candidate matrix ``S`` and its cached CSC transpose (CSR/CSC
    with 8-byte data + 8-byte indices, nnz = candidates x level), the per
    block ``X @ S_b^T`` product and its indicator copy (bounded by the data
    matrix's nnz within a block's columns — we bound each in-flight block by
    ``min(rows_alive * block_size, data_nnz)`` stored entries at 16 bytes,
    with ``num_threads`` blocks in flight), and the four per-candidate
    statistic vectors.  A deliberate over-approximation within a small
    constant factor: budgets gate order-of-magnitude blowups, not bytes.
    """
    nnz_s = num_candidates * level
    candidate_matrices = 2 * (16 * nnz_s + 8 * (num_candidates + 1))
    per_block_nnz = min(rows_alive * block_size, max(data_nnz, 1))
    in_flight = max(1, num_threads)
    products = 2 * 16 * per_block_nnz * in_flight
    stats = 4 * 8 * num_candidates
    return int(candidate_matrices + products + stats)


__all__ = [
    "BudgetConfig",
    "BudgetTracker",
    "BudgetTrip",
    "SuspendHook",
    "estimate_level_memory",
]
