"""Reusable execution workspace for the blocked evaluation kernels.

The enumeration driver calls the blocked ``(X S^T) == L`` kernel once per
level (and once more per priority chunk); constructing a fresh
:class:`~concurrent.futures.ThreadPoolExecutor` inside every call wastes
thread start-up latency precisely on the small, frequent calls where it is
most visible.  :class:`KernelWorkspace` owns one lazily created pool for the
lifetime of a run — every kernel invocation of that run maps its blocks over
the same threads.

The workspace is deliberately dumb about work semantics: :meth:`map` is
order-preserving and falls back to a serial loop when the pool would not
help (one thread configured, or a single block), so results are identical
to transient-pool execution in every configuration.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class KernelWorkspace:
    """Owns the persistent thread pool shared by one run's kernel calls.

    Parameters
    ----------
    num_threads:
        Pool width; ``<= 1`` means strictly serial execution (no pool is
        ever created).  The pool itself is created on the first parallel
        :meth:`map` and reused until :meth:`close`.
    """

    def __init__(self, num_threads: int = 1) -> None:
        self.num_threads = int(num_threads)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_width = 0
        #: pools created over this workspace's lifetime (tests assert == 1)
        self.pools_created = 0

    # -- execution -----------------------------------------------------------

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        width: int | None = None,
    ) -> list[R]:
        """Order-preserving map over *items*, pooled when it pays off.

        *width* overrides the configured thread count for this call — the
        pair-generation pipeline runs at ``pair_parallelism`` while the
        evaluation kernels keep ``num_threads``.  The pool is sized to the
        widest request seen so far (one pool serves both consumers; a map
        narrower than the pool may still use all its workers, which is
        safe because every mapped task is pure and results are merged in
        item order).
        """
        effective = self.num_threads if width is None else int(width)
        if effective > 1 and len(items) > 1:
            return list(self._ensure_pool(effective).map(fn, items))
        return [fn(item) for item in items]

    def _ensure_pool(self, width: int | None = None) -> ThreadPoolExecutor:
        wanted = self.num_threads if width is None else int(width)
        if self._pool is not None and wanted > self._pool_width:
            # A wider request than the live pool: replace it.  Rare in
            # practice (the first parallel map fixes the width), and safe —
            # map() calls are strictly sequential per workspace.
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=wanted)
            self._pool_width = wanted
            self.pools_created += 1
        return self._pool

    @property
    def pool_active(self) -> bool:
        """True while a created pool has not been shut down."""
        return self._pool is not None

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut the pool down (idempotent); the workspace can be reused."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "KernelWorkspace":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def resolve_workspace(
    workspace: KernelWorkspace | None, num_threads: int
) -> tuple[KernelWorkspace, bool]:
    """The workspace to run on plus whether the caller must close it.

    Kernel entry points accept an optional caller-owned workspace; when none
    is given they fall back to a transient one (the pre-workspace behaviour)
    that the caller of this helper is responsible for closing.
    """
    if workspace is not None:
        return workspace, False
    return KernelWorkspace(num_threads), True


__all__ = ["KernelWorkspace", "resolve_workspace"]
