"""Pluggable evaluation-kernel backends for the ``(X S^T) == L`` indicator.

The enumeration's dominant cost is materializing, per level, the boolean
indicator ``I[i, s] = row i matches all L predicates of slice s`` and
reducing it to the Equation-10 vectors ``(ss, se, sm)``.  Three backends
compute the same indicator three ways:

``sparse``
    The paper's formulation: one blocked sparse CSR x CSC product
    ``X @ S^T`` followed by ``== L`` filtering (see
    :mod:`repro.core.evaluate`).  Works for any data and is the fallback.
``bitset``
    For 0/1 data the indicator of a slice is the AND of its predicate
    columns.  Each one-hot column of ``X`` is packed into a row bitset
    (``np.packbits`` -> ``uint64`` words, :class:`BitsetTable`); a
    candidate's indicator is ``L-1`` word-wise ANDs and ``ss`` is a
    popcount — no ``n x b`` float intermediate, no sparse overhead.
``incremental``
    A level-``L`` candidate is the union of two level-``L-1`` parents, so
    its indicator is the AND of the parents' indicators.  The
    :class:`IndicatorCache` keeps the previous level's evaluated indicator
    bitsets (byte-capped); a candidate whose parents are cached needs one
    AND instead of ``L-1`` — parents past the cap fall back to the column
    table per candidate.

Exactness.  All backends are bitwise identical to the sparse path:

* ``ss`` is an exact integer (popcount) cast to float64.
* ``se``: scipy's ``indicator.T @ errors`` is a ``csc_matvec`` that
  accumulates each slice's member errors sequentially in ascending data-row
  order starting from ``0.0``.  ``np.bincount`` over the member
  ``(slice, row)`` pairs (from ``np.nonzero`` of the unpacked indicator,
  which is row-major per slice) is the same strict left-to-right C loop
  (``out[slice] += error`` in input order), and ``0.0 + e == e`` for every
  float, so the sums agree bit for bit.  ``np.sum`` or ``np.add.reduceat``
  would *not*: both reduce long runs pairwise, which rounds differently.
* ``sm`` replicates scipy's sparse column max, which includes the implicit
  zeros of any column that is not full: ``max(0, member max)`` unless the
  slice covers every row.  Max is order-independent, hence exact.

The per-level :func:`choose_backend` cost model keeps the sparse path for
non-0/1 data, tiny workloads (where packing costs more than it saves), and
whenever the packed table would exceed its byte cap, so ``auto`` never
selects a backend whose preconditions do not hold.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError

#: Recognized values of the ``kernel_backend`` option.
BACKENDS = ("auto", "sparse", "bitset", "incremental")

#: Minimum indicator work (``num_rows * num_candidates`` cells) before
#: ``auto`` leaves the sparse path — below this, packing dominates.
MIN_BITSET_CELLS = 1 << 15
#: Minimum candidate count before ``auto`` builds a column bitset table.
MIN_BITSET_CANDIDATES = 64
#: Byte cap for the per-level packed column table (``auto``/explicit
#: requests fall back to sparse when the table would exceed it).
MAX_TABLE_BYTES = 256 * 1024 * 1024
#: Byte cap for the parent-indicator cache of the incremental backend.
MAX_CACHE_BYTES = 256 * 1024 * 1024

#: Candidates per internal bitset work chunk.  Chunking is independent of
#: the caller's ``block_size`` because every candidate's statistics are
#: computed in isolation — results cannot depend on the chunk grid.
BITSET_CHUNK = 8192

_POPCOUNT_LUT = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, np.newaxis], axis=1
).sum(axis=1, dtype=np.uint8)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def num_packed_words(num_bits: int) -> int:
    """``uint64`` words needed for a *num_bits*-wide bitset row."""
    return -(-num_bits // 64)


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Per-row population count of a 2-D ``uint64`` word matrix (int64)."""
    if words.shape[1] == 0:
        return np.zeros(words.shape[0], dtype=np.int64)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).sum(axis=1, dtype=np.int64)
    return _popcount_rows_lut(words)


def _popcount_rows_lut(words: np.ndarray) -> np.ndarray:
    """Byte-LUT popcount fallback for numpy without ``np.bitwise_count``."""
    return _POPCOUNT_LUT[
        np.ascontiguousarray(words).view(np.uint8)
    ].sum(axis=1, dtype=np.int64)


def pack_bool_rows(rows: np.ndarray) -> np.ndarray:
    """Pack boolean rows into ``uint64`` words (``np.packbits`` bit order).

    The byte stream of each packed row is ``np.packbits(row)`` zero-padded
    to a multiple of 8 bytes, then viewed as ``uint64`` — AND/OR/popcount
    act bit-parallel, so the words' integer values (which depend on host
    endianness) never matter, and :func:`unpack_bool_rows` inverts the
    packing exactly by viewing the words back as bytes.
    """
    num_rows, num_bits = rows.shape
    if num_bits == 0:
        return np.zeros((num_rows, 0), dtype=np.uint64)
    packed = np.packbits(rows, axis=1)
    pad = (-packed.shape[1]) % 8
    if pad:
        packed = np.pad(packed, ((0, 0), (0, pad)))
    return np.ascontiguousarray(packed).view(np.uint64)


def unpack_bool_rows(words: np.ndarray, num_bits: int) -> np.ndarray:
    """Invert :func:`pack_bool_rows` back to a boolean ``(rows, num_bits)``."""
    if num_bits == 0 or words.shape[1] == 0:
        return np.zeros((words.shape[0], num_bits), dtype=bool)
    return np.unpackbits(
        np.ascontiguousarray(words).view(np.uint8), axis=1, count=num_bits
    ).view(np.bool_)


def estimate_table_bytes(num_rows: int, num_cols: int) -> int:
    """Bytes of the packed column table for an ``num_rows x num_cols`` X."""
    return num_cols * num_packed_words(num_rows) * 8


def is_binary_matrix(matrix: sp.spmatrix) -> bool:
    """True when every stored entry equals ``1.0`` (a 0/1 matrix).

    The bitset formulation models ``(X S^T) == L`` as per-column AND only
    for 0/1 data; anything else must stay on the sparse path.
    """
    data = matrix.data
    return data.size == 0 or bool((data == 1.0).all())


class BitsetTable:
    """Packed row bitsets, one per one-hot column of the data matrix.

    ``words[c]`` is the bitset of rows where column ``c`` is set; a
    candidate slice's indicator is the AND of its predicate columns'
    bitsets.  Built per level from the (possibly compacted) evaluation
    matrix in bounded column chunks so the dense transient stays small.
    """

    def __init__(self, words: np.ndarray, num_rows: int) -> None:
        self.words = words
        self.num_rows = num_rows

    @property
    def nbytes(self) -> int:
        return int(self.words.nbytes)

    @classmethod
    def from_matrix(
        cls, matrix: sp.spmatrix, col_chunk: int = 1024
    ) -> "BitsetTable":
        num_rows, num_cols = matrix.shape
        csc = matrix.tocsc()
        blocks = []
        for start in range(0, num_cols, col_chunk):
            dense = csc[:, start : start + col_chunk].toarray()
            blocks.append(pack_bool_rows(np.ascontiguousarray(dense.T) != 0))
        if blocks:
            words = np.vstack(blocks)
        else:
            words = np.zeros((0, num_packed_words(num_rows)), dtype=np.uint64)
        return cls(words, num_rows)

    def candidate_words(self, keys: np.ndarray) -> np.ndarray:
        """AND the column bitsets of each key row (``num_cands x L``)."""
        # Fancy indexing yields a fresh array, so the ANDs run in place.
        words = self.words[keys[:, 0]]
        for column in range(1, keys.shape[1]):
            words &= self.words[keys[:, column]]
        return words


def words_block_stats(
    words: np.ndarray,
    errors: np.ndarray,
    num_rows: int,
    track_rows: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
    """``(ss, se, sm, row-any)`` of a block of candidate indicator bitsets.

    Bitwise identical to the sparse ``_block_stats`` (see the module
    docstring for the exactness argument).
    """
    num_slices = words.shape[0]
    counts = popcount_rows(words)
    sizes = counts.astype(np.float64)
    slice_errors = np.zeros(num_slices, dtype=np.float64)
    max_errors = np.zeros(num_slices, dtype=np.float64)
    covered: np.ndarray | None = None
    if num_slices and counts.any():
        bits = unpack_bool_rows(words, num_rows)
        slice_idx, row_idx = np.nonzero(bits)
        member_errors = errors[row_idx]
        # bincount's C loop (`out[slice] += error` in input order) performs
        # the exact per-slice sequential additions of scipy's csc_matvec;
        # add.reduceat would round differently (pairwise) on long slices.
        slice_errors = np.bincount(
            slice_idx, weights=member_errors, minlength=num_slices
        )
        offsets = np.zeros(num_slices + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        # reduceat treats an empty segment as [start, start+1); passing only
        # the starts of non-empty segments sidesteps that — consecutive
        # non-empty starts delimit exactly the member runs.  Max is order-
        # independent, so reduceat is exact here.
        nonempty = np.flatnonzero(counts > 0)
        starts = offsets[nonempty]
        member_max = np.maximum.reduceat(member_errors, starts)
        partial = counts[nonempty] < num_rows
        max_errors[nonempty] = np.where(
            partial, np.maximum(member_max, 0.0), member_max
        )
    if track_rows:
        if num_slices:
            covered = unpack_bool_rows(
                np.bitwise_or.reduce(words, axis=0)[np.newaxis, :], num_rows
            )[0]
        else:
            covered = np.zeros(num_rows, dtype=bool)
    return sizes, slice_errors, max_errors, covered


def choose_backend(
    requested: str,
    *,
    num_rows: int,
    num_cols: int,
    num_candidates: int,
    binary_data: bool,
    cache_ready: bool,
    max_table_bytes: int | None = None,
) -> str:
    """Resolve the backend for one level's evaluation (the cost model).

    Preconditions are enforced here, not merely preferred: non-0/1 data
    always runs sparse, ``bitset`` needs the packed table to fit its byte
    cap, and ``incremental`` needs a ready parent cache (*cache_ready*
    already folds in that any cache misses could be served by a fitting
    table).  ``auto`` additionally requires the indicator work to clear
    :data:`MIN_BITSET_CELLS` so tiny levels keep the cheap sparse path.
    """
    if requested not in BACKENDS:
        raise ValidationError(
            f"unknown kernel backend {requested!r}; expected one of {BACKENDS}"
        )
    if requested == "sparse" or not binary_data:
        return "sparse"
    cap = MAX_TABLE_BYTES if max_table_bytes is None else max_table_bytes
    fits = estimate_table_bytes(num_rows, num_cols) <= cap
    if requested == "bitset":
        return "bitset" if fits else "sparse"
    if requested == "incremental":
        if cache_ready:
            return "incremental"
        return "bitset" if fits else "sparse"
    cells = num_rows * num_candidates
    if cache_ready and cells >= MIN_BITSET_CELLS:
        return "incremental"
    if fits and cells >= MIN_BITSET_CELLS and num_candidates >= MIN_BITSET_CANDIDATES:
        return "bitset"
    return "sparse"


class IndicatorCache:
    """Byte-capped store of the previous level's evaluated indicator bitsets.

    Blocks are appended strictly in evaluation order, so row ``p`` of the
    promoted table is the indicator of the ``p``-th evaluated slice — the
    exact array the next level's parent ids (from
    :func:`repro.core.pairs.get_pair_candidates`) index into.  Once the cap
    trips, appending stops for the level: the stored *prefix* stays usable
    (a candidate is a hit only when both parents fall inside it) and
    alignment is never broken by holes.
    """

    def __init__(self, max_bytes: int | None = None) -> None:
        self.max_bytes = MAX_CACHE_BYTES if max_bytes is None else max_bytes
        self.parent_words: np.ndarray | None = None
        #: data rows the parent bitsets cover (must match the level's X)
        self.parent_rows = 0
        self._pending: list[np.ndarray] = []
        self._pending_bytes = 0
        self._pending_rows = 0
        self._truncated = False

    @property
    def ready(self) -> bool:
        return self.parent_words is not None

    @property
    def stored_parents(self) -> int:
        return 0 if self.parent_words is None else int(self.parent_words.shape[0])

    def begin_level(self, num_rows: int) -> None:
        """Reset the pending store for a level evaluating over *num_rows*."""
        self._pending = []
        self._pending_bytes = 0
        self._pending_rows = num_rows
        self._truncated = False

    def store(self, words: np.ndarray) -> None:
        """Append one evaluated block's bitsets (in evaluation order)."""
        if self._truncated:
            return
        if self._pending_bytes + words.nbytes > self.max_bytes:
            self._truncated = True
            return
        self._pending.append(words)
        self._pending_bytes += int(words.nbytes)

    def end_level(self) -> None:
        """Promote this level's blocks to the parent table.

        Always replaces the previous table — even with ``None`` when the
        level ran sparse or stored nothing — because a stale table would be
        misaligned with the slices the next level's parent ids reference.
        """
        if self._pending:
            self.parent_words = (
                self._pending[0]
                if len(self._pending) == 1
                else np.vstack(self._pending)
            )
            self.parent_rows = self._pending_rows
        else:
            self.parent_words = None
            self.parent_rows = 0
        self._pending = []
        self._pending_bytes = 0
        self._truncated = False

    def select_rows(self, alive: np.ndarray, chunk: int = 4096) -> None:
        """Re-pack the parent bitsets to the surviving data rows *alive*.

        Row compaction drops data rows between levels; the cached
        indicators must follow or every AND would mix misaligned rows.
        Done in bounded row chunks (unpack -> select columns -> repack).
        """
        if self.parent_words is None:
            return
        num_parents = self.parent_words.shape[0]
        new_words = np.empty(
            (num_parents, num_packed_words(alive.size)), dtype=np.uint64
        )
        for start in range(0, num_parents, chunk):
            bits = unpack_bool_rows(
                self.parent_words[start : start + chunk], self.parent_rows
            )
            new_words[start : start + bits.shape[0]] = pack_bool_rows(
                bits[:, alive]
            )
        self.parent_words = new_words
        self.parent_rows = int(alive.size)


class KernelState:
    """Per-run backend selection and indicator-cache lifecycle.

    The enumeration driver owns one instance; per level it calls
    :meth:`select_rows` (after row compaction), :meth:`begin_level` (which
    runs the cost model and builds the packed column table when needed) and
    :meth:`end_level` (which promotes this level's cached indicators).
    Between those, the evaluation kernels call :meth:`chunk_words` to
    materialize candidate indicator bitsets.
    """

    def __init__(
        self,
        backend: str = "auto",
        max_table_bytes: int | None = None,
        max_cache_bytes: int | None = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValidationError(
                f"unknown kernel backend {backend!r}; expected one of {BACKENDS}"
            )
        self.requested = backend
        self.max_table_bytes = (
            MAX_TABLE_BYTES if max_table_bytes is None else max_table_bytes
        )
        self.cache = IndicatorCache(max_bytes=max_cache_bytes)
        self.backend = "sparse"
        self.table: BitsetTable | None = None
        self._x_eval: sp.spmatrix | None = None
        self._storing = False

    def begin_level(
        self,
        x_eval: sp.spmatrix,
        level: int,
        num_candidates: int,
        parents: np.ndarray | None = None,
        slices_binary: bool = True,
    ) -> str:
        """Choose and prepare the backend for one level; returns its name."""
        num_rows, num_cols = x_eval.shape
        binary = slices_binary and is_binary_matrix(x_eval)
        cache_ready = False
        if (
            binary
            and parents is not None
            and self.cache.ready
            and self.cache.parent_rows == num_rows
        ):
            # Misses (parents past the cache's stored prefix) are served
            # from the column table, so a cache with misses is only "ready"
            # when that table would fit.
            all_hits = bool((parents < self.cache.stored_parents).all())
            cache_ready = all_hits or (
                estimate_table_bytes(num_rows, num_cols) <= self.max_table_bytes
            )
        self.backend = choose_backend(
            self.requested,
            num_rows=num_rows,
            num_cols=num_cols,
            num_candidates=num_candidates,
            binary_data=binary,
            cache_ready=cache_ready,
            max_table_bytes=self.max_table_bytes,
        )
        self.table = None
        self._x_eval = None
        if self.backend == "bitset":
            self.table = BitsetTable.from_matrix(x_eval)
        elif self.backend == "incremental":
            # Build the miss-serving table lazily (begin_level already
            # guaranteed it would fit if any miss exists).
            self._x_eval = x_eval
        # Cache next level's parents only when a future incremental level
        # could consume them: an explicit "bitset"/"sparse" request never
        # will, and the words computed this level would be wasted memory.
        self._storing = self.backend in ("bitset", "incremental") and (
            self.requested in ("auto", "incremental")
        )
        if self._storing:
            self.cache.begin_level(num_rows)
        return self.backend

    def _miss_table(self) -> BitsetTable:
        if self.table is None:
            self.table = BitsetTable.from_matrix(self._x_eval)
        return self.table

    def prepare_chunks(self, parents: np.ndarray | None) -> None:
        """Build any lazily needed table *before* threaded chunk mapping.

        :meth:`chunk_words` must be thread-safe; materializing the miss
        table up front keeps it read-only inside worker threads.
        """
        if self.backend != "incremental" or parents is None:
            return
        if not bool((parents < self.cache.stored_parents).all()):
            self._miss_table()

    def chunk_words(
        self, keys: np.ndarray, parents: np.ndarray | None
    ) -> tuple[np.ndarray, int, int]:
        """Indicator bitsets for one candidate chunk: ``(words, hits, misses)``.

        *keys* are the candidates' sorted predicate-column indices
        (``num_cands x L``); *parents* their two parent row ids in the
        previous level's evaluated-slice order (incremental backend only).
        """
        if self.backend == "bitset" or parents is None:
            return self.table.candidate_words(keys), 0, 0
        stored = self.cache.stored_parents
        hit = (parents < stored).all(axis=1)
        num_hits = int(np.count_nonzero(hit))
        num_misses = int(hit.size - num_hits)
        if num_misses == 0:
            words = (
                self.cache.parent_words[parents[:, 0]]
                & self.cache.parent_words[parents[:, 1]]
            )
        else:
            num_words = num_packed_words(self.cache.parent_rows)
            words = np.empty((keys.shape[0], num_words), dtype=np.uint64)
            if num_hits:
                hit_idx = np.flatnonzero(hit)
                words[hit_idx] = (
                    self.cache.parent_words[parents[hit_idx, 0]]
                    & self.cache.parent_words[parents[hit_idx, 1]]
                )
            miss_idx = np.flatnonzero(~hit)
            words[miss_idx] = self._miss_table().candidate_words(keys[miss_idx])
        return words, num_hits, num_misses

    def store_words(self, words: np.ndarray) -> None:
        """Append one evaluated chunk's bitsets for the next level's cache."""
        if self._storing:
            self.cache.store(words)

    def end_level(self) -> None:
        """Finish one level: promote (or clear) the parent-indicator cache."""
        self.table = None
        self._x_eval = None
        if self._storing:
            self.cache.end_level()
        else:
            # A level that ran sparse (or never stored) invalidates the
            # cache: its rows would be misaligned with the next level's
            # parent ids.
            self.cache.parent_words = None
            self.cache.parent_rows = 0
        self._storing = False

    def select_rows(self, alive: np.ndarray | None) -> None:
        """Re-align the parent cache after row compaction (no-op on None)."""
        if alive is not None:
            self.cache.select_rows(alive)


__all__ = [
    "BACKENDS",
    "BITSET_CHUNK",
    "MAX_CACHE_BYTES",
    "MAX_TABLE_BYTES",
    "MIN_BITSET_CANDIDATES",
    "MIN_BITSET_CELLS",
    "BitsetTable",
    "IndicatorCache",
    "KernelState",
    "choose_backend",
    "estimate_table_bytes",
    "is_binary_matrix",
    "num_packed_words",
    "pack_bool_rows",
    "popcount_rows",
    "unpack_bool_rows",
    "words_block_stats",
]
