"""Sparse-matrix helpers shared by the linear-algebra primitives.

These wrap the handful of scipy.sparse idioms (format normalization, density
inspection, stacking) that the core algorithm needs, so that the rest of the
package never has to reason about matrix formats.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro._typing import Matrix
from repro.exceptions import ShapeError


def is_sparse(matrix: Matrix) -> bool:
    """Return ``True`` when *matrix* is any scipy sparse container."""
    return sp.issparse(matrix)


def as_csr(matrix: Matrix, dtype=None) -> sp.csr_matrix:
    """Normalize *matrix* to CSR format (copying only when needed).

    CSR is the canonical format for the row-oriented operations in the
    enumeration algorithm (row sums, row slicing, ``X @ S.T``).
    """
    if sp.issparse(matrix):
        result = matrix.tocsr()
    else:
        result = sp.csr_matrix(np.asarray(matrix))
    if dtype is not None and result.dtype != dtype:
        result = result.astype(dtype)
    return result


def to_dense(matrix: Matrix) -> np.ndarray:
    """Return a dense 2-D numpy array view/copy of *matrix*."""
    if sp.issparse(matrix):
        return np.asarray(matrix.todense())
    return np.asarray(matrix)


def density(matrix: Matrix) -> float:
    """Fraction of non-zero cells in *matrix* (0.0 for an empty matrix)."""
    rows, cols = matrix.shape
    cells = rows * cols
    if cells == 0:
        return 0.0
    if sp.issparse(matrix):
        return matrix.nnz / cells
    return float(np.count_nonzero(matrix)) / cells


def ensure_vector(values, length: int | None = None, name: str = "vector") -> np.ndarray:
    """Coerce *values* to a contiguous 1-D float64 array, checking length.

    Raises :class:`ShapeError` when the input is not one-dimensional (column
    vectors of shape ``(n, 1)`` are accepted and flattened) or when *length*
    is given and does not match.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 2 and 1 in arr.shape:
        arr = arr.ravel()
    if arr.ndim != 1:
        raise ShapeError(f"{name} must be 1-D, got shape {arr.shape}")
    if length is not None and arr.shape[0] != length:
        raise ShapeError(f"{name} must have length {length}, got {arr.shape[0]}")
    return np.ascontiguousarray(arr)


def vstack_rows(top: Matrix, bottom: Matrix) -> Matrix:
    """Stack two matrices row-wise, preserving sparsity when either is sparse.

    Mirrors the ``rbind(TS, S)`` step of the paper's top-K maintenance.
    """
    if top.shape[1] != bottom.shape[1]:
        raise ShapeError(
            f"cannot rbind: column counts differ ({top.shape[1]} vs {bottom.shape[1]})"
        )
    if sp.issparse(top) or sp.issparse(bottom):
        return sp.vstack([as_csr(top), as_csr(bottom)], format="csr")
    return np.vstack([np.asarray(top), np.asarray(bottom)])
