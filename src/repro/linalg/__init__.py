"""DML/R-style linear-algebra primitives on numpy and scipy.sparse.

The SliceLine paper expresses its enumeration algorithm in the vocabulary of
an ML system's linear-algebra language (SystemDS DML / R): ``colMaxs``,
``cumsum``, ``table(rix, cix)``, ``removeEmpty``, ``upper.tri``,
``rowIndexMax`` and friends.  This subpackage implements those primitives on
top of numpy / scipy.sparse so the core algorithm in :mod:`repro.core` can be
written as a near-literal transcription of Algorithm 1 of the paper.
"""

from repro.linalg.ops import (
    col_maxs,
    col_mins,
    col_sums,
    contingency_table,
    cumsum,
    cumprod,
    iter_upper_tri_pair_chunks,
    one_hot_encode,
    pack_rows_mixed_radix,
    remove_empty_rows,
    row_index_max,
    row_maxs,
    row_nnz,
    row_sums,
    selection_matrix,
    upper_tri_pairs,
    upper_tri_pairs_in_range,
)
from repro.linalg.sparse import (
    as_csr,
    density,
    ensure_vector,
    is_sparse,
    to_dense,
    vstack_rows,
)
from repro.linalg.blocks import (
    BlockedMatrix,
    cell_bounded_partitions,
    row_partitions,
)
from repro.linalg.kernels import (
    BACKENDS,
    BitsetTable,
    IndicatorCache,
    KernelState,
    choose_backend,
    pack_bool_rows,
    popcount_rows,
    unpack_bool_rows,
    words_block_stats,
)
from repro.linalg.workspace import KernelWorkspace, resolve_workspace

__all__ = [
    "BACKENDS",
    "BitsetTable",
    "IndicatorCache",
    "KernelState",
    "choose_backend",
    "pack_bool_rows",
    "popcount_rows",
    "unpack_bool_rows",
    "words_block_stats",
    "col_maxs",
    "col_mins",
    "col_sums",
    "contingency_table",
    "cumsum",
    "cumprod",
    "iter_upper_tri_pair_chunks",
    "one_hot_encode",
    "pack_rows_mixed_radix",
    "remove_empty_rows",
    "row_index_max",
    "row_maxs",
    "row_nnz",
    "row_sums",
    "selection_matrix",
    "upper_tri_pairs",
    "upper_tri_pairs_in_range",
    "as_csr",
    "density",
    "ensure_vector",
    "is_sparse",
    "to_dense",
    "vstack_rows",
    "BlockedMatrix",
    "cell_bounded_partitions",
    "row_partitions",
    "KernelWorkspace",
    "resolve_workspace",
]
