"""Block-partitioned matrices for the simulated distributed backend.

SystemDS executes distributed operations on block-partitioned
(``1K x 1K``) matrices spread over Spark executors.  For the scalability
experiments (Figure 7, Table 2) we model the same structure: a matrix is
split into row partitions, each partition is owned by a (simulated) worker,
and data-parallel operations map over partitions and merge partial results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro._typing import Matrix
from repro.exceptions import ValidationError
from repro.linalg.sparse import as_csr


def row_partitions(num_rows: int, num_parts: int) -> list[tuple[int, int]]:
    """Split ``[0, num_rows)`` into *num_parts* contiguous ``(start, stop)`` ranges.

    Partition sizes differ by at most one row; empty partitions are dropped,
    so fewer ranges than *num_parts* may be returned for tiny matrices.
    """
    if num_parts <= 0:
        raise ValidationError("num_parts must be positive")
    bounds = np.linspace(0, num_rows, num_parts + 1).astype(np.int64)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(num_parts)
        if bounds[i + 1] > bounds[i]
    ]


def cell_bounded_partitions(
    num_rows: int, num_cols: int, max_cells: int, min_parts: int = 1
) -> list[tuple[int, int]]:
    """Contiguous row ranges whose per-range ``rows x num_cols`` footprint
    stays at or below *max_cells*, with at least *min_parts* ranges.

    The pair join and the blocked kernels both size their work units by the
    dense footprint of one range (``range_rows * num_cols`` matrix cells);
    *min_parts* additionally forces enough ranges to feed a thread pool.
    Ranges are balanced (sizes differ by at most one row) so parallel maps
    over them see near-uniform task costs.  Never returns more ranges than
    rows; empty inputs return no ranges.
    """
    if max_cells < 1:
        raise ValidationError("max_cells must be positive")
    if min_parts < 1:
        raise ValidationError("min_parts must be positive")
    if num_rows <= 0:
        return []
    rows_per_part = max(1, max_cells // max(num_cols, 1))
    parts = -(-num_rows // rows_per_part)  # ceil division
    parts = min(max(parts, min_parts), num_rows)
    return row_partitions(num_rows, parts)


@dataclass
class BlockedMatrix:
    """A row-partitioned sparse matrix emulating a distributed collection.

    Each block plays the role of one HDFS/Spark partition.  Operations that
    the distributed slice evaluation needs — broadcast matrix multiply and
    per-block reductions — are provided as methods that map over blocks so an
    executor can schedule them independently.
    """

    blocks: list[sp.csr_matrix] = field(default_factory=list)

    @classmethod
    def from_matrix(cls, matrix: Matrix, num_parts: int) -> "BlockedMatrix":
        """Partition *matrix* row-wise into *num_parts* CSR blocks."""
        csr = as_csr(matrix)
        parts = row_partitions(csr.shape[0], num_parts)
        return cls(blocks=[csr[start:stop] for start, stop in parts])

    @property
    def shape(self) -> tuple[int, int]:
        if not self.blocks:
            return (0, 0)
        return (sum(b.shape[0] for b in self.blocks), self.blocks[0].shape[1])

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def block_row_ranges(self) -> list[tuple[int, int]]:
        """Global ``(start, stop)`` row range of each block."""
        ranges = []
        offset = 0
        for block in self.blocks:
            ranges.append((offset, offset + block.shape[0]))
            offset += block.shape[0]
        return ranges

    def to_matrix(self) -> sp.csr_matrix:
        """Reassemble the full matrix (the inverse of :meth:`from_matrix`)."""
        if not self.blocks:
            return sp.csr_matrix((0, 0))
        return sp.vstack(self.blocks, format="csr")

    def broadcast_matmul(self, other: Matrix) -> list[sp.csr_matrix]:
        """Per-block products ``block @ other`` (broadcast-based matmul).

        This mirrors the paper's "broadcast S to all nodes and scan X in a
        data-local manner": *other* plays the broadcast side, each returned
        entry is the partial result produced on one worker.
        """
        rhs = as_csr(other)
        if self.blocks and self.blocks[0].shape[1] != rhs.shape[0]:
            raise ValidationError(
                "broadcast_matmul: inner dimensions do not match"
            )
        return [block @ rhs for block in self.blocks]

    def map_reduce(self, mapper, reducer):
        """Apply *mapper* to every block and fold partials with *reducer*."""
        partials = [mapper(block) for block in self.blocks]
        if not partials:
            raise ValidationError("map_reduce over an empty BlockedMatrix")
        result = partials[0]
        for part in partials[1:]:
            result = reducer(result, part)
        return result
