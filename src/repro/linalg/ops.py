"""DML/R-style primitives used by the SliceLine enumeration algorithm.

Each function mirrors one primitive from the paper's pseudo-code:

==================  =====================================================
Paper / DML         Here
==================  =====================================================
``colMaxs(X)``      :func:`col_maxs`
``colSums(X)``      :func:`col_sums`
``cumsum(v)``       :func:`cumsum`
``cumprod(v)``      :func:`cumprod`
``table(rix,cix)``  :func:`contingency_table` / :func:`one_hot_encode`
``removeEmpty``     :func:`remove_empty_rows`
``rowIndexMax``     :func:`row_index_max`
``rowMaxs``         :func:`row_maxs`
``upper.tri(...)``  :func:`upper_tri_pairs`
``P = table(...)``  :func:`selection_matrix`
==================  =====================================================

All functions accept dense arrays or scipy sparse matrices and return dense
1-D arrays for reductions and CSR matrices for matrix-valued results.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro._typing import Matrix
from repro.exceptions import ShapeError, ValidationError
from repro.linalg.sparse import as_csr

# Row-chunk budget (in matrix cells) for the chunked dense comparisons inside
# upper_tri_pairs; bounds peak memory at ~64 MiB of float64 per chunk.
_PAIR_CHUNK_CELLS = 8_000_000


def col_sums(matrix: Matrix) -> np.ndarray:
    """Column sums as a 1-D float64 array (``colSums`` in DML)."""
    if sp.issparse(matrix):
        return np.asarray(matrix.sum(axis=0), dtype=np.float64).ravel()
    return np.asarray(matrix, dtype=np.float64).sum(axis=0)


def row_sums(matrix: Matrix) -> np.ndarray:
    """Row sums as a 1-D float64 array (``rowSums`` in DML)."""
    if sp.issparse(matrix):
        return np.asarray(matrix.sum(axis=1), dtype=np.float64).ravel()
    return np.asarray(matrix, dtype=np.float64).sum(axis=1)


def col_maxs(matrix: Matrix) -> np.ndarray:
    """Column maxima as a 1-D array (``colMaxs``), including implicit zeros."""
    if matrix.shape[0] == 0:
        raise ValidationError("col_maxs of a matrix with zero rows is undefined")
    if sp.issparse(matrix):
        return np.asarray(matrix.tocsc().max(axis=0).todense()).ravel()
    return np.asarray(matrix).max(axis=0)


def col_mins(matrix: Matrix) -> np.ndarray:
    """Column minima as a 1-D array (``colMins``), including implicit zeros."""
    if matrix.shape[0] == 0:
        raise ValidationError("col_mins of a matrix with zero rows is undefined")
    if sp.issparse(matrix):
        return np.asarray(matrix.tocsc().min(axis=0).todense()).ravel()
    return np.asarray(matrix).min(axis=0)


def row_maxs(matrix: Matrix) -> np.ndarray:
    """Row maxima as a 1-D array (``rowMaxs``), including implicit zeros."""
    if matrix.shape[1] == 0:
        raise ValidationError("row_maxs of a matrix with zero columns is undefined")
    if sp.issparse(matrix):
        return np.asarray(matrix.tocsr().max(axis=1).todense()).ravel()
    return np.asarray(matrix).max(axis=1)


def row_nnz(matrix: Matrix) -> np.ndarray:
    """Number of non-zero entries per row as an ``int64`` vector.

    For a 0/1 candidate-slice matrix ``S`` this is the lattice level of each
    slice (its predicate count) — what the mixed-level evaluation of
    :func:`repro.core.evaluate.evaluate_slice_set` groups rows by.
    """
    if sp.issparse(matrix):
        return np.diff(as_csr(matrix).indptr).astype(np.int64)
    return np.count_nonzero(np.asarray(matrix), axis=1).astype(np.int64)


def row_index_max(matrix: Matrix) -> np.ndarray:
    """Per-row index of the maximum value (``rowIndexMax``), 0-based.

    For an all-zero sparse row the result is 0 (the first column), matching
    DML's convention of returning the first index; callers combine this with
    :func:`row_maxs` to mask such rows out.
    """
    if sp.issparse(matrix):
        return np.asarray(matrix.tocsr().argmax(axis=1)).ravel()
    return np.asarray(matrix).argmax(axis=1)


def cumsum(values) -> np.ndarray:
    """Cumulative sum of a 1-D vector (``cumsum``)."""
    return np.cumsum(np.asarray(values))


def cumprod(values) -> np.ndarray:
    """Cumulative product of a 1-D vector (``cumprod``).

    Uses ``object`` dtype when the exact product may overflow int64 so the
    ND-array-index deduplication of Section 4.3 never wraps around.
    """
    arr = np.asarray(values)
    if np.issubdtype(arr.dtype, np.integer):
        # Exact integer cumprod: fall back to Python ints on overflow risk.
        log_sum = np.sum(np.log2(np.maximum(arr.astype(np.float64), 1.0)))
        if log_sum >= 62:
            return np.cumprod(arr.astype(object))
    return np.cumprod(arr)


def contingency_table(
    rix: np.ndarray, cix: np.ndarray, nrow: int, ncol: int
) -> sp.csr_matrix:
    """Sparse contingency table ``table(rix, cix)`` with explicit dimensions.

    Counts each (row, column) index pair; indices are 0-based here (the
    paper's pseudo-code is 1-based).
    """
    rix = np.asarray(rix, dtype=np.int64).ravel()
    cix = np.asarray(cix, dtype=np.int64).ravel()
    if rix.shape != cix.shape:
        raise ShapeError("rix and cix must have identical lengths")
    data = np.ones(rix.shape[0], dtype=np.float64)
    table = sp.coo_matrix((data, (rix, cix)), shape=(nrow, ncol))
    table.sum_duplicates()
    return table.tocsr()


def one_hot_encode(
    x0: np.ndarray, feature_offsets: np.ndarray, num_columns: int
) -> sp.csr_matrix:
    """One-hot encode an integer matrix via the paper's ``table`` trick.

    ``x0`` is the 1-based integer-encoded ``n x m`` feature matrix; column
    ``j`` maps code ``v`` to one-hot column ``feature_offsets[j] + v - 1``.
    Returns the sparse 0/1 matrix ``X`` of shape ``(n, num_columns)``.
    Entries with code ``0`` (missing) produce no one-hot entry.
    """
    x0 = np.asarray(x0)
    if x0.ndim != 2:
        raise ShapeError(f"x0 must be a 2-D matrix, got shape {x0.shape}")
    n, m = x0.shape
    offsets = np.asarray(feature_offsets, dtype=np.int64)
    if offsets.shape[0] != m:
        raise ShapeError("feature_offsets must have one entry per column of x0")
    rows = np.repeat(np.arange(n, dtype=np.int64), m)
    cols = (x0.astype(np.int64) + offsets[np.newaxis, :] - 1).ravel()
    present = (x0 > 0).ravel()
    if not np.all(present):
        rows, cols = rows[present], cols[present]
    if cols.size and (cols.min() < 0 or cols.max() >= num_columns):
        raise ValidationError(
            "one-hot column index out of range; x0 codes must be 1-based and "
            "bounded by the per-feature domain"
        )
    data = np.ones(rows.shape[0], dtype=np.float64)
    return sp.coo_matrix((data, (rows, cols)), shape=(n, num_columns)).tocsr()


def pack_rows_mixed_radix(rows: np.ndarray, base: int) -> np.ndarray | None:
    """Pack integer key rows into scalar mixed-radix IDs (most significant
    digit first) — the 1-D realization of the paper's ND-array slice index.

    *rows* is a ``num_keys x width`` matrix of digits in ``[0, base)``.
    Returns ``None`` when ``base ** width`` does not fit in ``int64`` (the
    caller falls back to row-wise comparison); otherwise an ``int64`` vector
    whose ordering is exactly the lexicographic ordering of the rows, so
    ``np.unique`` on the packed IDs is interchangeable with the much slower
    ``np.unique(rows, axis=0)``.
    """
    rows = np.asarray(rows)
    if rows.ndim != 2:
        raise ShapeError(f"rows must be 2-D, got shape {rows.shape}")
    num_keys, width = rows.shape
    if base < 1:
        raise ValidationError("pack_rows_mixed_radix requires base >= 1")
    if width == 0:
        return np.zeros(num_keys, dtype=np.int64)
    # Exact Python-int overflow check: the largest ID is base**width - 1.
    if base**width > np.iinfo(np.int64).max:
        return None
    packed = rows[:, 0].astype(np.int64, copy=True)
    for column in range(1, width):
        packed *= base
        packed += rows[:, column]
    return packed


def remove_empty_rows(
    matrix: Matrix, select: np.ndarray | None = None
) -> tuple[Matrix, np.ndarray]:
    """``removeEmpty(target, margin="rows", select)`` with kept-index output.

    When *select* is given it is a boolean/0-1 vector choosing rows directly;
    otherwise rows whose entries are all zero are dropped.  Returns the
    filtered matrix and the original row indices that were kept.
    """
    if select is not None:
        keep = np.flatnonzero(np.asarray(select).ravel())
    else:
        keep = np.flatnonzero(row_sums(abs_matrix(matrix)) > 0)
    if sp.issparse(matrix):
        return matrix.tocsr()[keep], keep
    return np.asarray(matrix)[keep], keep


def abs_matrix(matrix: Matrix) -> Matrix:
    """Element-wise absolute value preserving sparsity."""
    if sp.issparse(matrix):
        return abs(matrix)
    return np.abs(np.asarray(matrix))


def selection_matrix(indices: np.ndarray, num_source_rows: int) -> sp.csr_matrix:
    """Build the extraction matrix ``P = table(seq(1,k), indices)``.

    ``P @ M`` then selects (and reorders) the rows of ``M`` named by
    *indices* — the paper uses this to materialize ``P1``/``P2`` for pair
    construction and the final top-K extraction.
    """
    idx = np.asarray(indices, dtype=np.int64).ravel()
    if idx.size and (idx.min() < 0 or idx.max() >= num_source_rows):
        raise ValidationError("selection index out of range")
    data = np.ones(idx.shape[0], dtype=np.float64)
    rows = np.arange(idx.shape[0], dtype=np.int64)
    return sp.coo_matrix(
        (data, (rows, idx)), shape=(idx.shape[0], num_source_rows)
    ).tocsr()


def upper_tri_pairs_in_range(
    s: sp.csr_matrix,
    st: sp.csc_matrix,
    start: int,
    stop: int,
    overlap: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Matches ``(i, j)`` with ``start <= i < stop``, ``i < j``, dot == *overlap*.

    The per-row-range slice of the paper's
    ``upper.tri((S %*% t(S)) == (L-2))``: *s* is the canonical CSR slice
    matrix, *st* its CSC transpose (built once by the caller so every range
    shares it).  Ranges are pure — no shared mutable state — so the pair
    join can map them over a thread pool; concatenating the results in
    range order reproduces the full-scan row-major match order exactly.
    ``overlap == 0`` is handled correctly (implicit zeros of the sparse
    Gram matrix count as matches).
    """
    product = s[start:stop] @ st
    if overlap == 0:
        # Only the dense comparison sees the Gram matrix's implicit
        # zeros, which DO count as matches when overlap == 0 (two
        # fully disjoint slices have dot product 0 without a stored
        # entry).  Positive overlaps never need this: every stored
        # entry of the 0/1 Gram matrix is positive, so an implicit
        # zero cannot equal overlap >= 1.
        match = product.toarray() == overlap
        local_rows, cols = np.nonzero(match)
    else:
        product = product.tocsr()
        # Canonical CSR order makes the stored-entry scan emit matches
        # in the same row-major, column-ascending order as np.nonzero
        # on the dense comparison.
        product.sort_indices()
        mask = product.data == overlap
        local_rows = np.repeat(
            np.arange(product.shape[0], dtype=np.int64),
            np.diff(product.indptr),
        )[mask]
        cols = product.indices[mask].astype(np.int64, copy=False)
    # Keep strictly-upper-triangular entries: global row < column.
    global_rows = local_rows + start
    upper = cols > global_rows
    if not upper.any():
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return (
        global_rows[upper].astype(np.int64, copy=False),
        cols[upper].astype(np.int64, copy=False),
    )


def iter_upper_tri_pair_chunks(slices: Matrix, overlap: float):
    """Yield ``(i, j)`` index-array chunks with ``i < j`` and dot product == *overlap*.

    Implements ``I = upper.tri((S %*% t(S)) == (L-2), values=TRUE)`` from the
    paper's pair-construction step without ever materializing the full
    ``nr x nr`` Gram matrix: rows are processed in chunks whose dense
    footprint stays below a fixed budget, and matches are yielded chunk by
    chunk so callers can stream them (the full match set can be huge on
    feature-rich data).  Each chunk is one :func:`upper_tri_pairs_in_range`
    call; the parallel pair pipeline in :mod:`repro.core.pairs` maps those
    ranges over a thread pool instead of iterating them here.
    """
    s = as_csr(slices)
    nr = s.shape[0]
    if nr < 2:
        return
    st = s.T.tocsc()
    chunk = max(1, _PAIR_CHUNK_CELLS // max(nr, 1))
    for start in range(0, nr - 1, chunk):
        stop = min(start + chunk, nr - 1)
        rows, cols = upper_tri_pairs_in_range(s, st, start, stop, overlap)
        if rows.size:
            yield rows, cols


def upper_tri_pairs(slices: Matrix, overlap: float) -> tuple[np.ndarray, np.ndarray]:
    """All row pairs ``(i, j)`` with ``i < j`` whose dot product equals *overlap*.

    Materialized convenience wrapper around
    :func:`iter_upper_tri_pair_chunks`; prefer the iterator when the match
    count may be large.
    """
    rows_out: list[np.ndarray] = []
    cols_out: list[np.ndarray] = []
    for rows, cols in iter_upper_tri_pair_chunks(slices, overlap):
        rows_out.append(rows)
        cols_out.append(cols)
    if not rows_out:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(rows_out), np.concatenate(cols_out)
