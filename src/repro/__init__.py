"""SliceLine reproduction: fast, linear-algebra-based slice finding.

Reproduces Sagadeeva & Boehm, "SliceLine: Fast, Linear-Algebra-based Slice
Finding for ML Model Debugging" (SIGMOD 2021) as a self-contained Python
library on numpy/scipy.sparse.

Quickstart
----------
>>> from repro import SliceLine
>>> finder = SliceLine(k=4, alpha=0.95)
>>> finder.fit(x0, errors)                         # doctest: +SKIP
>>> print(finder.report())                         # doctest: +SKIP
"""

from repro.core import (
    FeatureSpace,
    PruningConfig,
    Slice,
    SliceLine,
    SliceLineConfig,
    SliceLineResult,
    slice_line,
)
from repro.resilience import (
    BatchQuarantine,
    BudgetConfig,
    ChaosInjector,
    FaultPlan,
    RetryPolicy,
)
from repro.serve import JobSpec, SliceService, TenantQuota
from repro.streaming import (
    MergeableSliceStats,
    MonitorTick,
    PredictionBatch,
    SliceMonitor,
)

__version__ = "1.0.0"

__all__ = [
    "FeatureSpace",
    "PruningConfig",
    "Slice",
    "SliceLine",
    "SliceLineConfig",
    "SliceLineResult",
    "slice_line",
    "BatchQuarantine",
    "BudgetConfig",
    "ChaosInjector",
    "FaultPlan",
    "RetryPolicy",
    "JobSpec",
    "SliceService",
    "TenantQuota",
    "MergeableSliceStats",
    "MonitorTick",
    "PredictionBatch",
    "SliceMonitor",
    "__version__",
]
