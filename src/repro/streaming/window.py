"""Windowing over prediction-log batches: ring buffer + subtract-free merge.

The window is a deque of live batches, each optionally carrying a cached
batch-level :class:`~repro.streaming.accumulator.MergeableSliceStats` for the
currently tracked slice set.  Eviction never *subtracts* a batch's statistics
from a running total — floating-point subtraction would reintroduce rounding
drift and break the exactness oracle; instead, window-level statistics are
always re-merged from the live batch accumulators, which is cheap because
each batch's accumulator is computed once per tracked-set version and then
reused until the batch falls out of the window.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import StreamingError
from repro.streaming.accumulator import MergeableSliceStats
from repro.streaming.batches import PredictionBatch, concat_batches

#: supported eviction policies
WINDOW_POLICIES = ("sliding", "tumbling")


@dataclass
class WindowEntry:
    """A live batch plus its cached tracked-slice accumulator.

    ``version`` tags which tracked-slice set the cached accumulator was
    evaluated for; the monitor bumps its version whenever the tracked set
    rotates, invalidating every cache at once without touching the entries.
    """

    batch: PredictionBatch
    accumulator: MergeableSliceStats | None = None
    version: int = -1


@dataclass
class StreamWindow:
    """Ring buffer of live batches under a sliding or tumbling policy.

    Sliding windows hold the ``size`` most recent batches (pushing the
    ``size+1``-th evicts the oldest); tumbling windows grow until the monitor
    consumes and :meth:`clear`-s them.  Feature count must stay constant
    across the stream.
    """

    size: int | None = None
    policy: str = "sliding"
    entries: deque = field(default_factory=deque)

    def __post_init__(self) -> None:
        if self.policy not in WINDOW_POLICIES:
            raise StreamingError(
                f"unknown window policy {self.policy!r}; "
                f"expected one of {WINDOW_POLICIES}"
            )
        if self.policy == "sliding":
            if self.size is None or self.size < 1:
                raise StreamingError("sliding windows need size >= 1")
        elif self.size is not None:
            raise StreamingError("tumbling windows are unbounded; omit size")

    def push(self, batch: PredictionBatch) -> list[WindowEntry]:
        """Append *batch*; returns the entries evicted by a sliding window."""
        if self.entries and batch.num_features != self.num_features:
            raise StreamingError(
                f"batch {batch.batch_id} has {batch.num_features} features "
                f"but the window holds {self.num_features}-feature batches"
            )
        self.entries.append(WindowEntry(batch=batch))
        evicted: list[WindowEntry] = []
        if self.policy == "sliding":
            while len(self.entries) > self.size:
                evicted.append(self.entries.popleft())
        return evicted

    def clear(self) -> None:
        """Drop every live batch (tumbling consumption)."""
        self.entries.clear()

    def concat(self) -> tuple[np.ndarray, np.ndarray]:
        """The live window as one ``(x0, errors)`` pair, in ingestion order."""
        return concat_batches([entry.batch for entry in self.entries])

    @property
    def num_features(self) -> int:
        if not self.entries:
            raise StreamingError("empty window has no feature count")
        return self.entries[0].batch.num_features

    @property
    def num_rows(self) -> int:
        return sum(entry.batch.num_rows for entry in self.entries)

    @property
    def batches(self) -> list[PredictionBatch]:
        return [entry.batch for entry in self.entries]

    def __len__(self) -> int:
        return len(self.entries)


__all__ = ["StreamWindow", "WindowEntry", "WINDOW_POLICIES"]
