"""Warm-start seed expansion: previous top-K plus all lattice ancestors.

Seeding a tick's enumeration with the previous window's winners raises the
score-pruning threshold before level 2 even starts; adding their *ancestors*
(every proper non-empty predicate subset) matters because a slice that slips
out of the top-K between ticks is usually replaced by a sibling reachable
through a shared ancestor — re-scoring the ancestors keeps those subtrees
alive in the priority order.  Exactness is untouched either way: seeds only
ever tighten the threshold, and Equation-3 pruning against a tightened
threshold is still exact (see :func:`repro.core.slice_line`).
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

from repro.core.types import Slice


def ancestor_slices(slice_: Slice) -> list[Slice]:
    """Every proper, non-empty predicate subset of *slice_*, as fresh slices.

    Returned ancestors carry zero statistics — the seeded run re-evaluates
    every seed on the current window anyway, so stale stats never leak.
    Order is deterministic: ascending subset size, then lexicographic by the
    (sorted) predicate items.
    """
    items = sorted(slice_.predicates.items())
    ancestors: list[Slice] = []
    for subset_size in range(1, len(items)):
        for combo in combinations(items, subset_size):
            ancestors.append(
                Slice(
                    predicates=dict(combo),
                    score=0.0,
                    error=0.0,
                    max_error=0.0,
                    size=0,
                )
            )
    return ancestors


def expand_seed_slices(slices: Sequence[Slice]) -> list[Slice]:
    """Deduplicated union of *slices* and all their ancestors.

    Originals come first (stats intact), ancestors after, both in
    deterministic order; duplicates — shared ancestors, or an original that
    is itself an ancestor of another — are kept once, first occurrence wins.
    """
    expanded: list[Slice] = []
    seen: set[frozenset] = set()
    for slice_ in slices:
        key = frozenset(slice_.predicates.items())
        if key and key not in seen:
            seen.add(key)
            expanded.append(slice_)
    for slice_ in slices:
        for ancestor in ancestor_slices(slice_):
            key = frozenset(ancestor.predicates.items())
            if key not in seen:
                seen.add(key)
                expanded.append(ancestor)
    return expanded


__all__ = ["ancestor_slices", "expand_seed_slices"]
