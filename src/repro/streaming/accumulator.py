"""Mergeable per-slice statistics: the streaming form of Equation 10.

Every statistic SliceLine scores a slice with is a plain sum or max over the
slice's rows — size ``|S|``, total error ``se``, and maximum tuple error
``sm`` (Section 2.2).  Sums and maxes are associative and commutative, so a
per-batch :class:`MergeableSliceStats` can be folded over any partitioning of
the rows and :meth:`merge` is *exactly* equal to recomputing the statistics
on the concatenated rows: integer sizes and maxima are always bitwise exact,
and the float error sums are bitwise exact whenever the per-row errors are
dyadic rationals (and equal up to summation-order rounding otherwise).

On top of the paper's triple we also accumulate the per-slice sum of squared
errors, which is what lets :mod:`repro.streaming.drift` run Welch's t-test
from summary statistics alone (``var = (se2 - se^2/n) / (n - 1)``) without
retaining raw rows.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.core.compaction import compact_slice_set
from repro.core.evaluate import evaluate_slice_set
from repro.core.onehot import FeatureSpace, validate_encoded_matrix
from repro.core.scoring import score
from repro.core.types import Slice, stats_matrix
from repro.exceptions import EncodingError, StreamingError
from repro.linalg import KernelWorkspace, ensure_vector


@dataclass(frozen=True)
class MergeableSliceStats:
    """Associative accumulator of per-slice ``(|S|, se, se2, sm)`` vectors.

    All four per-slice arrays are aligned with the tracked slice list the
    accumulator was built for; ``num_rows`` / ``total_error`` /
    ``total_sq_error`` / ``max_error`` carry the same sums for the whole
    batch (the "slice" with no predicates), and ``num_batches`` counts how
    many batch-level accumulators were folded in.
    """

    sizes: np.ndarray
    errors: np.ndarray
    sq_errors: np.ndarray
    max_errors: np.ndarray
    num_rows: int = 0
    total_error: float = 0.0
    total_sq_error: float = 0.0
    max_error: float = 0.0
    num_batches: int = 0

    def __post_init__(self) -> None:
        for name in ("sizes", "errors", "sq_errors", "max_errors"):
            object.__setattr__(
                self, name, np.asarray(getattr(self, name), dtype=np.float64)
            )
        num_slices = self.sizes.shape[0]
        for name in ("errors", "sq_errors", "max_errors"):
            if getattr(self, name).shape[0] != num_slices:
                raise StreamingError(
                    "per-slice statistic vectors must share one length"
                )

    # -- construction --------------------------------------------------------

    @classmethod
    def empty(cls, num_slices: int) -> "MergeableSliceStats":
        """The merge identity: zero rows observed for *num_slices* slices."""
        zeros = np.zeros(num_slices, dtype=np.float64)
        return cls(zeros, zeros.copy(), zeros.copy(), zeros.copy())

    @classmethod
    def from_batch(
        cls,
        x0: np.ndarray,
        errors: np.ndarray,
        slices: Sequence[Slice],
        feature_space: FeatureSpace | None = None,
        block_size: int = 16,
        num_threads: int = 1,
    ) -> "MergeableSliceStats":
        """Evaluate *slices* on one batch via the ``(X S^T) == L`` kernel.

        Slices whose predicates fall outside the batch's observed domains
        cannot match any batch row, so they contribute exact zeros without
        touching the kernel.  Passing a wider *feature_space* (e.g. derived
        from the whole window) is allowed but never required.
        """
        x0 = validate_encoded_matrix(x0, allow_missing=True)
        errors = ensure_vector(errors, x0.shape[0], "errors")
        space = feature_space or FeatureSpace.from_matrix(x0)
        result = cls.empty(len(slices))
        encodable: list[int] = []
        rows: list[np.ndarray] = []
        for index, slice_ in enumerate(slices):
            try:
                cols = np.sort(
                    np.array(
                        [
                            space.column_of(feature, value)
                            for feature, value in slice_.predicates.items()
                        ],
                        dtype=np.int64,
                    )
                )
            except EncodingError:
                continue
            encodable.append(index)
            rows.append(cols)
        num_rows = int(x0.shape[0])
        totals = dict(
            num_rows=num_rows,
            total_error=float(errors.sum()),
            total_sq_error=float((errors * errors).sum()),
            max_error=float(errors.max()) if num_rows else 0.0,
            num_batches=1,
        )
        if not encodable:
            return dataclasses.replace(result, **totals)

        indices = (
            np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
        )
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum([row.size for row in rows], out=indptr[1:])
        matrix = sp.csr_matrix(
            (np.ones(indices.size, dtype=np.float64), indices, indptr),
            shape=(len(rows), space.num_onehot),
        )
        x_onehot = space.encode(x0)
        # Compact once to the columns/rows the tracked slices can touch and
        # run both kernel passes (errors, errors^2) against the small pair;
        # the overrides pin the whole-batch statistics to the full batch, so
        # results are bitwise identical to the uncompacted evaluation.
        x_compact, s_compact, alive_rows = compact_slice_set(x_onehot, matrix)
        with KernelWorkspace(num_threads) as workspace:
            first = evaluate_slice_set(
                x_compact, s_compact, errors[alive_rows],
                block_size=block_size, num_threads=num_threads,
                workspace=workspace, num_rows=totals["num_rows"],
                total_error=totals["total_error"],
                max_error=totals["max_error"],
            )
            squared = errors * errors
            second = evaluate_slice_set(
                x_compact, s_compact, squared[alive_rows],
                block_size=block_size, num_threads=num_threads,
                workspace=workspace, num_rows=totals["num_rows"],
                total_error=totals["total_sq_error"],
                max_error=float(squared.max()) if num_rows else 0.0,
            )
        picked = np.asarray(encodable, dtype=np.int64)
        sizes = result.sizes
        errs = result.errors
        sq = result.sq_errors
        maxes = result.max_errors
        sizes[picked] = first.sizes
        errs[picked] = first.errors
        sq[picked] = second.errors
        maxes[picked] = first.max_errors
        return dataclasses.replace(result, **totals)

    # -- algebra -------------------------------------------------------------

    @property
    def num_slices(self) -> int:
        return int(self.sizes.shape[0])

    def merge(self, other: "MergeableSliceStats") -> "MergeableSliceStats":
        """Associative, commutative fold: sums add, maxima take the max."""
        if self.num_slices != other.num_slices:
            raise StreamingError(
                f"cannot merge accumulators over {self.num_slices} and "
                f"{other.num_slices} slices"
            )
        return MergeableSliceStats(
            sizes=self.sizes + other.sizes,
            errors=self.errors + other.errors,
            sq_errors=self.sq_errors + other.sq_errors,
            max_errors=np.maximum(self.max_errors, other.max_errors),
            num_rows=self.num_rows + other.num_rows,
            total_error=self.total_error + other.total_error,
            total_sq_error=self.total_sq_error + other.total_sq_error,
            max_error=max(self.max_error, other.max_error),
            num_batches=self.num_batches + other.num_batches,
        )

    # -- derived statistics --------------------------------------------------

    def scores(self, alpha: float) -> np.ndarray:
        """Equation-1 scores of the tracked slices under *alpha*.

        ``-inf`` everywhere when the accumulated window carries no error at
        all (a perfect model has no problematic slices to rank).
        """
        if self.total_error <= 0 or self.num_rows == 0:
            return np.full(self.num_slices, -np.inf)
        return score(
            self.sizes, self.errors, self.num_rows, self.total_error, alpha
        )

    def stats(self, alpha: float) -> np.ndarray:
        """The slice-aligned ``R`` matrix ``[sc, se, sm, ss]`` under *alpha*."""
        return stats_matrix(
            self.scores(alpha), self.errors, self.max_errors, self.sizes
        )

    def mean_errors(self) -> np.ndarray:
        """Per-slice average error ``se / |S|`` (0 for empty slices)."""
        return np.divide(
            self.errors,
            self.sizes,
            out=np.zeros_like(self.errors),
            where=self.sizes > 0,
        )

    def error_variances(self) -> np.ndarray:
        """Per-slice sample variance (``ddof=1``) from the summary sums.

        ``var = (se2 - se^2 / n) / (n - 1)``, clamped at zero against
        floating-point cancellation; slices with fewer than two rows get 0.
        """
        variances = np.zeros_like(self.errors)
        enough = self.sizes >= 2
        if enough.any():
            n = self.sizes[enough]
            se = self.errors[enough]
            se2 = self.sq_errors[enough]
            variances[enough] = np.maximum(se2 - se * se / n, 0.0) / (n - 1.0)
        return variances


def merge_stats(
    accumulators: Sequence[MergeableSliceStats],
) -> MergeableSliceStats:
    """Left fold of :meth:`MergeableSliceStats.merge` over a non-empty list."""
    if not accumulators:
        raise StreamingError("merge_stats needs at least one accumulator")
    merged = accumulators[0]
    for accumulator in accumulators[1:]:
        merged = merged.merge(accumulator)
    return merged


__all__ = ["MergeableSliceStats", "merge_stats"]
