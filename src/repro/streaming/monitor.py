"""The incremental slice-monitoring driver.

:class:`SliceMonitor` turns the one-shot batch algorithm into a service
loop: :meth:`~SliceMonitor.ingest` appends prediction-log mini-batches to a
sliding or tumbling window, and :meth:`~SliceMonitor.tick` re-ranks the
window's top-K problematic slices.  Each tick

1. folds the window's per-batch accumulators for the *previously* tracked
   slices (rebuilding only batches whose cache is stale — merge volume is
   proportional to new data, not window size) and emits per-slice
   :class:`~repro.streaming.drift.DriftSignal`\\ s against the window those
   slices were promoted from;
2. runs :func:`repro.core.slice_line` on the concatenated live window,
   warm-seeded with the previous top-K and their lattice ancestors — by the
   exactness of Equation-3 pruning, the result is identical to a cold
   from-scratch run on the same rows (the oracle the tests enforce), just
   cheaper;
3. promotes the new top-K to tracked status and snapshots the window's
   accumulated statistics as the next tick's drift baseline.

Tick latency, merge volume, and warm-start hit rate are reported as
``repro.obs`` spans/attributes and on the returned :class:`MonitorTick`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.algorithm import slice_line
from repro.core.config import SliceLineConfig
from repro.core.onehot import FeatureSpace
from repro.core.types import Slice, SliceLineResult
from repro.exceptions import StreamingError
from repro.obs import Tracer, resolve_tracer
from repro.obs.export import run_to_dict
from repro.resilience.budgets import BudgetConfig
from repro.resilience.quarantine import BatchQuarantine, QuarantineRecord
from repro.streaming.accumulator import MergeableSliceStats, merge_stats
from repro.streaming.batches import PredictionBatch
from repro.streaming.drift import DriftSignal, drift_signals
from repro.streaming.warmstart import expand_seed_slices
from repro.streaming.window import StreamWindow


@dataclass
class MonitorTick:
    """Everything one :meth:`SliceMonitor.tick` produced."""

    index: int
    timestamp: float
    num_batches: int
    num_rows: int
    result: SliceLineResult
    drift: list[DriftSignal] = field(default_factory=list)
    #: batch accumulators (re)evaluated this tick — the expensive part of
    #: the merge volume; cached batches cost a merge but no kernel call
    rebuilt_accumulators: int = 0
    #: pairwise accumulator merges performed this tick
    accumulator_merges: int = 0
    #: rows scanned to rebuild stale accumulators (0 = fully cached)
    rows_rescanned: int = 0
    seconds: float = 0.0

    @property
    def top_slices(self) -> list[Slice]:
        return self.result.top_slices

    @property
    def warm_start(self):
        return self.result.warm_start

    def degraded_slices(self, significance: float = 0.05) -> list[DriftSignal]:
        """Tracked slices whose mean error rose significantly this tick."""
        return [s for s in self.drift if s.degraded(significance)]

    def to_obs_dict(self) -> dict:
        """``repro.obs/v1`` document of the inner run plus a monitor section."""
        doc = run_to_dict(self.result)
        doc["monitor"] = {
            "tick": self.index,
            "timestamp": self.timestamp,
            "num_batches": self.num_batches,
            "num_rows": self.num_rows,
            "seconds": self.seconds,
            "rebuilt_accumulators": self.rebuilt_accumulators,
            "accumulator_merges": self.accumulator_merges,
            "rows_rescanned": self.rows_rescanned,
            "num_drift_signals": len(self.drift),
            "num_degraded": len(self.degraded_slices()),
            "completed": self.result.completed,
        }
        return doc


class SliceMonitor:
    """Maintains top-K problematic slices over a stream of mini-batches.

    Parameters
    ----------
    config:
        :class:`~repro.core.config.SliceLineConfig` for the per-tick
        enumeration (defaults follow the paper).
    window_size:
        Number of most-recent batches a ``"sliding"`` window retains;
        ignored (must be omitted) for ``"tumbling"``, where :meth:`tick`
        consumes and clears whatever has accumulated.
    policy:
        ``"sliding"`` or ``"tumbling"``.
    warm_start:
        Seed each tick's enumeration with the previous top-K and their
        ancestors (identical results, less work); disable to force cold
        re-enumeration, e.g. for benchmarking the difference.
    num_threads:
        Thread-pool width for the evaluation kernels.
    trace:
        Same switch as :func:`repro.core.slice_line`; spans of the inner
        runs nest under each tick's ``monitor.tick`` span.
    quarantine_dir:
        When given, quarantined batches are persisted here as ``.npz`` +
        ``.json`` pairs for offline inspection (see
        :class:`~repro.resilience.BatchQuarantine`); quarantine itself is
        always on — an unhealthy batch never reaches the window.
    budgets:
        Optional :class:`~repro.resilience.BudgetConfig` forwarded to every
        tick's inner :func:`~repro.core.slice_line` run, bounding per-tick
        enumeration wall-clock/candidates/memory; a budget-tripped tick
        reports ``tick.result.completed = False`` and keeps monitoring.
    """

    def __init__(
        self,
        config: SliceLineConfig | None = None,
        window_size: int | None = 8,
        policy: str = "sliding",
        warm_start: bool = True,
        num_threads: int = 1,
        trace: bool | str | Tracer | None = None,
        quarantine_dir: str | None = None,
        budgets: BudgetConfig | None = None,
    ) -> None:
        self.config = config or SliceLineConfig()
        self.policy = policy
        self.warm_start = warm_start
        self.num_threads = num_threads
        self.tracer = resolve_tracer(trace)
        size = window_size if policy == "sliding" else None
        self.window = StreamWindow(size=size, policy=policy)
        self.tracked: list[Slice] = []
        self.quarantine = BatchQuarantine(persist_dir=quarantine_dir)
        self.budgets = budgets
        self._baseline: MergeableSliceStats | None = None
        self._version = 0
        self._num_ticks = 0
        self._expected_features: int | None = None
        self.ticks: list[MonitorTick] = []

    # -- ingestion -----------------------------------------------------------

    def ingest(self, batch: PredictionBatch) -> QuarantineRecord | None:
        """Validate and append one mini-batch to the window.

        A healthy batch is pushed (evicting under sliding) and ``None`` is
        returned; an unhealthy one — NaN/inf or negative errors, misaligned
        shapes, broken integer encoding, or a feature count disagreeing
        with what the monitor has been fed so far — is quarantined instead,
        and its :class:`~repro.resilience.QuarantineRecord` is returned.
        The monitor keeps ticking on the healthy window either way.
        """
        record = self.quarantine.admit(
            batch, expected_features=self._expected_features
        )
        if record is not None:
            with self.tracer.span(
                "quarantine.batch",
                batch_id=record.batch_id,
                reason=record.reason,
            ):
                pass
            return record
        if self._expected_features is None:
            self._expected_features = int(batch.x0.shape[1])
        self.window.push(batch)
        return None

    # -- the tick ------------------------------------------------------------

    def tick(self, timestamp: float | None = None) -> MonitorTick:
        """Re-rank the live window; returns the tick record.

        Raises :class:`~repro.exceptions.StreamingError` on an empty window
        (nothing to rank).
        """
        if len(self.window) == 0:
            raise StreamingError("tick on an empty window; ingest batches first")
        started = time.perf_counter()
        tick_index = self._num_ticks
        num_batches = len(self.window)
        if timestamp is None:
            timestamp = self.window.entries[-1].batch.timestamp
        with self.tracer.span(
            "monitor.tick",
            tick=tick_index,
            policy=self.policy,
            batches=len(self.window),
            rows=self.window.num_rows,
        ) as tick_span:
            # (1) drift on the previously tracked slices
            drift: list[DriftSignal] = []
            rebuilt = merges = rescanned = 0
            if self.tracked and self._baseline is not None:
                with self.tracer.span("monitor.drift", tracked=len(self.tracked)):
                    current, rebuilt, merges, rescanned = self._window_stats()
                    drift = drift_signals(
                        self.tracked, self._baseline, current, self.config.alpha
                    )

            # (2) warm-seeded re-enumeration on the concatenated window
            x0, errors = self.window.concat()
            space = FeatureSpace.from_matrix(x0)
            seeds = (
                expand_seed_slices(self.tracked)
                if self.warm_start and self.tracked
                else None
            )
            result = slice_line(
                x0,
                errors,
                config=self.config,
                feature_space=space,
                num_threads=self.num_threads,
                trace=self.tracer,
                seed_slices=seeds,
                budgets=self.budgets,
            )

            # (3) rotate: promote the new top-K and snapshot the baseline.
            # Caches stay valid when the tracked *set* is unchanged — the
            # steady-state tick then only evaluates newly ingested batches.
            if [s.predicates for s in result.top_slices] != [
                s.predicates for s in self.tracked
            ]:
                self._version += 1
            self.tracked = result.top_slices
            if self.tracked:
                baseline, extra_rebuilt, extra_merges, extra_rescanned = (
                    self._window_stats()
                )
                self._baseline = baseline
                rebuilt += extra_rebuilt
                merges += extra_merges
                rescanned += extra_rescanned
            else:
                self._baseline = None
            if self.policy == "tumbling":
                self.window.clear()

            seconds = time.perf_counter() - started
            tick_span.annotate(
                seconds=round(seconds, 6),
                rebuilt_accumulators=rebuilt,
                accumulator_merges=merges,
                rows_rescanned=rescanned,
                warm_hit_rate=(
                    result.warm_start.hit_rate
                    if result.warm_start is not None
                    else None
                ),
            )
        tick = MonitorTick(
            index=tick_index,
            timestamp=float(timestamp),
            num_batches=num_batches,
            num_rows=result.num_rows,
            result=result,
            drift=drift,
            rebuilt_accumulators=rebuilt,
            accumulator_merges=merges,
            rows_rescanned=rescanned,
            seconds=seconds,
        )
        self._num_ticks += 1
        self.ticks.append(tick)
        return tick

    # -- status retrieval (the serving layer's window into the monitor) ------

    def quarantine_records(self) -> list[QuarantineRecord]:
        """Every batch quarantined so far, in ingestion order.

        Previously the only way to see quarantined batches was the
        ``quarantine_dir`` files; the service status API reads them from
        here instead, so persistence stays optional.
        """
        return list(self.quarantine.records)

    def drift_history(self) -> list[list[DriftSignal]]:
        """Per-tick drift signals, aligned with :attr:`ticks`."""
        return [list(tick.drift) for tick in self.ticks]

    def latest_drift(self) -> list[DriftSignal]:
        """Drift signals of the most recent tick (empty before any tick)."""
        return list(self.ticks[-1].drift) if self.ticks else []

    def _window_stats(
        self,
    ) -> tuple[MergeableSliceStats, int, int, int]:
        """Fold the live window's accumulators for the tracked slice set.

        Entries whose cached accumulator predates the current tracked-set
        version are re-evaluated (the only kernel work); the fold itself is
        a subtract-free left merge over live entries, so eviction costs
        nothing and floating-point results never depend on evicted data.
        """
        rebuilt = rescanned = 0
        for entry in self.window.entries:
            if entry.version != self._version or entry.accumulator is None:
                entry.accumulator = MergeableSliceStats.from_batch(
                    entry.batch.x0,
                    entry.batch.errors,
                    self.tracked,
                    num_threads=self.num_threads,
                )
                entry.version = self._version
                rebuilt += 1
                rescanned += entry.batch.num_rows
        merged = merge_stats(
            [entry.accumulator for entry in self.window.entries]
        )
        merges = len(self.window.entries) - 1
        return merged, rebuilt, merges, rescanned


__all__ = ["SliceMonitor", "MonitorTick"]
