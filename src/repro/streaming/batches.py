"""Prediction-log mini-batches: the unit of streaming ingestion.

A :class:`PredictionBatch` is one scoring-time chunk of model traffic — an
integer-encoded feature matrix plus the row-aligned error vector the deployed
model produced on it — stamped with an event time and a monotonically
increasing batch id.  Batches are immutable; the window and monitor layers
only ever concatenate or re-evaluate them, never mutate them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.onehot import validate_encoded_matrix
from repro.exceptions import StreamingError
from repro.linalg import ensure_vector


@dataclass(frozen=True)
class PredictionBatch:
    """One mini-batch of a prediction log.

    ``x0`` uses the paper's 1-based integer encoding (0 = missing value) and
    ``errors`` the same non-negative per-row error convention as
    :func:`repro.core.slice_line`; ``timestamp`` is the batch's event time in
    seconds and ``batch_id`` its position in the stream.
    """

    x0: np.ndarray
    errors: np.ndarray
    timestamp: float = 0.0
    batch_id: int = 0

    def __post_init__(self) -> None:
        x0 = validate_encoded_matrix(self.x0, allow_missing=True)
        errors = ensure_vector(self.errors, x0.shape[0], "errors")
        if (errors < 0).any():
            raise StreamingError("batch errors must be non-negative")
        object.__setattr__(self, "x0", x0)
        object.__setattr__(self, "errors", errors)

    @property
    def num_rows(self) -> int:
        return int(self.x0.shape[0])

    @property
    def num_features(self) -> int:
        return int(self.x0.shape[1])

    @property
    def total_error(self) -> float:
        return float(self.errors.sum())


def concat_batches(
    batches: Sequence[PredictionBatch],
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate batches (in the given order) into one ``(x0, errors)`` pair.

    Row order is ingestion order, which is what makes a from-scratch
    :func:`repro.core.slice_line` run on the result the exactness oracle for
    the incremental monitor.  All batches must agree on the feature count.
    """
    if not batches:
        raise StreamingError("cannot concatenate an empty batch sequence")
    num_features = batches[0].num_features
    for batch in batches:
        if batch.num_features != num_features:
            raise StreamingError(
                f"batch {batch.batch_id} has {batch.num_features} features, "
                f"expected {num_features}"
            )
    x0 = np.vstack([batch.x0 for batch in batches])
    errors = np.concatenate([batch.errors for batch in batches])
    return x0, errors


__all__ = ["PredictionBatch", "concat_batches"]
