"""Incremental slice monitoring over prediction-log mini-batches.

SliceLine's slice statistics (size, total error, max error — Section 2.2)
are all sums/maxes over rows, hence *exactly* mergeable across mini-batches.
This subpackage exploits that to keep top-K problematic slices fresh under
continuous traffic:

- :class:`PredictionBatch` / :func:`concat_batches` — the streaming unit;
- :class:`MergeableSliceStats` — associative per-slice accumulator whose
  ``merge()`` equals batch recomputation;
- :class:`StreamWindow` — sliding/tumbling ring buffer of batches with
  subtract-free eviction;
- :class:`SliceMonitor` / :class:`MonitorTick` — the tick driver: drift
  signals on tracked slices, then warm-started re-enumeration that is
  provably identical to a cold :func:`repro.core.slice_line` run on the
  concatenated window;
- :class:`DriftSignal` / :func:`drift_signals` — per-slice score deltas and
  Welch tests from summary statistics;
- :func:`expand_seed_slices` — previous top-K plus lattice ancestors as
  warm-start seeds.

See :func:`repro.datasets.replay_batches` for replaying any registered
dataset as a stream, and ``python -m repro monitor`` for the CLI front-end.
"""

from repro.streaming.accumulator import MergeableSliceStats, merge_stats
from repro.streaming.batches import PredictionBatch, concat_batches
from repro.streaming.drift import DriftSignal, drift_signals
from repro.streaming.monitor import MonitorTick, SliceMonitor
from repro.streaming.warmstart import ancestor_slices, expand_seed_slices
from repro.streaming.window import WINDOW_POLICIES, StreamWindow, WindowEntry

__all__ = [
    "MergeableSliceStats",
    "merge_stats",
    "PredictionBatch",
    "concat_batches",
    "DriftSignal",
    "drift_signals",
    "MonitorTick",
    "SliceMonitor",
    "ancestor_slices",
    "expand_seed_slices",
    "WINDOW_POLICIES",
    "StreamWindow",
    "WindowEntry",
]
