"""Per-slice drift signals between two windows of accumulated statistics.

For every tracked slice the monitor compares the current window's
accumulator against the baseline window it was promoted from: the score
delta says how the slice moved in SliceLine's own ranking, and a one-sided
Welch t-test (current mean error > baseline mean error) from summary
statistics says whether the degradation is statistically real — the same
test :mod:`repro.stats` runs on raw samples, fed from ``(mean, var, n)``
triples the accumulators carry for free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.types import Slice
from repro.exceptions import StreamingError, ValidationError
from repro.stats import welch_t_test_from_stats
from repro.streaming.accumulator import MergeableSliceStats


@dataclass(frozen=True)
class DriftSignal:
    """How one tracked slice moved between the baseline and current window.

    ``p_value`` is NaN when either side has fewer than two rows in the slice
    (Welch's test is undefined there); :meth:`degraded` treats NaN as "no
    evidence".
    """

    slice: Slice
    baseline_score: float
    current_score: float
    baseline_mean_error: float
    current_mean_error: float
    baseline_size: int
    current_size: int
    statistic: float
    p_value: float

    @property
    def score_delta(self) -> float:
        """Current minus baseline score (positive = the slice got worse)."""
        delta = self.current_score - self.baseline_score
        return delta if not math.isnan(delta) else float("nan")

    def degraded(self, significance: float = 0.05) -> bool:
        """True when the slice's mean error rose significantly."""
        return not math.isnan(self.p_value) and self.p_value < significance

    def to_dict(self) -> dict:
        """JSON-safe record for the service status API (NaN becomes None)."""

        def _num(value: float) -> float | None:
            return None if math.isnan(value) else float(value)

        return {
            "predicates": {
                str(f): int(v) for f, v in sorted(self.slice.predicates.items())
            },
            "baseline_score": _num(self.baseline_score),
            "current_score": _num(self.current_score),
            "baseline_mean_error": _num(self.baseline_mean_error),
            "current_mean_error": _num(self.current_mean_error),
            "baseline_size": self.baseline_size,
            "current_size": self.current_size,
            "statistic": _num(self.statistic),
            "p_value": _num(self.p_value),
            "score_delta": _num(self.score_delta),
            "degraded": self.degraded(),
        }


def drift_signals(
    tracked: Sequence[Slice],
    baseline: MergeableSliceStats,
    current: MergeableSliceStats,
    alpha: float,
) -> list[DriftSignal]:
    """One :class:`DriftSignal` per tracked slice, in tracked order.

    *alpha* is SliceLine's score weighting (Equation 1), used to re-score
    both windows on their own totals; the Welch test runs on the per-slice
    mean/variance/count summaries of the two accumulators.
    """
    if baseline.num_slices != len(tracked) or current.num_slices != len(tracked):
        raise StreamingError(
            "baseline/current accumulators must align with the tracked slices"
        )
    baseline_scores = baseline.scores(alpha)
    current_scores = current.scores(alpha)
    baseline_means = baseline.mean_errors()
    current_means = current.mean_errors()
    baseline_vars = baseline.error_variances()
    current_vars = current.error_variances()
    signals: list[DriftSignal] = []
    for i, slice_ in enumerate(tracked):
        try:
            welch = welch_t_test_from_stats(
                float(current_means[i]),
                float(current_vars[i]),
                int(current.sizes[i]),
                float(baseline_means[i]),
                float(baseline_vars[i]),
                int(baseline.sizes[i]),
            )
            statistic, p_value = welch.statistic, welch.p_value
        except ValidationError:
            statistic, p_value = float("nan"), float("nan")
        signals.append(
            DriftSignal(
                slice=slice_,
                baseline_score=float(baseline_scores[i]),
                current_score=float(current_scores[i]),
                baseline_mean_error=float(baseline_means[i]),
                current_mean_error=float(current_means[i]),
                baseline_size=int(baseline.sizes[i]),
                current_size=int(current.sizes[i]),
                statistic=float(statistic),
                p_value=float(p_value),
            )
        )
    return signals


__all__ = ["DriftSignal", "drift_signals"]
