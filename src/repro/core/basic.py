"""Initialization: create and score all 1-predicate (basic) slices.

Implements ``CreateAndScoreBasicSlices`` of Section 4.2.  Thanks to the
one-hot encoding, all basic slice sizes are the column sums of ``X`` and all
basic slice errors the vector-matrix product ``e^T X`` — one pass over the
data scores every level-1 slice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.linalg import col_maxs, col_sums, ensure_vector
from repro.core.scoring import score
from repro.core.types import stats_matrix


@dataclass(frozen=True)
class BasicSlices:
    """Valid basic slices in the *projected* one-hot space.

    ``selected_columns`` are the original one-hot column indices that satisfy
    ``ss0 >= sigma`` and ``se0 > 0`` (the paper's ``cI`` indicator); the
    slice matrix ``slices`` is the identity over those columns, i.e. slice
    ``i`` is the single predicate represented by ``selected_columns[i]``.
    ``stats`` is the aligned ``R`` matrix (score, error, max error, size).
    """

    slices: sp.csr_matrix
    stats: np.ndarray
    selected_columns: np.ndarray
    num_columns_total: int

    @property
    def num_slices(self) -> int:
        return int(self.slices.shape[0])


def create_and_score_basic_slices(
    x_onehot: sp.csr_matrix,
    errors: np.ndarray,
    sigma: int,
    alpha: float,
) -> BasicSlices:
    """Score all one-predicate slices and keep the valid ones.

    Vectorized statistics per Equation 4: ``ss0 = colSums(X)``,
    ``se0 = (e^T X)^T``, ``sm0 = colMaxs(X * e)``.  Scores follow Equation 5.
    """
    num_rows, num_cols = x_onehot.shape
    errors = ensure_vector(errors, num_rows, "errors")
    total_error = float(errors.sum())

    sizes = col_sums(x_onehot)
    slice_errors = np.asarray(x_onehot.T @ errors, dtype=np.float64).ravel()
    max_errors = col_maxs(x_onehot.multiply(errors[:, np.newaxis]).tocsc())

    keep = (sizes >= sigma) & (slice_errors > 0)
    selected = np.flatnonzero(keep)

    scores = score(sizes[selected], slice_errors[selected], num_rows, total_error, alpha)
    stats = stats_matrix(
        scores, slice_errors[selected], max_errors[selected], sizes[selected]
    )
    # In the projected space (X[:, cI]) every surviving column is one basic
    # slice, so the slice matrix is simply the identity.
    slices = sp.identity(selected.size, dtype=np.float64, format="csr")
    return BasicSlices(
        slices=slices,
        stats=stats,
        selected_columns=selected,
        num_columns_total=num_cols,
    )
