"""Adaptive per-level compaction of the enumeration data matrix.

Algorithm 1 projects ``X`` to the valid basic-slice columns once (line 12)
and then multiplies every deeper level's candidates against that same
``n x m'`` matrix, even though pruning keeps shrinking what can still
participate:

* **Columns** — every level ``L+1`` candidate is the union of two surviving
  level-``L`` parents, so a one-hot column that appears in *no* parent can
  never appear in any deeper candidate.  Dropping it removes its non-zeros
  from every subsequent ``X @ S^T``.
* **Rows** — a row belongs to a candidate only if it belongs to *both*
  parents (size monotonicity, Section 3.2), so a row that matches no
  evaluated slice of level ``L`` cannot belong to any slice of level
  ``L+1`` or deeper.  Dropping it shrinks every subsequent kernel, scan,
  and indicator.

:class:`CompactionState` maintains the compacted matrix plus the index maps
that keep everything else *bitwise identical* to the uncompacted run: the
candidate/slice matrices stay in the canonical projected column space (so
pair generation, deduplication keys, top-K maintenance, decoding, and
warm-start seeding are untouched), and only at kernel time are candidate
columns remapped through :meth:`CompactionState.project_slices`.  Because
compaction preserves the relative order of surviving rows and columns, all
float reductions sum the exact same values in the exact same order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.linalg import row_nnz


@dataclass
class CompactionState:
    """Compacted data matrix + index maps for one enumeration run.

    ``matrix``/``errors`` hold the alive rows x alive columns view of the
    projected data; ``col_map`` maps each projected one-hot column to its
    compacted position (``-1`` for dead columns); ``row_indices`` are the
    surviving original row positions (strictly increasing, so relative row
    order — and therefore float summation order — is preserved).
    ``num_rows_full`` / ``num_cols_full`` remember the uncompacted shape for
    scoring and for the retained ratios reported per level.
    """

    matrix: sp.csr_matrix
    errors: np.ndarray
    col_map: np.ndarray
    row_indices: np.ndarray
    num_rows_full: int
    num_cols_full: int
    #: boolean coverage over the *current* rows, accumulated during the last
    #: level's evaluation: True where the row matched >= 1 evaluated slice
    row_coverage: np.ndarray | None = None

    # -- construction --------------------------------------------------------

    @classmethod
    def initial(
        cls, x_projected: sp.csr_matrix, errors: np.ndarray
    ) -> "CompactionState":
        """Level-1 state: all projected columns, rows matching >= 1 basic slice.

        A row with no entry among the projected (valid basic slice) columns
        matches no level-1 slice and therefore no deeper slice either — the
        row-compaction rule applied to the basic pass, where membership in
        slice ``j`` is simply ``X[row, j] == 1``.
        """
        num_rows, num_cols = x_projected.shape
        alive = np.flatnonzero(row_nnz(x_projected) > 0)
        if alive.size < num_rows:
            matrix = x_projected[alive]
            kept_errors = errors[alive]
        else:
            matrix = x_projected
            kept_errors = errors
        return cls(
            matrix=matrix,
            errors=kept_errors,
            col_map=np.arange(num_cols, dtype=np.int64),
            row_indices=alive,
            num_rows_full=num_rows,
            num_cols_full=num_cols,
        )

    # -- accounting ----------------------------------------------------------

    @property
    def num_rows_alive(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def num_cols_alive(self) -> int:
        return int(self.matrix.shape[1])

    @property
    def rows_retained(self) -> float:
        """Fraction of the original rows still in the kernel working set."""
        return self.num_rows_alive / self.num_rows_full if self.num_rows_full else 0.0

    @property
    def cols_retained(self) -> float:
        """Fraction of the projected columns still in the working set."""
        return self.num_cols_alive / self.num_cols_full if self.num_cols_full else 0.0

    # -- per-level compaction ------------------------------------------------

    def begin_level(self, candidates: sp.csr_matrix) -> np.ndarray | None:
        """Compact for one level's evaluation: keep exactly the rows covered
        by the previous level's evaluated slices and the columns the emitted
        *candidates* actually reference.

        Candidate columns are always alive in the current map (a candidate
        only unions parent columns, and parents were last level's
        candidates), so the column projection is total by induction.

        Returns the surviving *local* row indices when rows were actually
        dropped (``None`` otherwise), so row-aligned caches — e.g. the
        incremental backend's :class:`~repro.linalg.IndicatorCache` — can
        follow the compaction.
        """
        matrix = self.matrix
        errors = self.errors
        dropped_to: np.ndarray | None = None
        if self.row_coverage is not None:
            alive_local = np.flatnonzero(self.row_coverage)
            if alive_local.size < matrix.shape[0]:
                matrix = matrix[alive_local]
                errors = errors[alive_local]
                self.row_indices = self.row_indices[alive_local]
                dropped_to = alive_local
            self.row_coverage = None
        alive_cols = np.unique(candidates.indices)
        local_cols = self.col_map[alive_cols]
        if local_cols.size and local_cols.min() < 0:
            raise ValueError(
                "candidate references a compacted-away column; candidates "
                "must be unions of surviving parents"
            )
        if local_cols.size < matrix.shape[1]:
            matrix = matrix[:, local_cols].tocsr()
        col_map = np.full(self.num_cols_full, -1, dtype=np.int64)
        col_map[alive_cols] = np.arange(alive_cols.size, dtype=np.int64)
        self.col_map = col_map
        self.matrix = matrix
        self.errors = errors
        return dropped_to

    def new_coverage(self) -> np.ndarray:
        """A fresh all-False row-coverage accumulator for the current rows."""
        return np.zeros(self.num_rows_alive, dtype=bool)

    def project_slices(self, slices: sp.csr_matrix) -> sp.csr_matrix:
        """Remap a projected-space slice matrix into the compacted column
        space (shares the data array; indices stay sorted because surviving
        columns keep their relative order)."""
        indices = self.col_map[slices.indices.astype(np.int64, copy=False)]
        if indices.size and indices.min() < 0:
            raise ValueError(
                "slice references a compacted-away column; compaction must "
                "only ever see candidates built from surviving parents"
            )
        return sp.csr_matrix(
            (slices.data, indices, slices.indptr),
            shape=(slices.shape[0], self.num_cols_alive),
        )


def compact_slice_set(
    x_onehot: sp.csr_matrix, slices: sp.csr_matrix
) -> tuple[sp.csr_matrix, sp.csr_matrix, np.ndarray]:
    """One-shot compaction of a fixed slice-set evaluation problem.

    Returns ``(x_c, s_c, row_indices)`` where the data matrix keeps only
    the one-hot columns *slices* references and the rows with at least one
    entry among them (``row_indices`` are the surviving original row
    positions, strictly increasing); a dropped row cannot match any slice
    with >= 1 predicate, and a dropped column is multiplied by zero
    everywhere.  Row/column relative order is preserved, so
    :func:`repro.core.evaluate.evaluate_slice_set` over the compacted pair
    — scored against the *full* population via its ``num_rows``/
    ``total_error``/``max_error`` overrides — is bitwise identical to the
    uncompacted evaluation.  Used by warm-start seeding and the streaming
    accumulators.
    """
    num_cols = x_onehot.shape[1]
    alive_cols = np.unique(slices.indices)
    col_map = np.full(num_cols, -1, dtype=np.int64)
    col_map[alive_cols] = np.arange(alive_cols.size, dtype=np.int64)
    s_c = sp.csr_matrix(
        (slices.data, col_map[slices.indices.astype(np.int64, copy=False)],
         slices.indptr),
        shape=(slices.shape[0], alive_cols.size),
    )
    x_c = (
        x_onehot.tocsr()
        if alive_cols.size == num_cols
        else x_onehot[:, alive_cols].tocsr()
    )
    alive_rows = np.flatnonzero(row_nnz(x_c) > 0)
    if alive_rows.size < x_c.shape[0]:
        x_c = x_c[alive_rows]
    return x_c, s_c, alive_rows


__all__ = ["CompactionState", "compact_slice_set"]
