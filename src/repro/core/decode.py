"""Decoding of top-K slices back into predicate form (``decodeTopK``).

The enumeration works in a *projected* one-hot space (only columns that
survived the basic-slice filter).  Decoding maps projected columns back to
original one-hot columns and from there to ``feature == value`` predicates,
yielding both :class:`~repro.core.types.Slice` objects and the paper's
``K x m`` integer output encoding (zeros for free features).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.core.onehot import FeatureSpace
from repro.core.types import Slice, StatsCol
from repro.exceptions import EncodingError


def decode_topk(
    top_slices: sp.csr_matrix,
    top_stats: np.ndarray,
    selected_columns: np.ndarray,
    feature_space: FeatureSpace,
) -> tuple[list[Slice], np.ndarray]:
    """Decode projected one-hot slice vectors into slices and ``TS`` matrix.

    *selected_columns* maps projected column index to the original one-hot
    column index (the ``cI`` selection of Algorithm 1 line 12).
    """
    num_features = feature_space.num_features
    slices: list[Slice] = []
    encoded = np.zeros((top_slices.shape[0], num_features), dtype=np.int64)
    csr = top_slices.tocsr()
    for row in range(csr.shape[0]):
        projected_cols = csr.indices[csr.indptr[row] : csr.indptr[row + 1]]
        predicates: dict[int, int] = {}
        for projected in projected_cols:
            original = int(selected_columns[projected])
            feature = feature_space.feature_of_column(original)
            predicates[feature] = feature_space.column_value(original)
        stats_row = top_stats[row]
        slices.append(
            Slice(
                predicates=predicates,
                score=float(stats_row[StatsCol.SCORE]),
                error=float(stats_row[StatsCol.ERROR]),
                max_error=float(stats_row[StatsCol.MAX_ERROR]),
                size=int(stats_row[StatsCol.SIZE]),
            )
        )
        encoded[row] = slices[-1].encoded_row(num_features)
    return slices, encoded


def encode_slices(
    slices: Sequence[Slice], feature_space: FeatureSpace
) -> sp.csr_matrix:
    """Encode decoded slices back into one-hot row vectors (inverse decode).

    Returns the ``len(slices) x num_onehot`` 0/1 CSR matrix whose row ``i``
    has a one in the column of every ``feature == value`` predicate of
    ``slices[i]`` — the representation :func:`~repro.core.evaluate
    .evaluate_slice_set` consumes.  Raises
    :class:`~repro.exceptions.EncodingError` when a predicate references a
    feature or value outside *feature_space* (e.g. a slice found on a data
    window whose domains exceed the current one).
    """
    rows: list[int] = []
    cols: list[int] = []
    for index, slice_ in enumerate(slices):
        for feature, value in slice_.predicates.items():
            if not 0 <= feature < feature_space.num_features:
                raise EncodingError(
                    f"slice {index} fixes feature {feature}, outside the "
                    f"{feature_space.num_features}-feature space"
                )
            rows.append(index)
            cols.append(feature_space.column_of(feature, value))
    data = np.ones(len(rows), dtype=np.float64)
    return sp.coo_matrix(
        (data, (rows, cols)),
        shape=(len(slices), feature_space.num_onehot),
    ).tocsr()


def slice_membership(x0: np.ndarray, slice_: Slice) -> np.ndarray:
    """Boolean mask of the rows of an integer-encoded *x0* inside *slice_*.

    Useful for drilling into a problematic slice after a run (inspection,
    data acquisition, re-labeling).
    """
    x0 = np.asarray(x0)
    mask = np.ones(x0.shape[0], dtype=bool)
    for feature, value in slice_.predicates.items():
        mask &= x0[:, feature] == value
    return mask
