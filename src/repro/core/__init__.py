"""Core SliceLine algorithm: scoring, pruning, enumeration, evaluation.

Public entry points are :func:`slice_line` (the Algorithm-1 driver) and the
:class:`SliceLine` estimator; the submodules expose the individual kernels
(basic slices, pair enumeration, vectorized evaluation, top-K maintenance)
for composition and testing.
"""

from repro.core.algorithm import SliceLine, slice_line
from repro.core.basic import BasicSlices, create_and_score_basic_slices
from repro.core.compaction import CompactionState, compact_slice_set
from repro.core.config import PruningConfig, SliceLineConfig
from repro.core.decode import decode_topk, encode_slices, slice_membership
from repro.core.evaluate import (
    SliceSetStats,
    evaluate_block,
    evaluate_slice_set,
    evaluate_slices,
    indicator_equal,
)
from repro.core.onehot import FeatureSpace, validate_encoded_matrix
from repro.core.pairs import (
    PairJoinPlan,
    choose_pair_plan,
    get_pair_candidates,
    reference_pair_candidates,
)
from repro.core.scoring import (
    score,
    score_at_size,
    score_single,
    score_upper_bound,
)
from repro.core.topk import empty_topk, maintain_topk, topk_min_score
from repro.core.types import (
    LevelStats,
    Slice,
    SliceLineResult,
    StatsCol,
    WarmStartInfo,
    empty_stats,
    stats_matrix,
)

__all__ = [
    "SliceLine",
    "slice_line",
    "BasicSlices",
    "create_and_score_basic_slices",
    "CompactionState",
    "compact_slice_set",
    "PruningConfig",
    "SliceLineConfig",
    "decode_topk",
    "encode_slices",
    "slice_membership",
    "SliceSetStats",
    "evaluate_block",
    "evaluate_slice_set",
    "evaluate_slices",
    "indicator_equal",
    "FeatureSpace",
    "validate_encoded_matrix",
    "PairJoinPlan",
    "choose_pair_plan",
    "get_pair_candidates",
    "reference_pair_candidates",
    "score",
    "score_at_size",
    "score_single",
    "score_upper_bound",
    "empty_topk",
    "maintain_topk",
    "topk_min_score",
    "LevelStats",
    "Slice",
    "SliceLineResult",
    "StatsCol",
    "WarmStartInfo",
    "empty_stats",
    "stats_matrix",
]
