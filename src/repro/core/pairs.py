"""Pair enumeration with pruning and deduplication (Section 4.3).

Candidates for lattice level ``L`` are built Apriori-style by joining
compatible level ``L-1`` slices:

1. *Input filtering* — drop parents violating ``ss >= sigma`` or ``se > 0``.
2. *Self-join* — pairs whose one-hot vectors overlap in exactly ``L-2``
   predicates (``upper.tri((S S^T) == L-2)``), streamed in chunks.
3. *Merge and bound* — union the predicate sets; carry
   ``min(parent sizes/errors/max-errors)`` as upper bounds.
4. *Feature validity* — discard merged slices assigning two values to one
   original feature.
5. *Early score pruning* — the pair-level bound (min over the two parents)
   already upper-bounds the slice score, so pairs that cannot beat the
   current top-K are dropped inside the streaming loop.  This keeps the
   pair set in memory proportional to the *surviving* candidates, which is
   what makes feature-rich/correlated datasets (KDD98, USCensus) tractable.
6. *Deduplication* — identical candidates generated from different parent
   pairs collapse into one.  Because every candidate at level ``L`` has
   exactly ``L`` set columns, its sorted column-index tuple is a compact,
   overflow-free realization of the paper's ND-array-index slice ID.
   Group-wise minima tighten the bounds and the group's distinct-parent
   count feeds the missing-parent pruning.
7. *Pruning* (Equation 9) — minimum support on the size bound, upper-bound
   score against 0 and the current top-K minimum, and ``np == L``.

Every pruning technique is individually toggleable through
:class:`~repro.core.config.PruningConfig` (the Figure 3 ablation).

Execution model
---------------
Steps 2-6 run as a *chunk-local pipeline*: the join's row range is split
into balanced chunks (:func:`choose_pair_plan`), each chunk is a pure task
— join, merge, validity, pair-level score pruning, then a chunk-local
deduplication with group-min bound folding — returning one compact
:class:`_ChunkResult`.  The driver merges chunk results in deterministic
chunk order and runs a final global dedup over the already-shrunk keys.
Chunk tasks share only read-only inputs, so they map over the
:class:`~repro.linalg.KernelWorkspace` thread pool when the cost model
elects parallel execution (SystemDS runs this join under ``parfor``,
paper Section 4.3).

Results are bitwise identical across any chunk grid and worker count:

* sorted unique keys do not depend on how pair rows were partitioned;
* chunk-local first-occurrence representatives compose across ordered
  chunks into the global first-occurrence representative;
* float ``min`` is associative, so folding chunk-local group minima equals
  the global group minimum exactly (no rounding is involved);
* the distinct-parent count is a set-union cardinality (associative);
* every counter is an integer sum over disjoint pair subsets.

The pre-pipeline implementation is preserved verbatim as
:func:`reference_pair_candidates` — the differential oracle for the test
suite and the baseline for ``benchmarks/bench_pairs.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.config import PruningConfig
from repro.core.scoring import score_upper_bound
from repro.core.types import StatsCol
from repro.linalg import (
    cell_bounded_partitions,
    pack_rows_mixed_radix,
    upper_tri_pairs_in_range,
)
from repro.linalg import ops as _ops
from repro.obs import NULL_TRACER, LevelCounters

#: pairs processed per streaming step (bounds peak memory of the merge)
_PAIR_BATCH = 1 << 20

#: chunks below this many join rows are not worth a task dispatch
_MIN_CHUNK_ROWS = 128

#: estimated join work (Gram-product multiply-adds) below which the whole
#: level runs serially — thread dispatch would dominate the arithmetic
_MIN_PARALLEL_OPS = 1 << 22

#: target task surplus per worker so uneven chunks still balance
_CHUNKS_PER_WORKER = 4

#: op-equivalents one generated pair costs downstream of the Gram product
#: (merge sort, validity scan, bound minima, score bound, local dedup) —
#: pair volume, not the sparse multiply, dominates wide levels
_OPS_PER_PAIR = 32

_INT64_MAX = np.iinfo(np.int64).max


@dataclass(frozen=True)
class PairJoinPlan:
    """Execution plan for one level's pair join (cost-model output).

    *parallelism* is the worker width the chunk map should run at (``1``
    means serial execution on the driver thread); *ranges* are the
    contiguous ``(start, stop)`` join-row ranges, one chunk task each.
    The plan never affects results — only how the identical work is cut.
    """

    parallelism: int
    ranges: tuple[tuple[int, int], ...]

    @property
    def num_chunks(self) -> int:
        return len(self.ranges)


def choose_pair_plan(
    num_parents: int, nnz: int, pair_parallelism: int, level: int = 3
) -> PairJoinPlan:
    """Pick chunk grid and serial-vs-parallel execution for the pair join.

    Mirrors :func:`repro.linalg.choose_backend`: a cheap closed-form cost
    model, not a tuner.  Estimated work is the sparse Gram product (about
    ``nnz^2 / num_parents`` multiply-adds) plus :data:`_OPS_PER_PAIR`
    op-equivalents per expected pair — Gram stored entries bound the pair
    count at ``overlap >= 1``, but level 2 joins on ``overlap == 0``
    where *disjoint* parents match, so its expected pair volume is
    quadratic in the parents regardless of ``nnz``.  Levels below
    :data:`_MIN_PARALLEL_OPS` estimated ops (or with fewer join rows than
    two minimum chunks) run serially because pool dispatch would cost
    more than it saves.  Parallel plans cut :data:`_CHUNKS_PER_WORKER`
    chunks per worker (bounded by the per-chunk dense-footprint budget
    shared with :func:`~repro.linalg.iter_upper_tri_pair_chunks`) so
    stragglers rebalance; serial plans keep the footprint-bounded grid
    only.
    """
    join_rows = num_parents - 1  # the last row is never a left element
    if join_rows <= 0:
        return PairJoinPlan(1, ())
    width = max(int(pair_parallelism), 1)
    gram_ops = (nnz * nnz) // max(num_parents, 1)
    if level == 2:
        est_pairs = (join_rows * num_parents) // 2
    else:
        est_pairs = gram_ops
    est_ops = gram_ops + est_pairs * _OPS_PER_PAIR
    if width > 1 and (
        est_ops < _MIN_PARALLEL_OPS or join_rows < 2 * _MIN_CHUNK_ROWS
    ):
        width = 1
    min_parts = 1
    if width > 1:
        min_parts = min(
            width * _CHUNKS_PER_WORKER, max(join_rows // _MIN_CHUNK_ROWS, 1)
        )
    ranges = cell_bounded_partitions(
        join_rows, num_parents, _ops._PAIR_CHUNK_CELLS, min_parts
    )
    if len(ranges) < 2:
        width = 1
    return PairJoinPlan(width, tuple(ranges))


class _PairAccumulator:
    """Collects surviving pair batches in geometrically grown buffers.

    The first appended batch is adopted by reference — the common case of a
    single surviving batch costs zero copies in :meth:`concatenated`.  From
    the second batch on, rows are written into preallocated buffers grown
    geometrically (doubling), so total copy work is ``O(final size)``
    instead of the former list-append + one big ``np.concatenate`` per
    array, which peaked at twice the final footprint and re-copied every
    batch at the end.
    """

    __slots__ = ("_adopted", "_arrays", "_size", "_capacity")

    def __init__(self) -> None:
        self._adopted: tuple[np.ndarray, ...] | None = None
        self._arrays: tuple[np.ndarray, ...] | None = None
        self._size = 0
        self._capacity = 0

    @property
    def empty(self) -> bool:
        return self._size == 0

    def append(self, keys, left, right, size_ub, error_ub, max_error_ub) -> None:
        batch = (keys, left, right, size_ub, error_ub, max_error_ub)
        count = int(left.shape[0])
        if count == 0:
            return
        if self._size == 0 and self._arrays is None:
            self._adopted = batch
            self._size = count
            return
        if self._adopted is not None:
            first, self._adopted = self._adopted, None
            first_count, self._size = self._size, 0
            self._reserve(first_count + count, first)
            self._write(first, first_count)
        self._reserve(self._size + count, batch)
        self._write(batch, count)

    def _write(self, batch: tuple[np.ndarray, ...], count: int) -> None:
        for buf, arr in zip(self._arrays, batch):
            buf[self._size : self._size + count] = arr
        self._size += count

    def _reserve(self, needed: int, template: tuple[np.ndarray, ...]) -> None:
        if self._arrays is None:
            capacity = max(needed, 1024)
            self._arrays = tuple(
                np.empty((capacity,) + arr.shape[1:], dtype=arr.dtype)
                for arr in template
            )
            self._capacity = capacity
        elif self._capacity < needed:
            capacity = max(needed, 2 * self._capacity)
            grown = []
            for buf in self._arrays:
                wider = np.empty((capacity,) + buf.shape[1:], dtype=buf.dtype)
                wider[: self._size] = buf[: self._size]
                grown.append(wider)
            self._arrays = tuple(grown)
            self._capacity = capacity

    def concatenated(self) -> tuple[np.ndarray, ...]:
        if self._adopted is not None:
            return self._adopted
        return tuple(buf[: self._size] for buf in self._arrays)


@dataclass
class _ChunkResult:
    """Compact output of one pure chunk task (counters + reduced arrays).

    With deduplication on, *keys* are chunk-locally unique, the bounds are
    chunk-local group minima, *rep_left*/*rep_right* name the first
    surviving generating pair per local group, and
    *parent_groups*/*parent_ids* list the locally distinct
    ``(group, parent)`` incidences feeding the global distinct-parent
    count.  With deduplication off, the arrays are the raw surviving pairs
    in join order and the incidence arrays are ``None``.  *survivors*
    counts surviving pairs before local dedup (feeds
    ``candidates_before_dedup`` exactly).
    """

    pairs_generated: int
    invalid_feature_pairs: int
    pruned_by_score_pairs: int
    survivors: int
    keys: np.ndarray
    rep_left: np.ndarray
    rep_right: np.ndarray
    size_ub: np.ndarray
    error_ub: np.ndarray
    max_error_ub: np.ndarray
    parent_groups: np.ndarray | None
    parent_ids: np.ndarray | None


def _empty_chunk_result(generated: int, invalid: int, pruned: int, level: int):
    zero_keys = np.empty((0, level), dtype=np.int64)
    zero_i = np.empty(0, dtype=np.int64)
    zero_f = np.empty(0, dtype=np.float64)
    return _ChunkResult(
        generated, invalid, pruned, 0,
        zero_keys, zero_i, zero_i, zero_f, zero_f, zero_f, None, None,
    )


def _process_pair_chunk(
    s: sp.csr_matrix,
    st: sp.csc_matrix,
    key_rows: np.ndarray | None,
    start: int,
    stop: int,
    level: int,
    feature_map: np.ndarray,
    parent_sizes: np.ndarray,
    parent_errors: np.ndarray,
    parent_max_errors: np.ndarray,
    num_rows: int,
    total_error: float,
    sigma: int,
    alpha: float,
    topk_min_score: float,
    by_score: bool,
    deduplicate: bool,
    num_cols: int,
) -> _ChunkResult:
    """Steps 2-6 for one join-row range — pure, no shared mutable state.

    Reads only the broadcast inputs (slice matrix + transpose, dense parent
    key rows, parent stats, pruning constants) and returns one
    :class:`_ChunkResult`; all counter/tracer recording happens on the
    driver after the chunk map, so any thread may run this.
    """
    rows, cols = upper_tri_pairs_in_range(s, st, start, stop, float(level - 2))
    generated = int(rows.size)
    invalid = 0
    pruned = 0
    acc = _PairAccumulator()
    for batch_start in range(0, rows.size, _PAIR_BATCH):
        left = rows[batch_start : batch_start + _PAIR_BATCH]
        right = cols[batch_start : batch_start + _PAIR_BATCH]
        keys = _merge_keys(s, key_rows, left, right, level)
        feasible = _feature_valid(keys, feature_map)
        invalid += int(left.size - np.count_nonzero(feasible))
        if not feasible.any():
            continue
        left, right, keys = left[feasible], right[feasible], keys[feasible]
        size_ub = np.minimum(parent_sizes[left], parent_sizes[right])
        error_ub = np.minimum(parent_errors[left], parent_errors[right])
        max_error_ub = np.minimum(
            parent_max_errors[left], parent_max_errors[right]
        )
        if by_score:
            # The pair-level bound already upper-bounds the slice score;
            # dropping failing pairs here keeps memory proportional to
            # surviving candidates.  Any dedup group containing a failing
            # pair has an even lower group bound, so the group-level
            # pruning downstream remains exact.
            sc_ub = score_upper_bound(
                size_ub, error_ub, max_error_ub,
                num_rows, total_error, sigma, alpha,
            )
            passing = (sc_ub > topk_min_score) & (sc_ub >= 0.0)
            pruned += int(passing.size - np.count_nonzero(passing))
            if not passing.any():
                continue
            left, right, keys = left[passing], right[passing], keys[passing]
            size_ub, error_ub, max_error_ub = (
                size_ub[passing], error_ub[passing], max_error_ub[passing],
            )
        acc.append(keys, left, right, size_ub, error_ub, max_error_ub)
    if acc.empty:
        return _empty_chunk_result(generated, invalid, pruned, level)
    keys, left, right, size_ub, error_ub, max_error_ub = acc.concatenated()
    survivors = int(keys.shape[0])
    if not deduplicate:
        return _ChunkResult(
            generated, invalid, pruned, survivors,
            keys, left, right, size_ub, error_ub, max_error_ub, None, None,
        )
    # Chunk-local dedup: shrink this chunk's pairs to locally unique keys
    # with folded group minima before the driver's global dedup ever sees
    # them — the within-chunk duplicate factor never hits the global sort.
    unique_keys, first_index, group = _dedup_keys(keys, num_cols)
    num_groups = int(first_index.size)
    parent_groups, parent_ids = _distinct_parent_incidences(
        group, left, right, int(parent_sizes.shape[0])
    )
    return _ChunkResult(
        generated, invalid, pruned, survivors,
        unique_keys,
        left[first_index],
        right[first_index],
        _group_min(size_ub, group, num_groups),
        _group_min(error_ub, group, num_groups),
        _group_min(max_error_ub, group, num_groups),
        parent_groups,
        parent_ids,
    )


def get_pair_candidates(
    slices: sp.csr_matrix,
    stats: np.ndarray,
    level: int,
    *,
    num_rows: int,
    total_error: float,
    sigma: int,
    alpha: float,
    topk_min_score: float,
    feature_map: np.ndarray,
    pruning: PruningConfig | None = None,
    level_stats: LevelCounters | None = None,
    tracer=NULL_TRACER,
    return_parents: bool = False,
    workspace=None,
    pair_parallelism: int = 1,
) -> tuple[sp.csr_matrix, np.ndarray | None] | tuple[
    sp.csr_matrix, np.ndarray | None, np.ndarray | None
]:
    """Generate deduplicated, pruned candidate slices for *level*.

    *slices*/*stats* are the evaluated slices of level ``L-1`` and their
    ``R`` matrix in the projected one-hot space; *feature_map* maps each
    projected column to its original feature index (non-decreasing).
    *topk_min_score* is the score of the current K-th best slice (0.0 while
    the top-K is not yet full), a monotonically increasing lower bound for
    score pruning.

    Returns the candidate slice matrix ``S`` for level ``L`` (possibly with
    zero rows) together with the per-candidate upper-bound scores
    ``ceil(sc)`` (``None`` when score pruning is disabled) — the driver uses
    them for priority evaluation.  When *level_stats* is given, per-step
    counters are recorded into it; when *tracer* is given, the join,
    deduplication, and pruning steps report spans into it.

    With ``return_parents=True`` a third element is returned: a
    ``num_candidates x 2`` int64 matrix naming, per emitted candidate, one
    generating pair of parents as row indices into the *input* ``slices``
    (pre-filter positions, i.e. the previous level's evaluated-slice
    order).  Any generating pair works for the incremental-indicator
    backend — the candidate's row indicator is the AND of the two parents'
    indicators whichever pair produced it — so the deduplication
    representative is used.

    *workspace* and *pair_parallelism* control execution only, never
    results: join chunks map over the workspace pool at the planned width
    (``pair_parallelism`` ``0`` follows the workspace's ``num_threads``,
    ``1`` forces serial, ``N`` requests ``N`` workers — the cost model may
    still fall back to serial for small levels).
    """
    pruning = pruning or PruningConfig()
    recorder = level_stats or LevelCounters(level=level)
    num_cols = slices.shape[1]
    empty = sp.csr_matrix((0, num_cols), dtype=np.float64)
    recorder.input_slices += int(slices.shape[0])

    def _result(matrix, bounds, parents):
        if return_parents:
            return matrix, bounds, parents
        return matrix, bounds

    keep_idx = np.arange(slices.shape[0], dtype=np.int64)

    # -- step 1: prune invalid input slices ---------------------------------
    if pruning.filter_input_slices:
        keep = (stats[:, StatsCol.SIZE] >= sigma) & (stats[:, StatsCol.ERROR] > 0)
        if pruning.by_score:
            # A parent's own bound also bounds every one of its children
            # (child bounds are minima over parents), so parents that cannot
            # beat the current top-K cannot yield useful children either.
            # Filtering them here shrinks the O(n^2) join quadratically.
            parent_bound = score_upper_bound(
                stats[:, StatsCol.SIZE],
                stats[:, StatsCol.ERROR],
                stats[:, StatsCol.MAX_ERROR],
                num_rows,
                total_error,
                sigma,
                alpha,
            )
            keep &= (parent_bound > topk_min_score) & (parent_bound >= 0.0)
        recorder.input_filtered += int(keep.size - np.count_nonzero(keep))
        keep_idx = np.flatnonzero(keep)
        slices = slices[keep_idx]
        stats = stats[keep]
    if slices.shape[0] < 2:
        return _result(empty, None, None)

    # -- steps 2-6 (chunk-local): join, merge, validity, prune, local dedup --
    if pair_parallelism < 1 and workspace is not None:
        pair_parallelism = int(getattr(workspace, "num_threads", 1))
    plan = choose_pair_plan(
        slices.shape[0], int(slices.nnz), pair_parallelism, level
    )
    s = slices.tocsr()
    s.sort_indices()
    st = s.T.tocsc()
    key_rows = _parent_key_rows(s, level)
    parent_sizes = stats[:, StatsCol.SIZE]
    parent_errors = stats[:, StatsCol.ERROR]
    parent_max_errors = stats[:, StatsCol.MAX_ERROR]

    def run_chunk(row_range: tuple[int, int]) -> _ChunkResult:
        return _process_pair_chunk(
            s, st, key_rows, row_range[0], row_range[1], level, feature_map,
            parent_sizes, parent_errors, parent_max_errors,
            num_rows, total_error, sigma, alpha, topk_min_score,
            pruning.by_score, pruning.deduplicate, num_cols,
        )

    join_started = time.perf_counter()
    with tracer.span(
        "pairs.join",
        parents=slices.shape[0],
        chunks=plan.num_chunks,
        parallelism=plan.parallelism,
    ) as join_span:
        if workspace is not None and plan.parallelism > 1:
            chunk_results = workspace.map(
                run_chunk, plan.ranges, width=plan.parallelism
            )
        else:
            chunk_results = [run_chunk(row_range) for row_range in plan.ranges]
        for chunk in chunk_results:
            recorder.pairs_generated += chunk.pairs_generated
            recorder.invalid_feature_pairs += chunk.invalid_feature_pairs
            recorder.pruned_by_score += chunk.pruned_by_score_pairs
            recorder.pruned_by_score_pairs += chunk.pruned_by_score_pairs
        join_span.annotate(pairs=recorder.pairs_generated)
    recorder.join_chunks += plan.num_chunks
    recorder.join_parallelism += plan.parallelism
    recorder.join_seconds += time.perf_counter() - join_started

    chunk_results = [chunk for chunk in chunk_results if chunk.survivors]
    if not chunk_results:
        return _result(empty, None, None)
    survivors = sum(chunk.survivors for chunk in chunk_results)
    recorder.candidates_before_dedup += survivors

    # -- step 6 (global): merge chunk results, dedup the shrunk keys ----------
    dedup_started = time.perf_counter()
    with tracer.span("pairs.dedup", pairs=survivors) as dedup_span:
        if len(chunk_results) == 1:
            only = chunk_results[0]
            keys = only.keys
            left, right = only.rep_left, only.rep_right
            size_ub, error_ub, max_error_ub = (
                only.size_ub, only.error_ub, only.max_error_ub,
            )
        else:
            keys = np.concatenate([chunk.keys for chunk in chunk_results])
            left = np.concatenate([chunk.rep_left for chunk in chunk_results])
            right = np.concatenate([chunk.rep_right for chunk in chunk_results])
            size_ub = np.concatenate([chunk.size_ub for chunk in chunk_results])
            error_ub = np.concatenate([chunk.error_ub for chunk in chunk_results])
            max_error_ub = np.concatenate(
                [chunk.max_error_ub for chunk in chunk_results]
            )
        if pruning.deduplicate:
            unique_keys, first_index, group = _dedup_keys(keys, num_cols)
            num_groups = int(first_index.size)
            grouped_size_ub = _group_min(size_ub, group, num_groups)
            grouped_error_ub = _group_min(error_ub, group, num_groups)
            grouped_max_error_ub = _group_min(max_error_ub, group, num_groups)
            num_parents = _fold_parent_counts(
                chunk_results, group, num_groups, int(parent_sizes.shape[0])
            )
        else:
            unique_keys = keys
            num_groups = int(keys.shape[0])
            grouped_size_ub = size_ub
            grouped_error_ub = error_ub
            grouped_max_error_ub = max_error_ub
            num_parents = np.full(num_groups, 2, dtype=np.int64)
        recorder.deduplicated += num_groups
        dedup_span.annotate(distinct=num_groups)
    recorder.dedup_seconds += time.perf_counter() - dedup_started

    # -- step 7: pruning per Equation 9 ---------------------------------------
    prune_started = time.perf_counter()
    with tracer.span("pairs.prune", candidates=num_groups) as prune_span:
        keep_mask = np.ones(num_groups, dtype=bool)
        if pruning.by_size:
            size_ok = grouped_size_ub >= sigma
            recorder.pruned_by_size += int(np.count_nonzero(keep_mask & ~size_ok))
            keep_mask &= size_ok
        if pruning.handle_missing_parents:
            parents_ok = num_parents == level
            recorder.pruned_by_parents += int(
                np.count_nonzero(keep_mask & ~parents_ok)
            )
            keep_mask &= parents_ok
        bounds: np.ndarray | None = None
        if pruning.by_score:
            sc_ub = score_upper_bound(
                grouped_size_ub,
                grouped_error_ub,
                grouped_max_error_ub,
                num_rows,
                total_error,
                sigma,
                alpha,
            )
            score_ok = (sc_ub > topk_min_score) & (sc_ub >= 0.0)
            dropped = int(np.count_nonzero(keep_mask & ~score_ok))
            recorder.pruned_by_score += dropped
            recorder.pruned_by_score_groups += dropped
            keep_mask &= score_ok
            bounds = sc_ub

        kept = np.flatnonzero(keep_mask)
        prune_span.annotate(kept=int(kept.size))
    recorder.prune_seconds += time.perf_counter() - prune_started
    if kept.size == 0:
        return _result(empty, None, None)
    recorder.candidates_emitted += int(kept.size)
    recorder.candidates_nnz += int(kept.size) * level
    keys_started = time.perf_counter()
    parents: np.ndarray | None = None
    if return_parents:
        if pruning.deduplicate:
            rep_left = left[first_index]
            rep_right = right[first_index]
        else:
            rep_left, rep_right = left, right
        # Map the representatives back through the input filter so they
        # index the caller's (pre-filter) evaluated-slice order — the same
        # order the incremental backend's indicator cache is aligned to.
        parents = np.stack(
            [keep_idx[rep_left[kept]], keep_idx[rep_right[kept]]], axis=1
        )
    matrix = _keys_to_matrix(unique_keys[kept], level, num_cols)
    recorder.keys_seconds += time.perf_counter() - keys_started
    return _result(
        matrix,
        bounds[kept] if bounds is not None else None,
        parents,
    )


def reference_pair_candidates(
    slices: sp.csr_matrix,
    stats: np.ndarray,
    level: int,
    *,
    num_rows: int,
    total_error: float,
    sigma: int,
    alpha: float,
    topk_min_score: float,
    feature_map: np.ndarray,
    pruning: PruningConfig | None = None,
    level_stats: LevelCounters | None = None,
    tracer=NULL_TRACER,
    return_parents: bool = False,
) -> tuple[sp.csr_matrix, np.ndarray | None] | tuple[
    sp.csr_matrix, np.ndarray | None, np.ndarray | None
]:
    """The pre-pipeline (serial, globally deduplicating) implementation.

    Preserved verbatim as the differential oracle: it streams the join
    single-threadedly, merges via sparse row addition, deduplicates once
    globally, and counts distinct parents with a structured row sort —
    sharing no execution strategy with :func:`get_pair_candidates`, which
    must match it bitwise (matrix, bounds, parents, and counters) in every
    configuration.  ``benchmarks/bench_pairs.py`` uses it as the speedup
    baseline.
    """
    pruning = pruning or PruningConfig()
    recorder = level_stats or LevelCounters(level=level)
    num_cols = slices.shape[1]
    empty = sp.csr_matrix((0, num_cols), dtype=np.float64)
    recorder.input_slices += int(slices.shape[0])

    def _result(matrix, bounds, parents):
        if return_parents:
            return matrix, bounds, parents
        return matrix, bounds

    keep_idx = np.arange(slices.shape[0], dtype=np.int64)
    if pruning.filter_input_slices:
        keep = (stats[:, StatsCol.SIZE] >= sigma) & (stats[:, StatsCol.ERROR] > 0)
        if pruning.by_score:
            parent_bound = score_upper_bound(
                stats[:, StatsCol.SIZE],
                stats[:, StatsCol.ERROR],
                stats[:, StatsCol.MAX_ERROR],
                num_rows,
                total_error,
                sigma,
                alpha,
            )
            keep &= (parent_bound > topk_min_score) & (parent_bound >= 0.0)
        recorder.input_filtered += int(keep.size - np.count_nonzero(keep))
        keep_idx = np.flatnonzero(keep)
        slices = slices[keep_idx]
        stats = stats[keep]
    if slices.shape[0] < 2:
        return _result(empty, None, None)

    collected: list[tuple[np.ndarray, ...]] = []
    parent_sizes = stats[:, StatsCol.SIZE]
    parent_errors = stats[:, StatsCol.ERROR]
    parent_max_errors = stats[:, StatsCol.MAX_ERROR]
    with tracer.span("pairs.join", parents=slices.shape[0]) as join_span:
        for rows, cols in _ops.iter_upper_tri_pair_chunks(
            slices, float(level - 2)
        ):
            for start in range(0, rows.size, _PAIR_BATCH):
                left = rows[start : start + _PAIR_BATCH]
                right = cols[start : start + _PAIR_BATCH]
                recorder.pairs_generated += int(left.size)
                keys = _merge_keys_sparse(slices, left, right, level)
                feasible = _feature_valid(keys, feature_map)
                recorder.invalid_feature_pairs += int(left.size - feasible.sum())
                if not feasible.any():
                    continue
                left, right, keys = left[feasible], right[feasible], keys[feasible]
                size_ub = np.minimum(parent_sizes[left], parent_sizes[right])
                error_ub = np.minimum(parent_errors[left], parent_errors[right])
                max_error_ub = np.minimum(
                    parent_max_errors[left], parent_max_errors[right]
                )
                if pruning.by_score:
                    sc_ub = score_upper_bound(
                        size_ub, error_ub, max_error_ub,
                        num_rows, total_error, sigma, alpha,
                    )
                    passing = (sc_ub > topk_min_score) & (sc_ub >= 0.0)
                    dropped = int(passing.size - passing.sum())
                    recorder.pruned_by_score += dropped
                    recorder.pruned_by_score_pairs += dropped
                    if not passing.any():
                        continue
                    left, right, keys = (
                        left[passing], right[passing], keys[passing],
                    )
                    size_ub, error_ub, max_error_ub = (
                        size_ub[passing], error_ub[passing], max_error_ub[passing],
                    )
                collected.append(
                    (keys, left, right, size_ub, error_ub, max_error_ub)
                )
        join_span.annotate(pairs=recorder.pairs_generated)
    if not collected:
        return _result(empty, None, None)
    keys, left, right, size_ub, error_ub, max_error_ub = (
        np.concatenate([batch[part] for batch in collected])
        for part in range(6)
    )
    recorder.candidates_before_dedup += int(keys.shape[0])

    with tracer.span("pairs.dedup", pairs=int(keys.shape[0])) as dedup_span:
        if pruning.deduplicate:
            unique_keys, first_index, group = _dedup_keys(keys, num_cols)
            num_groups = int(first_index.size)
            grouped_size_ub = _group_min(size_ub, group, num_groups)
            grouped_error_ub = _group_min(error_ub, group, num_groups)
            grouped_max_error_ub = _group_min(max_error_ub, group, num_groups)
            num_parents = _distinct_parent_count_rowsort(
                group, num_groups, left, right
            )
        else:
            unique_keys = keys
            num_groups = int(keys.shape[0])
            grouped_size_ub = size_ub
            grouped_error_ub = error_ub
            grouped_max_error_ub = max_error_ub
            num_parents = np.full(num_groups, 2, dtype=np.int64)
        recorder.deduplicated += num_groups
        dedup_span.annotate(distinct=num_groups)

    with tracer.span("pairs.prune", candidates=num_groups) as prune_span:
        keep_mask = np.ones(num_groups, dtype=bool)
        if pruning.by_size:
            size_ok = grouped_size_ub >= sigma
            recorder.pruned_by_size += int(np.count_nonzero(keep_mask & ~size_ok))
            keep_mask &= size_ok
        if pruning.handle_missing_parents:
            parents_ok = num_parents == level
            recorder.pruned_by_parents += int(
                np.count_nonzero(keep_mask & ~parents_ok)
            )
            keep_mask &= parents_ok
        bounds: np.ndarray | None = None
        if pruning.by_score:
            sc_ub = score_upper_bound(
                grouped_size_ub,
                grouped_error_ub,
                grouped_max_error_ub,
                num_rows,
                total_error,
                sigma,
                alpha,
            )
            score_ok = (sc_ub > topk_min_score) & (sc_ub >= 0.0)
            dropped = int(np.count_nonzero(keep_mask & ~score_ok))
            recorder.pruned_by_score += dropped
            recorder.pruned_by_score_groups += dropped
            keep_mask &= score_ok
            bounds = sc_ub

        kept = np.flatnonzero(keep_mask)
        prune_span.annotate(kept=int(kept.size))
    if kept.size == 0:
        return _result(empty, None, None)
    recorder.candidates_emitted += int(kept.size)
    recorder.candidates_nnz += int(kept.size) * level
    parents: np.ndarray | None = None
    if return_parents:
        if pruning.deduplicate:
            rep_left = left[first_index]
            rep_right = right[first_index]
        else:
            rep_left, rep_right = left, right
        parents = np.stack(
            [keep_idx[rep_left[kept]], keep_idx[rep_right[kept]]], axis=1
        )
    return _result(
        _keys_to_matrix(unique_keys[kept], level, num_cols),
        bounds[kept] if bounds is not None else None,
        parents,
    )


def _parent_key_rows(slices: sp.csr_matrix, level: int) -> np.ndarray | None:
    """Dense ``num_parents x (L-1)`` sorted-column-key matrix of the parents.

    Every evaluated level ``L-1`` slice has exactly ``L-1`` set columns, so
    the canonical CSR ``indices`` array reshapes directly.  Returns ``None``
    for non-uniform inputs (only reachable by direct callers feeding ad-hoc
    matrices) — the merge then falls back to the sparse row-addition path.
    """
    if level < 2 or slices.shape[0] == 0:
        return None
    if not np.all(np.diff(slices.indptr) == level - 1):
        return None
    return slices.indices.reshape(slices.shape[0], level - 1).astype(
        np.int64, copy=False
    )


def _merge_keys(
    s: sp.csr_matrix,
    key_rows: np.ndarray | None,
    left: np.ndarray,
    right: np.ndarray,
    level: int,
) -> np.ndarray:
    """Sorted column-index keys of the merged slices ``S[left] | S[right]``."""
    if key_rows is None:
        return _merge_keys_sparse(s, left, right, level)
    return _merge_keys_dense(key_rows, left, right, level)


def _merge_keys_dense(
    key_rows: np.ndarray, left: np.ndarray, right: np.ndarray, level: int
) -> np.ndarray:
    """Merged keys via a dense row-wise sort of both parents' key rows.

    Concatenating the two parents' sorted ``L-1``-column keys and sorting
    each ``2L-2``-wide row makes the ``L-2`` shared predicates adjacent;
    dropping adjacent duplicates leaves exactly the ``L`` distinct columns
    of the union, in ascending order — the same rows the sparse
    row-addition path produces, without materializing any sparse sum.
    """
    both = np.concatenate([key_rows[left], key_rows[right]], axis=1)
    both.sort(axis=1)
    distinct = np.empty(both.shape, dtype=bool)
    distinct[:, 0] = True
    np.not_equal(both[:, 1:], both[:, :-1], out=distinct[:, 1:])
    if int(np.count_nonzero(distinct)) != level * left.size:
        raise AssertionError(
            "pair merge invariant violated: unions must have exactly L columns"
        )
    return both[distinct].reshape(left.size, level)


def _merge_keys_sparse(
    slices: sp.csr_matrix, left: np.ndarray, right: np.ndarray, level: int
) -> np.ndarray:
    """Merged keys via sparse row addition (fallback for ad-hoc inputs).

    Joined parents overlap in exactly ``L-2`` predicates, so every union has
    exactly ``L`` set columns: the CSR ``indices`` array reshapes into a
    dense ``num_pairs x L`` key matrix (rows sorted ascending — CSR
    canonical form), the compact equivalent of the paper's mixed-radix IDs.
    """
    merged = (slices[left] + slices[right]).tocsr()
    merged.sum_duplicates()
    merged.sort_indices()
    if merged.nnz != level * left.size:
        raise AssertionError(
            "pair merge invariant violated: unions must have exactly L columns"
        )
    return merged.indices.reshape(left.size, level).astype(np.int64)


def _feature_valid(keys: np.ndarray, feature_map: np.ndarray) -> np.ndarray:
    """Rows whose ``L`` columns touch ``L`` distinct original features.

    One-hot columns of the same feature are contiguous, so in the sorted key
    rows two predicates on one feature are adjacent — an adjacent-difference
    check replaces the paper's per-feature ``rowSums`` scan.
    """
    if keys.shape[1] == 1:
        return np.ones(keys.shape[0], dtype=bool)
    feats = feature_map[keys]
    return np.all(feats[:, 1:] != feats[:, :-1], axis=1)


def _dedup_keys(
    keys: np.ndarray, num_cols: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``np.unique`` of the key rows via scalar slice IDs when they fit.

    Packing each sorted ``L``-column key into one mixed-radix ``int64``
    (the paper's ND-array slice ID with base ``m'``) turns the expensive
    ``np.unique(axis=0)`` row sort into a plain 1-D sort.  The packing is a
    strictly monotone bijection w.r.t. lexicographic row order, and both
    paths use a stable sort for ``return_index``, so the returned
    ``(unique_keys, first_index, group)`` triple is identical either way;
    when ``m'^L`` overflows ``int64`` the row-wise path is the fallback.
    """
    packed = pack_rows_mixed_radix(keys, num_cols)
    if packed is not None:
        _, first_index, group = np.unique(
            packed, return_index=True, return_inverse=True
        )
        return keys[first_index], first_index, group.ravel()
    unique_keys, first_index, group = np.unique(
        keys, axis=0, return_index=True, return_inverse=True
    )
    return unique_keys, first_index, group.ravel()


def _keys_to_matrix(keys: np.ndarray, level: int, num_cols: int) -> sp.csr_matrix:
    """Build the 0/1 candidate matrix from sorted column-index keys.

    Indices stay in the canonical ``int64`` index dtype: a downcast (the
    former ``astype(np.int32)``) silently wraps for one-hot spaces wider
    than ``2^31`` columns, which wide-domain feature crosses can reach.
    """
    num_slices = keys.shape[0]
    indptr = np.arange(0, num_slices * level + 1, level, dtype=np.int64)
    data = np.ones(num_slices * level, dtype=np.float64)
    return sp.csr_matrix(
        (data, keys.ravel().astype(np.int64, copy=False), indptr),
        shape=(num_slices, num_cols),
    )


def _group_min(values: np.ndarray, group: np.ndarray, num_groups: int) -> np.ndarray:
    """Per-group minimum (the paper's reciprocal-rowMaxs trick, done directly)."""
    result = np.full(num_groups, np.inf, dtype=np.float64)
    np.minimum.at(result, group, values)
    return result


def _distinct_parent_incidences(
    group: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    num_parents_total: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Locally distinct ``(group, parent)`` incidence pairs, sorted.

    Packs each incidence into one ``int64`` (``group * P + parent`` with
    ``P`` the parent-universe size) so a plain 1-D unique replaces the
    structured row sort of ``np.unique(axis=0)`` — the former single
    hottest operation of the whole enumeration.  Falls back to the row
    sort when the packed range would overflow ``int64``.
    """
    num_groups = int(group.max()) + 1 if group.size else 0
    if num_parents_total >= 1 and num_groups * num_parents_total <= _INT64_MAX:
        packed = np.unique(
            np.concatenate(
                [
                    group * num_parents_total + left,
                    group * num_parents_total + right,
                ]
            )
        )
        return packed // num_parents_total, packed % num_parents_total
    pairs = np.concatenate(
        [
            np.stack([group, left], axis=1),
            np.stack([group, right], axis=1),
        ]
    )
    unique_pairs = np.unique(pairs, axis=0)
    return (
        unique_pairs[:, 0].astype(np.int64, copy=False),
        unique_pairs[:, 1].astype(np.int64, copy=False),
    )


def _fold_parent_counts(
    chunk_results: list[_ChunkResult],
    group: np.ndarray,
    num_groups: int,
    num_parents_total: int,
) -> np.ndarray:
    """Distinct surviving parents per global dedup group (``np`` of Eq. 9).

    Implements ``np = rowSums((M (P1 + P2)) != 0)`` by set union: each
    chunk contributes its locally distinct ``(local group, parent)``
    incidences; remapping local groups through the global dedup's inverse
    labels (*group* is aligned with the concatenated chunk keys) and
    deduplicating once more counts every distinct ``(candidate, parent)``
    incidence exactly once — distinct-over-union equals global distinct.
    """
    global_groups: list[np.ndarray] = []
    parent_ids: list[np.ndarray] = []
    offset = 0
    for chunk in chunk_results:
        if chunk.parent_groups is not None and chunk.parent_groups.size:
            global_groups.append(group[offset + chunk.parent_groups])
            parent_ids.append(chunk.parent_ids)
        offset += int(chunk.keys.shape[0])
    if not global_groups:
        return np.zeros(num_groups, dtype=np.int64)
    groups_arr = np.concatenate(global_groups)
    parents_arr = np.concatenate(parent_ids)
    if num_parents_total >= 1 and num_groups * num_parents_total <= _INT64_MAX:
        packed = np.unique(groups_arr * num_parents_total + parents_arr)
        counted = packed // num_parents_total
    else:
        unique_pairs = np.unique(
            np.stack([groups_arr, parents_arr], axis=1), axis=0
        )
        counted = unique_pairs[:, 0]
    return np.bincount(counted, minlength=num_groups).astype(
        np.int64, copy=False
    )


def _distinct_parent_count_rowsort(
    group: np.ndarray, num_groups: int, left: np.ndarray, right: np.ndarray
) -> np.ndarray:
    """Number of distinct surviving parents per deduplicated candidate.

    The reference pipeline's structured-row-sort realization of
    ``np = rowSums((M (P1 + P2)) != 0)``: every pair contributes its two
    parents to its candidate's group; counting distinct parent ids per
    group yields ``np``, which must equal ``L`` for a fully supported
    candidate at level ``L``.
    """
    pairs = np.concatenate(
        [
            np.stack([group, left], axis=1),
            np.stack([group, right], axis=1),
        ]
    )
    unique_pairs = np.unique(pairs, axis=0)
    return np.bincount(unique_pairs[:, 0], minlength=num_groups).astype(np.int64)


__all__ = [
    "PairJoinPlan",
    "choose_pair_plan",
    "get_pair_candidates",
    "reference_pair_candidates",
]
