"""Pair enumeration with pruning and deduplication (Section 4.3).

Candidates for lattice level ``L`` are built Apriori-style by joining
compatible level ``L-1`` slices:

1. *Input filtering* — drop parents violating ``ss >= sigma`` or ``se > 0``.
2. *Self-join* — pairs whose one-hot vectors overlap in exactly ``L-2``
   predicates (``upper.tri((S S^T) == L-2)``), streamed in chunks.
3. *Merge and bound* — union the predicate sets; carry
   ``min(parent sizes/errors/max-errors)`` as upper bounds.
4. *Feature validity* — discard merged slices assigning two values to one
   original feature.
5. *Early score pruning* — the pair-level bound (min over the two parents)
   already upper-bounds the slice score, so pairs that cannot beat the
   current top-K are dropped inside the streaming loop.  This keeps the
   pair set in memory proportional to the *surviving* candidates, which is
   what makes feature-rich/correlated datasets (KDD98, USCensus) tractable.
6. *Deduplication* — identical candidates generated from different parent
   pairs collapse into one.  Because every candidate at level ``L`` has
   exactly ``L`` set columns, its sorted column-index tuple is a compact,
   overflow-free realization of the paper's ND-array-index slice ID.
   Group-wise minima tighten the bounds and the group's distinct-parent
   count feeds the missing-parent pruning.
7. *Pruning* (Equation 9) — minimum support on the size bound, upper-bound
   score against 0 and the current top-K minimum, and ``np == L``.

Every pruning technique is individually toggleable through
:class:`~repro.core.config.PruningConfig` (the Figure 3 ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.core.config import PruningConfig
from repro.core.scoring import score_upper_bound
from repro.core.types import StatsCol
from repro.linalg import iter_upper_tri_pair_chunks, pack_rows_mixed_radix
from repro.obs import NULL_TRACER, LevelCounters

#: pairs processed per streaming step (bounds peak memory of the merge)
_PAIR_BATCH = 1 << 20


@dataclass
class _PairAccumulator:
    """Collects surviving pairs (keys + bounds + parent ids) across chunks."""

    keys: list[np.ndarray] = field(default_factory=list)
    left: list[np.ndarray] = field(default_factory=list)
    right: list[np.ndarray] = field(default_factory=list)
    size_ub: list[np.ndarray] = field(default_factory=list)
    error_ub: list[np.ndarray] = field(default_factory=list)
    max_error_ub: list[np.ndarray] = field(default_factory=list)

    def append(self, keys, left, right, size_ub, error_ub, max_error_ub) -> None:
        self.keys.append(keys)
        self.left.append(left)
        self.right.append(right)
        self.size_ub.append(size_ub)
        self.error_ub.append(error_ub)
        self.max_error_ub.append(max_error_ub)

    @property
    def empty(self) -> bool:
        return not self.keys

    def concatenated(self):
        return (
            np.concatenate(self.keys),
            np.concatenate(self.left),
            np.concatenate(self.right),
            np.concatenate(self.size_ub),
            np.concatenate(self.error_ub),
            np.concatenate(self.max_error_ub),
        )


def get_pair_candidates(
    slices: sp.csr_matrix,
    stats: np.ndarray,
    level: int,
    *,
    num_rows: int,
    total_error: float,
    sigma: int,
    alpha: float,
    topk_min_score: float,
    feature_map: np.ndarray,
    pruning: PruningConfig | None = None,
    level_stats: LevelCounters | None = None,
    tracer=NULL_TRACER,
    return_parents: bool = False,
) -> tuple[sp.csr_matrix, np.ndarray | None] | tuple[
    sp.csr_matrix, np.ndarray | None, np.ndarray | None
]:
    """Generate deduplicated, pruned candidate slices for *level*.

    *slices*/*stats* are the evaluated slices of level ``L-1`` and their
    ``R`` matrix in the projected one-hot space; *feature_map* maps each
    projected column to its original feature index (non-decreasing).
    *topk_min_score* is the score of the current K-th best slice (0.0 while
    the top-K is not yet full), a monotonically increasing lower bound for
    score pruning.

    Returns the candidate slice matrix ``S`` for level ``L`` (possibly with
    zero rows) together with the per-candidate upper-bound scores
    ``ceil(sc)`` (``None`` when score pruning is disabled) — the driver uses
    them for priority evaluation.  When *level_stats* is given, per-step
    counters are recorded into it; when *tracer* is given, the join,
    deduplication, and pruning steps report spans into it.

    With ``return_parents=True`` a third element is returned: a
    ``num_candidates x 2`` int64 matrix naming, per emitted candidate, one
    generating pair of parents as row indices into the *input* ``slices``
    (pre-filter positions, i.e. the previous level's evaluated-slice
    order).  Any generating pair works for the incremental-indicator
    backend — the candidate's row indicator is the AND of the two parents'
    indicators whichever pair produced it — so the deduplication
    representative is used.
    """
    pruning = pruning or PruningConfig()
    recorder = level_stats or LevelCounters(level=level)
    num_cols = slices.shape[1]
    empty = sp.csr_matrix((0, num_cols), dtype=np.float64)
    recorder.input_slices += int(slices.shape[0])

    def _result(matrix, bounds, parents):
        if return_parents:
            return matrix, bounds, parents
        return matrix, bounds

    keep_idx = np.arange(slices.shape[0], dtype=np.int64)

    # -- step 1: prune invalid input slices ---------------------------------
    if pruning.filter_input_slices:
        keep = (stats[:, StatsCol.SIZE] >= sigma) & (stats[:, StatsCol.ERROR] > 0)
        if pruning.by_score:
            # A parent's own bound also bounds every one of its children
            # (child bounds are minima over parents), so parents that cannot
            # beat the current top-K cannot yield useful children either.
            # Filtering them here shrinks the O(n^2) join quadratically.
            parent_bound = score_upper_bound(
                stats[:, StatsCol.SIZE],
                stats[:, StatsCol.ERROR],
                stats[:, StatsCol.MAX_ERROR],
                num_rows,
                total_error,
                sigma,
                alpha,
            )
            keep &= (parent_bound > topk_min_score) & (parent_bound >= 0.0)
        recorder.input_filtered += int(keep.size - np.count_nonzero(keep))
        keep_idx = np.flatnonzero(keep)
        slices = slices[keep_idx]
        stats = stats[keep]
    if slices.shape[0] < 2:
        return _result(empty, None, None)

    # -- steps 2-5: streamed join, merge, validity, early pruning ------------
    acc = _PairAccumulator()
    parent_sizes = stats[:, StatsCol.SIZE]
    parent_errors = stats[:, StatsCol.ERROR]
    parent_max_errors = stats[:, StatsCol.MAX_ERROR]
    with tracer.span("pairs.join", parents=slices.shape[0]) as join_span:
        for rows, cols in iter_upper_tri_pair_chunks(slices, float(level - 2)):
            for start in range(0, rows.size, _PAIR_BATCH):
                left = rows[start : start + _PAIR_BATCH]
                right = cols[start : start + _PAIR_BATCH]
                recorder.pairs_generated += int(left.size)
                keys = _merge_keys(slices, left, right, level)
                feasible = _feature_valid(keys, feature_map)
                recorder.invalid_feature_pairs += int(left.size - feasible.sum())
                if not feasible.any():
                    continue
                left, right, keys = left[feasible], right[feasible], keys[feasible]
                size_ub = np.minimum(parent_sizes[left], parent_sizes[right])
                error_ub = np.minimum(parent_errors[left], parent_errors[right])
                max_error_ub = np.minimum(
                    parent_max_errors[left], parent_max_errors[right]
                )
                if pruning.by_score:
                    # The pair-level bound already upper-bounds the slice
                    # score; dropping failing pairs here keeps memory
                    # proportional to surviving candidates.  Any dedup group
                    # containing a failing pair has an even lower group
                    # bound, so the group-level pruning below remains exact.
                    sc_ub = score_upper_bound(
                        size_ub, error_ub, max_error_ub,
                        num_rows, total_error, sigma, alpha,
                    )
                    passing = (sc_ub > topk_min_score) & (sc_ub >= 0.0)
                    dropped = int(passing.size - passing.sum())
                    recorder.pruned_by_score += dropped
                    recorder.pruned_by_score_pairs += dropped
                    if not passing.any():
                        continue
                    left, right, keys = (
                        left[passing], right[passing], keys[passing],
                    )
                    size_ub, error_ub, max_error_ub = (
                        size_ub[passing], error_ub[passing], max_error_ub[passing],
                    )
                acc.append(keys, left, right, size_ub, error_ub, max_error_ub)
        join_span.annotate(pairs=recorder.pairs_generated)
    if acc.empty:
        return _result(empty, None, None)
    keys, left, right, size_ub, error_ub, max_error_ub = acc.concatenated()
    recorder.candidates_before_dedup += int(keys.shape[0])

    # -- step 6: deduplicate via slice-ID keys --------------------------------
    with tracer.span("pairs.dedup", pairs=int(keys.shape[0])) as dedup_span:
        if pruning.deduplicate:
            unique_keys, first_index, group = _dedup_keys(keys, num_cols)
            num_groups = int(first_index.size)
            grouped_size_ub = _group_min(size_ub, group, num_groups)
            grouped_error_ub = _group_min(error_ub, group, num_groups)
            grouped_max_error_ub = _group_min(max_error_ub, group, num_groups)
            num_parents = _distinct_parent_count(group, num_groups, left, right)
        else:
            unique_keys = keys
            num_groups = int(keys.shape[0])
            grouped_size_ub = size_ub
            grouped_error_ub = error_ub
            grouped_max_error_ub = max_error_ub
            num_parents = np.full(num_groups, 2, dtype=np.int64)
        recorder.deduplicated += num_groups
        dedup_span.annotate(distinct=num_groups)

    # -- step 7: pruning per Equation 9 ---------------------------------------
    with tracer.span("pairs.prune", candidates=num_groups) as prune_span:
        keep_mask = np.ones(num_groups, dtype=bool)
        if pruning.by_size:
            size_ok = grouped_size_ub >= sigma
            recorder.pruned_by_size += int(np.count_nonzero(keep_mask & ~size_ok))
            keep_mask &= size_ok
        if pruning.handle_missing_parents:
            parents_ok = num_parents == level
            recorder.pruned_by_parents += int(
                np.count_nonzero(keep_mask & ~parents_ok)
            )
            keep_mask &= parents_ok
        bounds: np.ndarray | None = None
        if pruning.by_score:
            sc_ub = score_upper_bound(
                grouped_size_ub,
                grouped_error_ub,
                grouped_max_error_ub,
                num_rows,
                total_error,
                sigma,
                alpha,
            )
            score_ok = (sc_ub > topk_min_score) & (sc_ub >= 0.0)
            dropped = int(np.count_nonzero(keep_mask & ~score_ok))
            recorder.pruned_by_score += dropped
            recorder.pruned_by_score_groups += dropped
            keep_mask &= score_ok
            bounds = sc_ub

        kept = np.flatnonzero(keep_mask)
        prune_span.annotate(kept=int(kept.size))
    if kept.size == 0:
        return _result(empty, None, None)
    recorder.candidates_emitted += int(kept.size)
    recorder.candidates_nnz += int(kept.size) * level
    parents: np.ndarray | None = None
    if return_parents:
        if pruning.deduplicate:
            rep_left = left[first_index]
            rep_right = right[first_index]
        else:
            rep_left, rep_right = left, right
        # Map the representatives back through the input filter so they
        # index the caller's (pre-filter) evaluated-slice order — the same
        # order the incremental backend's indicator cache is aligned to.
        parents = np.stack(
            [keep_idx[rep_left[kept]], keep_idx[rep_right[kept]]], axis=1
        )
    return _result(
        _keys_to_matrix(unique_keys[kept], level, num_cols),
        bounds[kept] if bounds is not None else None,
        parents,
    )


def _merge_keys(
    slices: sp.csr_matrix, left: np.ndarray, right: np.ndarray, level: int
) -> np.ndarray:
    """Sorted column-index keys of the merged slices ``S[left] | S[right]``.

    Joined parents overlap in exactly ``L-2`` predicates, so every union has
    exactly ``L`` set columns: the CSR ``indices`` array reshapes into a
    dense ``num_pairs x L`` key matrix (rows sorted ascending — CSR
    canonical form), the compact equivalent of the paper's mixed-radix IDs.
    """
    merged = (slices[left] + slices[right]).tocsr()
    merged.sum_duplicates()
    merged.sort_indices()
    if merged.nnz != level * left.size:
        raise AssertionError(
            "pair merge invariant violated: unions must have exactly L columns"
        )
    return merged.indices.reshape(left.size, level).astype(np.int64)


def _feature_valid(keys: np.ndarray, feature_map: np.ndarray) -> np.ndarray:
    """Rows whose ``L`` columns touch ``L`` distinct original features.

    One-hot columns of the same feature are contiguous, so in the sorted key
    rows two predicates on one feature are adjacent — an adjacent-difference
    check replaces the paper's per-feature ``rowSums`` scan.
    """
    if keys.shape[1] == 1:
        return np.ones(keys.shape[0], dtype=bool)
    feats = feature_map[keys]
    return np.all(feats[:, 1:] != feats[:, :-1], axis=1)


def _dedup_keys(
    keys: np.ndarray, num_cols: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``np.unique`` of the key rows via scalar slice IDs when they fit.

    Packing each sorted ``L``-column key into one mixed-radix ``int64``
    (the paper's ND-array slice ID with base ``m'``) turns the expensive
    ``np.unique(axis=0)`` row sort into a plain 1-D sort.  The packing is a
    strictly monotone bijection w.r.t. lexicographic row order, and both
    paths use a stable sort for ``return_index``, so the returned
    ``(unique_keys, first_index, group)`` triple is identical either way;
    when ``m'^L`` overflows ``int64`` the row-wise path is the fallback.
    """
    packed = pack_rows_mixed_radix(keys, num_cols)
    if packed is not None:
        _, first_index, group = np.unique(
            packed, return_index=True, return_inverse=True
        )
        return keys[first_index], first_index, group.ravel()
    unique_keys, first_index, group = np.unique(
        keys, axis=0, return_index=True, return_inverse=True
    )
    return unique_keys, first_index, group.ravel()


def _keys_to_matrix(keys: np.ndarray, level: int, num_cols: int) -> sp.csr_matrix:
    """Build the 0/1 candidate matrix from sorted column-index keys.

    Indices stay in the canonical ``int64`` index dtype: a downcast (the
    former ``astype(np.int32)``) silently wraps for one-hot spaces wider
    than ``2^31`` columns, which wide-domain feature crosses can reach.
    """
    num_slices = keys.shape[0]
    indptr = np.arange(0, num_slices * level + 1, level, dtype=np.int64)
    data = np.ones(num_slices * level, dtype=np.float64)
    return sp.csr_matrix(
        (data, keys.ravel().astype(np.int64, copy=False), indptr),
        shape=(num_slices, num_cols),
    )


def _group_min(values: np.ndarray, group: np.ndarray, num_groups: int) -> np.ndarray:
    """Per-group minimum (the paper's reciprocal-rowMaxs trick, done directly)."""
    result = np.full(num_groups, np.inf, dtype=np.float64)
    np.minimum.at(result, group, values)
    return result


def _distinct_parent_count(
    group: np.ndarray, num_groups: int, left: np.ndarray, right: np.ndarray
) -> np.ndarray:
    """Number of distinct surviving parents per deduplicated candidate.

    Implements ``np = rowSums((M (P1 + P2)) != 0)``: every pair contributes
    its two parents to its candidate's group; counting distinct parent ids
    per group yields ``np``, which must equal ``L`` for a fully supported
    candidate at level ``L``.
    """
    pairs = np.concatenate(
        [
            np.stack([group, left], axis=1),
            np.stack([group, right], axis=1),
        ]
    )
    unique_pairs = np.unique(pairs, axis=0)
    return np.bincount(unique_pairs[:, 0], minlength=num_groups).astype(np.int64)


__all__ = ["get_pair_candidates"]
