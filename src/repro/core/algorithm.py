"""The SliceLine enumeration driver (Algorithm 1) and estimator facade.

:func:`slice_line` is a faithful transcription of Algorithm 1: data
preparation (one-hot encoding), initialization (basic slices + initial
top-K), then level-wise lattice enumeration alternating pair generation
(with pruning/deduplication), vectorized evaluation, and top-K maintenance,
until no candidates remain or the level cap is hit.

:class:`SliceLine` wraps the function in a scikit-learn-style estimator for
interactive use (``fit`` / ``transform`` / fitted attributes).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.core.basic import create_and_score_basic_slices
from repro.core.compaction import CompactionState
from repro.core.config import PruningConfig, SliceLineConfig
from repro.core.decode import decode_topk, slice_membership
from repro.core.evaluate import evaluate_slice_set, evaluate_slices
from repro.core.onehot import FeatureSpace, validate_encoded_matrix
from repro.core.pairs import get_pair_candidates
from repro.core.scoring import score
from repro.core.topk import empty_topk, maintain_topk, topk_min_score
from repro.core.types import (
    Slice,
    SliceLineResult,
    StatsCol,
    WarmStartInfo,
    stats_matrix,
)
from repro.exceptions import (
    CheckpointError,
    EncodingError,
    InvalidErrorsError,
    ShapeError,
)
from repro.linalg import KernelState, KernelWorkspace, ensure_vector
from repro.obs import NULL_TRACER, CounterRegistry, Tracer, resolve_tracer
from repro.resilience.budgets import (
    BudgetConfig,
    BudgetTracker,
    SuspendHook,
    estimate_level_memory,
)
from repro.resilience.checkpoint import (
    CheckpointState,
    fingerprint_config,
    fingerprint_inputs,
    load_checkpoint,
    save_checkpoint,
    verify_checkpoint,
)


def slice_line(
    x0: np.ndarray,
    errors: np.ndarray,
    config: SliceLineConfig | None = None,
    feature_space: FeatureSpace | None = None,
    num_threads: int = 1,
    trace: bool | str | Tracer | None = None,
    seed_slices: Sequence[Slice] | None = None,
    budgets: BudgetConfig | None = None,
    checkpoint_dir: str | None = None,
    resume_from: str | None = None,
    suspend: "SuspendHook | None" = None,
) -> SliceLineResult:
    """Find the top-K problematic slices of an integer-encoded dataset.

    Parameters
    ----------
    x0:
        ``n x m`` feature matrix in 1-based contiguous integer encoding
        (use :mod:`repro.preprocessing` to recode/bin raw data).
    errors:
        Non-negative, row-aligned error vector ``e`` (e.g. squared loss for
        regression or 0/1 inaccuracy for classification; see
        :mod:`repro.ml.errors`).
    config:
        Algorithm parameters (top-K, sigma, alpha, level cap, block size,
        pruning toggles); defaults follow the paper.
    feature_space:
        Optional pre-built :class:`FeatureSpace` (e.g. carrying feature
        names); derived from *x0* when omitted.
    num_threads:
        Thread-pool width for blocked slice evaluation (1 = serial).
    trace:
        Observability switch: ``None``/``False`` (default) disables span
        recording at near-zero cost, ``True`` records a hierarchical trace
        of the search, ``"memory"`` additionally tracks the ``tracemalloc``
        allocation high-water mark per span, and an explicit
        :class:`~repro.obs.Tracer` lets several runs share one trace.
        Per-level pruning counters are collected regardless (they replace
        the former ad-hoc ``LevelStats`` bookkeeping) and are exported as
        ``result.counters``.
    seed_slices:
        Optional warm-start seeds — decoded :class:`Slice` objects from a
        previous, related run (e.g. the prior window of a
        :class:`~repro.streaming.SliceMonitor`).  Seeds are re-evaluated on
        *this* dataset and merged into the initial top-K before enumeration
        begins, which raises the score-pruning threshold earlier and skips
        lattice subtrees a cold run would still explore.  Because
        Equation-3 pruning is exact, the returned top-K is **identical** to
        an unseeded run; only the amount of evaluation work changes
        (``result.warm_start`` records seed accounting, and seed
        evaluations are deliberately kept out of the per-level counters so
        their flow-conservation identities stay intact).  Seeds outside the
        current feature space's domains are ignored.
    budgets:
        Optional anytime budgets (:class:`~repro.resilience.BudgetConfig`):
        a wall-clock deadline, a per-level candidate cap, and an estimated
        memory cap.  A tripped budget never raises — the run returns the
        exact top-K of everything evaluated so far with
        ``result.completed = False`` and ``result.budget_trip`` naming the
        budget, the level reached, and the measurement that fired.
    checkpoint_dir:
        When given, a ``repro.ckpt/v1`` bundle is written into this
        directory after every completed level (see
        :mod:`repro.resilience.checkpoint`), so a killed run can be resumed.
    resume_from:
        Path to a checkpoint bundle (or a checkpoint directory, whose
        deepest bundle is used) written by a previous run over the **same**
        ``(x0, errors, config)`` — enforced by content fingerprints.  The
        resumed run replays enumeration from the checkpointed level boundary
        and produces bitwise-identical top-K slices, statistics, and
        pruning counters to an uninterrupted run.  ``seed_slices`` are
        ignored on resume (their effect is already baked into the restored
        top-K).
    suspend:
        Optional cooperative :class:`~repro.resilience.SuspendHook`.  When
        another thread calls its ``request()``, the enumeration stops at
        the next level boundary and returns ``result.suspended = True``
        with the best-so-far top-K.  Combined with ``checkpoint_dir`` (the
        boundary checkpoint is written before the hook is checked), the
        suspended run can later be resumed via ``resume_from`` and
        completes bitwise-identically — this is how the serving scheduler
        preempts long batch jobs in favour of interactive ones.

    Returns
    -------
    SliceLineResult
        Decoded top-K slices, their statistics, and per-level enumeration
        statistics; ``result.trace`` carries the span tree when traced and
        ``result.to_obs_dict()`` serializes everything to JSON.
    """
    cfg = config or SliceLineConfig()
    tracer = resolve_tracer(trace)
    counters = CounterRegistry()
    x0 = validate_encoded_matrix(x0, allow_missing=True)
    num_rows, num_features = x0.shape
    errors = ensure_vector(errors, num_rows, "errors")
    if not np.isfinite(errors).all():
        bad = int(np.count_nonzero(~np.isfinite(errors)))
        raise InvalidErrorsError(
            f"errors must be finite: {bad} NaN/inf entries in e"
        )
    if (errors < 0).any():
        raise InvalidErrorsError(
            "errors must be non-negative (e >= 0 in the paper)"
        )

    space = feature_space or FeatureSpace.from_matrix(x0)
    if space.num_features != num_features:
        raise ShapeError("feature_space does not match X0")
    sigma = cfg.resolve_sigma(num_rows)
    max_level = cfg.resolve_max_level(num_features)
    total_error = float(errors.sum())
    average_error = total_error / num_rows

    started = time.perf_counter()
    tracker = (
        BudgetTracker(budgets, started=started)
        if budgets is not None and budgets.enabled
        else None
    )

    resume_state: CheckpointState | None = None
    if resume_from is not None:
        with tracer.span("checkpoint.load", path=resume_from):
            resume_state = load_checkpoint(resume_from)
            verify_checkpoint(resume_state, x0, errors, cfg)
        counters = resume_state.restore_counters()
    fingerprints: tuple[dict, dict] | None = None
    if checkpoint_dir is not None:
        # Hash once up front; every bundle this run writes reuses them.
        fingerprints = (fingerprint_inputs(x0, errors), fingerprint_config(cfg))

    with tracer.span("encode", num_rows=num_rows, num_features=num_features):
        x_onehot = space.encode(x0)

    if total_error <= 0:
        # A perfect model has no problematic slices: every score is <= 0.
        return _empty_result(
            space, num_rows, x_onehot.shape[1], average_error,
            counters=counters, tracer=tracer, started=started,
        )

    # -- initialization: basic slices and initial top-K ----------------------
    level_started = time.perf_counter()
    with tracer.span("level1.basic", onehot_columns=x_onehot.shape[1]):
        basic = create_and_score_basic_slices(x_onehot, errors, sigma, cfg.alpha)
        top_slices, top_stats = maintain_topk(
            basic.slices, basic.stats, *empty_topk(basic.num_slices), cfg.k, sigma
        )
    if resume_state is None:
        current = counters.level(1)
        current.candidates_emitted = x_onehot.shape[1]
        current.evaluated = x_onehot.shape[1]
        current.valid = basic.num_slices
        current.indicator_nnz = int(x_onehot.nnz)
        current.elapsed_seconds = time.perf_counter() - level_started

    # Project X to the valid basic-slice columns (Algorithm 1 line 12): all
    # deeper slices are conjunctions of valid basic slices.
    x_projected = x_onehot[:, basic.selected_columns].tocsr()
    feature_map = np.searchsorted(
        space.ends, basic.selected_columns, side="right"
    ).astype(np.int64)
    if resume_state is not None and not np.array_equal(
        resume_state.selected_columns, basic.selected_columns
    ):
        raise CheckpointError(
            "checkpoint selected_columns do not match the re-derived basic "
            "pass; the bundle was written against different data"
        )

    # Unless disabled, one compaction state serves every level of this run.
    # Slices stay in the projected column space throughout; only the data
    # matrix the kernels multiply against shrinks (see repro.core.compaction).
    # On resume the state is rebuilt from the checkpointed row/column maps:
    # compaction composes per level, so the matrix is exactly
    # ``x_projected[row_indices][:, alive columns of col_map]``.
    compact: CompactionState | None = None
    if cfg.compaction:
        if resume_state is not None and resume_state.row_indices is not None:
            compact = _restore_compaction(
                resume_state, x_projected, errors, num_rows
            )
        else:
            compact = CompactionState.initial(x_projected, errors)
    if resume_state is None and compact is not None:
        current.rows_alive = compact.num_rows_alive
        current.cols_alive = compact.num_cols_alive

    # -- enumeration state: fresh from the basic pass, or the checkpoint -----
    warm_info: WarmStartInfo | None = None
    seed_keys: set[tuple[int, ...]] = set()
    if resume_state is not None:
        if resume_state.warm_info is not None:
            warm_info = WarmStartInfo(**resume_state.warm_info)
        seed_keys = {tuple(key) for key in resume_state.seed_keys}
        slices = resume_state.slices
        stats = resume_state.stats
        top_slices = resume_state.top_slices
        top_stats = resume_state.top_stats
        level = int(resume_state.level)
    else:
        slices, stats = basic.slices, basic.stats
        level = 1

    # One kernel workspace (persistent thread pool) serves seed evaluation
    # and every level; the context manager guarantees pool shutdown even
    # when a kernel or pair join raises mid-run.  One kernel state carries
    # the per-level backend decision and the incremental backend's
    # parent-indicator cache across levels (a resumed run starts with an
    # empty cache — its first level falls back, results are unchanged).
    kernels = KernelState(cfg.kernel_backend)
    with KernelWorkspace(num_threads) as workspace:
        # -- optional warm start: merge re-scored seeds into the top-K -------
        if seed_slices is not None and resume_state is None:
            top_slices, top_stats, warm_info, seed_keys = _seed_topk(
                seed_slices, space, basic.selected_columns, x_projected,
                errors, cfg, sigma, max_level, num_rows, total_error,
                top_slices, top_stats, num_threads, tracer,
                workspace=workspace, compact=compact,
            )
        if checkpoint_dir is not None and resume_state is None:
            _write_checkpoint(
                checkpoint_dir, 1, slices, stats, top_slices, top_stats,
                counters, basic.selected_columns, fingerprints, compact,
                warm_info, seed_keys, tracer,
            )

        # -- level-wise lattice enumeration ----------------------------------
        suspended = False
        while slices.shape[0] > 0 and level < max_level:
            # Cooperative preemption lands exactly on a level boundary —
            # the state the checkpoint written at the end of the previous
            # iteration persists — so resume is bitwise-identical.
            if suspend is not None and suspend.requested:
                suspended = True
                break
            if (
                tracker is not None
                and tracker.check_deadline(level + 1) is not None
            ):
                break
            level += 1
            level_started = time.perf_counter()
            current = counters.level(level)
            tripped = False
            with tracer.span(f"level{level}", level=level) as level_span:
                with tracer.span(f"level{level}.pairs", parents=slices.shape[0]):
                    slices, bounds, parents = get_pair_candidates(
                        slices,
                        stats,
                        level,
                        num_rows=num_rows,
                        total_error=total_error,
                        sigma=sigma,
                        alpha=cfg.alpha,
                        topk_min_score=topk_min_score(top_stats, cfg.k),
                        feature_map=feature_map,
                        pruning=cfg.pruning,
                        level_stats=current,
                        tracer=tracer,
                        return_parents=True,
                        workspace=workspace,
                        pair_parallelism=cfg.pair_parallelism,
                    )
                if tracker is not None and slices.shape[0] > 0:
                    trip = tracker.check_candidates(level, int(slices.shape[0]))
                    if trip is None and budgets.max_memory_bytes is not None:
                        rows_alive = (
                            compact.num_rows_alive
                            if compact is not None
                            else num_rows
                        )
                        data_nnz = int(
                            compact.matrix.nnz
                            if compact is not None
                            else x_projected.nnz
                        )
                        trip = tracker.check_memory(
                            level,
                            estimate_level_memory(
                                int(slices.shape[0]), level, rows_alive,
                                data_nnz, cfg.block_size, num_threads,
                            ),
                        )
                    if trip is not None:
                        # Never evaluated: account for the whole candidate
                        # set so flow conservation still balances.
                        current.skipped_by_budget += int(slices.shape[0])
                        tripped = True
                if slices.shape[0] > 0 and not tripped:
                    x_eval, errors_eval, slices_eval = x_projected, errors, slices
                    coverage = None
                    if compact is not None:
                        with tracer.span(f"level{level}.compact") as compact_span:
                            alive_local = compact.begin_level(slices)
                            # The cached parent indicators are row-aligned
                            # with the evaluation matrix; follow the drop.
                            kernels.select_rows(alive_local)
                            slices_eval = compact.project_slices(slices)
                            coverage = compact.new_coverage()
                            compact_span.annotate(
                                rows_alive=compact.num_rows_alive,
                                cols_alive=compact.num_cols_alive,
                                rows_retained=round(compact.rows_retained, 6),
                                cols_retained=round(compact.cols_retained, 6),
                            )
                        x_eval, errors_eval = compact.matrix, compact.errors
                        current.rows_alive = compact.num_rows_alive
                        current.cols_alive = compact.num_cols_alive
                    current.backend_chosen = kernels.begin_level(
                        x_eval, level, int(slices.shape[0]), parents=parents
                    )
                    with tracer.span(
                        f"level{level}.evaluate", candidates=slices.shape[0],
                        backend=current.backend_chosen,
                    ):
                        slices, stats, top_slices, top_stats = _evaluate_level(
                            x_eval, errors_eval, slices, slices_eval, bounds,
                            level, cfg, top_slices, top_stats, sigma,
                            num_threads, current, tracer, workspace=workspace,
                            coverage=coverage, num_rows=num_rows,
                            total_error=total_error, tracker=tracker,
                            kernels=kernels, parents=parents,
                        )
                    kernels.end_level()
                    if tracker is not None and tracker.trip is not None:
                        tripped = True
                    if compact is not None:
                        compact.row_coverage = coverage
                    current.valid = int(
                        np.count_nonzero(
                            (stats[:, StatsCol.SIZE] >= sigma)
                            & (stats[:, StatsCol.ERROR] > 0)
                        )
                    )
                level_span.annotate(
                    evaluated=current.evaluated, valid=current.valid,
                    skipped=current.skipped_by_priority,
                )
            current.elapsed_seconds = time.perf_counter() - level_started
            if tripped:
                break
            if slices.shape[0] == 0:
                stats = stats[:0]
            if checkpoint_dir is not None:
                _write_checkpoint(
                    checkpoint_dir, level, slices, stats, top_slices,
                    top_stats, counters, basic.selected_columns, fingerprints,
                    compact, warm_info, seed_keys, tracer,
                )

    tripped_budget = tracker is not None and tracker.trip is not None
    completed = not tripped_budget and not suspended
    if tripped_budget:
        counters.event("budget.trip")
        with tracer.span(
            "budget.trip",
            budget=tracker.trip.budget,
            level=tracker.trip.level,
            value=round(tracker.trip.value, 6),
            limit=tracker.trip.limit,
        ):
            pass
    if suspended:
        counters.event("suspend.yield")
        with tracer.span("suspend.yield", level=level):
            pass

    if warm_info is not None and seed_keys:
        top_csr = top_slices.tocsr()
        top_keys = {
            tuple(
                np.sort(
                    top_csr.indices[top_csr.indptr[i] : top_csr.indptr[i + 1]]
                ).tolist()
            )
            for i in range(top_csr.shape[0])
        }
        warm_info = dataclasses.replace(
            warm_info, hits=len(seed_keys & top_keys)
        )

    with tracer.span("decode", top_k=int(top_slices.shape[0])):
        decoded, encoded = decode_topk(
            top_slices, top_stats, basic.selected_columns, space
        )
    return SliceLineResult(
        top_slices=decoded,
        top_slices_encoded=encoded,
        top_stats=top_stats,
        level_stats=counters.levels,
        total_seconds=time.perf_counter() - started,
        num_rows=num_rows,
        num_features=num_features,
        num_onehot_columns=x_onehot.shape[1],
        average_error=average_error,
        counters=counters,
        trace=tracer if tracer.enabled else None,
        warm_start=warm_info,
        completed=completed,
        budget_trip=tracker.trip if tracker is not None else None,
        suspended=suspended,
    )


def _restore_compaction(
    state: CheckpointState,
    x_projected: sp.csr_matrix,
    errors: np.ndarray,
    num_rows: int,
) -> CompactionState:
    """Rebuild the checkpointed :class:`CompactionState` from the raw data.

    Per-level compaction composes: surviving rows/columns keep their
    relative order, so the checkpointed matrix equals
    ``x_projected[row_indices][:, alive_cols]`` where ``alive_cols`` are
    the columns ``col_map`` maps to a compacted position.  Rebuilding from
    the caller's data (whose identity the fingerprint already enforced)
    keeps bundles small and bitwise-faithful.
    """
    alive_cols = np.flatnonzero(state.col_map >= 0)
    matrix = x_projected[state.row_indices]
    if alive_cols.size < x_projected.shape[1]:
        matrix = matrix[:, alive_cols]
    return CompactionState(
        matrix=matrix.tocsr(),
        errors=errors[state.row_indices],
        col_map=state.col_map.copy(),
        row_indices=state.row_indices.copy(),
        num_rows_full=num_rows,
        num_cols_full=int(x_projected.shape[1]),
        row_coverage=(
            None
            if state.row_coverage is None
            else state.row_coverage.astype(bool, copy=True)
        ),
    )


def _write_checkpoint(
    directory: str,
    level: int,
    slices: sp.csr_matrix,
    stats: np.ndarray,
    top_slices: sp.csr_matrix,
    top_stats: np.ndarray,
    counters: CounterRegistry,
    selected_columns: np.ndarray,
    fingerprints: tuple[dict, dict],
    compact: CompactionState | None,
    warm_info: WarmStartInfo | None,
    seed_keys: set[tuple[int, ...]],
    tracer,
) -> None:
    """Persist one level boundary as a ``repro.ckpt/v1`` bundle."""
    # Count before saving so the bundle's own event total includes this
    # write — a resumed run then reproduces an uninterrupted run's counts.
    counters.event("checkpoint.write")
    data_fp, config_fp = fingerprints
    state = CheckpointState(
        level=level,
        slices=slices,
        stats=stats,
        top_slices=top_slices,
        top_stats=top_stats,
        counters=counters.to_records(),
        selected_columns=selected_columns,
        data_fingerprint=data_fp,
        config_fingerprint=config_fp,
        row_indices=compact.row_indices if compact is not None else None,
        col_map=compact.col_map if compact is not None else None,
        row_coverage=compact.row_coverage if compact is not None else None,
        warm_info=(
            dataclasses.asdict(warm_info) if warm_info is not None else None
        ),
        seed_keys=[list(key) for key in sorted(seed_keys)],
        events=dict(counters.events),
    )
    with tracer.span("checkpoint.write", level=level):
        save_checkpoint(directory, state)


def _seed_topk(
    seed_slices: Sequence[Slice],
    space: FeatureSpace,
    selected_columns: np.ndarray,
    x_projected: sp.csr_matrix,
    errors: np.ndarray,
    cfg: SliceLineConfig,
    sigma: int,
    max_level: int,
    num_rows: int,
    total_error: float,
    top_slices: sp.csr_matrix,
    top_stats: np.ndarray,
    num_threads: int,
    tracer,
    workspace: KernelWorkspace | None = None,
    compact: CompactionState | None = None,
) -> tuple[sp.csr_matrix, np.ndarray, WarmStartInfo, set[tuple[int, ...]]]:
    """Re-score warm-start seeds on the current data and merge into the top-K.

    Seeds are filtered, not trusted: level-1 seeds are dropped (the basic
    pass already scores every single-predicate slice), as are seeds whose
    predicates fall outside the current domains or reference a basic slice
    that did not survive the sigma/error filter (by size monotonicity such a
    seed is invalid here anyway).  Survivors are evaluated with the same
    ``(X S^T) == L`` kernel on the same projected matrix the enumeration
    uses (the row-compacted one when compaction is enabled — an empty data
    row belongs to no slice, so the statistics are unchanged), so their
    statistics are bitwise identical to what enumeration would produce — a
    prerequisite for warm == cold output equality.
    """
    requested = len(seed_slices)
    rows: list[np.ndarray] = []
    keys: list[tuple[int, ...]] = []
    seen: set[tuple[int, ...]] = set()
    num_projected = int(selected_columns.size)
    for slice_ in seed_slices:
        if not 2 <= slice_.level <= max_level:
            continue
        try:
            cols = np.sort(
                np.fromiter(
                    (
                        space.column_of(feature, value)
                        for feature, value in slice_.predicates.items()
                    ),
                    dtype=np.int64,
                    count=slice_.level,
                )
            )
        except EncodingError:
            continue
        projected = np.searchsorted(selected_columns, cols)
        if (projected >= num_projected).any() or not np.array_equal(
            selected_columns[projected], cols
        ):
            continue
        key = tuple(projected.tolist())
        if key in seen:
            continue
        seen.add(key)
        keys.append(key)
        rows.append(projected)
    if not rows:
        info = WarmStartInfo(requested=requested, encoded=0, valid=0, hits=0)
        return top_slices, top_stats, info, set()

    indices = np.concatenate(rows)
    indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum([row.size for row in rows], out=indptr[1:])
    seed_matrix = sp.csr_matrix(
        (np.ones(indices.size, dtype=np.float64), indices, indptr),
        shape=(len(rows), num_projected),
    )
    with tracer.span("seed.evaluate", requested=requested, encoded=len(rows)):
        if compact is not None:
            raw = evaluate_slice_set(
                compact.matrix, compact.project_slices(seed_matrix),
                compact.errors,
                block_size=cfg.block_size, num_threads=num_threads,
                workspace=workspace, num_rows=num_rows,
                total_error=total_error,
                max_error=float(errors.max()) if errors.shape[0] else 0.0,
                backend=cfg.kernel_backend,
            )
        else:
            raw = evaluate_slice_set(
                x_projected, seed_matrix, errors,
                block_size=cfg.block_size, num_threads=num_threads,
                workspace=workspace, backend=cfg.kernel_backend,
            )
        seed_stats = stats_matrix(
            score(raw.sizes, raw.errors, num_rows, total_error, cfg.alpha),
            raw.errors, raw.max_errors, raw.sizes,
        )
    valid = int(
        np.count_nonzero(
            (seed_stats[:, StatsCol.SCORE] > 0)
            & (seed_stats[:, StatsCol.SIZE] >= sigma)
        )
    )
    top_slices, top_stats = maintain_topk(
        seed_matrix, seed_stats, top_slices, top_stats, cfg.k, sigma
    )
    info = WarmStartInfo(
        requested=requested, encoded=len(rows), valid=valid, hits=0
    )
    return top_slices, top_stats, info, set(keys)


def _evaluate_level(
    x_eval,
    errors_eval,
    slices,
    slices_eval,
    bounds,
    level,
    cfg: SliceLineConfig,
    top_slices,
    top_stats,
    sigma: int,
    num_threads: int,
    current,
    tracer=None,
    workspace=None,
    coverage=None,
    num_rows=None,
    total_error=None,
    tracker=None,
    kernels=None,
    parents=None,
):
    """Evaluate one level's candidates, optionally in priority order.

    In priority mode candidates are evaluated in descending upper-bound
    order; after every chunk the top-K is refreshed and remaining candidates
    whose bound no longer beats the K-th best score are skipped.  Skipping
    is exact: the bound dominates the candidate's own score and every
    descendant's score, which is precisely the paper's score-pruning
    argument applied mid-level.  Returns the evaluated slices, their stats,
    and the updated top-K.

    *slices* stays in the canonical projected column space (it feeds the
    top-K, decoding, and the next pair join); *slices_eval* is the same
    slice set with columns remapped for the (possibly compacted) *x_eval* —
    the two are one object when compaction is off.  All reorderings and
    chunk splits are applied to both in lockstep — and to *parents* (the
    per-candidate parent ids feeding the incremental kernel backend), so
    the indicator cache blocks land in exactly the evaluation order the
    next level's parent ids will index.

    When *tracker* carries a wall-clock deadline, the deadline is checked
    between evaluation chunks so one level cannot overshoot it by more than
    a chunk's worth of kernel work; candidates past a trip are recorded as
    ``skipped_by_budget``.  Chunking a deadline-bounded non-priority level
    is exact: per-slice statistics are computed within independent blocks
    and top-K maintenance is order-independent, so an untripped chunked
    evaluation is bitwise identical to the single-shot one.
    """
    tracer = tracer or NULL_TRACER
    use_priority = (
        cfg.priority_evaluation
        and bounds is not None
        and slices.shape[0] > cfg.priority_chunk
    )
    deadline_chunks = (
        not use_priority
        and tracker is not None
        and tracker.has_deadline
        and slices.shape[0] > cfg.priority_chunk
    )
    if not use_priority and not deadline_chunks:
        stats = evaluate_slices(
            x_eval, errors_eval, slices_eval, level, cfg.alpha,
            block_size=cfg.block_size, num_threads=num_threads,
            tracer=tracer, counters=current, workspace=workspace,
            coverage=coverage, num_rows=num_rows, total_error=total_error,
            kernels=kernels, parents=parents,
        )
        current.evaluated = int(slices.shape[0])
        top_slices, top_stats = maintain_topk(
            slices, stats, top_slices, top_stats, cfg.k, sigma
        )
        return slices, stats, top_slices, top_stats

    if deadline_chunks:
        shared = slices_eval is slices
        kept_slices = []
        kept_stats = []
        position = 0
        total = slices.shape[0]
        while position < total:
            chunk = slices[position : position + cfg.priority_chunk]
            chunk_eval = (
                chunk
                if shared
                else slices_eval[position : position + cfg.priority_chunk]
            )
            chunk_stats = evaluate_slices(
                x_eval, errors_eval, chunk_eval, level, cfg.alpha,
                block_size=cfg.block_size, num_threads=num_threads,
                tracer=tracer, counters=current, workspace=workspace,
                coverage=coverage, num_rows=num_rows, total_error=total_error,
                kernels=kernels,
                parents=(
                    parents[position : position + cfg.priority_chunk]
                    if parents is not None
                    else None
                ),
            )
            kept_slices.append(chunk)
            kept_stats.append(chunk_stats)
            current.evaluated += int(chunk.shape[0])
            top_slices, top_stats = maintain_topk(
                chunk, chunk_stats, top_slices, top_stats, cfg.k, sigma
            )
            position += chunk.shape[0]
            if position < total and tracker.check_deadline(level) is not None:
                current.skipped_by_budget += total - position
                break
        slices = sp.vstack(kept_slices, format="csr")
        stats = np.vstack(kept_stats)
        return slices, stats, top_slices, top_stats

    shared = slices_eval is slices
    order = np.argsort(-bounds, kind="stable")
    slices = slices[order]
    slices_eval = slices if shared else slices_eval[order]
    bounds = bounds[order]
    if parents is not None:
        parents = parents[order]
    kept_slices = []
    kept_stats = []
    position = 0
    remaining = slices.shape[0]
    while position < remaining:
        chunk = slices[position : position + cfg.priority_chunk]
        chunk_eval = (
            chunk
            if shared
            else slices_eval[position : position + cfg.priority_chunk]
        )
        chunk_stats = evaluate_slices(
            x_eval, errors_eval, chunk_eval, level, cfg.alpha,
            block_size=cfg.block_size, num_threads=num_threads,
            tracer=tracer, counters=current, workspace=workspace,
            coverage=coverage, num_rows=num_rows, total_error=total_error,
            kernels=kernels,
            parents=(
                parents[position : position + cfg.priority_chunk]
                if parents is not None
                else None
            ),
        )
        kept_slices.append(chunk)
        kept_stats.append(chunk_stats)
        current.evaluated += int(chunk.shape[0])
        top_slices, top_stats = maintain_topk(
            chunk, chunk_stats, top_slices, top_stats, cfg.k, sigma
        )
        position += chunk.shape[0]
        if (
            tracker is not None
            and tracker.has_deadline
            and position < remaining
            and tracker.check_deadline(level) is not None
        ):
            current.skipped_by_budget += remaining - position
            break
        threshold = topk_min_score(top_stats, cfg.k)
        if position < remaining and threshold > 0.0:
            # Bounds are sorted descending: one searchsorted finds the cut
            # past which no remaining candidate can beat the threshold.
            cut = int(
                np.searchsorted(-bounds[position:], -threshold, side="left")
            )
            skipped = remaining - position - cut
            if skipped > 0:
                current.skipped_by_priority += skipped
                remaining = position + cut
    slices = sp.vstack(kept_slices, format="csr") if kept_slices else slices[:0]
    stats = (
        np.vstack(kept_stats) if kept_stats else np.zeros((0, 4), dtype=np.float64)
    )
    return slices, stats, top_slices, top_stats


def _empty_result(
    space: FeatureSpace,
    num_rows: int,
    num_onehot: int,
    average_error: float,
    counters: CounterRegistry | None = None,
    tracer=None,
    started: float | None = None,
) -> SliceLineResult:
    """An empty result that still accounts for the work actually done.

    Even when no slice can score above zero (``total_error <= 0``), the
    encoding pass over ``X0`` happened: record a level-1 entry with zero
    evaluations and the real elapsed time instead of pretending the run was
    free.
    """
    counters = counters or CounterRegistry()
    elapsed = time.perf_counter() - started if started is not None else 0.0
    level_one = counters.level(1)
    level_one.elapsed_seconds = elapsed
    return SliceLineResult(
        top_slices=[],
        top_slices_encoded=np.zeros((0, space.num_features), dtype=np.int64),
        top_stats=np.zeros((0, 4)),
        level_stats=counters.levels,
        total_seconds=elapsed,
        num_rows=num_rows,
        num_features=space.num_features,
        num_onehot_columns=num_onehot,
        average_error=average_error,
        counters=counters,
        trace=tracer if tracer is not None and tracer.enabled else None,
    )


class SliceLine:
    """Scikit-learn-style estimator facade over :func:`slice_line`.

    Example
    -------
    >>> finder = SliceLine(k=4, alpha=0.95)
    >>> finder.fit(x0, errors)                      # doctest: +SKIP
    >>> finder.top_slices_[0].describe()            # doctest: +SKIP
    """

    def __init__(
        self,
        k: int = 4,
        sigma: int | None = None,
        alpha: float = 0.95,
        max_level: int | None = None,
        block_size: int = 16,
        pruning: PruningConfig | None = None,
        compaction: bool = True,
        num_threads: int = 1,
        trace: bool | str | Tracer | None = None,
        budgets: BudgetConfig | None = None,
        checkpoint_dir: str | None = None,
        kernel_backend: str = "auto",
        pair_parallelism: int = 0,
    ) -> None:
        self.k = k
        self.sigma = sigma
        self.alpha = alpha
        self.max_level = max_level
        self.block_size = block_size
        self.pruning = pruning or PruningConfig()
        self.compaction = compaction
        self.kernel_backend = kernel_backend
        self.pair_parallelism = pair_parallelism
        self.num_threads = num_threads
        self.trace = trace
        self.budgets = budgets
        self.checkpoint_dir = checkpoint_dir
        self.result_: SliceLineResult | None = None
        self.feature_names_: tuple[str, ...] | None = None

    def _config(self) -> SliceLineConfig:
        return SliceLineConfig(
            k=self.k,
            sigma=self.sigma,
            alpha=self.alpha,
            max_level=self.max_level,
            block_size=self.block_size,
            pruning=self.pruning,
            compaction=self.compaction,
            kernel_backend=self.kernel_backend,
            pair_parallelism=self.pair_parallelism,
        )

    def fit(
        self,
        x0: np.ndarray,
        errors: np.ndarray,
        feature_names: Sequence[str] | None = None,
        resume_from: str | None = None,
    ) -> "SliceLine":
        """Run slice finding on *x0* / *errors* and store the result."""
        space = FeatureSpace.from_matrix(x0, feature_names)
        self.feature_names_ = space.feature_names
        self.result_ = slice_line(
            x0,
            errors,
            config=self._config(),
            feature_space=space,
            num_threads=self.num_threads,
            trace=self.trace,
            budgets=self.budgets,
            checkpoint_dir=self.checkpoint_dir,
            resume_from=resume_from,
        )
        return self

    @property
    def completed_(self) -> bool:
        """False when an anytime budget stopped the fitted run early."""
        self._check_fitted()
        return self.result_.completed

    @property
    def top_slices_(self):
        """Decoded top-K slices, best first (fitted attribute)."""
        self._check_fitted()
        return self.result_.top_slices

    @property
    def top_stats_(self) -> np.ndarray:
        """The ``TR`` matrix (score, error, max error, size) of the top-K."""
        self._check_fitted()
        return self.result_.top_stats

    def transform(self, x0: np.ndarray) -> np.ndarray:
        """Membership matrix: ``out[i, j]`` is True when row i is in slice j."""
        self._check_fitted()
        x0 = np.asarray(x0)
        members = np.zeros((x0.shape[0], len(self.result_.top_slices)), dtype=bool)
        for j, sl in enumerate(self.result_.top_slices):
            members[:, j] = slice_membership(x0, sl)
        return members

    def report(self) -> str:
        """Human-readable summary of the fitted top-K slices."""
        self._check_fitted()
        return self.result_.report(feature_names=self.feature_names_)

    def _check_fitted(self) -> None:
        if self.result_ is None:
            raise RuntimeError("SliceLine instance is not fitted yet; call fit()")
