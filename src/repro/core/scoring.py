"""The SliceLine scoring function and its upper bound.

Implements Definition 1 (Equation 1/5) and the score upper bound of
Equation 3.  Everything is vectorized over arrays of slice statistics so the
same code scores one slice or a full lattice level.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def score(
    sizes: np.ndarray,
    errors: np.ndarray,
    num_rows: int,
    total_error: float,
    alpha: float,
) -> np.ndarray:
    """Slice scores per Equation 1: ``alpha*(se_bar/e_bar - 1) - (1-alpha)*(n/|S| - 1)``.

    *sizes* and *errors* are aligned vectors of slice sizes ``|S|`` and total
    slice errors ``se``.  Empty slices (size 0) receive ``-inf`` — the paper
    defines their score as negative, and ``-inf`` keeps them out of any
    top-K without a magic constant.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    errors = np.asarray(errors, dtype=np.float64)
    _validate_inputs(num_rows, total_error)
    avg_error = total_error / num_rows
    with np.errstate(divide="ignore", invalid="ignore"):
        sc = alpha * ((errors / sizes) / avg_error - 1.0) - (1.0 - alpha) * (
            num_rows / sizes - 1.0
        )
    return np.where(sizes > 0, sc, -np.inf)


def score_single(
    size: float, error: float, num_rows: int, total_error: float, alpha: float
) -> float:
    """Scalar convenience wrapper around :func:`score`."""
    return float(
        score(
            np.asarray([size]), np.asarray([error]), num_rows, total_error, alpha
        )[0]
    )


def score_at_size(
    candidate_sizes: np.ndarray,
    error_bounds: np.ndarray,
    max_error_bounds: np.ndarray,
    num_rows: int,
    total_error: float,
    alpha: float,
) -> np.ndarray:
    """Evaluate the bound objective of Equation 3 at hypothetical sizes.

    For a hypothetical slice size ``s`` the tightest admissible error is
    ``min(ceil(se), s * ceil(sm))`` — a slice of ``s`` tuples cannot carry
    more error than ``s`` times its largest possible tuple error.
    """
    s = np.asarray(candidate_sizes, dtype=np.float64)
    se_at = np.minimum(error_bounds, s * max_error_bounds)
    with np.errstate(divide="ignore", invalid="ignore"):
        return alpha * ((num_rows * se_at) / (s * total_error) - 1.0) - (
            1.0 - alpha
        ) * (num_rows / s - 1.0)


def score_upper_bound(
    size_bounds: np.ndarray,
    error_bounds: np.ndarray,
    max_error_bounds: np.ndarray,
    num_rows: int,
    total_error: float,
    sigma: int,
    alpha: float,
) -> np.ndarray:
    """Upper-bound scores ``ceil(sc)`` per Equation 3.

    Valid slices have size in ``[sigma, ceil(|S|)]``; on that interval the
    bound objective is piecewise monotonic with a single breakpoint at
    ``ceil(se)/ceil(sm)``, so the maximum is attained at one of the three
    "interesting points": ``sigma``, the breakpoint clamped into the
    interval, or ``ceil(|S|)``.  Candidates whose interval is empty
    (``ceil(|S|) < sigma``) get ``-inf`` — no valid slice can exist below
    them.
    """
    size_bounds = np.asarray(size_bounds, dtype=np.float64)
    error_bounds = np.asarray(error_bounds, dtype=np.float64)
    max_error_bounds = np.asarray(max_error_bounds, dtype=np.float64)
    _validate_inputs(num_rows, total_error)

    lo = float(sigma)
    hi = size_bounds
    with np.errstate(divide="ignore", invalid="ignore"):
        breakpoint = np.where(
            max_error_bounds > 0, error_bounds / max_error_bounds, lo
        )
    candidates = [
        np.full_like(size_bounds, lo),
        np.clip(breakpoint, lo, np.maximum(hi, lo)),
        np.maximum(hi, lo),
    ]
    best = np.full(size_bounds.shape, -np.inf)
    for cand in candidates:
        best = np.maximum(
            best,
            score_at_size(
                cand, error_bounds, max_error_bounds, num_rows, total_error, alpha
            ),
        )
    return np.where(hi >= lo, best, -np.inf)


def _validate_inputs(num_rows: int, total_error: float) -> None:
    if num_rows <= 0:
        raise ValidationError(f"num_rows must be positive, got {num_rows}")
    if total_error <= 0:
        raise ValidationError(
            "total_error must be positive; with zero total error no slice "
            "can perform worse than the (error-free) overall model"
        )
