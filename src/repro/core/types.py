"""Result containers and statistic layouts for the SliceLine core.

The paper carries slice statistics in an ``R`` matrix with four columns
(score ``sc``, total error ``se``, maximum tuple error ``sm``, size ``ss``).
We keep the same dense layout for the vectorized kernels and expose typed
views on top of it for users.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.obs.counters import CounterRegistry, LevelCounters
from repro.obs.trace import NullTracer, Tracer

if TYPE_CHECKING:  # import only for annotations; avoids a runtime cycle
    from repro.resilience.budgets import BudgetTrip


class StatsCol(IntEnum):
    """Column layout of the slice-statistics matrix ``R`` (paper Section 4.2)."""

    SCORE = 0
    ERROR = 1
    MAX_ERROR = 2
    SIZE = 3


def empty_stats(num_rows: int = 0) -> np.ndarray:
    """An all-zero ``R`` matrix with *num_rows* rows."""
    return np.zeros((num_rows, len(StatsCol)), dtype=np.float64)


def stats_matrix(
    scores: np.ndarray,
    errors: np.ndarray,
    max_errors: np.ndarray,
    sizes: np.ndarray,
) -> np.ndarray:
    """Assemble an ``R`` matrix from its four column vectors."""
    return np.column_stack(
        [
            np.asarray(scores, dtype=np.float64),
            np.asarray(errors, dtype=np.float64),
            np.asarray(max_errors, dtype=np.float64),
            np.asarray(sizes, dtype=np.float64),
        ]
    )


@dataclass(frozen=True)
class Slice:
    """A decoded slice: the conjunction of predicates ``feature == value``.

    ``predicates`` maps the original feature index (0-based) to the 1-based
    integer code the slice fixes; free features are simply absent.  When the
    feature space carries names/labels, :meth:`describe` renders the human
    readable conjunction.
    """

    predicates: Mapping[int, int]
    score: float
    error: float
    max_error: float
    size: int

    @property
    def level(self) -> int:
        """Number of predicates (the lattice level the slice lives on)."""
        return len(self.predicates)

    @property
    def average_error(self) -> float:
        """Average per-tuple error ``se / |S|`` (0.0 for an empty slice)."""
        return self.error / self.size if self.size else 0.0

    def encoded_row(self, num_features: int) -> np.ndarray:
        """The paper's output encoding: an ``m``-vector, zeros = free features."""
        row = np.zeros(num_features, dtype=np.int64)
        for feature, value in self.predicates.items():
            row[feature] = value
        return row

    def describe(
        self,
        feature_names: Sequence[str] | None = None,
        value_labels: Sequence[Sequence[str]] | None = None,
    ) -> str:
        """Render the slice as ``name=value AND ...`` with optional labels."""
        parts = []
        for feature in sorted(self.predicates):
            value = self.predicates[feature]
            name = (
                feature_names[feature]
                if feature_names is not None
                else f"F{feature + 1}"
            )
            if value_labels is not None and feature < len(value_labels):
                labels = value_labels[feature]
                label = labels[value - 1] if 0 < value <= len(labels) else str(value)
            else:
                label = str(value)
            parts.append(f"{name}={label}")
        return " AND ".join(parts) if parts else "<entire dataset>"

    def matches(self, row: np.ndarray) -> bool:
        """True when an integer-encoded data row satisfies every predicate."""
        return all(row[f] == v for f, v in self.predicates.items())


@dataclass(frozen=True)
class WarmStartInfo:
    """Accounting of the seed slices a warm-started run was given.

    Seeding only *raises the score-pruning threshold earlier* — pruning by
    the Equation-3 bound is exact, so the final top-K is identical to a cold
    run's; this record exists to observe how much enumeration work the seeds
    saved and how many of them survived into the final top-K.
    """

    #: seed slices passed to :func:`~repro.core.algorithm.slice_line`
    requested: int = 0
    #: seeds encodable in the current feature space at level >= 2 (level-1
    #: seeds are redundant — the basic-slice pass scores every single-
    #: predicate slice anyway — and out-of-domain seeds cannot match rows)
    encoded: int = 0
    #: encoded seeds that were valid on this data (``|S| >= sigma``, positive
    #: score) and therefore entered the initial top-K
    valid: int = 0
    #: seeds that are still present in the final top-K
    hits: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of requested seeds that survived into the final top-K."""
        return self.hits / self.requested if self.requested else 0.0


#: Per-lattice-level enumeration statistics (Figures 3-4, Table 2).
#: ``LevelStats`` is the historical name; the record now lives in
#: :mod:`repro.obs.counters` where the counter registry manages it, and is
#: re-exported here unchanged (all original field names are preserved).
LevelStats = LevelCounters


@dataclass
class SliceLineResult:
    """Full output of a SliceLine run.

    ``top_slices`` are sorted by decreasing score; ``top_slices_encoded`` is
    the paper's ``TS`` output (``K x m`` integer matrix, zeros for free
    features) and ``top_stats`` the aligned ``TR`` statistics matrix.
    """

    top_slices: list[Slice]
    top_slices_encoded: np.ndarray
    top_stats: np.ndarray
    level_stats: list[LevelStats] = field(default_factory=list)
    total_seconds: float = 0.0
    num_rows: int = 0
    num_features: int = 0
    num_onehot_columns: int = 0
    average_error: float = 0.0
    #: the counter registry behind ``level_stats`` (always populated by
    #: :func:`~repro.core.algorithm.slice_line`; ``None`` only for
    #: hand-assembled results)
    counters: CounterRegistry | None = None
    #: the tracer the run reported spans into (``None`` when untraced)
    trace: Tracer | NullTracer | None = None
    #: seed accounting when the run was warm-started (``None`` for cold runs)
    warm_start: WarmStartInfo | None = None
    #: False when an anytime budget stopped enumeration early — the top-K is
    #: then the exact best of everything evaluated so far, not of the full
    #: lattice
    completed: bool = True
    #: the budget that stopped the run (``None`` when ``completed``)
    budget_trip: "BudgetTrip | None" = None
    #: True when a cooperative :class:`~repro.resilience.budgets.SuspendHook`
    #: stopped the run at a level boundary — the level-boundary checkpoint
    #: was written, so resuming it completes bitwise-identically
    suspended: bool = False

    def __len__(self) -> int:
        return len(self.top_slices)

    @property
    def scores(self) -> np.ndarray:
        return self.top_stats[:, StatsCol.SCORE]

    @property
    def sizes(self) -> np.ndarray:
        return self.top_stats[:, StatsCol.SIZE]

    @property
    def evaluated_per_level(self) -> list[int]:
        return [ls.evaluated for ls in self.level_stats]

    @property
    def total_evaluated(self) -> int:
        return sum(ls.evaluated for ls in self.level_stats)

    def to_obs_dict(self) -> dict:
        """The run's observability document (``repro.obs/v1`` JSON schema).

        Carries run metadata, the per-level pruning counters, and — when the
        run was traced — the span tree; see EXPERIMENTS.md for the schema.
        """
        from repro.obs.export import run_to_dict

        return run_to_dict(self)

    def report(
        self,
        feature_names: Sequence[str] | None = None,
        value_labels: Sequence[Sequence[str]] | None = None,
    ) -> str:
        """Human-readable multi-line summary of the top-K slices."""
        lines = [
            f"SliceLine: {len(self.top_slices)} slice(s) found "
            f"(n={self.num_rows}, m={self.num_features}, "
            f"l={self.num_onehot_columns}, avg error={self.average_error:.4f})"
        ]
        for rank, sl in enumerate(self.top_slices, start=1):
            lines.append(
                f"  #{rank} score={sl.score:+.4f} size={sl.size} "
                f"avg_err={sl.average_error:.4f} :: "
                f"{sl.describe(feature_names, value_labels)}"
            )
        return "\n".join(lines)
