"""Top-K maintenance (Section 4.5).

Once per lattice level, the newly evaluated slices are filtered by validity
(``sc > 0`` and ``|S| >= sigma``), concatenated with the current top-K, and
the best K are kept, sorted by descending score.  Ties are broken by larger
size, then larger error, and finally — for slices whose three statistics are
all exactly equal — by the lexicographic order of their predicate columns,
so the selected set and its order are a pure function of the candidate
*set*, independent of arrival order (evaluation chunking, thread count,
executor strategy, or warm-start seeding).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.types import StatsCol, empty_stats
from repro.linalg import as_csr, vstack_rows


def empty_topk(num_columns: int) -> tuple[sp.csr_matrix, np.ndarray]:
    """An empty ``(TS, TR)`` pair in a one-hot space of *num_columns*."""
    return sp.csr_matrix((0, num_columns), dtype=np.float64), empty_stats(0)


def maintain_topk(
    slices: sp.csr_matrix,
    stats: np.ndarray,
    top_slices: sp.csr_matrix,
    top_stats: np.ndarray,
    k: int,
    sigma: int,
) -> tuple[sp.csr_matrix, np.ndarray]:
    """Merge newly scored *slices* into the running top-K.

    Returns the new ``(TS, TR)`` pair sorted by descending score.  Slices
    enumerated at different levels are necessarily distinct (they differ in
    predicate count), so no cross-level deduplication is needed.
    """
    slices = as_csr(slices)
    valid = (stats[:, StatsCol.SCORE] > 0) & (stats[:, StatsCol.SIZE] >= sigma)
    kept = np.flatnonzero(valid)
    if kept.size == 0 and top_slices.shape[0] == 0:
        return empty_topk(slices.shape[1])

    candidates = as_csr(vstack_rows(top_slices, slices[kept]))
    candidate_stats = np.vstack([top_stats, stats[kept]])

    def column_key(index: int) -> tuple[int, ...]:
        row = candidates.indices[
            candidates.indptr[index] : candidates.indptr[index + 1]
        ]
        return tuple(np.sort(row).tolist())

    order = np.lexsort(
        (
            -candidate_stats[:, StatsCol.ERROR],
            -candidate_stats[:, StatsCol.SIZE],
            -candidate_stats[:, StatsCol.SCORE],
        )
    )
    # lexsort is stable, so slices whose (score, size, error) triples are
    # bitwise equal still sit in arrival order — which depends on how the
    # level was chunked/seeded.  Re-sort each run of exact ties by predicate
    # columns so the final order is canonical; runs of length 1 (the common
    # case) pay nothing beyond the boundary scan.
    ranked = candidate_stats[order][
        :, [StatsCol.SCORE, StatsCol.SIZE, StatsCol.ERROR]
    ]
    if order.size > 1:
        changed = np.any(ranked[1:] != ranked[:-1], axis=1)
        boundaries = np.concatenate(
            [np.flatnonzero(changed) + 1, [order.size]]
        )
        start = 0
        for stop in boundaries:
            if stop - start > 1:
                order[start:stop] = sorted(order[start:stop], key=column_key)
            start = int(stop)
    # Walk the sorted order keeping only *distinct* slices: with
    # deduplication disabled (the Figure 3 "none" arm) the same slice can
    # reach the top-K from several generating pairs, and Definition 2 asks
    # for K distinct slices.
    top: list[int] = []
    seen: set[tuple[int, ...]] = set()
    for index in order:
        key = column_key(index)
        if key in seen:
            continue
        seen.add(key)
        top.append(int(index))
        if len(top) == k:
            break
    return candidates[top], candidate_stats[top]


def topk_min_score(top_stats: np.ndarray, k: int) -> float:
    """The score-pruning threshold ``sc_k`` (Section 3.2).

    While fewer than K slices are known the threshold is 0.0 (every valid
    slice must beat a zero score anyway); afterwards it is the K-th best
    score, which only ever increases.
    """
    if top_stats.shape[0] < k:
        return 0.0
    return float(top_stats[k - 1, StatsCol.SCORE])
