"""Configuration objects for the SliceLine algorithm.

Two configs exist: :class:`SliceLineConfig` covers the user-facing knobs of
Definition 2 and Algorithm 1 (``K``, ``sigma``, ``alpha``, ``ceil(L)``,
evaluation block size), and :class:`PruningConfig` toggles the individual
pruning techniques of Section 3.2 so the Figure 3 ablation is expressible
directly through the public API.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.exceptions import ConfigError

#: The paper's default minimum-support rule: ``sigma = max(32, n/100)``.
DEFAULT_MIN_SUPPORT_FLOOR = 32


@dataclass(frozen=True)
class PruningConfig:
    """Toggles for the pruning techniques of Section 3.2.

    ``deduplicate=False`` implies that candidates are not grouped by slice
    identity, which makes parent counting impossible — therefore
    ``handle_missing_parents`` is forced off in that configuration (the paper's
    "no pruning and no deduplication" ablation arm behaves the same way).
    """

    #: prune candidates whose upper-bound size is below ``sigma``
    by_size: bool = True
    #: prune candidates whose upper-bound score cannot beat 0 / the top-K min
    by_score: bool = True
    #: require all ``L`` parents to have survived (``np == L`` in Eq. 9)
    handle_missing_parents: bool = True
    #: merge duplicate candidates generated from different parent pairs
    deduplicate: bool = True
    #: drop parent slices violating ``ss >= sigma`` and ``se > 0`` before the
    #: pair join (the paper's step 1 of pair construction)
    filter_input_slices: bool = True

    def __post_init__(self) -> None:
        if self.handle_missing_parents and not self.deduplicate:
            raise ConfigError(
                "handle_missing_parents requires deduplicate=True: parent "
                "counts are defined per deduplicated candidate"
            )

    @classmethod
    def all_enabled(cls) -> "PruningConfig":
        return cls()

    @classmethod
    def none(cls) -> "PruningConfig":
        """No pruning and no deduplication (Figure 3 arm 5)."""
        return cls(
            by_size=False,
            by_score=False,
            handle_missing_parents=False,
            deduplicate=False,
            filter_input_slices=False,
        )

    @classmethod
    def ablation_arms(cls) -> dict[str, "PruningConfig"]:
        """The five configurations of the Figure 3 pruning ablation."""
        return {
            "all": cls(),
            "no-parents": cls(handle_missing_parents=False),
            "no-parents-no-score": cls(handle_missing_parents=False, by_score=False),
            "no-parents-no-score-no-size": cls(
                handle_missing_parents=False,
                by_score=False,
                by_size=False,
                filter_input_slices=False,
            ),
            "none": cls.none(),
        }


@dataclass(frozen=True)
class SliceLineConfig:
    """User-facing parameters of the score-based slice-finding problem.

    Parameters mirror Algorithm 1: ``k`` (top-K), ``sigma`` (minimum
    support; ``None`` selects the paper default ``max(32, ceil(n/100))``),
    ``alpha`` (error/size weight in ``(0, 1]``), ``max_level`` (the lattice
    level cap ``ceil(L)``; ``None`` means unbounded, i.e. up to ``m``), and
    ``block_size`` (the hybrid-evaluation block ``b`` of Section 4.4 —
    ``1`` is pure task-parallel, huge values are pure data-parallel; the
    paper's default is 16).
    """

    k: int = 4
    sigma: int | None = None
    alpha: float = 0.95
    max_level: int | None = None
    block_size: int = 16
    pruning: PruningConfig = field(default_factory=PruningConfig)
    #: per-level compaction of the evaluation data matrix: drop one-hot
    #: columns no emitted candidate references and rows that matched no
    #: slice of the previous level (size monotonicity makes both exact —
    #: results are bitwise identical; see :mod:`repro.core.compaction`).
    #: Off is the ablation arm that measures what compaction buys.
    compaction: bool = True
    #: evaluate candidates in descending upper-bound order, re-pruning the
    #: remainder against the rising top-K threshold between chunks (the
    #: paper's "priority-based enumeration" future-work idea; exactness is
    #: unaffected because only bound-dominated candidates are skipped)
    priority_evaluation: bool = True
    #: candidates evaluated between two re-pruning steps in priority mode
    priority_chunk: int = 8192
    #: evaluation-kernel backend (see :mod:`repro.linalg.kernels`):
    #: ``"auto"`` lets a per-level cost model pick between the sparse
    #: CSR x CSC path, the packed-bitset path, and the incremental
    #: parent-indicator path; explicit names force one backend (subject to
    #: its preconditions — a backend whose preconditions fail falls back).
    #: All choices are bitwise identical; this only changes kernel speed.
    kernel_backend: str = "auto"
    #: worker width of the parallel pair-candidate pipeline (see
    #: :func:`repro.core.pairs.choose_pair_plan`): ``0`` follows
    #: ``num_threads``, ``1`` forces serial execution, ``N > 1`` requests
    #: ``N`` workers for the join's chunk tasks (the per-level cost model
    #: may still run small levels serially).  Like ``kernel_backend`` this
    #: never affects results — candidates, counters, and the top-K are
    #: bitwise identical at every width — so it is excluded from the
    #: checkpoint fingerprint.
    pair_parallelism: int = 0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigError(f"k must be >= 1, got {self.k}")
        if self.sigma is not None and self.sigma < 1:
            raise ConfigError(f"sigma must be >= 1, got {self.sigma}")
        if not (0.0 < self.alpha <= 1.0):
            raise ConfigError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.max_level is not None and self.max_level < 1:
            raise ConfigError(f"max_level must be >= 1, got {self.max_level}")
        if self.block_size < 1:
            raise ConfigError(f"block_size must be >= 1, got {self.block_size}")
        if self.priority_chunk < 1:
            raise ConfigError(
                f"priority_chunk must be >= 1, got {self.priority_chunk}"
            )
        if self.kernel_backend not in ("auto", "sparse", "bitset", "incremental"):
            raise ConfigError(
                "kernel_backend must be one of 'auto', 'sparse', 'bitset', "
                f"'incremental', got {self.kernel_backend!r}"
            )
        if self.pair_parallelism < 0:
            raise ConfigError(
                "pair_parallelism must be >= 0 (0 follows num_threads), "
                f"got {self.pair_parallelism}"
            )

    def resolve_sigma(self, num_rows: int) -> int:
        """Resolve the effective minimum support for a dataset of *num_rows*.

        The paper's default is ``sigma = max(32, n/100)``; experiments use
        ``ceil(n/100)`` which this reproduces for every evaluated dataset
        (all have ``n >= 3200`` after the Salaries replication).
        """
        if self.sigma is not None:
            return self.sigma
        return max(DEFAULT_MIN_SUPPORT_FLOOR, math.ceil(num_rows / 100))

    def resolve_max_level(self, num_features: int) -> int:
        """Effective lattice depth: ``min(m, ceil(L))``."""
        if self.max_level is None:
            return num_features
        return min(num_features, self.max_level)

    def with_overrides(self, **kwargs) -> "SliceLineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
