"""Feature-space metadata and one-hot encoding (Algorithm 1, lines 1-5).

The paper expects the input feature matrix ``X0`` in a 1-based,
contiguous integer encoding (codes ``1..d_j`` per feature ``F_j``).  This
module derives the per-feature domains ``fdom`` and offsets ``fb``/``fe``
and produces the sparse one-hot matrix ``X`` via the contingency-table
trick.  The :class:`FeatureSpace` also provides the inverse mapping used to
decode one-hot slice vectors back into predicate form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import EncodingError, ShapeError
from repro.linalg import one_hot_encode


def validate_encoded_matrix(x0: np.ndarray, allow_missing: bool = False) -> np.ndarray:
    """Check that *x0* honours the 1-based contiguous integer contract.

    Returns the validated ``int64`` matrix.  Codes must be integers in
    ``[1, d_j]`` (``0`` additionally allowed when *allow_missing*); fractional
    values or negatives raise :class:`EncodingError`.
    """
    arr = np.asarray(x0)
    if arr.ndim != 2:
        raise ShapeError(f"X0 must be 2-D, got shape {arr.shape}")
    if arr.size == 0:
        raise EncodingError("X0 must contain at least one row and column")
    if not np.issubdtype(arr.dtype, np.integer):
        as_int = arr.astype(np.int64)
        if not np.array_equal(as_int, arr):
            raise EncodingError("X0 must hold integer codes (recode/bin first)")
        arr = as_int
    else:
        arr = arr.astype(np.int64)
    floor = 0 if allow_missing else 1
    if arr.min() < floor:
        raise EncodingError(
            f"X0 codes must be >= {floor} (1-based encoding"
            f"{'; 0 marks missing' if allow_missing else ''})"
        )
    return arr


@dataclass(frozen=True)
class FeatureSpace:
    """Domains and one-hot offsets of an integer-encoded feature matrix.

    ``domains[j]`` is ``d_j`` (``colMaxs`` of ``X0``), ``begins[j]``/
    ``ends[j]`` the half-open 0-based one-hot column range of feature ``j``
    (the paper's ``fb``/``fe`` in 1-based form), and ``num_onehot`` is ``l``.
    """

    domains: np.ndarray
    feature_names: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        domains = np.asarray(self.domains, dtype=np.int64)
        if domains.ndim != 1 or domains.size == 0:
            raise ShapeError("domains must be a non-empty 1-D vector")
        if domains.min() < 1:
            raise EncodingError("every feature domain must be >= 1")
        object.__setattr__(self, "domains", domains)
        if self.feature_names is not None and len(self.feature_names) != domains.size:
            raise ShapeError("feature_names must align with domains")

    @classmethod
    def from_matrix(
        cls, x0: np.ndarray, feature_names: Sequence[str] | None = None
    ) -> "FeatureSpace":
        """Derive domains from the column maxima of a validated ``X0``."""
        x0 = validate_encoded_matrix(x0, allow_missing=True)
        domains = x0.max(axis=0)
        if domains.min() < 1:
            raise EncodingError("every feature must have at least one observed code")
        names = tuple(feature_names) if feature_names is not None else None
        return cls(domains=domains, feature_names=names)

    @property
    def num_features(self) -> int:
        """``m`` — the number of original integer features."""
        return int(self.domains.size)

    @property
    def begins(self) -> np.ndarray:
        """0-based start offset of each feature's one-hot block (``fb``)."""
        return np.cumsum(self.domains) - self.domains

    @property
    def ends(self) -> np.ndarray:
        """Exclusive end offset of each feature's one-hot block (``fe``)."""
        return np.cumsum(self.domains)

    @property
    def num_onehot(self) -> int:
        """``l`` — the total number of one-hot columns."""
        return int(self.domains.sum())

    def encode(self, x0: np.ndarray) -> sp.csr_matrix:
        """One-hot encode *x0* into the sparse ``n x l`` matrix ``X``."""
        x0 = validate_encoded_matrix(x0, allow_missing=True)
        if x0.shape[1] != self.num_features:
            raise ShapeError(
                f"X0 has {x0.shape[1]} features, feature space expects "
                f"{self.num_features}"
            )
        if (x0.max(axis=0) > self.domains).any():
            raise EncodingError("X0 holds codes beyond the declared domains")
        return one_hot_encode(x0, self.begins, self.num_onehot)

    def feature_of_column(self, column: int) -> int:
        """Original feature index owning one-hot *column*."""
        if not (0 <= column < self.num_onehot):
            raise ShapeError(f"one-hot column {column} out of range")
        return int(np.searchsorted(self.ends, column, side="right"))

    def column_value(self, column: int) -> int:
        """1-based code that one-hot *column* represents within its feature."""
        feature = self.feature_of_column(column)
        return int(column - self.begins[feature] + 1)

    def column_of(self, feature: int, value: int) -> int:
        """One-hot column of predicate ``feature == value`` (both validated)."""
        if not (0 <= feature < self.num_features):
            raise ShapeError(f"feature index {feature} out of range")
        if not (1 <= value <= self.domains[feature]):
            raise EncodingError(
                f"value {value} outside domain 1..{self.domains[feature]} "
                f"of feature {feature}"
            )
        return int(self.begins[feature] + value - 1)

    def decode_row(self, onehot_row: np.ndarray) -> dict[int, int]:
        """Decode a 0/1 one-hot slice vector into ``{feature: value}`` form."""
        row = np.asarray(onehot_row).ravel()
        if row.shape[0] != self.num_onehot:
            raise ShapeError(
                f"slice vector has length {row.shape[0]}, expected {self.num_onehot}"
            )
        predicates: dict[int, int] = {}
        for column in np.flatnonzero(row):
            feature = self.feature_of_column(int(column))
            if feature in predicates:
                raise EncodingError(
                    f"slice vector sets two values for feature {feature}"
                )
            predicates[feature] = self.column_value(int(column))
        return predicates

    def value_count_matrix(self) -> sp.csr_matrix:
        """Sparse ``l x m`` map of one-hot columns to their original feature.

        ``P @ value_count_matrix()`` counts predicates per original feature —
        the vectorized form of the paper's per-feature ``rowSums`` validity
        scan during pair construction.
        """
        cols = np.arange(self.num_onehot, dtype=np.int64)
        feats = np.searchsorted(self.ends, cols, side="right")
        data = np.ones(self.num_onehot, dtype=np.float64)
        return sp.coo_matrix(
            (data, (cols, feats)), shape=(self.num_onehot, self.num_features)
        ).tocsr()

    def value_index_matrix(self) -> sp.csr_matrix:
        """Sparse ``l x m`` map carrying the 1-based code of each column.

        ``P @ value_index_matrix()`` yields, per candidate slice and original
        feature, the selected code (0 when the feature is free) — the digit
        matrix for the deduplication IDs of Section 4.3.
        """
        cols = np.arange(self.num_onehot, dtype=np.int64)
        feats = np.searchsorted(self.ends, cols, side="right")
        values = (cols - self.begins[feats] + 1).astype(np.float64)
        return sp.coo_matrix(
            (values, (cols, feats)), shape=(self.num_onehot, self.num_features)
        ).tocsr()
