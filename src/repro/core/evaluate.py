"""Vectorized slice evaluation (Section 4.4, Figure 2).

All candidate slices of a level are evaluated against the one-hot data
matrix with a single (blocked) sparse matrix multiplication:
``I = ((X @ S^T) == L)`` marks, per data row and slice, whether the row
matches all ``L`` predicates; sizes, errors, and maximum tuple errors then
follow from column reductions over ``I``.

The block size ``b`` realizes the paper's hybrid execution: ``b = 1`` is
pure task-parallel evaluation (one slice at a time, vector intermediates
only), ``b = nrow(S)`` pure data-parallel evaluation (one big intermediate),
and moderate ``b`` shares scans of ``X`` across ``b`` slices while bounding
the ``n x b`` intermediate (Figure 6(b) studies this trade-off).

Two workspace-reuse optimizations serve the enumeration hot path: the CSC
transpose ``S^T`` is built once per kernel call and blocks are cheap column
slices of it (instead of transposing every row block separately), and
callers may pass a :class:`~repro.linalg.KernelWorkspace` so every level of
a run shares one persistent thread pool instead of constructing a fresh
``ThreadPoolExecutor`` per call.  When the caller evaluates against a
row/column-compacted data matrix (:mod:`repro.core.compaction`), the
``num_rows``/``total_error`` overrides keep the scores referenced to the
full population, and the optional ``coverage`` accumulator records which
data rows matched at least one slice — the input of the next level's row
compaction — as a by-product of the indicator that is computed anyway.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.linalg import (
    KernelState,
    KernelWorkspace,
    as_csr,
    col_maxs,
    col_sums,
    ensure_vector,
    resolve_workspace,
    row_nnz,
)
from repro.linalg.kernels import BITSET_CHUNK, is_binary_matrix, words_block_stats
from repro.core.scoring import score
from repro.core.types import stats_matrix
from repro.obs import NULL_TRACER


class SliceSetStats(NamedTuple):
    """Raw, slice-aligned statistics of a fixed slice set.

    The three Equation-10 vectors — slice sizes ``|S|``, total slice errors
    ``se``, and maximum tuple errors ``sm`` — without the derived score, so
    callers can re-score under any ``alpha`` or merge partial results across
    row partitions (all three are plain sums/maxes over rows).
    """

    sizes: np.ndarray
    errors: np.ndarray
    max_errors: np.ndarray


def indicator_equal(product: sp.csr_matrix, level: int) -> sp.csr_matrix:
    """Sparse indicator ``(product == level)`` for a positive *level*.

    Because ``X`` and ``S`` are 0/1 matrices, every stored entry of
    ``X @ S^T`` is a positive integer count of matched predicates; implicit
    zeros can never equal ``level >= 1``, so the comparison only needs to
    filter stored entries (this is what makes the sparse formulation cheap).
    """
    if level < 1:
        raise ValidationError("indicator_equal requires level >= 1")
    result = product.tocsr(copy=True)
    result.data = (result.data == level).astype(np.float64)
    result.eliminate_zeros()
    return result


def _block_stats(
    x_onehot: sp.csr_matrix,
    errors: np.ndarray,
    slices_t_block: sp.csc_matrix,
    level: int,
    track_rows: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
    """``(ss, se, sm, row-any)`` of one transposed slice block.

    *slices_t_block* is a column block of the per-call cached ``S^T`` in
    CSC form; the row-any vector (which data rows matched >= 1 slice of the
    block) is only materialized when *track_rows* — it is the compaction
    coverage input and falls out of the indicator for free.
    """
    product = x_onehot @ slices_t_block
    indicator = indicator_equal(product, level)
    sizes = col_sums(indicator)
    slice_errors = np.asarray(indicator.T @ errors, dtype=np.float64).ravel()
    if indicator.nnz:
        max_errors = col_maxs(indicator.multiply(errors[:, np.newaxis]).tocsc())
    else:
        max_errors = np.zeros(indicator.shape[1], dtype=np.float64)
    covered = row_nnz(indicator) > 0 if track_rows else None
    return sizes, slice_errors, max_errors, covered


def evaluate_block(
    x_onehot: sp.csr_matrix,
    errors: np.ndarray,
    slices_block: sp.csr_matrix,
    level: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sizes, errors, and max tuple errors for one block of slices.

    Returns the vectors ``(ss, se, sm)`` of Equation 10 for the block.
    """
    sizes, slice_errors, max_errors, _ = _block_stats(
        x_onehot, errors, slices_block.T.tocsc(), level
    )
    return sizes, slice_errors, max_errors


def _evaluate_words_level(
    x_onehot: sp.csr_matrix,
    errors: np.ndarray,
    slices: sp.csr_matrix,
    level: int,
    kernels: KernelState,
    parents: np.ndarray | None,
    num_threads: int,
    workspace: KernelWorkspace | None = None,
    coverage: np.ndarray | None = None,
    counters=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(ss, se, sm)`` via the bitset/incremental indicator backends.

    Candidates are processed in fixed :data:`~repro.linalg.kernels.
    BITSET_CHUNK`-sized chunks — independent of the caller's ``block_size``,
    which cannot matter here because every candidate's statistics are
    computed in isolation from its own indicator bitset.  Chunk workers are
    pure (the miss table is materialized up front, cache appends and
    counter updates happen serially afterwards in chunk order), so the
    thread pool never races the per-run kernel state.
    """
    num_slices = slices.shape[0]
    num_rows = x_onehot.shape[0]
    if not slices.has_sorted_indices:
        slices = slices.copy()
        slices.sort_indices()
    keys = slices.indices.reshape(num_slices, level)
    track_rows = coverage is not None
    incremental = kernels.backend == "incremental"
    if incremental:
        kernels.prepare_chunks(parents)
    spans = [
        (start, min(start + BITSET_CHUNK, num_slices))
        for start in range(0, num_slices, BITSET_CHUNK)
    ]

    def run(span):
        start, stop = span
        chunk_parents = parents[start:stop] if incremental else None
        words, hits, misses = kernels.chunk_words(
            keys[start:stop], chunk_parents
        )
        sizes, slice_errors, max_errors, covered = words_block_stats(
            words, errors, num_rows, track_rows
        )
        return sizes, slice_errors, max_errors, covered, words, hits, misses

    ws, transient = resolve_workspace(workspace, num_threads)
    try:
        partials = ws.map(run, spans)
    finally:
        if transient:
            ws.close()
    for partial in partials:
        if track_rows:
            np.logical_or(coverage, partial[3], out=coverage)
        kernels.store_words(partial[4])
        if counters is not None:
            counters.cache_hits += partial[5]
            counters.cache_misses += partial[6]
    return (
        np.concatenate([p[0] for p in partials]),
        np.concatenate([p[1] for p in partials]),
        np.concatenate([p[2] for p in partials]),
    )


def _evaluate_uniform_level(
    x_onehot: sp.csr_matrix,
    errors: np.ndarray,
    slices: sp.csr_matrix,
    level: int,
    block_size: int,
    num_threads: int,
    workspace: KernelWorkspace | None = None,
    coverage: np.ndarray | None = None,
    kernels: KernelState | None = None,
    parents: np.ndarray | None = None,
    counters=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Blocked ``(ss, se, sm)`` evaluation of same-level slices.

    With a prepared :class:`~repro.linalg.KernelState` whose per-level
    decision is not ``"sparse"``, evaluation is delegated to the bitset /
    incremental backends (bitwise identical by construction).  Otherwise
    the transpose ``S^T`` is materialized once in CSC form; each block is a
    column slice of it.  When *coverage* (a boolean vector over the data
    rows) is given, rows matching >= 1 evaluated slice are OR-ed into it.
    """
    if kernels is not None and kernels.backend != "sparse":
        return _evaluate_words_level(
            x_onehot, errors, slices, level, kernels, parents, num_threads,
            workspace=workspace, coverage=coverage, counters=counters,
        )
    num_slices = slices.shape[0]
    slices_t = slices.T.tocsc()
    blocks = [
        slices_t[:, start : min(start + block_size, num_slices)]
        for start in range(0, num_slices, block_size)
    ]
    track_rows = coverage is not None
    ws, transient = resolve_workspace(workspace, num_threads)
    try:
        partials = ws.map(
            lambda blk: _block_stats(x_onehot, errors, blk, level, track_rows),
            blocks,
        )
    finally:
        if transient:
            ws.close()
    if track_rows:
        for partial in partials:
            np.logical_or(coverage, partial[3], out=coverage)
    return (
        np.concatenate([p[0] for p in partials]),
        np.concatenate([p[1] for p in partials]),
        np.concatenate([p[2] for p in partials]),
    )


def evaluate_slice_set(
    x_onehot: sp.csr_matrix,
    slices: sp.csr_matrix,
    errors: np.ndarray,
    block_size: int = 16,
    num_threads: int = 1,
    workspace: KernelWorkspace | None = None,
    num_rows: int | None = None,
    total_error: float | None = None,
    max_error: float | None = None,
    backend: str = "sparse",
) -> SliceSetStats:
    """Evaluate a *fixed*, possibly mixed-level slice set against a dataset.

    Unlike :func:`evaluate_slices` — which serves the level-wise enumeration
    and therefore assumes every row of ``slices`` has exactly ``level``
    predicates — this helper accepts arbitrary one-hot slice rows (the
    projected ``S`` representation: one column per ``feature == value``
    predicate).  Rows are grouped by predicate count and each group runs
    through the same blocked ``(X S^T) == L`` kernel, so the returned
    statistics are bitwise identical to what the enumeration would compute
    for the same slices over the same rows.

    An all-zero slice row (no predicates) denotes the entire dataset and
    gets ``(n, sum(e), max(e))``.

    When *x_onehot*/*errors* are a compacted view of a larger population
    (see :func:`repro.core.compaction.compact_slice_set`), pass the full
    population's ``num_rows``/``total_error``/``max_error`` so the
    whole-dataset statistics stay referenced to the original data; the
    per-slice vectors are unaffected (a compacted-away row belongs to no
    slice).  *workspace* shares one thread pool across repeated calls.

    Returns a :class:`SliceSetStats` of row-aligned ``(sizes, errors,
    max_errors)`` vectors; combine with :func:`repro.core.scoring.score` for
    scores under a chosen ``alpha``.  This is the membership kernel behind
    :class:`repro.streaming.MergeableSliceStats` and a vectorized
    replacement for per-slice :func:`~repro.core.decode.slice_membership`
    loops.

    *backend* selects the evaluation kernel (see
    :mod:`repro.linalg.kernels`): ``"sparse"`` (the default, and always
    exact), ``"bitset"``, ``"auto"``, or ``"incremental"`` — the last has
    no parent cache outside the enumeration and therefore degrades to the
    bitset backend when the data permits.  Results are bitwise identical
    for every choice.
    """
    if block_size < 1:
        raise ValidationError("block_size must be >= 1")
    kernels = KernelState(backend) if backend != "sparse" else None
    errors = ensure_vector(errors, x_onehot.shape[0], "errors")
    if num_rows is None:
        num_rows = x_onehot.shape[0]
    slices = as_csr(slices)
    if slices.shape[1] != x_onehot.shape[1]:
        raise ValidationError(
            f"slices have {slices.shape[1]} one-hot columns but the data "
            f"matrix has {x_onehot.shape[1]}"
        )
    num_slices = slices.shape[0]
    sizes = np.zeros(num_slices, dtype=np.float64)
    slice_errors = np.zeros(num_slices, dtype=np.float64)
    max_errors = np.zeros(num_slices, dtype=np.float64)
    if num_slices == 0:
        return SliceSetStats(sizes, slice_errors, max_errors)

    levels = row_nnz(slices)
    for level in np.unique(levels):
        members = np.flatnonzero(levels == level)
        if level == 0:
            sizes[members] = float(num_rows)
            slice_errors[members] = (
                float(errors.sum()) if total_error is None else total_error
            )
            if max_error is not None:
                max_errors[members] = max_error
            else:
                max_errors[members] = (
                    float(errors.max()) if errors.shape[0] else 0.0
                )
            continue
        group = slices[members]
        if kernels is not None:
            kernels.begin_level(
                x_onehot, int(level), int(members.size),
                slices_binary=is_binary_matrix(group),
            )
        group_sizes, group_errors, group_max = _evaluate_uniform_level(
            x_onehot, errors, group, int(level), block_size,
            num_threads, workspace=workspace, kernels=kernels,
        )
        sizes[members] = group_sizes
        slice_errors[members] = group_errors
        max_errors[members] = group_max
    return SliceSetStats(sizes, slice_errors, max_errors)


def evaluate_slices(
    x_onehot: sp.csr_matrix,
    errors: np.ndarray,
    slices: sp.csr_matrix,
    level: int,
    alpha: float,
    block_size: int = 16,
    num_threads: int = 1,
    tracer=NULL_TRACER,
    counters=None,
    workspace: KernelWorkspace | None = None,
    coverage: np.ndarray | None = None,
    num_rows: int | None = None,
    total_error: float | None = None,
    kernels: KernelState | None = None,
    parents: np.ndarray | None = None,
) -> np.ndarray:
    """Evaluate all candidate *slices* and return their ``R`` statistics.

    Blocks of ``block_size`` slices are evaluated independently (optionally
    on a thread pool — scipy's matmul releases the GIL for the heavy part),
    then concatenated into the level's ``R`` matrix ``[sc, se, sm, ss]``.
    Passing a :class:`~repro.linalg.KernelWorkspace` reuses one pool across
    calls; the enumeration driver holds one for the whole run.

    When evaluating against a compacted data matrix, *num_rows* and
    *total_error* carry the full population (scores are defined against the
    whole dataset) and *coverage* — a boolean vector over the compacted
    rows — accumulates which rows matched >= 1 slice for the next level's
    row compaction.

    The blocked multiplication reports one span into *tracer*; when a
    :class:`~repro.obs.LevelCounters` record is passed as *counters*, the
    indicator fill (total row-slice memberships, which equals ``nnz(I)``)
    is accumulated on it.

    *kernels* is the driver's per-run :class:`~repro.linalg.KernelState`
    (already positioned at this level via ``begin_level``); *parents* the
    candidates' parent-pair ids for its incremental backend.  Omitting both
    keeps the sparse path — the default for every external caller.
    """
    if block_size < 1:
        raise ValidationError("block_size must be >= 1")
    errors = ensure_vector(errors, x_onehot.shape[0], "errors")
    if num_rows is None:
        num_rows = x_onehot.shape[0]
    if total_error is None:
        total_error = float(errors.sum())
    slices = as_csr(slices)
    num_slices = slices.shape[0]
    if num_slices == 0:
        return np.zeros((0, 4), dtype=np.float64)

    num_blocks = -(-num_slices // block_size)
    with tracer.span(
        "evaluate.blocks",
        num_slices=num_slices,
        blocks=num_blocks,
        threads=num_threads,
        backend=kernels.backend if kernels is not None else "sparse",
    ):
        sizes, slice_errors, max_errors = _evaluate_uniform_level(
            x_onehot, errors, slices, level, block_size, num_threads,
            workspace=workspace, coverage=coverage, kernels=kernels,
            parents=parents, counters=counters,
        )
    if counters is not None:
        # Every stored entry of I = (X S^T == L) is one (row, slice)
        # membership, so sum(ss) over the level IS nnz(I) — free to track.
        counters.indicator_nnz += int(sizes.sum())
    scores = score(sizes, slice_errors, num_rows, total_error, alpha)
    return stats_matrix(scores, slice_errors, max_errors, sizes)
