"""Multinomial logistic regression (the paper's ``mlogit``).

Softmax regression trained with full-batch gradient descent and a simple
backtracking step size — deliberately dependency-free and deterministic.
Used to produce the classification error vectors SliceLine debugs.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError, ValidationError


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise numerically stable softmax."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class MultinomialLogisticRegression:
    """Softmax classifier over 0-based integer class labels."""

    def __init__(
        self,
        num_iterations: int = 200,
        learning_rate: float = 1.0,
        l2: float = 1e-4,
        tol: float = 1e-7,
    ) -> None:
        if num_iterations < 1:
            raise ValidationError("num_iterations must be >= 1")
        if learning_rate <= 0:
            raise ValidationError("learning_rate must be positive")
        self.num_iterations = num_iterations
        self.learning_rate = learning_rate
        self.l2 = l2
        self.tol = tol
        self.weights_: np.ndarray | None = None
        self.num_classes_: int = 0
        self.loss_curve_: list[float] = []

    def fit(
        self, features: np.ndarray, labels: np.ndarray
    ) -> "MultinomialLogisticRegression":
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels).ravel().astype(np.int64)
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ShapeError("features must be n x d aligned with labels")
        if y.min() < 0:
            raise ValidationError("labels must be 0-based non-negative integers")
        n, d = x.shape
        x = np.column_stack([x, np.ones(n)])  # intercept column
        self.num_classes_ = int(y.max()) + 1
        onehot = np.zeros((n, self.num_classes_))
        onehot[np.arange(n), y] = 1.0

        weights = np.zeros((d + 1, self.num_classes_))
        step = self.learning_rate
        self.loss_curve_ = []
        previous_loss = np.inf
        for _ in range(self.num_iterations):
            probs = softmax(x @ weights)
            loss = self._loss(probs, onehot, weights, n)
            self.loss_curve_.append(loss)
            gradient = x.T @ (probs - onehot) / n + self.l2 * weights
            candidate = weights - step * gradient
            candidate_loss = self._loss(
                softmax(x @ candidate), onehot, candidate, n
            )
            # Backtrack until the step improves the objective.
            while candidate_loss > loss and step > 1e-8:
                step *= 0.5
                candidate = weights - step * gradient
                candidate_loss = self._loss(
                    softmax(x @ candidate), onehot, candidate, n
                )
            weights = candidate
            if abs(previous_loss - candidate_loss) < self.tol:
                break
            previous_loss = candidate_loss
        self.weights_ = weights
        return self

    def _loss(
        self,
        probs: np.ndarray,
        onehot: np.ndarray,
        weights: np.ndarray,
        n: int,
    ) -> float:
        nll = -np.sum(onehot * np.log(np.clip(probs, 1e-12, 1.0))) / n
        return float(nll + 0.5 * self.l2 * np.sum(weights**2))

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise RuntimeError("model is not fitted yet")
        x = np.asarray(features, dtype=np.float64)
        x = np.column_stack([x, np.ones(x.shape[0])])
        if x.shape[1] != self.weights_.shape[0]:
            raise ShapeError("feature dimensionality does not match the model")
        return softmax(x @ self.weights_)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features).argmax(axis=1)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        y = np.asarray(labels).ravel().astype(np.int64)
        return float((self.predict(features) == y).mean())
