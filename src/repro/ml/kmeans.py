"""K-Means clustering (Lloyd's algorithm with k-means++ seeding).

The paper derives artificial labels for the unlabeled USCensus dataset by
K-Means clustering; this implementation plays that role (and backs the
clustering baseline).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError, ValidationError


class KMeans:
    """Lloyd's algorithm with deterministic k-means++ initialization."""

    def __init__(
        self,
        num_clusters: int = 4,
        max_iterations: int = 100,
        tol: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if num_clusters < 1:
            raise ValidationError("num_clusters must be >= 1")
        self.num_clusters = num_clusters
        self.max_iterations = max_iterations
        self.tol = tol
        self.seed = seed
        self.centroids_: np.ndarray | None = None
        self.inertia_: float = np.inf
        self.num_iterations_: int = 0

    def fit(self, points: np.ndarray) -> "KMeans":
        x = np.asarray(points, dtype=np.float64)
        if x.ndim != 2:
            raise ShapeError("points must be a 2-D matrix")
        if x.shape[0] < self.num_clusters:
            raise ValidationError(
                f"need >= {self.num_clusters} points for {self.num_clusters} clusters"
            )
        rng = np.random.default_rng(self.seed)
        centroids = self._kmeanspp(x, rng)
        for iteration in range(self.max_iterations):
            labels = self._assign(x, centroids)
            new_centroids = centroids.copy()
            for cluster in range(self.num_clusters):
                members = x[labels == cluster]
                if members.shape[0]:
                    new_centroids[cluster] = members.mean(axis=0)
            shift = float(np.abs(new_centroids - centroids).max())
            centroids = new_centroids
            self.num_iterations_ = iteration + 1
            if shift < self.tol:
                break
        self.centroids_ = centroids
        labels = self._assign(x, centroids)
        self.inertia_ = float(((x - centroids[labels]) ** 2).sum())
        return self

    def _kmeanspp(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding: spread initial centroids by squared distance."""
        centroids = [x[rng.integers(x.shape[0])]]
        while len(centroids) < self.num_clusters:
            dists = np.min(
                [((x - c) ** 2).sum(axis=1) for c in centroids], axis=0
            )
            total = dists.sum()
            if total == 0:
                centroids.append(x[rng.integers(x.shape[0])])
                continue
            probs = dists / total
            centroids.append(x[rng.choice(x.shape[0], p=probs)])
        return np.asarray(centroids)

    @staticmethod
    def _assign(x: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2; the x term is constant per row.
        cross = x @ centroids.T
        c_norm = (centroids**2).sum(axis=1)
        return (c_norm[np.newaxis, :] - 2.0 * cross).argmin(axis=1)

    def predict(self, points: np.ndarray) -> np.ndarray:
        if self.centroids_ is None:
            raise RuntimeError("KMeans is not fitted yet")
        x = np.asarray(points, dtype=np.float64)
        if x.shape[1] != self.centroids_.shape[1]:
            raise ShapeError("points dimensionality does not match centroids")
        return self._assign(x, self.centroids_)

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        return self.fit(points).predict(points)
