"""Per-row error functions ``e = err(y, y_hat)`` (Section 2.1).

All functions return a non-negative, row-aligned error vector — the ``e``
input of SliceLine.  The paper's defaults are :func:`squared_loss` for
regression and :func:`inaccuracy` for classification.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError


def _aligned(y: np.ndarray, y_hat: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y = np.asarray(y, dtype=np.float64).ravel()
    y_hat = np.asarray(y_hat, dtype=np.float64).ravel()
    if y.shape != y_hat.shape:
        raise ShapeError(
            f"labels and predictions must align, got {y.shape} vs {y_hat.shape}"
        )
    return y, y_hat


def squared_loss(y: np.ndarray, y_hat: np.ndarray) -> np.ndarray:
    """Regression: ``e = (y - y_hat)^2``."""
    y, y_hat = _aligned(y, y_hat)
    return (y - y_hat) ** 2


def absolute_loss(y: np.ndarray, y_hat: np.ndarray) -> np.ndarray:
    """Regression: ``e = |y - y_hat|``."""
    y, y_hat = _aligned(y, y_hat)
    return np.abs(y - y_hat)


def inaccuracy(y: np.ndarray, y_hat: np.ndarray) -> np.ndarray:
    """Classification: ``e = (y != y_hat)`` as 0/1 floats."""
    y, y_hat = _aligned(y, y_hat)
    return (y != y_hat).astype(np.float64)


def log_loss_per_row(
    y: np.ndarray, probabilities: np.ndarray, eps: float = 1e-12
) -> np.ndarray:
    """Classification: per-row negative log-likelihood of the true class.

    *probabilities* is an ``n x c`` matrix of predicted class probabilities;
    *y* holds 0-based class indices.
    """
    probs = np.asarray(probabilities, dtype=np.float64)
    labels = np.asarray(y).ravel().astype(np.int64)
    if probs.ndim != 2 or labels.shape[0] != probs.shape[0]:
        raise ShapeError("probabilities must be n x c aligned with labels")
    if labels.min() < 0 or labels.max() >= probs.shape[1]:
        raise ShapeError("labels out of range of probability columns")
    picked = probs[np.arange(labels.shape[0]), labels]
    return -np.log(np.clip(picked, eps, 1.0))
