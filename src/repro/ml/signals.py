"""Fairness and bias error signals (the paper's future-work direction).

Section 7 of the paper names "slice finding for bias and fairness (instead
of accuracy)" as future work.  SliceLine only consumes a non-negative
per-row vector, so the extension is a family of per-row *signals*: feed any
of these as ``errors`` and the top-K slices become the subgroups where the
corresponding harm concentrates.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError, ValidationError


def _binary_aligned(y, y_hat) -> tuple[np.ndarray, np.ndarray]:
    y = np.asarray(y).ravel().astype(np.int64)
    y_hat = np.asarray(y_hat).ravel().astype(np.int64)
    if y.shape != y_hat.shape:
        raise ShapeError("labels and predictions must align")
    for name, arr in (("labels", y), ("predictions", y_hat)):
        if not np.isin(arr, (0, 1)).all():
            raise ValidationError(f"{name} must be binary (0/1)")
    return y, y_hat


def false_negative_signal(y, y_hat) -> np.ndarray:
    """1 where a positive instance was predicted negative (missed benefit).

    Slices maximizing this signal are subgroups suffering wrongful denial —
    the disparate-mistreatment notion of fairness for the positive class.
    """
    y, y_hat = _binary_aligned(y, y_hat)
    return ((y == 1) & (y_hat == 0)).astype(np.float64)


def false_positive_signal(y, y_hat) -> np.ndarray:
    """1 where a negative instance was predicted positive (wrongful harm)."""
    y, y_hat = _binary_aligned(y, y_hat)
    return ((y == 0) & (y_hat == 1)).astype(np.float64)


def positive_prediction_signal(y_hat) -> np.ndarray:
    """1 where the model predicts the positive class, regardless of truth.

    With this signal, high-scoring slices are subgroups receiving the
    positive outcome disproportionately often (demographic-parity auditing);
    to find *under*-served subgroups, pass ``1 - signal`` instead.
    """
    y_hat = np.asarray(y_hat).ravel().astype(np.int64)
    if not np.isin(y_hat, (0, 1)).all():
        raise ValidationError("predictions must be binary (0/1)")
    return (y_hat == 1).astype(np.float64)


def calibration_gap_signal(y, probabilities) -> np.ndarray:
    """Absolute gap between predicted probability and the observed label.

    Slices maximizing this signal are subgroups where the model's
    confidence is least trustworthy (mis-calibration concentration).
    """
    y = np.asarray(y, dtype=np.float64).ravel()
    probs = np.asarray(probabilities, dtype=np.float64).ravel()
    if y.shape != probs.shape:
        raise ShapeError("labels and probabilities must align")
    if (probs < 0).any() or (probs > 1).any():
        raise ValidationError("probabilities must lie in [0, 1]")
    return np.abs(probs - y)
