"""ML substrate: the models and error functions the paper debugs.

The paper trains linear regression (``lm``) for regression datasets and
multinomial logistic regression (``mlogit``) for classification, derives
artificial labels for USCensus via K-Means, and feeds SliceLine with squared
loss (regression) or 0/1 inaccuracy (classification).  All of that is
implemented here from scratch on numpy.
"""

from repro.ml.errors import (
    absolute_loss,
    inaccuracy,
    log_loss_per_row,
    squared_loss,
)
from repro.ml.kmeans import KMeans
from repro.ml.linreg import LinearRegression
from repro.ml.logreg import MultinomialLogisticRegression
from repro.ml.signals import (
    calibration_gap_signal,
    false_negative_signal,
    false_positive_signal,
    positive_prediction_signal,
)
from repro.ml.split import train_test_split

__all__ = [
    "absolute_loss",
    "inaccuracy",
    "log_loss_per_row",
    "squared_loss",
    "KMeans",
    "LinearRegression",
    "MultinomialLogisticRegression",
    "calibration_gap_signal",
    "false_negative_signal",
    "false_positive_signal",
    "positive_prediction_signal",
    "train_test_split",
]
