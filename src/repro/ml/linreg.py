"""Linear regression (the paper's ``lm``) via ridge-regularized least squares."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError, ValidationError


class LinearRegression:
    """Ordinary least squares with optional L2 regularization.

    Solves ``min_w ||X w + b - y||^2 + lam ||w||^2`` in closed form via the
    normal equations (with the intercept unregularized).  The tiny default
    ridge term keeps the solve well-posed for the collinear one-hot designs
    this library produces.
    """

    def __init__(self, l2: float = 1e-8, fit_intercept: bool = True) -> None:
        if l2 < 0:
            raise ValidationError("l2 must be non-negative")
        self.l2 = l2
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "LinearRegression":
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64).ravel()
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ShapeError("features must be n x d aligned with targets")
        if self.fit_intercept:
            x = np.column_stack([x, np.ones(x.shape[0])])
        gram = x.T @ x
        if self.l2 > 0:
            reg = self.l2 * np.eye(gram.shape[0])
            if self.fit_intercept:
                reg[-1, -1] = 0.0
            gram = gram + reg
        weights = np.linalg.solve(gram, x.T @ y)
        if self.fit_intercept:
            self.coef_ = weights[:-1]
            self.intercept_ = float(weights[-1])
        else:
            self.coef_ = weights
            self.intercept_ = 0.0
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("LinearRegression is not fitted yet")
        x = np.asarray(features, dtype=np.float64)
        if x.shape[1] != self.coef_.shape[0]:
            raise ShapeError(
                f"features have {x.shape[1]} columns, model expects "
                f"{self.coef_.shape[0]}"
            )
        return x @ self.coef_ + self.intercept_

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Coefficient of determination R^2."""
        y = np.asarray(targets, dtype=np.float64).ravel()
        residual = y - self.predict(features)
        total = y - y.mean()
        denom = float(total @ total)
        if denom == 0.0:
            return 1.0 if float(residual @ residual) == 0.0 else 0.0
        return 1.0 - float(residual @ residual) / denom
