"""Deterministic train/test splitting.

The paper applies slice finding to train, validation, or test splits alike
(the model is always created on the train split); this helper produces the
splits reproducibly.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError, ValidationError


def train_test_split(
    *arrays: np.ndarray,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> tuple:
    """Split any number of row-aligned arrays into train/test parts.

    Returns ``(a_train, a_test, b_train, b_test, ...)`` in the order the
    arrays were given, after one shared random permutation.
    """
    if not arrays:
        raise ValidationError("at least one array is required")
    if not (0.0 < test_fraction < 1.0):
        raise ValidationError("test_fraction must be in (0, 1)")
    num_rows = np.asarray(arrays[0]).shape[0]
    for arr in arrays[1:]:
        if np.asarray(arr).shape[0] != num_rows:
            raise ShapeError("all arrays must have the same number of rows")
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_rows)
    cut = num_rows - max(1, int(round(num_rows * test_fraction)))
    if cut < 1:
        raise ValidationError("split leaves an empty train part")
    train_idx, test_idx = order[:cut], order[cut:]
    out: list[np.ndarray] = []
    for arr in arrays:
        arr = np.asarray(arr)
        out.extend([arr[train_idx], arr[test_idx]])
    return tuple(out)
