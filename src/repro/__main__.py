"""``python -m repro`` entry point (see :mod:`repro.cli`)."""

from repro.cli import main

# The __name__ guard is load-bearing: spawned worker processes
# (serve --process-workers) re-import this module as __mp_main__, which
# must not re-run the CLI.
if __name__ == "__main__":
    raise SystemExit(main())
