"""Supervised multi-process workers for the serving layer.

:class:`ProcessWorkerSupervisor` is a drop-in alternative to the thread
:class:`~repro.serve.scheduler.Scheduler`: same constructor shape, same
``start``/``shutdown``/``executing``/``maybe_preempt`` surface, same
cooperative preemption semantics.  The difference is *where* enumeration
runs: each worker slot owns a **spawned child process**, and the heavy
``slice_line`` call of a ``find`` job executes there — so a worker that is
SIGKILL'd mid-level (OOM killer, operator, chaos suite) takes down neither
the service nor the other workers.

Supervision contract per worker slot:

* the child writes a **heartbeat file** (``worker-N.json``) every
  ``heartbeat_interval_s`` with its pid and current job; a child that is
  alive but silent past ``heartbeat_timeout_s`` is presumed hung, killed
  (SIGKILL) and treated as crashed;
* a dead child (``exitcode`` set — ``-9`` is the SIGKILL signature) raises
  :class:`WorkerCrash` into the service's execute callback, whose handler
  **requeues the orphaned job at the front** of its tenant's backlog; the
  job resumes from its last ``repro.ckpt/v1`` level-boundary checkpoint,
  so the recovered result is bitwise-identical to a fault-free run;
* the slot is **restarted with exponential backoff** (delays from the
  shared :class:`~repro.resilience.retry.RetryPolicy`); after
  ``restart_policy.max_attempts`` consecutive crashes with no successful
  job in between the slot is retired (the pool keeps running on the
  remaining slots).

Job state transitions stay in the parent — the service's lock-guarded
state machine is untouched; the child only computes.  Monitor jobs run
inline on the dispatcher thread (their live monitor object feeds the
status API and cannot live in another process).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time

from repro.exceptions import ServeError
from repro.resilience.atomic import atomic_write_json
from repro.resilience.budgets import SuspendHook
from repro.resilience.retry import RetryPolicy
from repro.serve.queue import JobQueue
from repro.serve.spec import JobRecord


class WorkerCrash(ServeError):
    """A worker process died (or went silent) while executing a job.

    Raised out of :meth:`ProcessWorkerSupervisor.run_find` into the
    service's execute callback, which requeues the orphaned job at the
    front instead of failing it.  ``kind`` is ``"sigkill"`` (exit by
    signal 9), ``"exit"`` (any other death), or ``"heartbeat"`` (alive
    but past the heartbeat deadline; the supervisor killed it).
    """

    def __init__(self, message: str, kind: str = "exit") -> None:
        super().__init__(message)
        self.kind = kind


def read_heartbeat(path: str) -> dict | None:
    """Parse one heartbeat file (``None`` when absent or torn)."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def _heartbeat_loop(path, worker_id, interval, state, stop) -> None:
    while not stop.is_set():
        atomic_write_json(
            path,
            {
                "worker": worker_id,
                "pid": os.getpid(),
                "ts": time.time(),
                "job_id": state.get("job_id"),
            },
            durable=False,
            indent=None,
        )
        stop.wait(interval)


def _control_loop(control_q, state, stop) -> None:
    """Child-side thread: turn control messages into suspend requests."""
    while not stop.is_set():
        try:
            message = control_q.get(timeout=0.1)
        except Exception:  # noqa: BLE001 — Empty, or a closed queue at exit
            continue
        if message[0] == "suspend":
            hook = state.get("hook")
            # Stale suspends (from a job this child already finished) are
            # dropped by the job-id tag.
            if hook is not None and state.get("job_id") == message[1]:
                hook.request()


def worker_main(
    worker_id: int,
    task_q,
    result_q,
    control_q,
    heartbeat_path: str,
    heartbeat_interval_s: float,
) -> None:
    """Entry point of one spawned worker process."""
    # Local import: the child re-imports the package under spawn; pulling
    # the heavy core in here keeps the module importable without it.
    from repro.core.algorithm import slice_line

    state: dict = {"job_id": None, "hook": None}
    stop = threading.Event()
    threading.Thread(
        target=_heartbeat_loop,
        args=(heartbeat_path, worker_id, heartbeat_interval_s, state, stop),
        daemon=True,
    ).start()
    threading.Thread(
        target=_control_loop, args=(control_q, state, stop), daemon=True
    ).start()
    while True:
        message = task_q.get()
        if message[0] == "stop":
            break
        _, job_id, task = message
        hook = SuspendHook()
        state["hook"] = hook
        state["job_id"] = job_id
        try:
            result = slice_line(suspend=hook, **task)
            result_q.put(("ok", job_id, result))
        except Exception as exc:  # noqa: BLE001 — job errors go to the parent
            result_q.put(("error", job_id, f"{type(exc).__name__}: {exc}"))
        finally:
            state["job_id"] = None
            state["hook"] = None
    stop.set()


class _WorkerSlot:
    """Parent-side handle of one worker process and its queues."""

    def __init__(self, index: int, context, run_dir: str) -> None:
        self.index = index
        self.context = context
        self.heartbeat_path = os.path.join(run_dir, f"worker-{index}.json")
        self.process = None
        self.task_q = None
        self.result_q = None
        self.control_q = None
        #: crashes since the last successful job on this slot
        self.consecutive_crashes = 0
        self.retired = False

    def spawn(self, heartbeat_interval_s: float) -> None:
        self.task_q = self.context.Queue()
        self.result_q = self.context.Queue()
        self.control_q = self.context.Queue()
        self.process = self.context.Process(
            target=worker_main,
            args=(
                self.index,
                self.task_q,
                self.result_q,
                self.control_q,
                self.heartbeat_path,
                heartbeat_interval_s,
            ),
            daemon=True,
            name=f"repro-serve-proc-{self.index}",
        )
        self.process.start()

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def heartbeat_age(self) -> float | None:
        beat = read_heartbeat(self.heartbeat_path)
        if beat is None or beat.get("pid") != self.process.pid:
            return None
        return time.time() - float(beat.get("ts", 0.0))

    def kill(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5.0)

    def drop_queues(self) -> None:
        for q in (self.task_q, self.result_q, self.control_q):
            if q is not None:
                q.close()
                q.cancel_join_thread()
        self.task_q = self.result_q = self.control_q = None


class ProcessWorkerSupervisor:
    """Runs queued jobs on a supervised pool of spawned worker processes.

    Drop-in for :class:`~repro.serve.scheduler.Scheduler` (the service
    picks one or the other via ``worker_mode``).  One dispatcher thread
    per slot drains the :class:`~repro.serve.queue.JobQueue` and runs the
    service's execute callback; the callback's ``slice_line`` call is
    delegated to the slot's child process through :meth:`run_find`.
    """

    def __init__(
        self,
        queue: JobQueue,
        execute,
        num_workers: int = 2,
        preemption: bool = True,
        run_dir: str | None = None,
        heartbeat_interval_s: float = 0.2,
        heartbeat_timeout_s: float = 30.0,
        restart_policy: RetryPolicy | None = None,
        on_event=None,
    ) -> None:
        self.queue = queue
        self._execute = execute
        self.num_workers = max(1, int(num_workers))
        self.preemption = preemption
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.restart_policy = restart_policy or RetryPolicy(
            max_attempts=4, backoff_base_s=0.05, backoff_cap_s=2.0
        )
        self._on_event = on_event or (lambda name: None)
        if run_dir is None:
            import tempfile

            run_dir = tempfile.mkdtemp(prefix="repro-serve-workers-")
        self.run_dir = run_dir
        os.makedirs(run_dir, exist_ok=True)
        self._context = multiprocessing.get_context("spawn")
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._executing: dict[str, JobRecord] = {}
        self._slots: list[_WorkerSlot] = []
        self._local = threading.local()
        #: total worker crashes / restarts observed (exposed in stats)
        self.crashes = 0
        self.restarts = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._threads:
            return
        self._stop.clear()
        self._slots = []
        for index in range(self.num_workers):
            slot = _WorkerSlot(index, self._context, self.run_dir)
            slot.spawn(self.heartbeat_interval_s)
            self._slots.append(slot)
            thread = threading.Thread(
                target=self._dispatcher,
                args=(slot,),
                name=f"repro-serve-dispatch-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    @property
    def started(self) -> bool:
        return bool(self._threads)

    def shutdown(self, wait: bool = True) -> None:
        self._stop.set()
        self.queue.close()
        if wait:
            for thread in self._threads:
                thread.join(timeout=10.0)
        for slot in self._slots:
            if slot.alive:
                try:
                    slot.task_q.put(("stop",))
                    slot.process.join(timeout=2.0)
                except (OSError, ValueError):
                    pass
            slot.kill()
            slot.drop_queues()
        self._threads = []
        # _slots stays populated so worker_stats() (and the status JSON
        # the CLI writes after shutdown) still reports the final fleet.

    # -- dispatch ------------------------------------------------------------

    def _dispatcher(self, slot: _WorkerSlot) -> None:
        self._local.slot = slot
        while not self._stop.is_set():
            if not slot.retired and not slot.alive:
                self._respawn(slot)
            record = self.queue.take(timeout=0.1)
            if record is None:
                continue
            with self._lock:
                self._executing[record.job_id] = record
            try:
                self._execute(record)
            finally:
                with self._lock:
                    self._executing.pop(record.job_id, None)

    def _respawn(self, slot: _WorkerSlot) -> None:
        """Restart a dead worker with bounded exponential backoff."""
        slot.drop_queues()
        slot.consecutive_crashes += 1
        if slot.consecutive_crashes > self.restart_policy.max_attempts:
            slot.retired = True
            self._on_event("serve.workers_retired")
            return
        delay = self.restart_policy.backoff_delay(
            slot.index, slot.consecutive_crashes
        )
        if self._stop.wait(delay):
            return
        slot.spawn(self.heartbeat_interval_s)
        self.restarts += 1
        self._on_event("serve.worker_restarts")

    def run_find(self, record: JobRecord, task: dict):
        """Execute one ``slice_line`` call on this dispatcher's worker.

        Blocks until the child returns a result, forwards suspend
        requests from the parent-side :class:`SuspendHook` into the
        child, and raises :class:`WorkerCrash` when the child dies or
        misses its heartbeat deadline.  Called from the service's execute
        callback on a dispatcher thread.
        """
        slot = getattr(self._local, "slot", None)
        if slot is None:
            raise ServeError(
                "run_find must be called from a dispatcher thread"
            )
        if slot.retired or not slot.alive:
            raise WorkerCrash(
                f"worker {slot.index} is not available", kind="exit"
            )
        slot.task_q.put(("run", record.job_id, task))
        sent_at = time.monotonic()
        suspend_sent = False
        while True:
            try:
                kind, job_id, payload = slot.result_q.get(timeout=0.1)
            except Exception:  # noqa: BLE001 — queue.Empty from mp.Queue
                self._check_worker(slot, record, sent_at)
                if record.suspend.requested and not suspend_sent:
                    slot.control_q.put(("suspend", record.job_id))
                    suspend_sent = True
                continue
            if job_id != record.job_id:
                # A reply from a job whose parent already gave up on this
                # slot (cannot happen with one dispatcher per slot, but
                # cheap to be safe about).
                continue
            slot.consecutive_crashes = 0
            if kind == "ok":
                return payload
            raise ServeError(payload)

    def _check_worker(
        self, slot: _WorkerSlot, record: JobRecord, sent_at: float
    ) -> None:
        if not slot.alive:
            exitcode = slot.process.exitcode
            self.crashes += 1
            self._on_event("serve.worker_crashes")
            kind = (
                "sigkill"
                if exitcode == -int(signal.SIGKILL)
                else "exit"
            )
            raise WorkerCrash(
                f"worker {slot.index} died with exit code {exitcode} while "
                f"executing {record.job_id!r}",
                kind=kind,
            )
        age = slot.heartbeat_age()
        if age is None:
            # No heartbeat from this pid yet: a child stopped (or hung)
            # during interpreter boot never writes one, so the deadline
            # falls back to time since the task was dispatched.
            age = time.monotonic() - sent_at
        if age > self.heartbeat_timeout_s:
            slot.kill()
            self.crashes += 1
            self._on_event("serve.worker_crashes")
            raise WorkerCrash(
                f"worker {slot.index} missed its heartbeat deadline "
                f"({age:.1f}s > {self.heartbeat_timeout_s}s) while "
                f"executing {record.job_id!r}; killed",
                kind="heartbeat",
            )

    # -- introspection / preemption (Scheduler-compatible) -------------------

    def executing(self) -> list[JobRecord]:
        with self._lock:
            return list(self._executing.values())

    def worker_stats(self) -> list[dict]:
        out = []
        for slot in self._slots:
            out.append(
                {
                    "worker": slot.index,
                    "alive": slot.alive,
                    "retired": slot.retired,
                    "pid": slot.process.pid if slot.process else None,
                    "consecutive_crashes": slot.consecutive_crashes,
                }
            )
        return out

    def maybe_preempt(self, incoming: JobRecord) -> JobRecord | None:
        """Same contract as :meth:`Scheduler.maybe_preempt`."""
        if not self.preemption or not incoming.spec.interactive:
            return None
        if not self.queue.has_free_slot(incoming.spec.tenant):
            return None
        with self._lock:
            if len(self._executing) < self.num_workers:
                return None
            victims = [
                record
                for record in self._executing.values()
                if record.spec.kind == "find"
                and not record.spec.interactive
                and not record.suspend.requested
            ]
            if not victims:
                return None
            victim = max(victims, key=lambda r: r.started_at or 0.0)
            victim.suspend.request()
            return victim


__all__ = [
    "ProcessWorkerSupervisor",
    "WorkerCrash",
    "read_heartbeat",
    "worker_main",
]
