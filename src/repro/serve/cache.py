"""Fingerprint-keyed result cache with same-data warm-start lookup.

An exact hit — same data fingerprint *and* same result-affecting config —
returns the cached :class:`~repro.core.types.SliceLineResult` outright:
the enumeration is deterministic, so re-running it could only reproduce
the same answer.  A miss whose *data* digest matches an earlier entry is
still worth something: the cached top-K becomes ``seed_slices`` for the
new run, which raises the score-pruning threshold early and (by the
exactness of Equation-3 pruning) returns the identical top-K with less
enumeration work.

Only completed, unsuspended results are cached; a partial (budget-tripped)
top-K is correct but not the full lattice's answer, so serving it for a
different submission would be wrong.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.types import Slice, SliceLineResult
from repro.exceptions import ConfigError


@dataclass
class CacheEntry:
    fingerprint: str
    data_digest: str
    result: SliceLineResult


class ResultCache:
    """Bounded LRU cache of completed runs, keyed by job fingerprint."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ConfigError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, fingerprint: str) -> SliceLineResult | None:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            return entry.result

    def put(
        self, fingerprint: str, data_digest: str, result: SliceLineResult
    ) -> bool:
        """Cache *result*; refuses partial (incomplete/suspended) runs."""
        if not result.completed or result.suspended:
            return False
        with self._lock:
            self._entries[fingerprint] = CacheEntry(
                fingerprint=fingerprint,
                data_digest=data_digest,
                result=result,
            )
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            return True

    def warm_seeds(self, data_digest: str) -> list[Slice]:
        """Top-K of the most recently used entry over the same data.

        Empty when no same-data entry exists.  Does not count as a hit or
        miss — the caller is about to run the enumeration either way.
        """
        with self._lock:
            for entry in reversed(self._entries.values()):
                if entry.data_digest == data_digest:
                    return list(entry.result.top_slices)
            return []

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
            }


__all__ = ["CacheEntry", "ResultCache"]
