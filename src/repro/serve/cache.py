"""Fingerprint-keyed result cache with same-data warm-start lookup.

An exact hit — same data fingerprint *and* same result-affecting config —
returns the cached :class:`~repro.core.types.SliceLineResult` outright:
the enumeration is deterministic, so re-running it could only reproduce
the same answer.  A miss whose *data* digest matches an earlier entry is
still worth something: the cached top-K becomes ``seed_slices`` for the
new run, which raises the score-pruning threshold early and (by the
exactness of Equation-3 pruning) returns the identical top-K with less
enumeration work.

Only completed, unsuspended results are cached; a partial (budget-tripped)
top-K is correct but not the full lattice's answer, so serving it for a
different submission would be wrong.

Eviction is *size-aware*: every entry is accounted at its serialized byte
size (the exact bytes :func:`encode_result` produces — also what the
durable subclass writes to disk), and ``max_bytes`` bounds the cache's
total footprint in addition to the ``capacity`` entry bound.  The byte
encoding (``repro.cache/v1``, an ``.npz`` with a JSON meta record and the
top-K arrays) round-trips the result's top-K bitwise:
``top_slices_encoded`` and ``top_stats`` are stored as raw arrays, and
per-slice floats survive JSON because Python serializes doubles at
shortest-round-trip precision.
"""

from __future__ import annotations

import dataclasses
import io
import json
import threading
import zipfile
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.types import Slice, SliceLineResult, WarmStartInfo
from repro.exceptions import ConfigError, ServeError
from repro.obs.counters import CounterRegistry, LevelCounters

#: Version tag of the serialized cache-entry format.
CACHE_SCHEMA = "repro.cache/v1"

_COUNTER_FIELDS = frozenset(f.name for f in dataclasses.fields(LevelCounters))


def encode_result(
    fingerprint: str, data_digest: str, result: SliceLineResult
) -> bytes:
    """Serialize one cache entry to its ``repro.cache/v1`` byte form.

    The same bytes serve two purposes: size accounting for eviction and
    the on-disk spill file of :class:`~repro.serve.durability.
    DurableResultCache`.  The tracer and the live counter registry are not
    persisted (a decoded result rebuilds its registry from the per-level
    records); everything bitwise-relevant — ``top_slices_encoded``,
    ``top_stats``, per-slice statistics — round-trips exactly.
    """
    meta = {
        "schema": CACHE_SCHEMA,
        "fingerprint": fingerprint,
        "data_digest": data_digest,
        "completed": bool(result.completed),
        "total_seconds": float(result.total_seconds),
        "num_rows": int(result.num_rows),
        "num_features": int(result.num_features),
        "num_onehot_columns": int(result.num_onehot_columns),
        "average_error": float(result.average_error),
        "slices": [
            {
                "predicates": {
                    str(f): int(v) for f, v in s.predicates.items()
                },
                "score": float(s.score),
                "error": float(s.error),
                "max_error": float(s.max_error),
                "size": int(s.size),
            }
            for s in result.top_slices
        ],
        "level_stats": [
            dataclasses.asdict(stats) for stats in result.level_stats
        ],
        "events": (
            dict(result.counters.events) if result.counters is not None else {}
        ),
        "warm_start": (
            dataclasses.asdict(result.warm_start)
            if result.warm_start is not None
            else None
        ),
    }
    buffer = io.BytesIO()
    np.savez(
        buffer,
        meta=np.frombuffer(
            json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8
        ),
        top_slices_encoded=np.asarray(
            result.top_slices_encoded, dtype=np.int64
        ),
        top_stats=np.asarray(result.top_stats, dtype=np.float64),
    )
    return buffer.getvalue()


def decode_result(data: bytes) -> tuple[str, str, SliceLineResult]:
    """Inverse of :func:`encode_result`.

    Returns ``(fingerprint, data_digest, result)``; raises
    :class:`~repro.exceptions.ServeError` on any malformed payload (bad
    zip, bad JSON, wrong schema, missing arrays) so callers can quarantine
    a corrupt spill file with a typed reason instead of crashing.
    """
    try:
        arrays = np.load(io.BytesIO(data), allow_pickle=False)
        meta = json.loads(bytes(arrays["meta"]).decode())
        encoded = np.asarray(arrays["top_slices_encoded"], dtype=np.int64)
        top_stats = np.asarray(arrays["top_stats"], dtype=np.float64)
    except (
        OSError,
        ValueError,
        KeyError,
        UnicodeDecodeError,
        json.JSONDecodeError,
        zipfile.BadZipFile,
    ) as exc:
        raise ServeError(f"undecodable cache entry: {exc}") from exc
    if not isinstance(meta, dict) or meta.get("schema") != CACHE_SCHEMA:
        raise ServeError(
            f"cache entry has schema {meta.get('schema')!r} "
            f"(expected {CACHE_SCHEMA!r})"
        )
    try:
        slices = [
            Slice(
                predicates={
                    int(f): int(v) for f, v in entry["predicates"].items()
                },
                score=float(entry["score"]),
                error=float(entry["error"]),
                max_error=float(entry["max_error"]),
                size=int(entry["size"]),
            )
            for entry in meta["slices"]
        ]
        level_stats = [
            LevelCounters(
                **{
                    k: v
                    for k, v in record.items()
                    if k in _COUNTER_FIELDS
                }
            )
            for record in meta["level_stats"]
        ]
        registry = CounterRegistry()
        for stats in level_stats:
            target = registry.level(stats.level)
            for name in _COUNTER_FIELDS:
                if name != "level":
                    setattr(target, name, getattr(stats, name))
        for name, count in meta.get("events", {}).items():
            registry.event(name, int(count))
        warm = meta.get("warm_start")
        result = SliceLineResult(
            top_slices=slices,
            top_slices_encoded=encoded,
            top_stats=top_stats,
            level_stats=level_stats,
            total_seconds=float(meta["total_seconds"]),
            num_rows=int(meta["num_rows"]),
            num_features=int(meta["num_features"]),
            num_onehot_columns=int(meta["num_onehot_columns"]),
            average_error=float(meta["average_error"]),
            counters=registry,
            warm_start=WarmStartInfo(**warm) if warm is not None else None,
            completed=bool(meta["completed"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ServeError(f"malformed cache entry: {exc}") from exc
    return str(meta["fingerprint"]), str(meta["data_digest"]), result


@dataclass
class CacheEntry:
    fingerprint: str
    data_digest: str
    result: SliceLineResult
    #: serialized size of the entry (what eviction accounts)
    nbytes: int = 0


class ResultCache:
    """Bounded LRU cache of completed runs, keyed by job fingerprint.

    Two bounds compose: ``capacity`` caps the entry count and
    ``max_bytes`` (``None`` = unbounded) caps the summed serialized size.
    Least-recently-used entries are evicted until both hold; the current
    footprint is exposed as ``stats()["bytes"]`` and surfaced by the
    service as the ``serve.cache_bytes`` gauge.
    """

    def __init__(
        self, capacity: int = 64, max_bytes: int | None = None
    ) -> None:
        if capacity < 1:
            raise ConfigError(f"cache capacity must be >= 1, got {capacity}")
        if max_bytes is not None and max_bytes < 1:
            raise ConfigError(f"max_bytes must be >= 1, got {max_bytes}")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._total_bytes = 0
        self.hits = 0
        self.misses = 0

    def get(self, fingerprint: str) -> SliceLineResult | None:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            return entry.result

    def peek(self, fingerprint: str) -> SliceLineResult | None:
        """Like :meth:`get` but counts neither a hit nor a miss.

        Recovery uses this to re-attach completed jobs to their cached
        results without skewing the hit-rate statistics.
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            return entry.result if entry is not None else None

    def put(
        self, fingerprint: str, data_digest: str, result: SliceLineResult
    ) -> bool:
        """Cache *result*; refuses partial (incomplete/suspended) runs."""
        if not result.completed or result.suspended:
            return False
        payload = encode_result(fingerprint, data_digest, result)
        with self._lock:
            self._insert_locked(
                CacheEntry(
                    fingerprint=fingerprint,
                    data_digest=data_digest,
                    result=result,
                    nbytes=len(payload),
                ),
                payload,
            )
            return True

    def _insert_locked(self, entry: CacheEntry, payload: bytes) -> None:
        previous = self._entries.pop(entry.fingerprint, None)
        if previous is not None:
            self._total_bytes -= previous.nbytes
        self._entries[entry.fingerprint] = entry
        self._total_bytes += entry.nbytes
        self._spill_locked(entry, payload)
        while len(self._entries) > self.capacity or (
            self.max_bytes is not None
            and self._total_bytes > self.max_bytes
            and len(self._entries) > 1
        ):
            victim_key, victim = self._entries.popitem(last=False)
            self._total_bytes -= victim.nbytes
            self._evict_locked(victim_key, victim)

    # -- durability hooks (no-ops for the in-memory cache) -------------------

    def _spill_locked(self, entry: CacheEntry, payload: bytes) -> None:
        """Persist *entry* (payload = its encoded bytes)."""

    def _evict_locked(self, fingerprint: str, entry: CacheEntry) -> None:
        """Forget any persistent copy of an evicted entry."""

    def warm_seeds(self, data_digest: str) -> list[Slice]:
        """Top-K of the most recently used entry over the same data.

        Empty when no same-data entry exists.  Does not count as a hit or
        miss — the caller is about to run the enumeration either way.
        """
        with self._lock:
            for entry in reversed(self._entries.values()):
                if entry.data_digest == data_digest:
                    return list(entry.result.top_slices)
            return []

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._total_bytes

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "bytes": self._total_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
            }


__all__ = [
    "CACHE_SCHEMA",
    "CacheEntry",
    "ResultCache",
    "decode_result",
    "encode_result",
]
