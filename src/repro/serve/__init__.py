"""Multi-tenant slice-finding job service.

The serving layer turns the one-shot :func:`repro.core.slice_line` call
(and the streaming :class:`~repro.streaming.SliceMonitor`) into a
concurrent, multi-tenant control plane:

- :class:`JobSpec`/:class:`JobRecord` — declarative job description and
  its lifecycle record, identified by a deterministic fingerprint over
  the data and result-affecting config;
- :class:`TenantQuota`/:class:`JobQueue` — admission control (typed
  reject/queue decisions) and fair-share ordering across tenants;
- :class:`ResultCache` — fingerprint-keyed cache: exact hits skip
  enumeration entirely, same-data misses warm-start from the cached
  top-K (identical results, less work);
- :class:`Scheduler` — worker pool with checkpoint-backed preemption:
  interactive jobs can suspend a running batch job at a level boundary,
  which later resumes bitwise-identically;
- :class:`SliceService` — the submit/status/result/cancel façade, also
  behind ``python -m repro serve`` with skll-style declarative job files.
"""

from repro.serve.cache import ResultCache
from repro.serve.declarative import (
    load_job_dir,
    load_job_document,
    load_job_file,
    spec_from_dict,
)
from repro.serve.queue import AdmissionDecision, JobQueue, TenantQuota
from repro.serve.scheduler import Scheduler
from repro.serve.service import SERVE_SCHEMA, SliceService
from repro.serve.spec import JobRecord, JobSpec, JobState

__all__ = [
    "AdmissionDecision",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "JobState",
    "ResultCache",
    "SERVE_SCHEMA",
    "Scheduler",
    "SliceService",
    "TenantQuota",
    "load_job_dir",
    "load_job_document",
    "load_job_file",
    "spec_from_dict",
]
