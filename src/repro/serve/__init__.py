"""Multi-tenant slice-finding job service.

The serving layer turns the one-shot :func:`repro.core.slice_line` call
(and the streaming :class:`~repro.streaming.SliceMonitor`) into a
concurrent, multi-tenant control plane:

- :class:`JobSpec`/:class:`JobRecord` — declarative job description and
  its lifecycle record, identified by a deterministic fingerprint over
  the data and result-affecting config;
- :class:`TenantQuota`/:class:`JobQueue` — admission control (typed
  reject/queue decisions) and fair-share ordering across tenants;
- :class:`ResultCache` — fingerprint-keyed cache (entry- and byte-bound
  LRU): exact hits skip enumeration entirely, same-data misses
  warm-start from the cached top-K (identical results, less work);
- :class:`Scheduler` — worker pool with checkpoint-backed preemption:
  interactive jobs can suspend a running batch job at a level boundary,
  which later resumes bitwise-identically;
- :class:`JobJournal`/:class:`DurableResultCache` — the ``repro.wal/v1``
  write-ahead job journal and the disk-backed cache behind
  ``SliceService(state_dir=...)``: a killed service recovers its job
  table, completed results, and in-flight progress on construction;
- :class:`ProcessWorkerSupervisor` — supervised spawned worker
  processes (``worker_mode="process"``): a SIGKILL'd worker costs one
  orphan-requeue, not the service;
- :class:`SliceService` — the submit/status/result/cancel façade, also
  behind ``python -m repro serve`` with skll-style declarative job files.
"""

from repro.serve.cache import ResultCache, decode_result, encode_result
from repro.serve.declarative import (
    load_job_dir,
    load_job_document,
    load_job_file,
    spec_from_dict,
    spec_to_dict,
)
from repro.serve.durability import (
    WAL_RECORD_TYPES,
    WAL_SCHEMA,
    DurableResultCache,
    JobJournal,
    WalQuarantine,
    frame_record,
    scan_wal,
)
from repro.serve.queue import AdmissionDecision, JobQueue, TenantQuota
from repro.serve.scheduler import Scheduler
from repro.serve.service import SERVE_SCHEMA, SliceService
from repro.serve.spec import JobRecord, JobSpec, JobState
from repro.serve.workers import ProcessWorkerSupervisor, WorkerCrash

__all__ = [
    "AdmissionDecision",
    "DurableResultCache",
    "JobJournal",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "JobState",
    "ProcessWorkerSupervisor",
    "ResultCache",
    "SERVE_SCHEMA",
    "Scheduler",
    "SliceService",
    "TenantQuota",
    "WAL_RECORD_TYPES",
    "WAL_SCHEMA",
    "WalQuarantine",
    "WorkerCrash",
    "decode_result",
    "encode_result",
    "frame_record",
    "load_job_dir",
    "load_job_document",
    "load_job_file",
    "scan_wal",
    "spec_from_dict",
    "spec_to_dict",
]
