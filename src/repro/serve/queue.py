"""Admission control and fair-share job ordering.

:class:`TenantQuota` is the per-tenant contract: how many jobs may run at
once, how deep the tenant's backlog may grow, the tenant's fair-share
weight, and an optional :class:`~repro.resilience.BudgetConfig` every job
of the tenant is clamped to (tightest-wins against the job's own budgets).

:class:`JobQueue` enforces it.  ``admit`` either queues a job or rejects it
with a typed :class:`AdmissionDecision`; ``take`` hands workers the next
job under fair-share ordering: interactive jobs first, then the eligible
tenant with the fewest running jobs per unit weight, ties broken by
historical service received (so a quiet tenant is served before a noisy
one) and finally by tenant name for determinism.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.exceptions import ConfigError
from repro.resilience.budgets import BudgetConfig
from repro.serve.spec import JobRecord


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission and scheduling contract."""

    max_running: int = 2
    max_queued: int = 64
    weight: float = 1.0
    budgets: BudgetConfig | None = None

    def __post_init__(self) -> None:
        if self.max_running < 1:
            raise ConfigError(f"max_running must be >= 1, got {self.max_running}")
        if self.max_queued < 0:
            raise ConfigError(f"max_queued must be >= 0, got {self.max_queued}")
        if self.weight <= 0:
            raise ConfigError(f"weight must be > 0, got {self.weight}")

    def to_dict(self) -> dict:
        return {
            "max_running": self.max_running,
            "max_queued": self.max_queued,
            "weight": self.weight,
            "budgets": (
                {
                    "deadline_s": self.budgets.deadline_s,
                    "max_candidates_per_level": (
                        self.budgets.max_candidates_per_level
                    ),
                    "max_memory_bytes": self.budgets.max_memory_bytes,
                }
                if self.budgets is not None
                else None
            ),
        }


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of admission control, with a machine-readable reason.

    ``reason`` vocabulary: ``"queued"`` (admitted, a slot is or will become
    available), ``"queued-over-quota"`` (admitted but the tenant is at its
    running limit — the job waits for a slot), ``"queue-full"`` (rejected:
    backlog at ``max_queued``), ``"service-shutdown"`` (rejected).
    """

    admitted: bool
    reason: str
    detail: str = ""


class JobQueue:
    """Thread-safe per-tenant pending queues with fair-share ``take``.

    The queue only orders and gates; it never runs anything.  Slot
    accounting: ``take`` acquires a tenant slot, ``release`` returns it
    (job finished in any way), ``requeue`` returns it *and* parks the job
    back at the *front* of its tenant's backlog (a suspended job resumes
    before the tenant's newer submissions).
    """

    def __init__(self, quota_for) -> None:
        #: callable ``tenant -> TenantQuota`` (the service owns the table)
        self._quota_for = quota_for
        self._cond = threading.Condition()
        self._pending: dict[str, deque[JobRecord]] = {}
        self._running: dict[str, int] = {}
        self._served: dict[str, int] = {}
        self._closed = False

    def admit(
        self, record: JobRecord, quota: TenantQuota, front: bool = False
    ) -> AdmissionDecision:
        """Queue *record* (or reject it with a typed decision).

        ``front=True`` parks the job at the head of its tenant's backlog —
        used by journal recovery to put orphaned (previously dispatched or
        suspended) jobs back in line before anything newer.
        """
        tenant = record.spec.tenant
        with self._cond:
            if self._closed:
                return AdmissionDecision(
                    False, "service-shutdown", "the service is shutting down"
                )
            backlog = self._pending.setdefault(tenant, deque())
            if len(backlog) >= quota.max_queued:
                return AdmissionDecision(
                    False,
                    "queue-full",
                    f"tenant {tenant!r} already has {len(backlog)} queued "
                    f"job(s) (max_queued={quota.max_queued})",
                )
            if front:
                backlog.appendleft(record)
            else:
                backlog.append(record)
            running = self._running.get(tenant, 0)
            self._cond.notify()
            if running >= quota.max_running:
                return AdmissionDecision(
                    True,
                    "queued-over-quota",
                    f"tenant {tenant!r} has {running} running job(s) "
                    f"(max_running={quota.max_running}); queued until a "
                    "slot frees",
                )
            return AdmissionDecision(True, "queued", "")

    def take(self, timeout: float | None = None) -> JobRecord | None:
        """Next job under fair-share ordering; ``None`` on timeout/close."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if self._closed:
                    return None
                choice = self._pick_locked()
                if choice is not None:
                    tenant, index = choice
                    backlog = self._pending[tenant]
                    record = backlog[index]
                    del backlog[index]
                    self._running[tenant] = self._running.get(tenant, 0) + 1
                    if not record.dispatched:
                        # Historical service counts a job once; re-takes of
                        # a preempted job must not skew the fair-share
                        # tie-break against preemption victims.
                        record.dispatched = True
                        self._served[tenant] = self._served.get(tenant, 0) + 1
                    return record
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cond.wait(remaining)
                else:
                    self._cond.wait()

    def _pick_locked(self) -> tuple[str, int] | None:
        """The eligible tenant and backlog index of the job to run next.

        Interactive jobs are served first even when queued behind a batch
        job of the same tenant, so the candidate per tenant is its first
        interactive job when it has one, its head job otherwise.
        """
        best = None
        best_key = None
        for tenant, backlog in self._pending.items():
            if not backlog:
                continue
            quota = self._quota_for(tenant)
            running = self._running.get(tenant, 0)
            if running >= quota.max_running:
                continue
            index = next(
                (
                    i
                    for i, job in enumerate(backlog)
                    if job.spec.interactive
                ),
                0,
            )
            key = (
                0 if backlog[index].spec.interactive else 1,
                running / quota.weight,
                self._served.get(tenant, 0) / quota.weight,
                tenant,
            )
            if best_key is None or key < best_key:
                best, best_key = (tenant, index), key
        return best

    def requeue(self, record: JobRecord) -> None:
        """Park a suspended job at the front of its tenant's backlog."""
        tenant = record.spec.tenant
        with self._cond:
            self._pending.setdefault(tenant, deque()).appendleft(record)
            self._running[tenant] = max(0, self._running.get(tenant, 0) - 1)
            self._cond.notify()

    def release(self, record: JobRecord) -> None:
        """Return the tenant slot of a job that left execution for good."""
        tenant = record.spec.tenant
        with self._cond:
            self._running[tenant] = max(0, self._running.get(tenant, 0) - 1)
            self._cond.notify()

    def remove(self, record: JobRecord) -> bool:
        """Withdraw a queued job (cancellation); False when not queued."""
        with self._cond:
            backlog = self._pending.get(record.spec.tenant)
            if backlog is None:
                return False
            try:
                backlog.remove(record)
            except ValueError:
                return False
            return True

    def has_free_slot(self, tenant: str) -> bool:
        """True when *tenant* is below its ``max_running`` limit."""
        with self._cond:
            quota = self._quota_for(tenant)
            return self._running.get(tenant, 0) < quota.max_running

    def depth(self) -> int:
        with self._cond:
            return sum(len(backlog) for backlog in self._pending.values())

    def running_count(self) -> int:
        with self._cond:
            return sum(self._running.values())

    def tenant_stats(self) -> dict[str, dict]:
        with self._cond:
            tenants = (
                set(self._pending) | set(self._running) | set(self._served)
            )
            return {
                tenant: {
                    "queued": len(self._pending.get(tenant, ())),
                    "running": self._running.get(tenant, 0),
                    "served": self._served.get(tenant, 0),
                }
                for tenant in sorted(tenants)
            }

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()


__all__ = ["AdmissionDecision", "JobQueue", "TenantQuota"]
