"""The multi-tenant slice-finding service façade.

:class:`SliceService` composes the serving subsystem: admission control
and fair-share ordering (:mod:`repro.serve.queue`), a worker pool with
checkpoint-backed preemption (:mod:`repro.serve.scheduler`), a
fingerprint-keyed result cache (:mod:`repro.serve.cache`), and the
existing resilience/streaming/obs layers behind a submit/status/result/
cancel API.

Correctness invariants the tests enforce:

- an exact-fingerprint resubmission is served from cache with **zero**
  enumeration (no ``level{L}.evaluate`` spans on its per-job trace);
- a same-data/different-config miss is warm-started from the cached
  top-K and still returns a top-K bitwise-identical to a cold run
  (Equation-3 pruning is exact);
- a suspended-then-resumed job completes bitwise-identically to an
  uninterrupted run (suspension lands on a level boundary, exactly the
  state ``repro.ckpt/v1`` persists).

Thread model: all job-state transitions happen under the service lock;
the enumeration itself runs outside it.  Each job gets its own tracer
(when tracing is on) touched by exactly one thread at a time — the
submitting thread closes its spans before the job is enqueued, and a
worker owns the tracer for the duration of an execution attempt.

Durability (``state_dir=...``): every job-lifecycle transition is written
ahead to a ``repro.wal/v1`` journal (:mod:`repro.serve.durability`) and
every cacheable result spills to disk, so a service constructed over the
same ``state_dir`` after a crash recovers: completed jobs are cache hits
again, in-flight jobs re-admit at the front of their tenant's backlog and
resume bitwise-identically from their last ``repro.ckpt/v1`` checkpoint.

Process isolation (``worker_mode="process"``): the heavy ``slice_line``
call of a find job runs in a supervised spawned worker
(:mod:`repro.serve.workers`); a SIGKILL'd or hung worker raises
:class:`~repro.serve.workers.WorkerCrash` into :meth:`_execute`, which
requeues the orphaned job at the front (bounded by ``max_job_crashes``)
instead of failing it.
"""

from __future__ import annotations

import io
import os
import re
import tempfile
import threading
import time

import numpy as np

from repro.core.algorithm import slice_line
from repro.exceptions import ConfigError, ServeError
from repro.obs.counters import CounterRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.resilience.atomic import atomic_write_bytes
from repro.resilience.checkpoint import (
    fingerprint_config,
    fingerprint_digest,
    fingerprint_inputs,
    latest_checkpoint,
)
from repro.serve.cache import ResultCache
from repro.serve.declarative import spec_from_dict, spec_to_dict
from repro.serve.durability import DurableResultCache, JobJournal
from repro.serve.queue import JobQueue, TenantQuota
from repro.serve.scheduler import Scheduler
from repro.serve.spec import JobRecord, JobSpec, JobState
from repro.serve.workers import ProcessWorkerSupervisor, WorkerCrash

#: Version tag of the service status document.
SERVE_SCHEMA = "repro.serve/v1"

_JOB_ID_SANITIZE = re.compile(r"[^A-Za-z0-9._-]+")

#: Terminal job state -> WAL record type written by ``_finish_locked``.
_TERMINAL_WAL = {
    JobState.COMPLETED: "complete",
    JobState.FAILED: "fail",
    JobState.CANCELLED: "cancel",
    JobState.REJECTED: "reject",
}


class SliceService:
    """Submit/status/result/cancel façade over the serving subsystem.

    Parameters
    ----------
    quotas:
        Per-tenant :class:`TenantQuota` table; tenants not listed fall
        back to *default_quota*.
    default_quota:
        Quota for unlisted tenants (default: 2 running / 64 queued).
    num_workers:
        Worker-thread pool width.
    cache_entries:
        Capacity of the fingerprint-keyed result cache.
    workdir:
        Directory for per-job checkpoint trees (a temporary directory is
        created when omitted); suspended jobs resume from here.
    trace:
        When true, every job gets its own :class:`~repro.obs.Tracer`
        recording ``serve.*`` spans around the inner run's span tree.
    preemption:
        Allow interactive submissions to suspend running batch jobs.
    start:
        Start the worker pool immediately (pass ``False`` to stage
        submissions first — used by tests to make races deterministic).
    state_dir:
        Root of the durable state layout (``wal/journal.wal``, ``cache/``,
        ``jobs/``, ``workers/``).  When set, the service journals every
        job transition, spills cache entries to disk, and **recovers** the
        pre-crash job table from whatever the directory holds.
    worker_mode:
        ``"thread"`` (default: the in-process :class:`Scheduler`) or
        ``"process"`` (a :class:`ProcessWorkerSupervisor` running find
        jobs in supervised spawned workers).
    cache_bytes:
        Optional byte bound on the result cache (size-aware eviction of
        the serialized entries, on top of the entry-count capacity).
    wal_fsync:
        fsync journal appends and cache spills (disable only in tests
        that don't measure crash safety).
    max_job_crashes:
        Worker crashes one job survives before it is failed with reason
        ``"worker-crash"``.
    """

    def __init__(
        self,
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota | None = None,
        num_workers: int = 2,
        cache_entries: int = 64,
        workdir: str | None = None,
        trace: bool = False,
        preemption: bool = True,
        start: bool = True,
        state_dir: str | None = None,
        worker_mode: str = "thread",
        cache_bytes: int | None = None,
        wal_fsync: bool = True,
        heartbeat_timeout_s: float = 30.0,
        restart_policy=None,
        max_job_crashes: int = 3,
    ) -> None:
        if worker_mode not in ("thread", "process"):
            raise ConfigError(
                f'worker_mode must be "thread" or "process", got '
                f"{worker_mode!r}"
            )
        self._lock = threading.RLock()
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota or TenantQuota()
        self.trace = trace
        self.state_dir = state_dir
        self.worker_mode = worker_mode
        self._max_job_crashes = max_job_crashes
        self.registry = CounterRegistry()
        self.queue = JobQueue(self.quota_for)
        self.journal: JobJournal | None = None
        #: jobs the journal held but recovery could not rebuild
        self.recovery_errors: list[dict] = []
        self._recovering = False
        if state_dir is not None:
            os.makedirs(state_dir, exist_ok=True)
            if workdir is None:
                workdir = os.path.join(state_dir, "jobs")
            self.cache = DurableResultCache(
                cache_entries,
                cache_bytes,
                directory=os.path.join(state_dir, "cache"),
                fsync=wal_fsync,
            )
        else:
            self.cache = ResultCache(cache_entries, cache_bytes)
        if workdir is None:
            workdir = tempfile.mkdtemp(prefix="repro-serve-")
        self.workdir = workdir
        os.makedirs(self.workdir, exist_ok=True)
        if worker_mode == "process":
            self.scheduler = ProcessWorkerSupervisor(
                self.queue,
                self._execute,
                num_workers,
                preemption,
                run_dir=(
                    os.path.join(state_dir, "workers")
                    if state_dir is not None
                    else None
                ),
                heartbeat_timeout_s=heartbeat_timeout_s,
                restart_policy=restart_policy,
                on_event=self.registry.event,
            )
        else:
            self.scheduler = Scheduler(
                self.queue, self._execute, num_workers, preemption
            )
        self.jobs: dict[str, JobRecord] = {}
        self._order: list[str] = []
        #: fingerprint -> origin record currently pending/running/suspended
        self._inflight: dict[str, JobRecord] = {}
        #: fingerprint -> duplicate submissions waiting on the origin
        self._waiters: dict[str, list[JobRecord]] = {}
        #: fingerprint -> submission count (disambiguates job ids)
        self._submissions: dict[str, int] = {}
        if state_dir is not None:
            self.journal = JobJournal(
                os.path.join(state_dir, "wal", "journal.wal"),
                fsync=wal_fsync,
            )
            with self._lock:
                self._recover_locked()
                self._refresh_gauges_locked()
        if start:
            self.start()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self.scheduler.start()

    def shutdown(self, wait: bool = True) -> None:
        self.scheduler.shutdown(wait=wait)
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "SliceService":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    # -- submission ----------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Admit one job; returns its record immediately (never blocks).

        The record's terminal state may already be set on return: an
        exact-fingerprint cache hit completes synchronously, and an
        over-backlog submission is rejected with a typed reason.
        """
        x0, errors = spec.resolve_data()
        data_fp = fingerprint_inputs(x0, errors)
        config_fp = fingerprint_config(spec.config)
        data_digest = fingerprint_digest(data_fp)
        if spec.kind == "monitor":
            fingerprint = fingerprint_digest(
                data_fp, config_fp, spec.monitor_fingerprint()
            )
        else:
            fingerprint = fingerprint_digest(data_fp, config_fp)

        with self._lock:
            serial = self._submissions.get(fingerprint, 0)
            self._submissions[fingerprint] = serial + 1
            job_id = (
                f"{spec.tenant}/{spec.kind}-{fingerprint[:12]}-{serial}"
            )
            record = JobRecord(
                job_id=job_id,
                spec=spec,
                fingerprint=fingerprint,
                data_digest=data_digest,
                submitted_at=time.time(),
                tracer=Tracer() if self.trace else NULL_TRACER,
                x0=x0,
                errors=errors,
            )
            self.jobs[job_id] = record
            self._order.append(job_id)
            self.registry.event("serve.submitted")
            quota = self.quota_for(spec.tenant)
            if quota.budgets is not None:
                record.effective_budgets = quota.budgets.merged(spec.budgets)
            else:
                record.effective_budgets = spec.budgets
            self._journal_submit_locked(record, serial)

            if spec.kind == "find":
                cached = self.cache.get(fingerprint)
                if cached is not None:
                    with record.tracer.span(
                        "serve.cache_hit", fingerprint=fingerprint[:12]
                    ):
                        pass
                    self._finish_locked(
                        record, JobState.COMPLETED, result=cached,
                        cache_hit=True,
                    )
                    self.registry.event("serve.cache_hits")
                    self._refresh_gauges_locked()
                    return record
                self.registry.event("serve.cache_misses")
                origin = self._inflight.get(fingerprint)
                if origin is not None:
                    # Identical job already pending/running: ride on it
                    # instead of enumerating the same lattice twice.
                    record.coalesced = True
                    self._waiters.setdefault(fingerprint, []).append(record)
                    self._refresh_gauges_locked()
                    return record
                seeds = self.cache.warm_seeds(data_digest)
                if seeds:
                    record.warm_seeds = seeds
                    self.registry.event("serve.warm_starts")

            decision = self.queue.admit(record, quota)
            record.admission = decision
            if not decision.admitted:
                self._finish_locked(
                    record, JobState.REJECTED, reason=decision.reason
                )
                self.registry.event("serve.rejections")
                self._refresh_gauges_locked()
                return record
            if spec.kind == "find":
                self._inflight[fingerprint] = record
            self._refresh_gauges_locked()
        self.scheduler.maybe_preempt(record)
        return record

    # -- inspection ----------------------------------------------------------

    def _record(self, job_id: str) -> JobRecord:
        record = self.jobs.get(job_id)
        if record is None:
            raise ServeError(f"unknown job id {job_id!r}")
        return record

    def status(self, job_id: str) -> dict:
        with self._lock:
            return self._record(job_id).to_dict()

    def result(self, job_id: str, timeout: float | None = None):
        """Block for the job's :class:`SliceLineResult`.

        Raises :class:`~repro.exceptions.ServeError` on timeout or when
        the job ended without a result (failed/cancelled/rejected).
        """
        record = self._record(job_id)
        if not record.wait(timeout):
            raise ServeError(
                f"job {job_id!r} did not finish within {timeout}s "
                f"(state={record.state})"
            )
        if record.state != JobState.COMPLETED:
            raise ServeError(
                f"job {job_id!r} ended {record.state}"
                + (f": {record.reason}" if record.reason else "")
                + (f" ({record.error})" if record.error else "")
            )
        return record.result

    def wait(self, timeout: float | None = None) -> bool:
        """Block until every submitted job is terminal."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            records = list(self.jobs.values())
        for record in records:
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                return False
            if not record.wait(remaining):
                return False
        return True

    def stats(self) -> dict:
        with self._lock:
            out = {
                "jobs": len(self.jobs),
                "queue_depth": self.queue.depth(),
                "running": self.queue.running_count(),
                "cache": self.cache.stats(),
                "events": dict(self.registry.events),
                "gauges": dict(self.registry.gauges),
            }
            durability = self._durability_stats()
            if durability is not None:
                out["durability"] = durability
            worker_stats = getattr(self.scheduler, "worker_stats", None)
            if worker_stats is not None:
                out["workers"] = worker_stats()
            return out

    def status_document(self) -> dict:
        """The full ``repro.serve/v1`` status JSON (see EXPERIMENTS.md)."""
        with self._lock:
            document = {
                "schema": SERVE_SCHEMA,
                "generated_at": time.time(),
                "jobs": [
                    self.jobs[job_id].to_dict() for job_id in self._order
                ],
                "tenants": {
                    tenant: {
                        **stats,
                        "quota": self.quota_for(tenant).to_dict(),
                    }
                    for tenant, stats in self.queue.tenant_stats().items()
                },
                "cache": self.cache.stats(),
                "events": dict(self.registry.events),
                "gauges": dict(self.registry.gauges),
            }
            durability = self._durability_stats()
            if durability is not None:
                document["durability"] = durability
            worker_stats = getattr(self.scheduler, "worker_stats", None)
            if worker_stats is not None:
                document["workers"] = worker_stats()
            return document

    # -- control -------------------------------------------------------------

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; True when the cancellation took (or will take).

        Queued jobs are withdrawn immediately; a running job is asked to
        suspend and is cancelled when it yields at the next level
        boundary (or between monitor batches).  Terminal jobs return
        False.
        """
        with self._lock:
            record = self._record(job_id)
            if record.terminal:
                return False
            if record.coalesced and not record.terminal:
                waiters = self._waiters.get(record.fingerprint, [])
                if record in waiters:
                    waiters.remove(record)
                    self._finish_locked(
                        record, JobState.CANCELLED, reason="user-cancel"
                    )
                    self.registry.event("serve.cancellations")
                    self._refresh_gauges_locked()
                    return True
            if record.state in (JobState.PENDING, JobState.SUSPENDED):
                if self.queue.remove(record):
                    self._release_inflight_locked(record, promote=True)
                    self._finish_locked(
                        record, JobState.CANCELLED, reason="user-cancel"
                    )
                    self.registry.event("serve.cancellations")
                    self._refresh_gauges_locked()
                    return True
            # Running (or a pending record a worker is just picking up):
            # flag it; the worker finalizes the cancellation on yield.
            record.cancel_requested = True
            record.suspend.request()
            return True

    def suspend(self, job_id: str) -> bool:
        """Ask a running job to suspend at its next level boundary."""
        with self._lock:
            record = self._record(job_id)
            if record.terminal or record.spec.kind != "find":
                return False
            record.suspend.request()
            return True

    # -- execution (worker threads) ------------------------------------------

    def _execute(self, record: JobRecord) -> None:
        with self._lock:
            if record.terminal:
                return
            if record.cancel_requested:
                self.queue.release(record)
                self._release_inflight_locked(record, promote=True)
                self._finish_locked(
                    record, JobState.CANCELLED, reason="user-cancel"
                )
                self.registry.event("serve.cancellations")
                self._refresh_gauges_locked()
                return
            resuming = record.state == JobState.SUSPENDED
            record.state = JobState.RUNNING
            record.started_at = time.time()
            if resuming:
                record.resumes += 1
                self.registry.event("serve.resumes")
            self._journal_locked(record, "dispatch", resuming=resuming)
            self._refresh_gauges_locked()
        try:
            if record.spec.kind == "monitor":
                result = self._run_monitor(record)
            else:
                result = self._run_find(record)
        except WorkerCrash as exc:
            self._handle_worker_crash(record, exc)
            return
        except Exception as exc:  # noqa: BLE001 — a job must never kill a worker
            with self._lock:
                self.queue.release(record)
                self._release_inflight_locked(record, promote=True)
                self._finish_locked(
                    record,
                    JobState.FAILED,
                    reason="exception",
                    error=f"{type(exc).__name__}: {exc}",
                )
                self.registry.event("serve.failures")
                self._refresh_gauges_locked()
            return

        with self._lock:
            if result is not None and result.suspended:
                if record.cancel_requested:
                    self.queue.release(record)
                    self._release_inflight_locked(record, promote=True)
                    self._finish_locked(
                        record, JobState.CANCELLED, reason="user-cancel"
                    )
                    self.registry.event("serve.cancellations")
                else:
                    record.state = JobState.SUSPENDED
                    record.has_checkpoint = True
                    record.preemptions += 1
                    record.suspend.clear()
                    self.registry.event("serve.preemptions")
                    self._journal_locked(
                        record, "suspend", preemptions=record.preemptions
                    )
                    # Front of the backlog: the suspended job resumes
                    # before the tenant's newer submissions.
                    self.queue.requeue(record)
                self._refresh_gauges_locked()
                return
            if record.cancel_requested and record.spec.kind == "monitor":
                # The monitor loop broke between batches on the flag.
                self.queue.release(record)
                self._finish_locked(
                    record, JobState.CANCELLED, reason="user-cancel"
                )
                self.registry.event("serve.cancellations")
                self._refresh_gauges_locked()
                return
            self.queue.release(record)
            if record.spec.kind == "find":
                cacheable = result is not None and self.cache.put(
                    record.fingerprint, record.data_digest, result
                )
                if cacheable:
                    self._inflight.pop(record.fingerprint, None)
                    self._settle_waiters_locked(record.fingerprint, result)
                else:
                    # A budget-tripped partial top-K is valid for this
                    # job's own budgets, but budgets are not part of the
                    # fingerprint — a coalesced waiter with looser budgets
                    # must not inherit the truncated answer.  Promote the
                    # first waiter to re-run under its own budgets.
                    self._release_inflight_locked(record, promote=True)
            self._finish_locked(record, JobState.COMPLETED, result=result)
            self.registry.event("serve.completed")
            self._refresh_gauges_locked()

    def _run_find(self, record: JobRecord):
        spec = record.spec
        checkpoint_dir = self._checkpoint_dir(record)
        resume_from = (
            latest_checkpoint(checkpoint_dir) if record.has_checkpoint else None
        )
        with record.tracer.span(
            "serve.run",
            job_id=record.job_id,
            resumed=resume_from is not None,
            warm_seeds=len(record.warm_seeds),
        ):
            runner = getattr(self.scheduler, "run_find", None)
            if runner is not None:
                # Process mode: the enumeration crosses into the worker
                # child.  The per-job tracer stays in the parent (only
                # serve.* spans), the suspend hook is forwarded over the
                # control queue, and checkpoints land on the shared
                # filesystem either way.
                return runner(
                    record,
                    dict(
                        x0=record.x0,
                        errors=record.errors,
                        config=spec.config,
                        num_threads=spec.num_threads,
                        seed_slices=record.warm_seeds or None,
                        budgets=record.effective_budgets,
                        checkpoint_dir=checkpoint_dir,
                        resume_from=resume_from,
                    ),
                )
            return slice_line(
                record.x0,
                record.errors,
                config=spec.config,
                num_threads=spec.num_threads,
                trace=record.tracer if self.trace else None,
                seed_slices=record.warm_seeds or None,
                budgets=record.effective_budgets,
                checkpoint_dir=checkpoint_dir,
                resume_from=resume_from,
                suspend=record.suspend,
            )

    def _run_monitor(self, record: JobRecord):
        # Local imports: the streaming layer is only needed for monitor
        # jobs, and importing it lazily keeps service start-up lean.
        from repro.datasets.replay import replay_batches
        from repro.streaming.monitor import SliceMonitor

        spec = record.spec
        monitor = SliceMonitor(
            config=spec.config,
            window_size=spec.window_size if spec.policy == "sliding" else None,
            policy=spec.policy,
            warm_start=spec.warm_start,
            num_threads=spec.num_threads,
            trace=record.tracer if self.trace else None,
            budgets=record.effective_budgets,
        )
        record.monitor = monitor
        since_tick = 0
        with record.tracer.span("serve.monitor", job_id=record.job_id):
            for batch in replay_batches(
                record.x0, record.errors, spec.batch_size
            ):
                if record.suspend.requested:
                    # Monitor jobs have no checkpoint; a suspend request
                    # here is a cancellation (the only caller that sets it
                    # on a monitor job is cancel()).
                    return None
                with record.monitor_lock:
                    monitor.ingest(batch)
                since_tick += 1
                if since_tick >= spec.tick_every:
                    with record.monitor_lock:
                        monitor.tick()
                    since_tick = 0
            if since_tick > 0 and len(monitor.window) > 0:
                with record.monitor_lock:
                    monitor.tick()
        return monitor.ticks[-1].result if monitor.ticks else None

    # -- internals (call with the lock held) ---------------------------------

    def _checkpoint_dir(self, record: JobRecord) -> str:
        safe = _JOB_ID_SANITIZE.sub("_", record.job_id)
        path = os.path.join(self.workdir, safe)
        os.makedirs(path, exist_ok=True)
        return path

    def _finish_locked(
        self,
        record: JobRecord,
        state: str,
        result=None,
        reason: str = "",
        error: str | None = None,
        cache_hit: bool = False,
    ) -> None:
        record.state = state
        record.reason = reason
        if result is not None:
            record.result = result
        if error is not None:
            record.error = error
        if cache_hit:
            record.cache_hit = True
        record.finished_at = time.time()
        record.done.set()
        wal_type = _TERMINAL_WAL.get(state)
        if wal_type is not None:
            self._journal_locked(
                record,
                wal_type,
                reason=reason,
                cache_hit=record.cache_hit,
                error=record.error,
            )

    # -- durability (journal + recovery) -------------------------------------

    def _journal_locked(
        self, record: JobRecord, record_type: str, **fields
    ) -> None:
        """Append one WAL record (no-op without a journal or during replay).

        Replayed terminal transitions must not be re-journaled — the
        ``_recovering`` guard covers :meth:`_finish_locked` calls made
        while rebuilding the job table from the journal itself.
        """
        if self.journal is None or self._recovering:
            return
        try:
            self.journal.append(record_type, record.job_id, **fields)
        except (ServeError, OSError):
            # A closed journal during shutdown must not take down the
            # worker finishing its last job.
            pass

    def _journal_submit_locked(self, record: JobRecord, serial: int) -> None:
        """Write-ahead record of one submission (spec table + identity).

        Explicit-array specs spill their ``(x0, errors)`` to
        ``jobs/<id>/inputs.npz`` *before* the submit record references
        them, so a crash between the two leaves an unreferenced spill
        file, never a dangling reference.
        """
        if self.journal is None or self._recovering:
            return
        spec = record.spec
        has_inputs = spec.dataset is None
        if has_inputs:
            buffer = io.BytesIO()
            np.savez(buffer, x0=record.x0, errors=record.errors)
            atomic_write_bytes(
                os.path.join(self._checkpoint_dir(record), "inputs.npz"),
                buffer.getvalue(),
                durable=self.journal.fsync,
            )
        self._journal_locked(
            record,
            "submit",
            fingerprint=record.fingerprint,
            data_digest=record.data_digest,
            serial=serial,
            spec=spec_to_dict(spec),
            has_inputs=has_inputs,
            submitted_at=record.submitted_at,
        )

    def _handle_worker_crash(self, record: JobRecord, exc: WorkerCrash) -> None:
        """A worker process died under *record*: requeue, don't fail.

        The job goes back to the **front** of its tenant's backlog and —
        when a ``repro.ckpt/v1`` checkpoint exists — resumes from its
        last level boundary, so the eventual result is bitwise-identical
        to a fault-free run.  ``max_job_crashes`` bounds the retries: a
        job that reliably kills workers (a poison pill) is failed with
        the typed reason ``"worker-crash"``.
        """
        with self._lock:
            record.crashes += 1
            self.registry.event("serve.orphan_requeues")
            record.has_checkpoint = (
                latest_checkpoint(self._checkpoint_dir(record)) is not None
            )
            record.suspend.clear()
            if record.cancel_requested:
                self.queue.release(record)
                self._release_inflight_locked(record, promote=True)
                self._finish_locked(
                    record, JobState.CANCELLED, reason="user-cancel"
                )
                self.registry.event("serve.cancellations")
            elif record.crashes > self._max_job_crashes:
                self.queue.release(record)
                self._release_inflight_locked(record, promote=True)
                self._finish_locked(
                    record,
                    JobState.FAILED,
                    reason="worker-crash",
                    error=f"{type(exc).__name__}: {exc}",
                )
                self.registry.event("serve.failures")
            else:
                record.state = (
                    JobState.SUSPENDED
                    if record.has_checkpoint
                    else JobState.PENDING
                )
                self._journal_locked(
                    record, "suspend", crash=exc.kind, crashes=record.crashes
                )
                self.queue.requeue(record)
            self._refresh_gauges_locked()

    def _recover_locked(self) -> None:
        """Rebuild the job table from the journal (constructor only).

        Last record wins per job: a terminal record restores the terminal
        state (completed find jobs re-attach their result from the
        durable cache); a job whose last record is ``submit`` re-admits
        in submission order; one that reached ``dispatch``/``suspend``
        is an **orphan** — it re-admits at the front of its tenant's
        backlog and resumes from its checkpoint when one exists.  A job
        the journal names but recovery cannot rebuild (its dataset or
        inputs changed or vanished) lands in :attr:`recovery_errors`
        instead of aborting recovery.
        """
        by_job: dict[str, list[dict]] = {}
        for entry in self.journal.records:
            by_job.setdefault(entry["job_id"], []).append(entry)
        orphans: list[JobRecord] = []
        backlog: list[JobRecord] = []
        recovered = 0
        self._recovering = True
        try:
            for job_id, entries in by_job.items():
                submit = next(
                    (e for e in entries if e["type"] == "submit"), None
                )
                if submit is None:
                    continue
                try:
                    record = self._rebuild_record(job_id, submit)
                except Exception as exc:  # noqa: BLE001 — quarantine, don't abort
                    self.recovery_errors.append(
                        {"job_id": job_id, "error": str(exc)}
                    )
                    self.registry.event("serve.recovery_quarantined")
                    continue
                record.recovered = True
                self.jobs[job_id] = record
                self._order.append(job_id)
                serial = int(submit.get("serial", 0))
                self._submissions[record.fingerprint] = max(
                    self._submissions.get(record.fingerprint, 0), serial + 1
                )
                recovered += 1
                last = entries[-1]
                if last["type"] in (
                    "complete",
                    "cancel",
                    "fail",
                    "reject",
                ):
                    self._restore_terminal_locked(record, last)
                    continue
                record.has_checkpoint = (
                    latest_checkpoint(self._checkpoint_dir(record))
                    is not None
                )
                if record.has_checkpoint:
                    record.state = JobState.SUSPENDED
                was_dispatched = any(
                    e["type"] in ("dispatch", "suspend") for e in entries
                )
                (orphans if was_dispatched else backlog).append(record)
        finally:
            self._recovering = False
        # Re-admission runs outside the replay guard so genuinely *new*
        # transitions (a recovered pending job that is now a cache hit,
        # a rejection) are journaled like any other.
        for record in reversed(orphans):
            # reversed + front=True preserves the original relative order
            # at the head of each tenant's backlog.
            self._readmit_recovered_locked(record, front=True)
        for record in backlog:
            self._readmit_recovered_locked(record, front=False)
        if recovered:
            self.registry.event("serve.recovered_jobs", recovered)
        if orphans:
            self.registry.event("serve.recovered_orphans", len(orphans))
        if self.journal.quarantined:
            self.registry.event(
                "serve.wal_quarantined", len(self.journal.quarantined)
            )

    def _rebuild_record(self, job_id: str, submit: dict) -> JobRecord:
        """One :class:`JobRecord` from a journaled ``submit`` record."""
        table = submit.get("spec")
        if not isinstance(table, dict):
            raise ServeError(
                f"journal submit record for {job_id!r} carries no spec table"
            )
        if submit.get("has_inputs"):
            safe = _JOB_ID_SANITIZE.sub("_", job_id)
            inputs_path = os.path.join(self.workdir, safe, "inputs.npz")
            with np.load(inputs_path) as bundle:
                x0 = np.array(bundle["x0"])
                errors = np.array(bundle["errors"])
            spec = spec_from_dict(
                table, where=f"journal:{job_id}", x0=x0, errors=errors
            )
        else:
            spec = spec_from_dict(table, where=f"journal:{job_id}")
        x0, errors = spec.resolve_data()
        data_fp = fingerprint_inputs(x0, errors)
        config_fp = fingerprint_config(spec.config)
        data_digest = fingerprint_digest(data_fp)
        if spec.kind == "monitor":
            fingerprint = fingerprint_digest(
                data_fp, config_fp, spec.monitor_fingerprint()
            )
        else:
            fingerprint = fingerprint_digest(data_fp, config_fp)
        journaled = submit.get("fingerprint")
        if journaled is not None and journaled != fingerprint:
            raise ServeError(
                f"job {job_id!r} fingerprint mismatch on recovery: the "
                "data or config behind the journaled spec changed"
            )
        record = JobRecord(
            job_id=job_id,
            spec=spec,
            fingerprint=fingerprint,
            data_digest=data_digest,
            submitted_at=float(submit.get("submitted_at") or time.time()),
            tracer=Tracer() if self.trace else NULL_TRACER,
            x0=x0,
            errors=errors,
        )
        quota = self.quota_for(spec.tenant)
        if quota.budgets is not None:
            record.effective_budgets = quota.budgets.merged(spec.budgets)
        else:
            record.effective_budgets = spec.budgets
        return record

    def _restore_terminal_locked(self, record: JobRecord, last: dict) -> None:
        """Replay one journaled terminal transition onto *record*."""
        reason = last.get("reason") or "recovered"
        if last["type"] == "complete":
            result = (
                self.cache.peek(record.fingerprint)
                if record.spec.kind == "find"
                else None
            )
            # Monitor results are not durable (their value is the live
            # monitor object); the completed state survives, the result
            # does not — documented in EXPERIMENTS.md.
            self._finish_locked(
                record,
                JobState.COMPLETED,
                result=result,
                cache_hit=bool(last.get("cache_hit")),
                reason="recovered",
            )
        elif last["type"] == "cancel":
            self._finish_locked(record, JobState.CANCELLED, reason=reason)
        elif last["type"] == "fail":
            self._finish_locked(
                record,
                JobState.FAILED,
                reason=reason,
                error=last.get("error"),
            )
        else:
            self._finish_locked(record, JobState.REJECTED, reason=reason)

    def _readmit_recovered_locked(
        self, record: JobRecord, front: bool
    ) -> None:
        """Put one recovered non-terminal job back in line.

        A find job whose fingerprint is now in the durable cache (its
        origin completed before the crash, e.g. a coalesced duplicate
        whose settlement record was lost) completes as a cache hit with
        zero enumeration.  Recovered jobs take no warm seeds — an orphan
        must resume from its checkpoint exactly as the pre-crash run
        would have continued.
        """
        spec = record.spec
        quota = self.quota_for(spec.tenant)
        if spec.kind == "find":
            cached = self.cache.get(record.fingerprint)
            if cached is not None:
                self._finish_locked(
                    record,
                    JobState.COMPLETED,
                    result=cached,
                    cache_hit=True,
                )
                self.registry.event("serve.cache_hits")
                return
            self.registry.event("serve.cache_misses")
            origin = self._inflight.get(record.fingerprint)
            if origin is not None:
                record.coalesced = True
                self._waiters.setdefault(record.fingerprint, []).append(
                    record
                )
                return
        decision = self.queue.admit(record, quota, front=front)
        record.admission = decision
        if not decision.admitted:
            self._finish_locked(
                record, JobState.REJECTED, reason=decision.reason
            )
            self.registry.event("serve.rejections")
            return
        if spec.kind == "find":
            self._inflight[record.fingerprint] = record

    def _durability_stats(self) -> dict | None:
        if self.state_dir is None:
            return None
        out: dict = {
            "state_dir": self.state_dir,
            "wal_replayed": len(self.journal.records),
            "wal_quarantined": [
                q.to_dict() for q in self.journal.quarantined
            ],
            "cache_quarantined": [
                q.to_dict()
                for q in getattr(self.cache, "quarantined", ())
            ],
            "recovery_errors": list(self.recovery_errors),
        }
        return out

    def _settle_waiters_locked(self, fingerprint: str, result) -> None:
        for waiter in self._waiters.pop(fingerprint, []):
            self._finish_locked(
                waiter, JobState.COMPLETED, result=result, cache_hit=True
            )
            self.registry.event("serve.cache_hits")

    def _release_inflight_locked(
        self, record: JobRecord, promote: bool = False
    ) -> None:
        """Drop an origin that won't produce a cacheable result; promote a waiter.

        Used when the origin failed, was cancelled, or completed with a
        budget-tripped partial result no other submission may inherit.
        Without promotion the coalesced duplicates would wait forever on a
        fingerprint with no in-flight origin — the first waiter is
        re-admitted as the new origin, the rest keep waiting on it.
        """
        fingerprint = record.fingerprint
        if self._inflight.get(fingerprint) is not record:
            return
        self._inflight.pop(fingerprint, None)
        waiters = self._waiters.pop(fingerprint, [])
        if not waiters:
            return
        if not promote:
            self._waiters[fingerprint] = waiters
            return
        origin, rest = waiters[0], waiters[1:]
        origin.coalesced = False
        quota = self.quota_for(origin.spec.tenant)
        decision = self.queue.admit(origin, quota)
        origin.admission = decision
        if decision.admitted:
            self._inflight[fingerprint] = origin
            if rest:
                self._waiters[fingerprint] = rest
        else:
            self._finish_locked(
                origin, JobState.REJECTED, reason=decision.reason
            )
            self.registry.event("serve.rejections")
            for waiter in rest:
                self._finish_locked(
                    waiter, JobState.REJECTED, reason=decision.reason
                )
                self.registry.event("serve.rejections")

    def _refresh_gauges_locked(self) -> None:
        self.registry.gauge("serve.queue_depth", self.queue.depth())
        self.registry.gauge("serve.running", self.queue.running_count())
        cache = self.cache.stats()
        self.registry.gauge("serve.cache_entries", cache["entries"])
        self.registry.gauge("serve.cache_bytes", cache["bytes"])
        self.registry.gauge("serve.cache_hits", cache["hits"])
        self.registry.gauge("serve.cache_misses", cache["misses"])


__all__ = ["SERVE_SCHEMA", "SliceService"]
