"""The multi-tenant slice-finding service façade.

:class:`SliceService` composes the serving subsystem: admission control
and fair-share ordering (:mod:`repro.serve.queue`), a worker pool with
checkpoint-backed preemption (:mod:`repro.serve.scheduler`), a
fingerprint-keyed result cache (:mod:`repro.serve.cache`), and the
existing resilience/streaming/obs layers behind a submit/status/result/
cancel API.

Correctness invariants the tests enforce:

- an exact-fingerprint resubmission is served from cache with **zero**
  enumeration (no ``level{L}.evaluate`` spans on its per-job trace);
- a same-data/different-config miss is warm-started from the cached
  top-K and still returns a top-K bitwise-identical to a cold run
  (Equation-3 pruning is exact);
- a suspended-then-resumed job completes bitwise-identically to an
  uninterrupted run (suspension lands on a level boundary, exactly the
  state ``repro.ckpt/v1`` persists).

Thread model: all job-state transitions happen under the service lock;
the enumeration itself runs outside it.  Each job gets its own tracer
(when tracing is on) touched by exactly one thread at a time — the
submitting thread closes its spans before the job is enqueued, and a
worker owns the tracer for the duration of an execution attempt.
"""

from __future__ import annotations

import os
import re
import tempfile
import threading
import time

from repro.core.algorithm import slice_line
from repro.exceptions import ServeError
from repro.obs.counters import CounterRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.resilience.checkpoint import (
    fingerprint_config,
    fingerprint_digest,
    fingerprint_inputs,
    latest_checkpoint,
)
from repro.serve.cache import ResultCache
from repro.serve.queue import JobQueue, TenantQuota
from repro.serve.scheduler import Scheduler
from repro.serve.spec import JobRecord, JobSpec, JobState

#: Version tag of the service status document.
SERVE_SCHEMA = "repro.serve/v1"

_JOB_ID_SANITIZE = re.compile(r"[^A-Za-z0-9._-]+")


class SliceService:
    """Submit/status/result/cancel façade over the serving subsystem.

    Parameters
    ----------
    quotas:
        Per-tenant :class:`TenantQuota` table; tenants not listed fall
        back to *default_quota*.
    default_quota:
        Quota for unlisted tenants (default: 2 running / 64 queued).
    num_workers:
        Worker-thread pool width.
    cache_entries:
        Capacity of the fingerprint-keyed result cache.
    workdir:
        Directory for per-job checkpoint trees (a temporary directory is
        created when omitted); suspended jobs resume from here.
    trace:
        When true, every job gets its own :class:`~repro.obs.Tracer`
        recording ``serve.*`` spans around the inner run's span tree.
    preemption:
        Allow interactive submissions to suspend running batch jobs.
    start:
        Start the worker pool immediately (pass ``False`` to stage
        submissions first — used by tests to make races deterministic).
    """

    def __init__(
        self,
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota | None = None,
        num_workers: int = 2,
        cache_entries: int = 64,
        workdir: str | None = None,
        trace: bool = False,
        preemption: bool = True,
        start: bool = True,
    ) -> None:
        self._lock = threading.RLock()
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota or TenantQuota()
        self.trace = trace
        self.registry = CounterRegistry()
        self.queue = JobQueue(self.quota_for)
        self.cache = ResultCache(cache_entries)
        self.scheduler = Scheduler(
            self.queue, self._execute, num_workers, preemption
        )
        if workdir is None:
            workdir = tempfile.mkdtemp(prefix="repro-serve-")
        self.workdir = workdir
        os.makedirs(self.workdir, exist_ok=True)
        self.jobs: dict[str, JobRecord] = {}
        self._order: list[str] = []
        #: fingerprint -> origin record currently pending/running/suspended
        self._inflight: dict[str, JobRecord] = {}
        #: fingerprint -> duplicate submissions waiting on the origin
        self._waiters: dict[str, list[JobRecord]] = {}
        #: fingerprint -> submission count (disambiguates job ids)
        self._submissions: dict[str, int] = {}
        if start:
            self.start()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self.scheduler.start()

    def shutdown(self, wait: bool = True) -> None:
        self.scheduler.shutdown(wait=wait)

    def __enter__(self) -> "SliceService":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    # -- submission ----------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Admit one job; returns its record immediately (never blocks).

        The record's terminal state may already be set on return: an
        exact-fingerprint cache hit completes synchronously, and an
        over-backlog submission is rejected with a typed reason.
        """
        x0, errors = spec.resolve_data()
        data_fp = fingerprint_inputs(x0, errors)
        config_fp = fingerprint_config(spec.config)
        data_digest = fingerprint_digest(data_fp)
        if spec.kind == "monitor":
            fingerprint = fingerprint_digest(
                data_fp, config_fp, spec.monitor_fingerprint()
            )
        else:
            fingerprint = fingerprint_digest(data_fp, config_fp)

        with self._lock:
            serial = self._submissions.get(fingerprint, 0)
            self._submissions[fingerprint] = serial + 1
            job_id = (
                f"{spec.tenant}/{spec.kind}-{fingerprint[:12]}-{serial}"
            )
            record = JobRecord(
                job_id=job_id,
                spec=spec,
                fingerprint=fingerprint,
                data_digest=data_digest,
                submitted_at=time.time(),
                tracer=Tracer() if self.trace else NULL_TRACER,
                x0=x0,
                errors=errors,
            )
            self.jobs[job_id] = record
            self._order.append(job_id)
            self.registry.event("serve.submitted")
            quota = self.quota_for(spec.tenant)
            if quota.budgets is not None:
                record.effective_budgets = quota.budgets.merged(spec.budgets)
            else:
                record.effective_budgets = spec.budgets

            if spec.kind == "find":
                cached = self.cache.get(fingerprint)
                if cached is not None:
                    with record.tracer.span(
                        "serve.cache_hit", fingerprint=fingerprint[:12]
                    ):
                        pass
                    self._finish_locked(
                        record, JobState.COMPLETED, result=cached,
                        cache_hit=True,
                    )
                    self.registry.event("serve.cache_hits")
                    self._refresh_gauges_locked()
                    return record
                self.registry.event("serve.cache_misses")
                origin = self._inflight.get(fingerprint)
                if origin is not None:
                    # Identical job already pending/running: ride on it
                    # instead of enumerating the same lattice twice.
                    record.coalesced = True
                    self._waiters.setdefault(fingerprint, []).append(record)
                    self._refresh_gauges_locked()
                    return record
                seeds = self.cache.warm_seeds(data_digest)
                if seeds:
                    record.warm_seeds = seeds
                    self.registry.event("serve.warm_starts")

            decision = self.queue.admit(record, quota)
            record.admission = decision
            if not decision.admitted:
                self._finish_locked(
                    record, JobState.REJECTED, reason=decision.reason
                )
                self.registry.event("serve.rejections")
                self._refresh_gauges_locked()
                return record
            if spec.kind == "find":
                self._inflight[fingerprint] = record
            self._refresh_gauges_locked()
        self.scheduler.maybe_preempt(record)
        return record

    # -- inspection ----------------------------------------------------------

    def _record(self, job_id: str) -> JobRecord:
        record = self.jobs.get(job_id)
        if record is None:
            raise ServeError(f"unknown job id {job_id!r}")
        return record

    def status(self, job_id: str) -> dict:
        with self._lock:
            return self._record(job_id).to_dict()

    def result(self, job_id: str, timeout: float | None = None):
        """Block for the job's :class:`SliceLineResult`.

        Raises :class:`~repro.exceptions.ServeError` on timeout or when
        the job ended without a result (failed/cancelled/rejected).
        """
        record = self._record(job_id)
        if not record.wait(timeout):
            raise ServeError(
                f"job {job_id!r} did not finish within {timeout}s "
                f"(state={record.state})"
            )
        if record.state != JobState.COMPLETED:
            raise ServeError(
                f"job {job_id!r} ended {record.state}"
                + (f": {record.reason}" if record.reason else "")
                + (f" ({record.error})" if record.error else "")
            )
        return record.result

    def wait(self, timeout: float | None = None) -> bool:
        """Block until every submitted job is terminal."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            records = list(self.jobs.values())
        for record in records:
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                return False
            if not record.wait(remaining):
                return False
        return True

    def stats(self) -> dict:
        with self._lock:
            return {
                "jobs": len(self.jobs),
                "queue_depth": self.queue.depth(),
                "running": self.queue.running_count(),
                "cache": self.cache.stats(),
                "events": dict(self.registry.events),
                "gauges": dict(self.registry.gauges),
            }

    def status_document(self) -> dict:
        """The full ``repro.serve/v1`` status JSON (see EXPERIMENTS.md)."""
        with self._lock:
            return {
                "schema": SERVE_SCHEMA,
                "generated_at": time.time(),
                "jobs": [
                    self.jobs[job_id].to_dict() for job_id in self._order
                ],
                "tenants": {
                    tenant: {
                        **stats,
                        "quota": self.quota_for(tenant).to_dict(),
                    }
                    for tenant, stats in self.queue.tenant_stats().items()
                },
                "cache": self.cache.stats(),
                "events": dict(self.registry.events),
                "gauges": dict(self.registry.gauges),
            }

    # -- control -------------------------------------------------------------

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; True when the cancellation took (or will take).

        Queued jobs are withdrawn immediately; a running job is asked to
        suspend and is cancelled when it yields at the next level
        boundary (or between monitor batches).  Terminal jobs return
        False.
        """
        with self._lock:
            record = self._record(job_id)
            if record.terminal:
                return False
            if record.coalesced and not record.terminal:
                waiters = self._waiters.get(record.fingerprint, [])
                if record in waiters:
                    waiters.remove(record)
                    self._finish_locked(
                        record, JobState.CANCELLED, reason="user-cancel"
                    )
                    self.registry.event("serve.cancellations")
                    self._refresh_gauges_locked()
                    return True
            if record.state in (JobState.PENDING, JobState.SUSPENDED):
                if self.queue.remove(record):
                    self._release_inflight_locked(record, promote=True)
                    self._finish_locked(
                        record, JobState.CANCELLED, reason="user-cancel"
                    )
                    self.registry.event("serve.cancellations")
                    self._refresh_gauges_locked()
                    return True
            # Running (or a pending record a worker is just picking up):
            # flag it; the worker finalizes the cancellation on yield.
            record.cancel_requested = True
            record.suspend.request()
            return True

    def suspend(self, job_id: str) -> bool:
        """Ask a running job to suspend at its next level boundary."""
        with self._lock:
            record = self._record(job_id)
            if record.terminal or record.spec.kind != "find":
                return False
            record.suspend.request()
            return True

    # -- execution (worker threads) ------------------------------------------

    def _execute(self, record: JobRecord) -> None:
        with self._lock:
            if record.terminal:
                return
            if record.cancel_requested:
                self.queue.release(record)
                self._release_inflight_locked(record, promote=True)
                self._finish_locked(
                    record, JobState.CANCELLED, reason="user-cancel"
                )
                self.registry.event("serve.cancellations")
                self._refresh_gauges_locked()
                return
            resuming = record.state == JobState.SUSPENDED
            record.state = JobState.RUNNING
            record.started_at = time.time()
            if resuming:
                record.resumes += 1
                self.registry.event("serve.resumes")
            self._refresh_gauges_locked()
        try:
            if record.spec.kind == "monitor":
                result = self._run_monitor(record)
            else:
                result = self._run_find(record)
        except Exception as exc:  # noqa: BLE001 — a job must never kill a worker
            with self._lock:
                self.queue.release(record)
                self._release_inflight_locked(record, promote=True)
                self._finish_locked(
                    record,
                    JobState.FAILED,
                    reason="exception",
                    error=f"{type(exc).__name__}: {exc}",
                )
                self.registry.event("serve.failures")
                self._refresh_gauges_locked()
            return

        with self._lock:
            if result is not None and result.suspended:
                if record.cancel_requested:
                    self.queue.release(record)
                    self._release_inflight_locked(record, promote=True)
                    self._finish_locked(
                        record, JobState.CANCELLED, reason="user-cancel"
                    )
                    self.registry.event("serve.cancellations")
                else:
                    record.state = JobState.SUSPENDED
                    record.has_checkpoint = True
                    record.preemptions += 1
                    record.suspend.clear()
                    self.registry.event("serve.preemptions")
                    # Front of the backlog: the suspended job resumes
                    # before the tenant's newer submissions.
                    self.queue.requeue(record)
                self._refresh_gauges_locked()
                return
            if record.cancel_requested and record.spec.kind == "monitor":
                # The monitor loop broke between batches on the flag.
                self.queue.release(record)
                self._finish_locked(
                    record, JobState.CANCELLED, reason="user-cancel"
                )
                self.registry.event("serve.cancellations")
                self._refresh_gauges_locked()
                return
            self.queue.release(record)
            if record.spec.kind == "find":
                cacheable = result is not None and self.cache.put(
                    record.fingerprint, record.data_digest, result
                )
                if cacheable:
                    self._inflight.pop(record.fingerprint, None)
                    self._settle_waiters_locked(record.fingerprint, result)
                else:
                    # A budget-tripped partial top-K is valid for this
                    # job's own budgets, but budgets are not part of the
                    # fingerprint — a coalesced waiter with looser budgets
                    # must not inherit the truncated answer.  Promote the
                    # first waiter to re-run under its own budgets.
                    self._release_inflight_locked(record, promote=True)
            self._finish_locked(record, JobState.COMPLETED, result=result)
            self.registry.event("serve.completed")
            self._refresh_gauges_locked()

    def _run_find(self, record: JobRecord):
        spec = record.spec
        checkpoint_dir = self._checkpoint_dir(record)
        resume_from = (
            latest_checkpoint(checkpoint_dir) if record.has_checkpoint else None
        )
        with record.tracer.span(
            "serve.run",
            job_id=record.job_id,
            resumed=resume_from is not None,
            warm_seeds=len(record.warm_seeds),
        ):
            return slice_line(
                record.x0,
                record.errors,
                config=spec.config,
                num_threads=spec.num_threads,
                trace=record.tracer if self.trace else None,
                seed_slices=record.warm_seeds or None,
                budgets=record.effective_budgets,
                checkpoint_dir=checkpoint_dir,
                resume_from=resume_from,
                suspend=record.suspend,
            )

    def _run_monitor(self, record: JobRecord):
        # Local imports: the streaming layer is only needed for monitor
        # jobs, and importing it lazily keeps service start-up lean.
        from repro.datasets.replay import replay_batches
        from repro.streaming.monitor import SliceMonitor

        spec = record.spec
        monitor = SliceMonitor(
            config=spec.config,
            window_size=spec.window_size if spec.policy == "sliding" else None,
            policy=spec.policy,
            warm_start=spec.warm_start,
            num_threads=spec.num_threads,
            trace=record.tracer if self.trace else None,
            budgets=record.effective_budgets,
        )
        record.monitor = monitor
        since_tick = 0
        with record.tracer.span("serve.monitor", job_id=record.job_id):
            for batch in replay_batches(
                record.x0, record.errors, spec.batch_size
            ):
                if record.suspend.requested:
                    # Monitor jobs have no checkpoint; a suspend request
                    # here is a cancellation (the only caller that sets it
                    # on a monitor job is cancel()).
                    return None
                with record.monitor_lock:
                    monitor.ingest(batch)
                since_tick += 1
                if since_tick >= spec.tick_every:
                    with record.monitor_lock:
                        monitor.tick()
                    since_tick = 0
            if since_tick > 0 and len(monitor.window) > 0:
                with record.monitor_lock:
                    monitor.tick()
        return monitor.ticks[-1].result if monitor.ticks else None

    # -- internals (call with the lock held) ---------------------------------

    def _checkpoint_dir(self, record: JobRecord) -> str:
        safe = _JOB_ID_SANITIZE.sub("_", record.job_id)
        path = os.path.join(self.workdir, safe)
        os.makedirs(path, exist_ok=True)
        return path

    def _finish_locked(
        self,
        record: JobRecord,
        state: str,
        result=None,
        reason: str = "",
        error: str | None = None,
        cache_hit: bool = False,
    ) -> None:
        record.state = state
        record.reason = reason
        if result is not None:
            record.result = result
        if error is not None:
            record.error = error
        if cache_hit:
            record.cache_hit = True
        record.finished_at = time.time()
        record.done.set()

    def _settle_waiters_locked(self, fingerprint: str, result) -> None:
        for waiter in self._waiters.pop(fingerprint, []):
            self._finish_locked(
                waiter, JobState.COMPLETED, result=result, cache_hit=True
            )
            self.registry.event("serve.cache_hits")

    def _release_inflight_locked(
        self, record: JobRecord, promote: bool = False
    ) -> None:
        """Drop an origin that won't produce a cacheable result; promote a waiter.

        Used when the origin failed, was cancelled, or completed with a
        budget-tripped partial result no other submission may inherit.
        Without promotion the coalesced duplicates would wait forever on a
        fingerprint with no in-flight origin — the first waiter is
        re-admitted as the new origin, the rest keep waiting on it.
        """
        fingerprint = record.fingerprint
        if self._inflight.get(fingerprint) is not record:
            return
        self._inflight.pop(fingerprint, None)
        waiters = self._waiters.pop(fingerprint, [])
        if not waiters:
            return
        if not promote:
            self._waiters[fingerprint] = waiters
            return
        origin, rest = waiters[0], waiters[1:]
        origin.coalesced = False
        quota = self.quota_for(origin.spec.tenant)
        decision = self.queue.admit(origin, quota)
        origin.admission = decision
        if decision.admitted:
            self._inflight[fingerprint] = origin
            if rest:
                self._waiters[fingerprint] = rest
        else:
            self._finish_locked(
                origin, JobState.REJECTED, reason=decision.reason
            )
            self.registry.event("serve.rejections")
            for waiter in rest:
                self._finish_locked(
                    waiter, JobState.REJECTED, reason=decision.reason
                )
                self.registry.event("serve.rejections")

    def _refresh_gauges_locked(self) -> None:
        self.registry.gauge("serve.queue_depth", self.queue.depth())
        self.registry.gauge("serve.running", self.queue.running_count())
        cache = self.cache.stats()
        self.registry.gauge("serve.cache_entries", cache["entries"])
        self.registry.gauge("serve.cache_hits", cache["hits"])
        self.registry.gauge("serve.cache_misses", cache["misses"])


__all__ = ["SERVE_SCHEMA", "SliceService"]
