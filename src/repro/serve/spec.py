"""Job model for the serving layer: what a job *is* and what happened to it.

A :class:`JobSpec` is the user-facing description of one unit of work —
either a one-shot slice-finding run (``kind="find"``) or a streaming
monitor replay (``kind="monitor"``) — over a registry dataset or explicit
``(x0, errors)`` arrays.  The service resolves it into a :class:`JobRecord`
carrying a deterministic identity (the job fingerprint from
:func:`repro.resilience.checkpoint.fingerprint_digest` over the data and
config fingerprints), the scheduling state machine, and everything that
happened to the job (cache hit, warm seeds, preemptions, result, error).

The fingerprint is the load-bearing idea: two submissions over bitwise
identical data and an equal result-affecting config share one fingerprint,
which is what keys the result cache, coalesces duplicate in-flight
submissions, and names checkpoint directories for suspend/resume.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.config import SliceLineConfig
from repro.core.types import Slice, SliceLineResult
from repro.exceptions import ConfigError
from repro.resilience.budgets import BudgetConfig, SuspendHook


class JobState:
    """The job lifecycle vocabulary (plain strings, JSON-stable).

    ``PENDING -> RUNNING -> COMPLETED`` is the happy path; a preempted job
    bounces ``RUNNING -> SUSPENDED -> RUNNING`` (through the queue) until
    it completes; ``FAILED``/``CANCELLED``/``REJECTED`` are terminal.
    """

    PENDING = "pending"
    RUNNING = "running"
    SUSPENDED = "suspended"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"
    REJECTED = "rejected"

    #: states a job never leaves
    TERMINAL = frozenset({COMPLETED, FAILED, CANCELLED, REJECTED})


#: Job kinds the service executes.
JOB_KINDS = ("find", "monitor")


@dataclass(eq=False)
class JobSpec:
    """Declarative description of one job (see also ``serve.declarative``).

    The data source is exactly one of a registry ``dataset`` name (plus
    optional ``scale``/``seed``) or explicit ``x0``/``errors`` arrays.  The
    ``batch_size``/``window_size``/``policy``/``warm_start``/``tick_every``
    fields only apply to ``kind="monitor"`` jobs, which replay the data as
    a mini-batch stream through a :class:`~repro.streaming.SliceMonitor`.

    ``interactive`` marks latency-sensitive submissions: the scheduler
    orders them ahead of batch jobs and may preempt a running batch job
    (suspending it at a level boundary) to free a worker.
    """

    tenant: str = "default"
    kind: str = "find"
    name: str | None = None
    dataset: str | None = None
    scale: float | None = None
    seed: int = 0
    x0: np.ndarray | None = None
    errors: np.ndarray | None = None
    config: SliceLineConfig = field(default_factory=SliceLineConfig)
    budgets: BudgetConfig | None = None
    num_threads: int = 1
    interactive: bool = False
    # monitor-only knobs
    batch_size: int = 256
    window_size: int = 8
    policy: str = "sliding"
    warm_start: bool = True
    tick_every: int = 4

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ConfigError(
                f"job kind must be one of {JOB_KINDS}, got {self.kind!r}"
            )
        if not self.tenant:
            raise ConfigError("tenant must be a non-empty string")
        has_arrays = self.x0 is not None or self.errors is not None
        if self.dataset is not None and has_arrays:
            raise ConfigError(
                "a job takes either a dataset name or x0/errors arrays, "
                "not both"
            )
        if self.dataset is None and (self.x0 is None or self.errors is None):
            raise ConfigError(
                "a job needs a data source: a registry dataset name, or "
                "both x0 and errors"
            )
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.tick_every < 1:
            raise ConfigError(f"tick_every must be >= 1, got {self.tick_every}")

    def resolve_data(self) -> tuple[np.ndarray, np.ndarray]:
        """The concrete ``(x0, errors)`` pair this job enumerates."""
        if self.dataset is not None:
            # Local import: repro.datasets is a leaf the serving layer only
            # needs for name-based specs.
            from repro.datasets.registry import load_dataset

            bundle = load_dataset(self.dataset, scale=self.scale, seed=self.seed)
            return bundle.x0, bundle.errors
        return self.x0, self.errors

    def monitor_fingerprint(self) -> dict:
        """Result-affecting monitor parameters (part of the job identity)."""
        return {
            "kind": self.kind,
            "batch_size": self.batch_size,
            "window_size": self.window_size,
            "policy": self.policy,
            "warm_start": self.warm_start,
            "tick_every": self.tick_every,
        }


@dataclass(eq=False)
class JobRecord:
    """One submitted job: identity, state machine, and outcome.

    Created by :meth:`SliceService.submit`; every field after ``spec`` is
    owned by the service (mutated only under its lock or by the single
    worker executing the job).
    """

    job_id: str
    spec: JobSpec
    #: full job fingerprint (data + config [+ monitor params]) — cache key
    fingerprint: str
    #: digest of the data fingerprint alone — warm-start lookup key
    data_digest: str
    state: str = JobState.PENDING
    #: typed reason for REJECTED/CANCELLED/FAILED states
    reason: str = ""
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    result: SliceLineResult | None = None
    error: str | None = None
    #: served from the result cache (exact fingerprint hit or coalesced)
    cache_hit: bool = False
    #: seeds taken from a same-data cache entry (warm start, not a hit)
    warm_seeds: list[Slice] = field(default_factory=list)
    #: times the job was preempted (suspended at a level boundary)
    preemptions: int = 0
    #: times the job resumed from its checkpoint
    resumes: int = 0
    #: times a worker process died (or went silent) while running the job
    crashes: int = 0
    #: the record was rebuilt from the job journal after a restart
    recovered: bool = False
    effective_budgets: BudgetConfig | None = None
    admission: "Any | None" = None
    #: duplicate submission riding on an identical in-flight job
    coalesced: bool = False
    cancel_requested: bool = False
    has_checkpoint: bool = False
    #: the job has been handed to a worker at least once (fair-share
    #: service is charged on first dispatch only, not on resume re-takes)
    dispatched: bool = False
    #: cooperative preemption/cancellation flag the running enumeration polls
    suspend: SuspendHook = field(default_factory=SuspendHook)
    #: set exactly once, on entering a terminal state
    done: threading.Event = field(default_factory=threading.Event)
    #: per-job tracer (NULL_TRACER when the service runs untraced)
    tracer: Any = None
    #: the live monitor object for kind="monitor" jobs (set by the worker)
    monitor: Any = None
    #: serializes monitor mutations (worker ingest/tick) against status
    #: reads — the service lock does not cover the worker's monitor calls
    monitor_lock: threading.Lock = field(default_factory=threading.Lock)
    #: resolved data (kept so resume re-derives the identical matrices)
    x0: np.ndarray | None = None
    errors: np.ndarray | None = None

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self.done.wait(timeout)

    def to_dict(self) -> dict:
        """JSON-safe status record (the ``jobs[]`` entry of ``repro.serve/v1``)."""
        result = self.result
        out: dict[str, Any] = {
            "job_id": self.job_id,
            "tenant": self.spec.tenant,
            "kind": self.spec.kind,
            "name": self.spec.name,
            "state": self.state,
            "reason": self.reason,
            "interactive": self.spec.interactive,
            "fingerprint": self.fingerprint,
            "data_digest": self.data_digest,
            "cache_hit": self.cache_hit,
            "warm_seeds": len(self.warm_seeds),
            "preemptions": self.preemptions,
            "resumes": self.resumes,
            "crashes": self.crashes,
            "recovered": self.recovered,
            "coalesced": self.coalesced,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "admission": (
                {
                    "admitted": self.admission.admitted,
                    "reason": self.admission.reason,
                    "detail": self.admission.detail,
                }
                if self.admission is not None
                else None
            ),
            "budgets": (
                {
                    "deadline_s": self.effective_budgets.deadline_s,
                    "max_candidates_per_level": (
                        self.effective_budgets.max_candidates_per_level
                    ),
                    "max_memory_bytes": self.effective_budgets.max_memory_bytes,
                }
                if self.effective_budgets is not None
                else None
            ),
            "result": (
                {
                    "num_top_slices": len(result.top_slices),
                    "top_scores": [float(s.score) for s in result.top_slices],
                    "completed": result.completed,
                    "suspended": result.suspended,
                    "total_seconds": result.total_seconds,
                }
                if result is not None
                else None
            ),
        }
        if self.spec.kind == "monitor" and self.monitor is not None:
            with self.monitor_lock:
                drift = self.monitor.latest_drift()
                out["monitor"] = {
                    "num_ticks": len(self.monitor.ticks),
                    "quarantined": [
                        record.to_dict()
                        for record in self.monitor.quarantine_records()
                    ],
                    "drift": [signal.to_dict() for signal in drift],
                    "num_degraded": sum(
                        1 for signal in drift if signal.degraded()
                    ),
                }
        return out


__all__ = ["JOB_KINDS", "JobRecord", "JobSpec", "JobState"]
