"""Declarative job files: JSON/TOML documents describing job batches.

Modeled on skll-style experiment configs: one document declares shared
``defaults`` plus a ``jobs`` list, each entry overriding the defaults
field-by-field (nested ``config``/``pruning``/``budgets`` tables merge
key-wise rather than wholesale, so a job can override just ``k`` without
restating the whole config).  Example::

    {
      "defaults": {"tenant": "analytics", "dataset": "adult",
                   "config": {"k": 4, "max_level": 3}},
      "jobs": [
        {"name": "baseline"},
        {"name": "deep", "config": {"max_level": 5}},
        {"name": "ops-monitor", "kind": "monitor", "tenant": "ops",
         "batch_size": 512, "tick_every": 4}
      ]
    }

TOML documents use the same shape (``[defaults]`` table, ``[[jobs]]``
array of tables).  TOML needs the stdlib ``tomllib`` (Python 3.11+); on
older interpreters a TOML file raises a clear
:class:`~repro.exceptions.ConfigError` telling the user to use JSON.
"""

from __future__ import annotations

import json
import os

from repro.core.config import PruningConfig, SliceLineConfig
from repro.exceptions import ConfigError
from repro.resilience.budgets import BudgetConfig
from repro.serve.spec import JobSpec

#: JobSpec fields a declarative entry may set directly.
_SPEC_KEYS = frozenset(
    {
        "tenant",
        "kind",
        "name",
        "dataset",
        "scale",
        "seed",
        "num_threads",
        "interactive",
        "batch_size",
        "window_size",
        "policy",
        "warm_start",
        "tick_every",
    }
)

#: Nested tables with their own key-wise merge.
_NESTED_KEYS = frozenset({"config", "budgets"})

_CONFIG_KEYS = frozenset(
    {
        "k",
        "sigma",
        "alpha",
        "max_level",
        "block_size",
        "compaction",
        "priority_evaluation",
        "priority_chunk",
        "kernel_backend",
        "pruning",
    }
)

_PRUNING_KEYS = frozenset(
    {
        "by_size",
        "by_score",
        "handle_missing_parents",
        "deduplicate",
        "filter_input_slices",
    }
)

_BUDGET_KEYS = frozenset(
    {"deadline_s", "max_candidates_per_level", "max_memory_bytes"}
)


def _check_keys(table: dict, allowed: frozenset, where: str) -> None:
    unknown = sorted(set(table) - allowed)
    if unknown:
        raise ConfigError(
            f"unknown key(s) {unknown} in {where}; allowed: "
            f"{sorted(allowed)}"
        )


def _merge_entry(defaults: dict, entry: dict) -> dict:
    """Entry over defaults; ``config``/``budgets`` tables merge key-wise."""
    merged = dict(defaults)
    for key, value in entry.items():
        if key in _NESTED_KEYS and isinstance(merged.get(key), dict):
            nested = dict(merged[key])
            if key == "config" and isinstance(value.get("pruning"), dict):
                pruning = dict(nested.get("pruning", {}))
                pruning.update(value["pruning"])
                nested.update(value)
                nested["pruning"] = pruning
            else:
                nested.update(value)
            merged[key] = nested
        else:
            merged[key] = value
    return merged


def spec_from_dict(
    entry: dict, where: str = "job", x0=None, errors=None
) -> JobSpec:
    """Build one :class:`JobSpec` from a (merged) declarative entry.

    *x0*/*errors* attach explicit data arrays to an entry with no
    ``dataset`` key — the journal-recovery path, which re-loads the arrays
    a durable service spilled at submit time.
    """
    if not isinstance(entry, dict):
        raise ConfigError(f"{where} must be a table/object, got {entry!r}")
    _check_keys(entry, _SPEC_KEYS | _NESTED_KEYS, where)
    kwargs = {key: entry[key] for key in _SPEC_KEYS if key in entry}
    if x0 is not None:
        kwargs["x0"] = x0
    if errors is not None:
        kwargs["errors"] = errors

    config_table = entry.get("config")
    if config_table is not None:
        if not isinstance(config_table, dict):
            raise ConfigError(f"{where}.config must be a table/object")
        _check_keys(config_table, _CONFIG_KEYS, f"{where}.config")
        config_kwargs = dict(config_table)
        pruning_table = config_kwargs.pop("pruning", None)
        if pruning_table is not None:
            if not isinstance(pruning_table, dict):
                raise ConfigError(f"{where}.config.pruning must be a table")
            _check_keys(
                pruning_table, _PRUNING_KEYS, f"{where}.config.pruning"
            )
            config_kwargs["pruning"] = PruningConfig(**pruning_table)
        kwargs["config"] = SliceLineConfig(**config_kwargs)

    budget_table = entry.get("budgets")
    if budget_table is not None:
        if not isinstance(budget_table, dict):
            raise ConfigError(f"{where}.budgets must be a table/object")
        _check_keys(budget_table, _BUDGET_KEYS, f"{where}.budgets")
        kwargs["budgets"] = BudgetConfig(**budget_table)

    return JobSpec(**kwargs)


def spec_to_dict(spec: JobSpec) -> dict:
    """The declarative table for *spec* (inverse of :func:`spec_from_dict`).

    Exhaustive over every result-affecting field, so
    ``spec_from_dict(spec_to_dict(s))`` rebuilds an equivalent spec with
    the same job fingerprint.  Explicit ``x0``/``errors`` arrays are *not*
    part of the table — the durable service spills them next to the job's
    checkpoints and re-attaches them on recovery.
    """
    config = spec.config
    pruning = config.pruning
    entry: dict = {
        "tenant": spec.tenant,
        "kind": spec.kind,
        "name": spec.name,
        "seed": spec.seed,
        "num_threads": spec.num_threads,
        "interactive": spec.interactive,
        "batch_size": spec.batch_size,
        "window_size": spec.window_size,
        "policy": spec.policy,
        "warm_start": spec.warm_start,
        "tick_every": spec.tick_every,
        "config": {
            "k": config.k,
            "sigma": config.sigma,
            "alpha": config.alpha,
            "max_level": config.max_level,
            "block_size": config.block_size,
            "compaction": config.compaction,
            "priority_evaluation": config.priority_evaluation,
            "priority_chunk": config.priority_chunk,
            "kernel_backend": config.kernel_backend,
            "pruning": {
                key: getattr(pruning, key) for key in sorted(_PRUNING_KEYS)
            },
        },
    }
    if spec.dataset is not None:
        entry["dataset"] = spec.dataset
        if spec.scale is not None:
            entry["scale"] = spec.scale
    if spec.budgets is not None:
        entry["budgets"] = {
            key: getattr(spec.budgets, key) for key in sorted(_BUDGET_KEYS)
        }
    return entry


def load_job_document(document: dict, where: str = "document") -> list[JobSpec]:
    """Specs from an already-parsed ``{defaults, jobs}`` document."""
    if not isinstance(document, dict):
        raise ConfigError(f"{where} must be a table/object at top level")
    _check_keys(document, frozenset({"defaults", "jobs"}), where)
    defaults = document.get("defaults", {})
    if not isinstance(defaults, dict):
        raise ConfigError(f"{where}.defaults must be a table/object")
    jobs = document.get("jobs")
    if not isinstance(jobs, list) or not jobs:
        raise ConfigError(f"{where}.jobs must be a non-empty array")
    return [
        spec_from_dict(_merge_entry(defaults, entry), f"{where}.jobs[{i}]")
        for i, entry in enumerate(jobs)
    ]


def load_job_file(path: str) -> list[JobSpec]:
    """Parse one JSON or TOML job file into :class:`JobSpec` objects."""
    if path.endswith(".toml"):
        try:
            import tomllib
        except ImportError as exc:  # Python < 3.11
            raise ConfigError(
                "TOML job files need the stdlib tomllib (Python 3.11+); "
                f"rewrite {path!r} as JSON on this interpreter"
            ) from exc
        try:
            with open(path, "rb") as handle:
                document = tomllib.load(handle)
        except (OSError, tomllib.TOMLDecodeError) as exc:
            raise ConfigError(f"cannot read job file {path!r}: {exc}") from exc
    else:
        try:
            with open(path) as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"cannot read job file {path!r}: {exc}") from exc
    return load_job_document(document, where=os.path.basename(path))


def load_job_dir(path: str) -> list[JobSpec]:
    """All specs of every ``*.json``/``*.toml`` file in *path* (sorted)."""
    if not os.path.isdir(path):
        raise ConfigError(f"{path!r} is not a directory")
    names = sorted(
        name
        for name in os.listdir(path)
        if name.endswith((".json", ".toml"))
    )
    if not names:
        raise ConfigError(f"no .json/.toml job files in {path!r}")
    specs: list[JobSpec] = []
    for name in names:
        specs.extend(load_job_file(os.path.join(path, name)))
    return specs


__all__ = [
    "load_job_dir",
    "load_job_document",
    "load_job_file",
    "spec_from_dict",
    "spec_to_dict",
]
