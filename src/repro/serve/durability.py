"""Crash durability for the serving layer: job journal + disk-backed cache.

Two persistent structures let :class:`~repro.serve.SliceService` survive a
``kill -9`` (or any crash/restart) without losing work:

* the **write-ahead job journal** (``repro.wal/v1``) — an append-only log
  of job-lifecycle records (``submit`` / ``dispatch`` / ``suspend`` /
  ``complete`` / ``cancel`` / ``fail`` / ``reject``).  Every record is a
  length- and checksum-framed JSON document appended with an fsync, so the
  journal on disk is always a valid prefix of the logical record stream
  plus at most one *torn tail* (a record whose write the crash
  interrupted).  Replay (:func:`scan_wal`) tolerates the torn tail — and
  any corruption — by quarantining the unreadable suffix with a typed
  reason instead of aborting recovery;
* the **durable result cache** (:class:`DurableResultCache`) — the
  fingerprint-keyed LRU of :mod:`repro.serve.cache`, spilling every entry
  to one atomically-written ``repro.cache/v1`` file under the service's
  ``--state-dir``.  On construction it reloads every readable spill file
  (in LRU order by mtime), quarantining corrupt or mismatched files, so
  completed results from before the crash are cache hits again.

Frame format (little-endian)::

    +----------------+----------------+----------------------+
    | length: uint32 | crc32: uint32  | payload: JSON bytes  |
    +----------------+----------------+----------------------+

The CRC is ``zlib.crc32`` over the payload.  A record is accepted only
when its full frame is present, its CRC matches, its payload parses as a
JSON object, and it carries a known ``type`` and a ``job_id`` — anything
else ends replay at that offset with a :class:`WalQuarantine` describing
what was wrong (``torn-header`` / ``torn-body`` / ``checksum-mismatch`` /
``bad-json`` / ``bad-record``).  Framing is positional, so nothing after
the first bad frame can be trusted; the quarantined suffix is preserved in
a sidecar file for forensics and the journal is truncated back to its
valid prefix before new appends.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass

from repro.exceptions import ConfigError, ServeError
from repro.resilience.atomic import (
    atomic_write_bytes,
    fsync_dir,
    fsync_file,
    remove_stale_tmp,
)
from repro.serve.cache import (
    CacheEntry,
    ResultCache,
    decode_result,
    encode_result,
)

#: Version tag carried by every journal record.
WAL_SCHEMA = "repro.wal/v1"

#: Record vocabulary; anything else is quarantined as ``bad-record``.
WAL_RECORD_TYPES = (
    "submit",
    "dispatch",
    "suspend",
    "complete",
    "cancel",
    "fail",
    "reject",
)

_HEADER = struct.Struct("<II")

#: Upper bound on one record's payload — a length field beyond this is
#: treated as corruption, not as an instruction to allocate gigabytes.
MAX_RECORD_BYTES = 16 << 20


@dataclass(frozen=True)
class WalQuarantine:
    """One unreadable journal suffix (or cache file), with a typed reason.

    ``reason`` vocabulary for journal replay: ``"torn-header"`` (fewer
    than 8 bytes of frame header at the tail), ``"torn-body"`` (the header
    promises more payload bytes than the file holds), ``"bad-length"``
    (length field of an impossible size), ``"checksum-mismatch"``,
    ``"bad-json"``, ``"bad-record"`` (JSON fine, schema wrong).  For cache
    spill files: ``"undecodable"`` and ``"fingerprint-mismatch"``.
    """

    reason: str
    offset: int
    nbytes: int
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "reason": self.reason,
            "offset": self.offset,
            "nbytes": self.nbytes,
            "detail": self.detail,
        }


def frame_record(record: dict) -> bytes:
    """One record's on-disk frame: length + CRC header, JSON payload."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def scan_wal(data: bytes) -> tuple[list[dict], int, list[WalQuarantine]]:
    """Replay a journal byte string.

    Returns ``(records, valid_length, quarantined)``: the decoded records
    of the longest valid prefix, the byte length of that prefix, and the
    quarantine records (at most one — replay stops at the first bad frame
    because framing after it cannot be trusted).
    """
    records: list[dict] = []
    quarantined: list[WalQuarantine] = []
    offset = 0
    total = len(data)

    def stop(reason: str, detail: str) -> None:
        quarantined.append(
            WalQuarantine(
                reason=reason,
                offset=offset,
                nbytes=total - offset,
                detail=detail,
            )
        )

    while offset < total:
        remaining = total - offset
        if remaining < _HEADER.size:
            stop(
                "torn-header",
                f"{remaining} trailing byte(s), header needs {_HEADER.size}",
            )
            break
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            stop(
                "bad-length",
                f"length field {length} exceeds {MAX_RECORD_BYTES}",
            )
            break
        body_start = offset + _HEADER.size
        if body_start + length > total:
            stop(
                "torn-body",
                f"record promises {length} payload byte(s), only "
                f"{total - body_start} present",
            )
            break
        payload = data[body_start : body_start + length]
        if zlib.crc32(payload) != crc:
            stop(
                "checksum-mismatch",
                f"stored crc {crc:#010x} != computed "
                f"{zlib.crc32(payload):#010x}",
            )
            break
        try:
            record = json.loads(payload.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            stop("bad-json", str(exc))
            break
        if (
            not isinstance(record, dict)
            or record.get("schema") != WAL_SCHEMA
            or record.get("type") not in WAL_RECORD_TYPES
            or not isinstance(record.get("job_id"), str)
        ):
            stop(
                "bad-record",
                f"not a {WAL_SCHEMA} record with a known type and job_id",
            )
            break
        records.append(record)
        offset = body_start + length
    return records, offset, quarantined


class JobJournal:
    """Append-only ``repro.wal/v1`` job journal with torn-tail recovery.

    Opening the journal replays whatever is on disk: decoded records land
    in :attr:`records`, any unreadable suffix is moved to a numbered
    ``*.quarantined-N`` sidecar and summarized in :attr:`quarantined`, and
    the journal file is truncated back to its valid prefix so new appends
    extend a clean log.  Appends are serialized by an internal lock and —
    with ``fsync=True`` (the default) — flushed to stable storage before
    :meth:`append` returns, which is what makes the journal *write-ahead*:
    a state transition is journaled before it is acted on.
    """

    def __init__(self, path: str, fsync: bool = True) -> None:
        self.path = path
        self.fsync = fsync
        self._lock = threading.Lock()
        directory = os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            data = b""
        self.records, valid_length, self.quarantined = scan_wal(data)
        if self.quarantined:
            sidecar = self._sidecar_name()
            atomic_write_bytes(sidecar, data[valid_length:], durable=fsync)
            with open(path, "r+b") as handle:
                handle.truncate(valid_length)
                if fsync:
                    fsync_file(handle)
        self._handle = open(path, "ab")
        if fsync:
            fsync_dir(directory)

    def _sidecar_name(self) -> str:
        index = 0
        while True:
            candidate = f"{self.path}.quarantined-{index}"
            if not os.path.exists(candidate):
                return candidate
            index += 1

    def append(self, record_type: str, job_id: str, **fields) -> dict:
        """Append one record (fsync'd before return when enabled)."""
        if record_type not in WAL_RECORD_TYPES:
            raise ConfigError(
                f"unknown WAL record type {record_type!r}; expected one of "
                f"{WAL_RECORD_TYPES}"
            )
        record = {
            "schema": WAL_SCHEMA,
            "type": record_type,
            "job_id": job_id,
            **fields,
        }
        frame = frame_record(record)
        with self._lock:
            if self._handle.closed:
                raise ServeError("journal is closed")
            self._handle.write(frame)
            if self.fsync:
                fsync_file(self._handle)
            else:
                self._handle.flush()
        return record

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                if self.fsync:
                    try:
                        fsync_file(self._handle)
                    except (OSError, ValueError):
                        pass
                self._handle.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class DurableResultCache(ResultCache):
    """:class:`~repro.serve.cache.ResultCache` that spills to a directory.

    Every cached entry is also an atomically-written
    ``<fingerprint>.npz`` file (the exact :func:`~repro.serve.cache.
    encode_result` bytes) under *directory*; eviction deletes the spill
    file, so disk mirrors memory.  Construction reloads the directory:
    readable files become cache entries in LRU order of their mtime;
    corrupt, truncated, or misnamed files are moved to a ``quarantine/``
    subdirectory and reported in :attr:`quarantined` with a typed reason —
    recovery never aborts on bad cache state, it just loses that entry.
    """

    def __init__(
        self,
        capacity: int = 64,
        max_bytes: int | None = None,
        directory: str | None = None,
        fsync: bool = True,
    ) -> None:
        if directory is None:
            raise ConfigError("DurableResultCache needs a spill directory")
        super().__init__(capacity, max_bytes)
        self.directory = directory
        self._fsync = fsync
        self.quarantined: list[WalQuarantine] = []
        os.makedirs(directory, exist_ok=True)
        remove_stale_tmp(directory)
        self._loading = True
        try:
            self._load()
        finally:
            self._loading = False

    def _entry_path(self, fingerprint: str) -> str:
        return os.path.join(self.directory, f"{fingerprint}.npz")

    def _quarantine_file(self, name: str, reason: str, detail: str) -> None:
        pen = os.path.join(self.directory, "quarantine")
        os.makedirs(pen, exist_ok=True)
        source = os.path.join(self.directory, name)
        try:
            nbytes = os.path.getsize(source)
            os.replace(source, os.path.join(pen, name))
        except OSError:
            nbytes = 0
        self.quarantined.append(
            WalQuarantine(reason=reason, offset=0, nbytes=nbytes, detail=detail)
        )

    def _load(self) -> None:
        names = [
            name
            for name in os.listdir(self.directory)
            if name.endswith(".npz")
        ]
        # Oldest first: reinsertion order doubles as the recovered LRU
        # order, so byte-bound eviction during load drops the stalest
        # entries exactly as the pre-crash cache would have.
        names.sort(
            key=lambda name: os.path.getmtime(
                os.path.join(self.directory, name)
            )
        )
        for name in names:
            path = os.path.join(self.directory, name)
            try:
                with open(path, "rb") as handle:
                    payload = handle.read()
                fingerprint, data_digest, result = decode_result(payload)
            except (OSError, ServeError) as exc:
                self._quarantine_file(name, "undecodable", str(exc))
                continue
            if name != f"{fingerprint}.npz":
                self._quarantine_file(
                    name,
                    "fingerprint-mismatch",
                    f"file {name!r} holds entry for {fingerprint!r}",
                )
                continue
            with self._lock:
                self._insert_locked(
                    CacheEntry(
                        fingerprint=fingerprint,
                        data_digest=data_digest,
                        result=result,
                        nbytes=len(payload),
                    ),
                    payload,
                )

    # -- durability hooks ----------------------------------------------------

    def _spill_locked(self, entry: CacheEntry, payload: bytes) -> None:
        if self._loading:
            return
        atomic_write_bytes(
            self._entry_path(entry.fingerprint), payload, durable=self._fsync
        )

    def _evict_locked(self, fingerprint: str, entry: CacheEntry) -> None:
        try:
            os.unlink(self._entry_path(fingerprint))
        except OSError:
            pass

    def stats(self) -> dict:
        out = super().stats()
        out["quarantined"] = len(self.quarantined)
        return out


__all__ = [
    "DurableResultCache",
    "JobJournal",
    "MAX_RECORD_BYTES",
    "WAL_RECORD_TYPES",
    "WAL_SCHEMA",
    "WalQuarantine",
    "frame_record",
    "scan_wal",
]
