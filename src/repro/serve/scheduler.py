"""Worker pool and checkpoint-backed preemption.

The :class:`Scheduler` owns N daemon worker threads that drain the
:class:`~repro.serve.queue.JobQueue` and hand each job to the service's
execute callback.  Preemption is cooperative: when an *interactive* job
arrives while every worker is busy, the scheduler asks the most recently
started non-interactive find job to suspend via its
:class:`~repro.resilience.SuspendHook`.  The victim stops at its next
level boundary — exactly where its ``repro.ckpt/v1`` checkpoint was just
written — frees the worker, and is parked at the front of its tenant's
backlog to resume (bitwise-identically) once a worker frees up again.
"""

from __future__ import annotations

import threading

from repro.serve.queue import JobQueue
from repro.serve.spec import JobRecord


class Scheduler:
    """Runs queued jobs on a fixed pool of worker threads."""

    def __init__(
        self,
        queue: JobQueue,
        execute,
        num_workers: int = 2,
        preemption: bool = True,
    ) -> None:
        self.queue = queue
        self._execute = execute
        self.num_workers = max(1, int(num_workers))
        self.preemption = preemption
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._executing: dict[str, JobRecord] = {}

    def start(self) -> None:
        if self._threads:
            return
        self._stop.clear()
        for index in range(self.num_workers):
            thread = threading.Thread(
                target=self._worker,
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    @property
    def started(self) -> bool:
        return bool(self._threads)

    def _worker(self) -> None:
        while not self._stop.is_set():
            record = self.queue.take(timeout=0.1)
            if record is None:
                continue
            with self._lock:
                self._executing[record.job_id] = record
            try:
                self._execute(record)
            finally:
                with self._lock:
                    self._executing.pop(record.job_id, None)

    def executing(self) -> list[JobRecord]:
        with self._lock:
            return list(self._executing.values())

    def maybe_preempt(self, incoming: JobRecord) -> JobRecord | None:
        """Suspend a batch job to make room for an interactive one.

        Returns the victim whose suspension was requested, or ``None``
        when no preemption was needed (a worker is free) or possible (no
        suspendable victim).  Only non-interactive ``find`` jobs are
        eligible victims — they checkpoint at level boundaries, so their
        resumed result is guaranteed bitwise-identical; the most recently
        started victim is chosen to minimize lost progress.
        """
        if not self.preemption or not incoming.spec.interactive:
            return None
        if not self.queue.has_free_slot(incoming.spec.tenant):
            # The incoming tenant is at max_running: suspending a victim
            # would free a worker the new job cannot use yet.
            return None
        with self._lock:
            if len(self._executing) < self.num_workers:
                return None
            victims = [
                record
                for record in self._executing.values()
                if record.spec.kind == "find"
                and not record.spec.interactive
                and not record.suspend.requested
            ]
            if not victims:
                return None
            victim = max(victims, key=lambda r: r.started_at or 0.0)
            victim.suspend.request()
            return victim

    def shutdown(self, wait: bool = True) -> None:
        self._stop.set()
        self.queue.close()
        if wait:
            for thread in self._threads:
                thread.join(timeout=10.0)
        self._threads = []


__all__ = ["Scheduler"]
