"""Command-line interface: slice finding over a CSV file.

Usage::

    python -m repro data.csv --error-column err --k 5 --alpha 0.95
    python -m repro data.csv --error-column err --drop id --numeric age,hours

Reads a headered CSV (no pandas required), applies the paper's
preprocessing (categorical recoding, 10-bin equi-width binning of numeric
columns), runs SliceLine, and prints the decoded top-K slices.  Columns are
treated as numeric when every value parses as a float unless overridden.

``--trace`` additionally prints the per-level enumeration counters and the
span tree of the run; ``--trace-json PATH`` writes the full observability
document (``repro.obs/v1``, see EXPERIMENTS.md) for machine consumption.
"""

from __future__ import annotations

import argparse
import csv
import sys

import numpy as np

from repro.core import SliceLine
from repro.exceptions import ReproError, ValidationError
from repro.obs import counters_table, format_trace, write_json
from repro.preprocessing import ColumnSpec, Preprocessor


def read_csv_table(path: str) -> dict[str, np.ndarray]:
    """Load a headered CSV into a column table of numpy arrays."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValidationError(f"{path} is empty") from None
        columns: list[list[str]] = [[] for _ in header]
        for row in reader:
            if len(row) != len(header):
                raise ValidationError(
                    f"{path}: row with {len(row)} cells, header has {len(header)}"
                )
            for cell, column in zip(row, columns):
                column.append(cell)
    if not columns[0]:
        raise ValidationError(f"{path} has a header but no data rows")
    return {name: np.asarray(col) for name, col in zip(header, columns)}


def is_numeric_column(values: np.ndarray) -> bool:
    """True when every cell parses as a float."""
    try:
        values.astype(np.float64)
    except ValueError:
        return False
    return True


def build_specs(
    table: dict[str, np.ndarray],
    error_column: str,
    drop: list[str],
    numeric: list[str],
    categorical: list[str],
    num_bins: int,
) -> list[ColumnSpec]:
    """Column specs for every non-error column, inferring kinds as needed."""
    for name in [error_column, *drop, *numeric, *categorical]:
        if name and name not in table:
            raise ValidationError(f"column {name!r} not found in the CSV")
    specs = []
    for name, values in table.items():
        if name == error_column:
            continue
        if name in drop:
            specs.append(ColumnSpec(name, "drop"))
        elif name in categorical:
            specs.append(ColumnSpec(name, "categorical"))
        elif name in numeric or is_numeric_column(values):
            specs.append(ColumnSpec(name, "numeric", num_bins=num_bins))
        else:
            specs.append(ColumnSpec(name, "categorical"))
    return specs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SliceLine: find the top-K data slices where a model "
        "performs worse than overall.",
    )
    parser.add_argument("csv", help="headered CSV file with features + errors")
    parser.add_argument(
        "--error-column", required=True,
        help="name of the non-negative per-row error column",
    )
    parser.add_argument("--k", type=int, default=4, help="top-K (default 4)")
    parser.add_argument(
        "--alpha", type=float, default=0.95,
        help="error/size weight in (0,1] (default 0.95)",
    )
    parser.add_argument(
        "--sigma", type=int, default=None,
        help="minimum slice size (default max(32, n/100))",
    )
    parser.add_argument(
        "--max-level", type=int, default=None,
        help="lattice depth cap (default: number of features)",
    )
    parser.add_argument(
        "--drop", default="", help="comma-separated columns to ignore (IDs)"
    )
    parser.add_argument(
        "--numeric", default="",
        help="comma-separated columns to force equi-width binning on",
    )
    parser.add_argument(
        "--categorical", default="",
        help="comma-separated columns to force recoding on",
    )
    parser.add_argument(
        "--bins", type=int, default=10,
        help="bins per numeric column (default 10, as in the paper)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="print per-level pruning counters and the timed span tree",
    )
    parser.add_argument(
        "--trace-json", metavar="PATH", default=None,
        help="write the run's observability JSON (repro.obs/v1) to PATH",
    )
    parser.add_argument(
        "--trace-memory", action="store_true",
        help="with --trace/--trace-json: also record tracemalloc "
        "allocation high-water marks per span",
    )
    return parser


def _split(arg: str) -> list[str]:
    return [part for part in arg.split(",") if part]


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        table = read_csv_table(args.csv)
        if args.error_column not in table:
            raise ValidationError(
                f"error column {args.error_column!r} not in the CSV"
            )
        errors = table[args.error_column].astype(np.float64)
        specs = build_specs(
            table, args.error_column, _split(args.drop),
            _split(args.numeric), _split(args.categorical), args.bins,
        )
        encoded = Preprocessor(specs).fit_transform(table)
        tracing = args.trace or args.trace_json is not None
        finder = SliceLine(
            k=args.k, sigma=args.sigma, alpha=args.alpha,
            max_level=args.max_level,
            trace=("memory" if args.trace_memory else True) if tracing else None,
        )
        finder.fit(encoded.x0, errors, feature_names=encoded.feature_names)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    result = finder.result_
    if args.trace:
        print(counters_table(result.counters, title="per-level enumeration"))
        print("trace:")
        print(format_trace(result.trace))
    if args.trace_json is not None:
        try:
            write_json(result, args.trace_json)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"trace JSON written to {args.trace_json}")
    print(
        f"n={result.num_rows} rows, m={result.num_features} features, "
        f"l={result.num_onehot_columns} one-hot columns, "
        f"avg error={result.average_error:.4f}"
    )
    if not result.top_slices:
        print("no slice scores above 0 — the model has no concentrated "
              "weak spots at this sigma/alpha")
        return 0
    for rank, sl in enumerate(result.top_slices, start=1):
        desc = sl.describe(encoded.feature_names, encoded.value_labels)
        print(
            f"#{rank} score={sl.score:+.4f} size={sl.size} "
            f"avg_err={sl.average_error:.4f} :: {desc}"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
