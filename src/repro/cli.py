"""Command-line interface: slice finding over a CSV file.

Usage::

    python -m repro data.csv --error-column err --k 5 --alpha 0.95
    python -m repro data.csv --error-column err --drop id --numeric age,hours
    python -m repro monitor data.csv --error-column err --batch-size 256
    python -m repro serve jobs.json --workers 4 --status-json status.json

Reads a headered CSV (no pandas required), applies the paper's
preprocessing (categorical recoding, 10-bin equi-width binning of numeric
columns), runs SliceLine, and prints the decoded top-K slices.  Columns are
treated as numeric when every *non-empty* cell parses as a float unless
overridden; empty cells in numeric columns become the missing code ``0``.

``--trace`` additionally prints the per-level enumeration counters and the
span tree of the run; ``--trace-json PATH`` writes the full observability
document (``repro.obs/v1``, see EXPERIMENTS.md) for machine consumption.

The ``monitor`` subcommand replays the CSV's rows as a stream of
mini-batches through :class:`repro.streaming.SliceMonitor`, printing the
top-K slices and drift signals after every tick.
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import sys

import numpy as np

from repro.core import SliceLine, SliceLineConfig
from repro.datasets import replay_batches
from repro.exceptions import ReproError, ValidationError
from repro.obs import counters_table, format_trace, write_json
from repro.preprocessing import ColumnSpec, Preprocessor
from repro.resilience import BudgetConfig
from repro.streaming import SliceMonitor


def read_csv_table(path: str) -> dict[str, np.ndarray]:
    """Load a headered CSV into a column table of numpy arrays."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValidationError(f"{path} is empty") from None
        columns: list[list[str]] = [[] for _ in header]
        for row in reader:
            if len(row) != len(header):
                raise ValidationError(
                    f"{path}: row with {len(row)} cells, header has {len(header)}"
                )
            for cell, column in zip(row, columns):
                column.append(cell)
    if not columns[0]:
        raise ValidationError(f"{path} has a header but no data rows")
    return {name: np.asarray(col) for name, col in zip(header, columns)}


def is_numeric_column(values: np.ndarray) -> bool:
    """True when every *non-empty* cell parses as a float.

    Empty cells are the CSV's missing-value representation — they map to
    the encoding's missing code ``0`` downstream and must not flip an
    otherwise numeric column to categorical.  A column of only empty cells
    carries no numeric evidence and stays categorical.
    """
    present = [cell for cell in values.tolist() if str(cell).strip()]
    if not present:
        return False
    try:
        np.asarray(present, dtype=np.float64)
    except ValueError:
        return False
    return True


def build_specs(
    table: dict[str, np.ndarray],
    error_column: str,
    drop: list[str],
    numeric: list[str],
    categorical: list[str],
    num_bins: int,
) -> list[ColumnSpec]:
    """Column specs for every non-error column, inferring kinds as needed."""
    for name in [error_column, *drop, *numeric, *categorical]:
        if name and name not in table:
            raise ValidationError(f"column {name!r} not found in the CSV")
    specs = []
    for name, values in table.items():
        if name == error_column:
            continue
        if name in drop:
            specs.append(ColumnSpec(name, "drop"))
        elif name in categorical:
            specs.append(ColumnSpec(name, "categorical"))
        elif name in numeric or is_numeric_column(values):
            specs.append(ColumnSpec(name, "numeric", num_bins=num_bins))
        else:
            specs.append(ColumnSpec(name, "categorical"))
    return specs


def _add_budget_arguments(parser: argparse.ArgumentParser) -> None:
    """Anytime-budget flags shared by the batch and monitor commands."""
    parser.add_argument(
        "--deadline-s", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; a tripped run prints the best-so-far "
        "top-K as a partial result instead of failing",
    )
    parser.add_argument(
        "--max-candidates-per-level", type=int, default=None, metavar="N",
        help="stop (with a partial result) before evaluating a level that "
        "emitted more than N candidate slices",
    )
    parser.add_argument(
        "--max-memory-mb", type=float, default=None, metavar="MB",
        help="stop (with a partial result) before an evaluation whose "
        "estimated transient memory exceeds MB megabytes",
    )


def _budgets_from_args(args) -> BudgetConfig | None:
    if (
        args.deadline_s is None
        and args.max_candidates_per_level is None
        and args.max_memory_mb is None
    ):
        return None
    return BudgetConfig(
        deadline_s=args.deadline_s,
        max_candidates_per_level=args.max_candidates_per_level,
        max_memory_bytes=(
            int(args.max_memory_mb * 1e6)
            if args.max_memory_mb is not None
            else None
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SliceLine: find the top-K data slices where a model "
        "performs worse than overall.",
    )
    parser.add_argument("csv", help="headered CSV file with features + errors")
    parser.add_argument(
        "--error-column", required=True,
        help="name of the non-negative per-row error column",
    )
    parser.add_argument("--k", type=int, default=4, help="top-K (default 4)")
    parser.add_argument(
        "--alpha", type=float, default=0.95,
        help="error/size weight in (0,1] (default 0.95)",
    )
    parser.add_argument(
        "--sigma", type=int, default=None,
        help="minimum slice size (default max(32, n/100))",
    )
    parser.add_argument(
        "--max-level", type=int, default=None,
        help="lattice depth cap (default: number of features)",
    )
    parser.add_argument(
        "--drop", default="", help="comma-separated columns to ignore (IDs)"
    )
    parser.add_argument(
        "--numeric", default="",
        help="comma-separated columns to force equi-width binning on",
    )
    parser.add_argument(
        "--categorical", default="",
        help="comma-separated columns to force recoding on",
    )
    parser.add_argument(
        "--bins", type=int, default=10,
        help="bins per numeric column (default 10, as in the paper)",
    )
    parser.add_argument(
        "--no-compaction", action="store_true",
        help="disable per-level compaction of the evaluation matrix "
        "(results are identical; this only changes kernel speed)",
    )
    parser.add_argument(
        "--kernel-backend",
        choices=("auto", "sparse", "bitset", "incremental"),
        default="auto",
        help="evaluation-kernel backend; 'auto' picks per level via a cost "
        "model (results are identical; this only changes kernel speed)",
    )
    parser.add_argument(
        "--pair-parallelism", type=int, default=0,
        help="worker width of the pair-candidate pipeline; 0 follows the "
        "thread count, 1 forces serial (results are identical; this only "
        "changes enumeration speed)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="print per-level pruning counters and the timed span tree",
    )
    parser.add_argument(
        "--trace-json", metavar="PATH", default=None,
        help="write the run's observability JSON (repro.obs/v1) to PATH",
    )
    parser.add_argument(
        "--trace-memory", action="store_true",
        help="with --trace/--trace-json: also record tracemalloc "
        "allocation high-water marks per span",
    )
    _add_budget_arguments(parser)
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="write a repro.ckpt/v1 bundle after every completed level so "
        "an interrupted run can be resumed with --resume-from",
    )
    parser.add_argument(
        "--resume-from", metavar="PATH", default=None,
        help="resume from a checkpoint bundle (or the latest bundle in a "
        "checkpoint directory); requires the same CSV and parameters",
    )
    return parser


def build_monitor_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro monitor",
        description="Replay a CSV as a stream of mini-batches and monitor "
        "the top-K problematic slices tick by tick.",
    )
    parser.add_argument("csv", help="headered CSV file with features + errors")
    parser.add_argument(
        "--error-column", required=True,
        help="name of the non-negative per-row error column",
    )
    parser.add_argument(
        "--batch-size", type=int, default=256,
        help="rows per replayed mini-batch (default 256)",
    )
    parser.add_argument(
        "--window", type=int, default=4,
        help="batches per sliding window (default 4; ignored for tumbling)",
    )
    parser.add_argument(
        "--policy", choices=("sliding", "tumbling"), default="sliding",
        help="window policy (default sliding)",
    )
    parser.add_argument(
        "--tick-every", type=int, default=1,
        help="run a tick after every N ingested batches (default 1)",
    )
    parser.add_argument(
        "--cold", action="store_true",
        help="disable warm-started re-enumeration (results are identical; "
        "this only changes the amount of work per tick)",
    )
    parser.add_argument("--k", type=int, default=4, help="top-K (default 4)")
    parser.add_argument(
        "--alpha", type=float, default=0.95,
        help="error/size weight in (0,1] (default 0.95)",
    )
    parser.add_argument(
        "--sigma", type=int, default=None,
        help="minimum slice size (default max(32, n/100) per window)",
    )
    parser.add_argument(
        "--max-level", type=int, default=None,
        help="lattice depth cap (default: number of features)",
    )
    parser.add_argument(
        "--drop", default="", help="comma-separated columns to ignore (IDs)"
    )
    parser.add_argument(
        "--numeric", default="",
        help="comma-separated columns to force equi-width binning on",
    )
    parser.add_argument(
        "--categorical", default="",
        help="comma-separated columns to force recoding on",
    )
    parser.add_argument(
        "--bins", type=int, default=10,
        help="bins per numeric column (default 10, as in the paper)",
    )
    parser.add_argument(
        "--no-compaction", action="store_true",
        help="disable per-level compaction of the evaluation matrix "
        "(results are identical; this only changes kernel speed)",
    )
    parser.add_argument(
        "--kernel-backend",
        choices=("auto", "sparse", "bitset", "incremental"),
        default="auto",
        help="evaluation-kernel backend; 'auto' picks per level via a cost "
        "model (results are identical; this only changes kernel speed)",
    )
    parser.add_argument(
        "--pair-parallelism", type=int, default=0,
        help="worker width of the pair-candidate pipeline; 0 follows the "
        "thread count, 1 forces serial (results are identical; this only "
        "changes enumeration speed)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="print each tick's span tree (monitor.tick and nested runs)",
    )
    parser.add_argument(
        "--ticks-json", metavar="PATH", default=None,
        help="write every tick's repro.obs/v1 document (JSON list) to PATH",
    )
    _add_budget_arguments(parser)
    parser.add_argument(
        "--quarantine-dir", metavar="DIR", default=None,
        help="persist batches that fail validation (NaN/inf errors, shape "
        "or encoding mismatches) to DIR as .npz + .json pairs",
    )
    return parser


def monitor_main(argv: list[str]) -> int:
    args = build_monitor_parser().parse_args(argv)
    try:
        if args.batch_size < 1:
            raise ValidationError("--batch-size must be >= 1")
        if args.tick_every < 1:
            raise ValidationError("--tick-every must be >= 1")
        table = read_csv_table(args.csv)
        if args.error_column not in table:
            raise ValidationError(
                f"error column {args.error_column!r} not in the CSV"
            )
        errors = table[args.error_column].astype(np.float64)
        specs = build_specs(
            table, args.error_column, _split(args.drop),
            _split(args.numeric), _split(args.categorical), args.bins,
        )
        encoded = Preprocessor(specs).fit_transform(table)
        config = SliceLineConfig(
            k=args.k, sigma=args.sigma, alpha=args.alpha,
            max_level=args.max_level, compaction=not args.no_compaction,
            kernel_backend=args.kernel_backend,
            pair_parallelism=args.pair_parallelism,
        )
        monitor = SliceMonitor(
            config=config,
            window_size=args.window if args.policy == "sliding" else None,
            policy=args.policy,
            warm_start=not args.cold,
            trace=True if args.trace else None,
            quarantine_dir=args.quarantine_dir,
            budgets=_budgets_from_args(args),
        )
        pending = 0
        for batch in replay_batches(encoded.x0, errors, args.batch_size):
            record = monitor.ingest(batch)
            if record is not None:
                print(
                    f"quarantined batch {record.batch_id}: "
                    f"{record.reason} ({record.detail})"
                )
                continue
            pending += 1
            if pending % args.tick_every == 0:
                _print_tick(monitor.tick(), encoded)
                pending = 0
        if pending and len(monitor.window):
            _print_tick(monitor.tick(), encoded)
        if not monitor.ticks:
            raise ValidationError("the CSV produced no batches to monitor")
        if len(monitor.quarantine):
            print(
                f"{len(monitor.quarantine)} batch(es) quarantined: "
                + ", ".join(
                    f"{reason} x{count}"
                    for reason, count in sorted(
                        monitor.quarantine.reasons().items()
                    )
                )
            )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.trace:
        print("trace:")
        print(format_trace(monitor.tracer))
    if args.ticks_json is not None:
        try:
            with open(args.ticks_json, "w") as handle:
                json.dump(
                    [tick.to_obs_dict() for tick in monitor.ticks],
                    handle, indent=2, sort_keys=True,
                )
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"tick JSON written to {args.ticks_json}")
    return 0


def _print_tick(tick, encoded) -> None:
    warm = tick.warm_start
    warm_note = (
        f" warm={warm.hits}/{warm.requested} seed hits" if warm is not None else ""
    )
    print(
        f"tick {tick.index}: {tick.num_rows} rows in {tick.num_batches} "
        f"batch(es), {tick.seconds:.3f}s{warm_note}"
    )
    if not tick.top_slices:
        print("  no slice scores above 0 in this window")
    for rank, sl in enumerate(tick.top_slices, start=1):
        desc = sl.describe(encoded.feature_names, encoded.value_labels)
        print(
            f"  #{rank} score={sl.score:+.4f} size={sl.size} "
            f"avg_err={sl.average_error:.4f} :: {desc}"
        )
    for signal in tick.degraded_slices():
        desc = signal.slice.describe(encoded.feature_names, encoded.value_labels)
        print(
            f"  drift: {desc} mean error "
            f"{signal.baseline_mean_error:.4f} -> {signal.current_mean_error:.4f} "
            f"(p={signal.p_value:.4f})"
        )


def _split(arg: str) -> list[str]:
    return [part for part in arg.split(",") if part]


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run declarative slice-finding job files (JSON/TOML, "
        "skll-style defaults + jobs) through the multi-tenant job service: "
        "admission control, fingerprint-keyed result caching, and "
        "suspend/resume scheduling.",
    )
    parser.add_argument(
        "jobs", nargs="+", metavar="PATH",
        help="job file(s) (.json/.toml) and/or directories of job files",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker-thread pool width (default 2)",
    )
    parser.add_argument(
        "--cache-entries", type=int, default=64,
        help="result-cache capacity in entries (default 64)",
    )
    parser.add_argument(
        "--cache-bytes", type=int, default=None, metavar="BYTES",
        help="byte bound on the result cache (size-aware eviction of the "
        "serialized entries; default: unbounded)",
    )
    parser.add_argument(
        "--workdir", metavar="DIR", default=None,
        help="directory for per-job checkpoint trees (default: a fresh "
        "temporary directory)",
    )
    parser.add_argument(
        "--state-dir", metavar="DIR", default=None,
        help="durable state root (repro.wal/v1 job journal + disk-backed "
        "result cache); restarting over the same directory recovers "
        "completed results and resumes in-flight jobs",
    )
    parser.add_argument(
        "--process-workers", action="store_true",
        help="run find jobs in supervised spawned worker processes "
        "(survives worker SIGKILL) instead of threads",
    )
    parser.add_argument(
        "--heartbeat-timeout", type=float, default=30.0, metavar="SECONDS",
        help="kill a worker process silent for this long (process "
        "workers only; default 30)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="overall deadline for the batch (default: wait forever)",
    )
    parser.add_argument(
        "--no-preemption", action="store_true",
        help="never suspend running batch jobs for interactive ones",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="record a per-job span tree (serve.* plus the inner run)",
    )
    parser.add_argument(
        "--status-json", metavar="PATH", default=None,
        help="write the final repro.serve/v1 status document to PATH",
    )
    return parser


def serve_main(argv: list[str]) -> int:
    # Local import: the serving layer pulls in threading machinery the
    # plain one-shot CLI paths never need.
    from repro.serve import SliceService, load_job_dir, load_job_file

    args = build_serve_parser().parse_args(argv)
    try:
        specs = []
        for path in args.jobs:
            if os.path.isdir(path):
                specs.extend(load_job_dir(path))
            else:
                specs.extend(load_job_file(path))
        service = SliceService(
            num_workers=args.workers,
            cache_entries=args.cache_entries,
            cache_bytes=args.cache_bytes,
            workdir=args.workdir,
            trace=args.trace,
            preemption=not args.no_preemption,
            state_dir=args.state_dir,
            worker_mode="process" if args.process_workers else "thread",
            heartbeat_timeout_s=args.heartbeat_timeout,
            start=False,
        )
        recovered = [
            record
            for record in service.jobs.values()
            if record.recovered and not record.terminal
        ]
        if recovered:
            print(
                f"recovered {len(recovered)} unfinished job(s) from "
                f"{args.state_dir}"
            )
        service.start()
        records = [service.submit(spec) for spec in specs]
        finished = service.wait(timeout=args.timeout)
        service.shutdown()
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not finished:
        print(
            f"error: jobs still unfinished after {args.timeout}s",
            file=sys.stderr,
        )
        return 2

    failures = 0
    for record in records:
        label = record.spec.name or record.job_id
        notes = []
        if record.cache_hit:
            notes.append("cache hit")
        if record.warm_seeds:
            notes.append(f"warm-started ({len(record.warm_seeds)} seeds)")
        if record.preemptions:
            notes.append(
                f"preempted x{record.preemptions}, "
                f"resumed x{record.resumes}"
            )
        note = f" [{', '.join(notes)}]" if notes else ""
        if record.state == "completed" and record.result is not None:
            top = record.result.top_slices
            best = f"best score {top[0].score:+.4f}" if top else "no slices"
            print(
                f"{label}: completed, {len(top)} slice(s), {best}{note}"
            )
        else:
            failures += 1
            why = record.reason or record.error or record.state
            print(f"{label}: {record.state} ({why}){note}")
    stats = service.stats()
    cache = stats["cache"]
    hits = stats["events"].get("serve.cache_hits", 0)
    print(
        f"{len(records)} job(s); cache {hits} hit(s) / "
        f"{cache['misses']} miss(es), {cache['entries']} entr(ies)"
    )
    if args.status_json is not None:
        try:
            with open(args.status_json, "w") as handle:
                json.dump(
                    service.status_document(), handle, indent=2,
                    sort_keys=True,
                )
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"status JSON written to {args.status_json}")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "monitor":
        return monitor_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        table = read_csv_table(args.csv)
        if args.error_column not in table:
            raise ValidationError(
                f"error column {args.error_column!r} not in the CSV"
            )
        errors = table[args.error_column].astype(np.float64)
        specs = build_specs(
            table, args.error_column, _split(args.drop),
            _split(args.numeric), _split(args.categorical), args.bins,
        )
        encoded = Preprocessor(specs).fit_transform(table)
        tracing = args.trace or args.trace_json is not None
        finder = SliceLine(
            k=args.k, sigma=args.sigma, alpha=args.alpha,
            max_level=args.max_level, compaction=not args.no_compaction,
            kernel_backend=args.kernel_backend,
            pair_parallelism=args.pair_parallelism,
            trace=("memory" if args.trace_memory else True) if tracing else None,
            budgets=_budgets_from_args(args),
            checkpoint_dir=args.checkpoint_dir,
        )
        finder.fit(
            encoded.x0, errors, feature_names=encoded.feature_names,
            resume_from=args.resume_from,
        )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    result = finder.result_
    if args.trace:
        print(counters_table(result.counters, title="per-level enumeration"))
        print("trace:")
        print(format_trace(result.trace))
    if args.trace_json is not None:
        try:
            write_json(result, args.trace_json)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"trace JSON written to {args.trace_json}")
    print(
        f"n={result.num_rows} rows, m={result.num_features} features, "
        f"l={result.num_onehot_columns} one-hot columns, "
        f"avg error={result.average_error:.4f}"
    )
    if not result.completed and result.budget_trip is not None:
        trip = result.budget_trip
        print(
            f"partial result: {trip.budget} budget tripped at level "
            f"{trip.level} ({trip.detail}); the top-K below is the exact "
            "best of everything evaluated before the stop"
        )
    if not result.top_slices:
        print("no slice scores above 0 — the model has no concentrated "
              "weak spots at this sigma/alpha")
        return 0
    for rank, sl in enumerate(result.top_slices, start=1):
        desc = sl.describe(encoded.feature_names, encoded.value_labels)
        print(
            f"#{rank} score={sl.score:+.4f} size={sl.size} "
            f"avg_err={sl.average_error:.4f} :: {desc}"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
