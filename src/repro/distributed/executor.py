"""Executors realizing the paper's parallelization strategies locally.

Every executor exposes one method, :meth:`Executor.evaluate`, that computes
the per-slice statistics ``R`` for a set of candidate slices — the hot loop
of Algorithm 1 (lines 16-18).  The strategies differ in *how* the work is
scheduled:

* :class:`SerialExecutor` — reference single-threaded execution.
* :class:`MTOpsExecutor` — one data-parallel operation at a time over row
  partitions with a barrier per operation (SystemDS "MT-Ops").
* :class:`MTPForExecutor` — a parallel for-loop over slice blocks with no
  per-operation barriers (SystemDS "MT-PFor").
* :class:`DistributedPForExecutor` — slice blocks dispatched to simulated
  workers that own row partitions (broadcast-S, scan-local-X), surcharged
  by a :class:`~repro.distributed.simulate.ClusterCostModel` to account for
  broadcast/aggregation overheads the local simulation does not incur.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.evaluate import evaluate_block
from repro.core.scoring import score
from repro.core.types import stats_matrix
from repro.exceptions import ExecutionError, ValidationError
from repro.linalg import BlockedMatrix, as_csr, ensure_vector
from repro.distributed.partition import partition_work
from repro.obs import NULL_TRACER
from repro.resilience.chaos import ChaosInjector
from repro.resilience.retry import RetryPolicy, RetryStats, map_with_retries


class Executor:
    """Interface: compute the statistics matrix ``R`` for candidate slices.

    Every implementation reports one ``executor.<name>.evaluate`` span into
    the *tracer* (default: the shared no-op tracer) so scheduling strategies
    can be compared through the same observability pipeline as the driver.
    """

    name = "abstract"

    def evaluate(
        self,
        x_onehot: sp.csr_matrix,
        errors: np.ndarray,
        slices: sp.csr_matrix,
        level: int,
        alpha: float,
        tracer=NULL_TRACER,
    ) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _finalize(
        sizes: np.ndarray,
        slice_errors: np.ndarray,
        max_errors: np.ndarray,
        num_rows: int,
        total_error: float,
        alpha: float,
    ) -> np.ndarray:
        scores = score(sizes, slice_errors, num_rows, total_error, alpha)
        return stats_matrix(scores, slice_errors, max_errors, sizes)


@dataclass
class SerialExecutor(Executor):
    """Single-threaded reference execution (one data-parallel op)."""

    block_size: int = 16
    name = "serial"

    def evaluate(self, x_onehot, errors, slices, level, alpha, tracer=NULL_TRACER):
        errors = ensure_vector(errors, x_onehot.shape[0], "errors")
        slices = as_csr(slices)
        with tracer.span(
            "executor.serial.evaluate",
            num_slices=slices.shape[0],
            block_size=self.block_size,
        ):
            partials = [
                evaluate_block(x_onehot, errors, slices[r.start : r.stop], level)
                for r in partition_work(
                    slices.shape[0], max(1, -(-slices.shape[0] // self.block_size))
                )
            ]
            return self._concat(partials, x_onehot, errors, alpha)

    def _concat(self, partials, x_onehot, errors, alpha):
        if not partials:
            return np.zeros((0, 4))
        sizes = np.concatenate([p[0] for p in partials])
        slice_errors = np.concatenate([p[1] for p in partials])
        max_errors = np.concatenate([p[2] for p in partials])
        return self._finalize(
            sizes, slice_errors, max_errors, x_onehot.shape[0],
            float(errors.sum()), alpha,
        )


@dataclass
class MTOpsExecutor(Executor):
    """Multi-threaded *operations*: row-partition parallelism, per-op barrier.

    Each logical operation (the matmul/indicator, the size reduction, the
    error reduction, the max reduction) runs in parallel over row partitions
    of ``X`` and joins at a barrier before the next operation starts — the
    utilization loss the paper measures against MT-PFor.
    """

    num_threads: int = 4
    name = "mt-ops"

    def evaluate(self, x_onehot, errors, slices, level, alpha, tracer=NULL_TRACER):
        if self.num_threads < 1:
            raise ValidationError("num_threads must be >= 1")
        errors = ensure_vector(errors, x_onehot.shape[0], "errors")
        slices = as_csr(slices)
        blocked = BlockedMatrix.from_matrix(x_onehot, self.num_threads)
        ranges = blocked.block_row_ranges()
        st = slices.T.tocsc()

        with tracer.span(
            "executor.mt-ops.evaluate",
            num_slices=slices.shape[0],
            threads=self.num_threads,
            partitions=len(blocked.blocks),
        ), ThreadPoolExecutor(max_workers=self.num_threads) as pool:
            # Operation 1 (barrier): indicator per row partition.
            from repro.core.evaluate import indicator_equal

            with tracer.span("mt-ops.indicator"):
                products = list(
                    pool.map(
                        lambda blk: indicator_equal(blk @ st, level), blocked.blocks
                    )
                )
            # Operation 2 (barrier): partial sizes.
            with tracer.span("mt-ops.sizes"):
                sizes = np.sum(
                    list(
                        pool.map(
                            lambda ind: np.asarray(ind.sum(axis=0)).ravel(), products
                        )
                    ),
                    axis=0,
                )
            # Operation 3 (barrier): partial errors.
            errs = [errors[start:stop] for start, stop in ranges]
            with tracer.span("mt-ops.errors"):
                slice_errors = np.sum(
                    list(
                        pool.map(
                            lambda pair: np.asarray(pair[0].T @ pair[1]).ravel(),
                            zip(products, errs),
                        )
                    ),
                    axis=0,
                )
            # Operation 4 (barrier): partial max errors.
            with tracer.span("mt-ops.max_errors"):
                max_errors = np.max(
                    list(
                        pool.map(
                            lambda pair: (
                                np.asarray(
                                    pair[0].multiply(pair[1][:, np.newaxis]).max(axis=0).todense()
                                ).ravel()
                                if pair[0].nnz
                                else np.zeros(pair[0].shape[1])
                            ),
                            zip(products, errs),
                        )
                    ),
                    axis=0,
                )
        return self._finalize(
            sizes, slice_errors, max_errors, x_onehot.shape[0],
            float(errors.sum()), alpha,
        )


@dataclass
class MTPForExecutor(Executor):
    """Multi-threaded parallel for-loop over slice blocks (no op barriers).

    Each worker owns a block of slices end to end (indicator + all three
    reductions), so there is exactly one join at the very end — the ~2x
    utilization win of Figure 7(b).
    """

    num_threads: int = 4
    block_size: int = 16
    name = "mt-pfor"

    def evaluate(self, x_onehot, errors, slices, level, alpha, tracer=NULL_TRACER):
        if self.num_threads < 1:
            raise ValidationError("num_threads must be >= 1")
        errors = ensure_vector(errors, x_onehot.shape[0], "errors")
        slices = as_csr(slices)
        num_slices = slices.shape[0]
        blocks = [
            slices[start : min(start + self.block_size, num_slices)]
            for start in range(0, num_slices, self.block_size)
        ]
        if not blocks:
            return np.zeros((0, 4))
        with tracer.span(
            "executor.mt-pfor.evaluate",
            num_slices=num_slices,
            threads=self.num_threads,
            blocks=len(blocks),
        ), ThreadPoolExecutor(max_workers=self.num_threads) as pool:
            partials = list(
                pool.map(lambda blk: evaluate_block(x_onehot, errors, blk, level), blocks)
            )
        sizes = np.concatenate([p[0] for p in partials])
        slice_errors = np.concatenate([p[1] for p in partials])
        max_errors = np.concatenate([p[2] for p in partials])
        return self._finalize(
            sizes, slice_errors, max_errors, x_onehot.shape[0],
            float(errors.sum()), alpha,
        )


@dataclass
class DistributedPForExecutor(Executor):
    """Simulated cluster execution: broadcast S, scan row partitions locally.

    ``X`` is partitioned over ``num_nodes * executors_per_node`` simulated
    workers (threads).  Every worker computes partial (size, error, max)
    vectors for *all* slices on its row partition — the broadcast-based
    distributed matmul of Section 4.4 — and partials are tree-aggregated.
    An optional :class:`ClusterCostModel` converts the measured local time
    into a simulated cluster time including broadcast/aggregation overheads
    (used by the Figure 7(b) benchmark; the returned ``R`` is exact either
    way).

    Fault tolerance: with a :class:`~repro.resilience.RetryPolicy`, each
    partition task is retried with exponential backoff on failure and
    speculatively reassigned past ``straggler_timeout_s``.  Partition tasks
    are *pure* (each scans an immutable row partition) and partials are
    reduced **in partition order** regardless of completion order, so the
    returned ``R`` is bitwise identical to a fault-free run — retries change
    only wall-clock time, never statistics.  The optional
    :class:`~repro.resilience.ChaosInjector` deterministically injects
    worker failures/delays for testing exactly that guarantee;
    ``last_retry_stats`` records what fault handling did on the most recent
    evaluate call.
    """

    num_nodes: int = 4
    executors_per_node: int = 2
    retry: RetryPolicy | None = None
    chaos: ChaosInjector | None = None
    name = "dist-pfor"

    def __post_init__(self) -> None:
        self.last_retry_stats: RetryStats | None = None

    def evaluate(self, x_onehot, errors, slices, level, alpha, tracer=NULL_TRACER):
        workers = self.num_nodes * self.executors_per_node
        if workers < 1:
            raise ExecutionError("at least one simulated worker is required")
        errors = ensure_vector(errors, x_onehot.shape[0], "errors")
        slices = as_csr(slices)
        blocked = BlockedMatrix.from_matrix(x_onehot, workers)
        ranges = blocked.block_row_ranges()
        st = slices.T.tocsc()

        def worker(args):
            block, (start, stop) = args
            from repro.core.evaluate import indicator_equal

            indicator = indicator_equal(block @ st, level)
            local_errors = errors[start:stop]
            partial_sizes = np.asarray(indicator.sum(axis=0)).ravel()
            partial_errors = np.asarray(indicator.T @ local_errors).ravel()
            if indicator.nnz:
                partial_max = np.asarray(
                    indicator.multiply(local_errors[:, np.newaxis]).max(axis=0).todense()
                ).ravel()
            else:
                partial_max = np.zeros(indicator.shape[1])
            return partial_sizes, partial_errors, partial_max

        if self.retry is not None or self.chaos is not None:
            chaos = self.chaos

            def task(pair, attempt):
                index, payload = pair
                if chaos is not None:
                    chaos.perturb(("dist-pfor", index), attempt)
                return worker(payload)

            with tracer.span(
                "executor.dist-pfor.evaluate",
                num_slices=slices.shape[0],
                workers=workers,
                num_nodes=self.num_nodes,
            ) as span:
                partials, retry_stats = map_with_retries(
                    task,
                    list(enumerate(zip(blocked.blocks, ranges))),
                    policy=self.retry,
                    num_threads=workers,
                    task_name="dist-pfor partition",
                )
                retry_stats.merge_into(tracer_span=span)
            self.last_retry_stats = retry_stats
        else:
            with tracer.span(
                "executor.dist-pfor.evaluate",
                num_slices=slices.shape[0],
                workers=workers,
                num_nodes=self.num_nodes,
            ), ThreadPoolExecutor(max_workers=workers) as pool:
                partials = list(pool.map(worker, zip(blocked.blocks, ranges)))
        sizes = np.sum([p[0] for p in partials], axis=0)
        slice_errors = np.sum([p[1] for p in partials], axis=0)
        max_errors = np.max([p[2] for p in partials], axis=0)
        return self._finalize(
            sizes, slice_errors, max_errors, x_onehot.shape[0],
            float(errors.sum()), alpha,
        )


def make_executor(strategy: str, **kwargs) -> Executor:
    """Factory: ``serial`` / ``mt-ops`` / ``mt-pfor`` / ``dist-pfor``."""
    registry = {
        "serial": SerialExecutor,
        "mt-ops": MTOpsExecutor,
        "mt-pfor": MTPForExecutor,
        "dist-pfor": DistributedPForExecutor,
    }
    if strategy not in registry:
        raise ExecutionError(
            f"unknown strategy {strategy!r}; expected one of {sorted(registry)}"
        )
    return registry[strategy](**kwargs)
