"""Analytic cluster cost model for the Figure 7(b) strategy comparison.

A thread pool on one machine cannot exhibit network broadcast or Spark
job-submission latencies, so the benchmark pairs the local executors with
this cost model: given the work profile of a slice-evaluation round, it
predicts the elapsed time of each strategy on a cluster of the paper's
shape (1+12 nodes, 32 vcores each).  The constants are chosen so the
*relations* the paper reports hold — MT-PFor ~2x over MT-Ops (barrier
removal), Dist-PFor ~1.9x over MT-PFor (12 nodes minus overheads and a
serial fraction) — which is the reproducible content of the figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of the simulated cluster (defaults: the paper's scale-out)."""

    num_nodes: int = 12
    cores_per_node: int = 32
    #: one-off context/session creation cost (Spark context, s)
    context_startup_seconds: float = 3.0
    #: broadcast cost per MB of the slice matrix (s/MB)
    broadcast_seconds_per_mb: float = 0.02
    #: result aggregation cost per MB of partial statistics (s/MB)
    aggregation_seconds_per_mb: float = 0.05
    #: per-job scheduling latency (s)
    job_latency_seconds: float = 0.1

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.cores_per_node < 1:
            raise ValidationError("cluster must have >= 1 node and core")


@dataclass(frozen=True)
class WorkProfile:
    """The work of one slice-evaluation round, measured locally."""

    serial_compute_seconds: float
    #: fraction of the round that is inherently serial (enumeration, top-K)
    serial_fraction: float = 0.08
    #: number of per-operation barriers in MT-Ops style execution
    num_operation_barriers: int = 4
    #: per-barrier synchronization cost as a fraction of the parallel work
    barrier_overhead_fraction: float = 0.12
    slice_matrix_mb: float = 1.0
    stats_mb: float = 0.5
    num_jobs: int = 1


class ClusterCostModel:
    """Predict elapsed seconds per strategy for a measured work profile."""

    def __init__(self, spec: ClusterSpec | None = None) -> None:
        self.spec = spec or ClusterSpec()

    def mt_ops_seconds(self, work: WorkProfile, num_threads: int) -> float:
        """Multi-threaded ops: Amdahl plus a per-operation barrier penalty."""
        parallel = work.serial_compute_seconds * (1.0 - work.serial_fraction)
        serial = work.serial_compute_seconds * work.serial_fraction
        barrier_penalty = (
            parallel * work.barrier_overhead_fraction * work.num_operation_barriers
        )
        return serial + parallel / max(1, num_threads) + barrier_penalty

    def mt_pfor_seconds(self, work: WorkProfile, num_threads: int) -> float:
        """Parallel for-loop: a single join, no per-op barriers."""
        parallel = work.serial_compute_seconds * (1.0 - work.serial_fraction)
        serial = work.serial_compute_seconds * work.serial_fraction
        barrier_penalty = parallel * work.barrier_overhead_fraction
        return serial + parallel / max(1, num_threads) + barrier_penalty

    def dist_pfor_seconds(self, work: WorkProfile, num_threads: int) -> float:
        """Distributed parallel for: all nodes, plus cluster overheads."""
        spec = self.spec
        total_cores = spec.num_nodes * spec.cores_per_node
        parallel = work.serial_compute_seconds * (1.0 - work.serial_fraction)
        serial = work.serial_compute_seconds * work.serial_fraction
        overhead = (
            spec.context_startup_seconds
            + work.num_jobs * spec.job_latency_seconds
            + work.slice_matrix_mb * spec.broadcast_seconds_per_mb * spec.num_nodes
            + work.stats_mb * spec.aggregation_seconds_per_mb
        )
        del num_threads  # the cluster uses its own core count
        return serial + parallel / total_cores + overhead

    def compare(
        self, work: WorkProfile, num_threads: int = 32
    ) -> dict[str, float]:
        """Elapsed seconds per strategy for one work profile."""
        return {
            "mt-ops": self.mt_ops_seconds(work, num_threads),
            "mt-pfor": self.mt_pfor_seconds(work, num_threads),
            "dist-pfor": self.dist_pfor_seconds(work, num_threads),
        }
