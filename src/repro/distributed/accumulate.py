"""Per-partition slice accumulators merged at the driver (streaming scale-out).

The Dist-PFor strategy of the paper broadcasts the slice matrix and scans
row partitions data-locally; the streaming analogue broadcasts the *tracked
slice set* and has each partition build a
:class:`~repro.streaming.MergeableSliceStats`, which the driver reduces with
the exact associative ``merge()``.  Because the accumulator statistics are
sums/maxes, the reduction is equivalent to evaluating the slices on the
unpartitioned data — this is what lets a cluster feed one monitor without
approximation.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

import numpy as np

from repro.core.onehot import FeatureSpace, validate_encoded_matrix
from repro.core.types import Slice
from repro.distributed.partition import partition_work
from repro.linalg import ensure_vector
from repro.obs import NULL_TRACER
from repro.resilience.chaos import ChaosInjector
from repro.resilience.retry import RetryPolicy, map_with_retries
from repro.streaming.accumulator import MergeableSliceStats, merge_stats


def partitioned_slice_stats(
    x0: np.ndarray,
    errors: np.ndarray,
    slices: Sequence[Slice],
    num_partitions: int,
    feature_space: FeatureSpace | None = None,
    num_threads: int = 1,
    tracer=NULL_TRACER,
    retry: RetryPolicy | None = None,
    chaos: ChaosInjector | None = None,
) -> MergeableSliceStats:
    """Evaluate *slices* over row partitions and reduce-merge at the driver.

    The result is exactly :meth:`MergeableSliceStats.from_batch` on the whole
    data (bitwise for integer sizes/maxima and dyadic-rational errors).  A
    shared *feature_space* is derived from the full ``x0`` when omitted so
    every partition encodes identically; *num_threads* > 1 evaluates
    partitions concurrently (scipy's matmul releases the GIL).

    With a *retry* policy, failed partition tasks are re-executed with
    backoff and stragglers are speculatively reassigned; the partials are
    left-folded **in partition order** regardless of completion/retry order,
    so — combined with the exact associative ``merge()`` — the merged
    statistics are unaffected by which attempts happened to succeed.
    *chaos* deterministically injects partition failures for testing that
    guarantee.
    """
    x0 = validate_encoded_matrix(x0, allow_missing=True)
    errors = ensure_vector(errors, x0.shape[0], "errors")
    space = feature_space or FeatureSpace.from_matrix(x0)
    ranges = partition_work(x0.shape[0], num_partitions)
    with tracer.span(
        "distributed.accumulate",
        partitions=len(ranges),
        num_slices=len(slices),
        rows=int(x0.shape[0]),
    ) as span:
        def one_partition(rows: range) -> MergeableSliceStats:
            index = np.arange(rows.start, rows.stop)
            return MergeableSliceStats.from_batch(
                x0[index], errors[index], slices, feature_space=space
            )

        if retry is not None or chaos is not None:
            def task(pair, attempt):
                index, rows = pair
                if chaos is not None:
                    chaos.perturb(("accumulate", index), attempt)
                return one_partition(rows)

            partials, retry_stats = map_with_retries(
                task,
                list(enumerate(ranges)),
                policy=retry,
                num_threads=num_threads,
                task_name="accumulate partition",
            )
            retry_stats.merge_into(tracer_span=span)
        elif num_threads > 1 and len(ranges) > 1:
            with ThreadPoolExecutor(max_workers=num_threads) as pool:
                partials = list(pool.map(one_partition, ranges))
        else:
            partials = [one_partition(rows) for rows in ranges]
    if not partials:
        return MergeableSliceStats.empty(len(slices))
    return merge_stats(partials)


__all__ = ["partitioned_slice_stats"]
