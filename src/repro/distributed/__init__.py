"""Simulated distributed execution for the scalability experiments.

The paper evaluates three parallelization strategies (Figure 7(b)):

* **MT-Ops** — multi-threaded operations only: each linear-algebra op is
  parallel internally but a barrier separates consecutive ops.
* **MT-PFor** — multi-threaded ops *plus* a parallel for-loop over slices,
  avoiding per-op barriers and reaching higher utilization (~2x).
* **Dist-PFor** — the parallel for-loop dispatched over cluster nodes with
  broadcast slices and data-local scans (~1.9x more), minus Spark context,
  broadcast, and aggregation overheads and a serial fraction.

We reproduce the *strategy semantics* with local executors
(:mod:`repro.distributed.executor`) over row partitions
(:mod:`repro.linalg.blocks`), and the *cluster effects* with an analytic
cost model (:mod:`repro.distributed.simulate`).
"""

from repro.distributed.accumulate import partitioned_slice_stats
from repro.distributed.executor import (
    DistributedPForExecutor,
    Executor,
    MTOpsExecutor,
    MTPForExecutor,
    SerialExecutor,
    make_executor,
)
from repro.distributed.partition import partition_work
from repro.distributed.simulate import ClusterCostModel, ClusterSpec

__all__ = [
    "DistributedPForExecutor",
    "Executor",
    "MTOpsExecutor",
    "MTPForExecutor",
    "SerialExecutor",
    "make_executor",
    "partition_work",
    "partitioned_slice_stats",
    "ClusterCostModel",
    "ClusterSpec",
]
