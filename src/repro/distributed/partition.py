"""Work partitioning helpers for the parallel executors."""

from __future__ import annotations

from repro.exceptions import ValidationError


def partition_work(num_items: int, num_workers: int) -> list[range]:
    """Split ``range(num_items)`` into at most *num_workers* balanced ranges.

    Sizes differ by at most one; empty ranges are dropped.  This is the
    slice-level analogue of :func:`repro.linalg.blocks.row_partitions`.
    """
    if num_workers < 1:
        raise ValidationError("num_workers must be >= 1")
    if num_items < 0:
        raise ValidationError("num_items must be >= 0")
    base, extra = divmod(num_items, num_workers)
    ranges: list[range] = []
    start = 0
    for worker in range(num_workers):
        size = base + (1 if worker < extra else 0)
        if size == 0:
            continue
        ranges.append(range(start, start + size))
        start += size
    return ranges
