"""Exception hierarchy for the SliceLine reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ValidationError(ReproError, ValueError):
    """An input (matrix, vector, or parameter) failed validation."""


class ShapeError(ValidationError):
    """Two inputs have incompatible shapes (e.g. ``X`` rows vs ``e`` length)."""


class EncodingError(ReproError, ValueError):
    """Integer-encoded feature matrix violates the 1-based contiguous contract."""


class ConfigError(ReproError, ValueError):
    """A configuration object holds an invalid combination of parameters."""


class DatasetError(ReproError, RuntimeError):
    """A synthetic dataset generator was asked for an impossible schema."""


class ExecutionError(ReproError, RuntimeError):
    """A parallel or distributed execution backend failed."""


class StreamingError(ReproError, RuntimeError):
    """A streaming monitor was driven with inconsistent batches or state."""
