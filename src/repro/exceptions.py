"""Exception hierarchy for the SliceLine reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ValidationError(ReproError, ValueError):
    """An input (matrix, vector, or parameter) failed validation."""


class ShapeError(ValidationError):
    """Two inputs have incompatible shapes (e.g. ``X`` rows vs ``e`` length)."""


class EncodingError(ReproError, ValueError):
    """Integer-encoded feature matrix violates the 1-based contiguous contract."""


class ConfigError(ReproError, ValueError):
    """A configuration object holds an invalid combination of parameters."""


class DatasetError(ReproError, RuntimeError):
    """A synthetic dataset generator was asked for an impossible schema."""


class ExecutionError(ReproError, RuntimeError):
    """A parallel or distributed execution backend failed."""


class StreamingError(ReproError, RuntimeError):
    """A streaming monitor was driven with inconsistent batches or state."""


class InvalidErrorsError(ShapeError):
    """The error vector ``e`` violates its contract (NaN/inf/negative).

    Subclasses :class:`ShapeError` for backward compatibility: negative
    errors historically raised ``ShapeError`` and callers may catch that.
    """


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint bundle is unreadable, incompatible, or stale.

    Raised when a ``repro.ckpt/v1`` bundle fails to load, carries an
    unknown version, or does not match the data/config of the run asked to
    resume from it.
    """


class ServeError(ReproError, RuntimeError):
    """A job-service operation failed (unknown job, failed job, timeout).

    Raised by :class:`~repro.serve.SliceService` when a caller asks for a
    job the service does not know, waits past a timeout, or requests the
    result of a job that failed, was cancelled, or was rejected.
    """
