"""Tests for the experiment harness, workloads, and recorders."""

import numpy as np

from repro.core import SliceLineConfig
from repro.datasets import load_dataset
from repro.experiments import (
    bench_config,
    bench_sigma,
    format_table,
    records_to_csv,
    run_pruning_ablation,
    run_sliceline,
)
from repro.experiments.workloads import ALPHA_SWEEP_VALUES, BENCH_LEVEL_CAPS


class TestWorkloads:
    def test_bench_sigma(self):
        assert bench_sigma(1000) == 10
        assert bench_sigma(101) == 2
        assert bench_sigma(1) == 1

    def test_bench_config_defaults(self):
        cfg = bench_config("adult", 32_561)
        assert cfg.alpha == 0.95
        assert cfg.sigma == 326
        assert cfg.max_level == 3

    def test_bench_config_overrides(self):
        cfg = bench_config("adult", 1000, alpha=0.5, max_level=2)
        assert cfg.alpha == 0.5 and cfg.max_level == 2

    def test_alpha_sweep_matches_paper(self):
        assert ALPHA_SWEEP_VALUES == (0.36, 0.68, 0.84, 0.92, 0.96, 0.98, 0.99)

    def test_all_datasets_have_caps(self):
        from repro.datasets.registry import DATASET_NAMES
        assert set(BENCH_LEVEL_CAPS) == set(DATASET_NAMES)


class TestHarness:
    def test_run_sliceline_report(self, planted_dataset):
        x0, errors, _ = planted_dataset
        result, report = run_sliceline(
            x0, errors, SliceLineConfig(k=4, sigma=10), dataset="unit"
        )
        assert report.dataset == "unit"
        assert report.levels[0] == 1
        assert report.total_evaluated == result.total_evaluated
        assert len(report.top_scores) == len(result.top_slices)

    def test_report_rows(self, planted_dataset):
        x0, errors, _ = planted_dataset
        _, report = run_sliceline(x0, errors, SliceLineConfig(k=4, sigma=10))
        rows = report.rows()
        assert rows[0]["level"] == 1
        assert {"evaluated", "valid", "seconds"} <= set(rows[0])

    def test_pruning_ablation_ordering(self):
        """More pruning must never evaluate more slices — the Figure 3 shape.

        The lattice depth is capped at 3: the unpruned arm is exponential
        (the paper's own unpruned configuration ran out of memory after
        4 levels on this dataset).
        """
        bundle = load_dataset("salaries2x2", scale=0.5, seed=0)
        base = bench_config("salaries2x2", bundle.num_rows, k=4, max_level=3)
        reports = run_pruning_ablation(bundle.x0, bundle.errors, base)
        totals = {label: r.total_evaluated for label, r in reports.items()}
        assert totals["all"] <= totals["no-parents"]
        assert totals["no-parents"] <= totals["no-parents-no-score"]
        assert totals["no-parents-no-score"] <= totals["no-parents-no-score-no-size"]
        assert totals["no-parents-no-score-no-size"] <= totals["none"]

    def test_ablation_arms_agree_on_topk(self):
        bundle = load_dataset("salaries2x2", scale=0.3, seed=1)
        base = bench_config("salaries2x2", bundle.num_rows, k=3, max_level=3)
        reports = run_pruning_ablation(bundle.x0, bundle.errors, base)
        score_lists = [
            tuple(round(s, 9) for s in r.top_scores) for r in reports.values()
        ]
        assert len(set(score_lists)) == 1, "pruning changed the result set"


class TestRecorder:
    def test_format_table(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_empty(self):
        assert "<no rows>" in format_table([], title="empty")

    def test_csv(self):
        rows = [{"a": 1, "b": 2}]
        assert records_to_csv(rows) == "a,b\n1,2"
        assert records_to_csv([]) == ""
