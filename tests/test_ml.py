"""Tests for the ML substrate: models, error functions, splitting."""

import numpy as np
import pytest

from repro.exceptions import ShapeError, ValidationError
from repro.ml import (
    KMeans,
    LinearRegression,
    MultinomialLogisticRegression,
    absolute_loss,
    inaccuracy,
    log_loss_per_row,
    squared_loss,
    train_test_split,
)


class TestErrorFunctions:
    def test_squared_loss(self):
        np.testing.assert_allclose(
            squared_loss([1.0, 2.0], [0.0, 4.0]), [1.0, 4.0]
        )

    def test_absolute_loss(self):
        np.testing.assert_allclose(
            absolute_loss([1.0, -2.0], [0.0, 1.0]), [1.0, 3.0]
        )

    def test_inaccuracy(self):
        np.testing.assert_allclose(inaccuracy([1, 2, 3], [1, 0, 3]), [0, 1, 0])

    def test_all_errors_non_negative(self):
        gen = np.random.default_rng(0)
        y, yh = gen.normal(size=50), gen.normal(size=50)
        for fn in (squared_loss, absolute_loss):
            assert (fn(y, yh) >= 0).all()

    def test_log_loss_per_row(self):
        probs = np.array([[0.9, 0.1], [0.2, 0.8]])
        out = log_loss_per_row([0, 1], probs)
        np.testing.assert_allclose(out, [-np.log(0.9), -np.log(0.8)])

    def test_log_loss_label_out_of_range(self):
        with pytest.raises(ShapeError):
            log_loss_per_row([2], np.array([[0.5, 0.5]]))

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            squared_loss([1.0], [1.0, 2.0])


class TestLinearRegression:
    def test_recovers_exact_linear_function(self, rng):
        x = rng.normal(size=(200, 3))
        y = x @ np.array([2.0, -1.0, 0.5]) + 3.0
        model = LinearRegression().fit(x, y)
        np.testing.assert_allclose(model.coef_, [2.0, -1.0, 0.5], atol=1e-5)
        assert model.intercept_ == pytest.approx(3.0, abs=1e-5)
        assert model.score(x, y) == pytest.approx(1.0, abs=1e-9)

    def test_collinear_design_stable_with_ridge(self, rng):
        x = rng.normal(size=(100, 2))
        x = np.column_stack([x, x[:, 0]])  # perfectly collinear
        y = x[:, 0] + x[:, 1]
        model = LinearRegression(l2=1e-6).fit(x, y)
        assert np.isfinite(model.coef_).all()

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict(np.ones((2, 2)))

    def test_dim_mismatch_on_predict(self, rng):
        model = LinearRegression().fit(rng.normal(size=(10, 2)), np.ones(10))
        with pytest.raises(ShapeError):
            model.predict(np.ones((3, 5)))

    def test_negative_l2_rejected(self):
        with pytest.raises(ValidationError):
            LinearRegression(l2=-1.0)


class TestMultinomialLogistic:
    def test_learns_separable_problem(self, rng):
        x = rng.normal(size=(300, 2))
        y = (x[:, 0] + 2 * x[:, 1] > 0).astype(int)
        model = MultinomialLogisticRegression(num_iterations=150).fit(x, y)
        assert model.accuracy(x, y) > 0.95

    def test_three_classes(self, rng):
        x = rng.normal(size=(300, 2)) + np.repeat(
            np.array([[0, 0], [4, 0], [0, 4]]), 100, axis=0
        )
        y = np.repeat([0, 1, 2], 100)
        model = MultinomialLogisticRegression(num_iterations=150).fit(x, y)
        assert model.accuracy(x, y) > 0.9
        probs = model.predict_proba(x)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(300), atol=1e-9)

    def test_loss_monotone_nonincreasing(self, rng):
        x = rng.normal(size=(100, 3))
        y = (x[:, 0] > 0).astype(int)
        model = MultinomialLogisticRegression(num_iterations=50).fit(x, y)
        curve = np.array(model.loss_curve_)
        assert (np.diff(curve) <= 1e-8).all()

    def test_unfitted_predict(self):
        with pytest.raises(RuntimeError):
            MultinomialLogisticRegression().predict(np.ones((2, 2)))

    def test_negative_labels_rejected(self, rng):
        with pytest.raises(ValidationError):
            MultinomialLogisticRegression().fit(rng.normal(size=(4, 2)), [-1, 0, 1, 0])


class TestKMeans:
    def test_separated_clusters_recovered(self, rng):
        centers = np.array([[0.0, 0.0], [10.0, 10.0], [0.0, 10.0]])
        x = np.vstack([rng.normal(c, 0.2, size=(50, 2)) for c in centers])
        model = KMeans(num_clusters=3, seed=1).fit(x)
        labels = model.predict(x)
        # all points of one true cluster share a label
        for i in range(3):
            block = labels[i * 50 : (i + 1) * 50]
            assert len(set(block.tolist())) == 1

    def test_inertia_decreases_with_more_clusters(self, rng):
        x = rng.normal(size=(120, 2))
        inertias = [
            KMeans(num_clusters=c, seed=0).fit(x).inertia_ for c in (1, 3, 8)
        ]
        assert inertias[0] > inertias[1] > inertias[2]

    def test_fit_predict_matches_predict(self, rng):
        x = rng.normal(size=(60, 3))
        model = KMeans(num_clusters=4, seed=2)
        labels = model.fit_predict(x)
        np.testing.assert_array_equal(labels, model.predict(x))

    def test_too_few_points_rejected(self):
        with pytest.raises(ValidationError):
            KMeans(num_clusters=5).fit(np.ones((3, 2)))

    def test_deterministic_with_seed(self, rng):
        x = rng.normal(size=(80, 2))
        a = KMeans(num_clusters=3, seed=7).fit(x).centroids_
        b = KMeans(num_clusters=3, seed=7).fit(x).centroids_
        np.testing.assert_allclose(a, b)


class TestTrainTestSplit:
    def test_shapes(self, rng):
        x = rng.normal(size=(100, 4))
        y = rng.normal(size=100)
        x_tr, x_te, y_tr, y_te = train_test_split(x, y, test_fraction=0.2, seed=1)
        assert x_tr.shape[0] == 80 and x_te.shape[0] == 20
        assert y_tr.shape[0] == 80 and y_te.shape[0] == 20

    def test_disjoint_and_complete(self, rng):
        x = np.arange(50).reshape(-1, 1)
        x_tr, x_te = train_test_split(x, test_fraction=0.3, seed=2)
        combined = sorted(x_tr.ravel().tolist() + x_te.ravel().tolist())
        assert combined == list(range(50))

    def test_aligned_permutation(self, rng):
        x = np.arange(30).reshape(-1, 1)
        y = np.arange(30) * 10
        x_tr, x_te, y_tr, y_te = train_test_split(x, y, seed=3)
        np.testing.assert_array_equal(y_tr, x_tr.ravel() * 10)

    def test_invalid_fraction(self):
        with pytest.raises(ValidationError):
            train_test_split(np.ones((10, 1)), test_fraction=1.5)

    def test_row_mismatch(self):
        with pytest.raises(ShapeError):
            train_test_split(np.ones((10, 1)), np.ones(5))
