"""Tests for Welch's t-test and effect-size measures."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.stats import cohens_d, effect_size, welch_t_test


class TestWelch:
    def test_clearly_different_means_significant(self, rng):
        a = rng.normal(5.0, 1.0, size=200)
        b = rng.normal(0.0, 1.0, size=200)
        result = welch_t_test(a, b)
        assert result.statistic > 10
        assert result.p_value < 1e-6
        assert result.significant()

    def test_identical_distributions_not_significant(self, rng):
        a = rng.normal(0.0, 1.0, size=500)
        b = rng.normal(0.0, 1.0, size=500)
        assert welch_t_test(a, b).p_value > 0.001

    def test_one_sided_direction(self, rng):
        low = rng.normal(0.0, 1.0, size=100)
        high = rng.normal(3.0, 1.0, size=100)
        # alternative is mean(a) > mean(b): reversed order is insignificant
        assert welch_t_test(low, high).p_value > 0.5

    def test_matches_scipy(self, rng):
        from scipy import stats as scipy_stats

        a = rng.normal(1.0, 2.0, size=80)
        b = rng.normal(0.5, 1.0, size=120)
        ours = welch_t_test(a, b)
        ref = scipy_stats.ttest_ind(a, b, equal_var=False, alternative="greater")
        assert ours.statistic == pytest.approx(ref.statistic)
        assert ours.p_value == pytest.approx(ref.pvalue, rel=1e-9)

    def test_degenerate_zero_variance(self):
        a = np.full(5, 2.0)
        b = np.full(5, 1.0)
        result = welch_t_test(a, b)
        assert result.p_value == 0.0
        equal = welch_t_test(a, a)
        assert equal.p_value == 1.0

    def test_too_small_samples_rejected(self):
        with pytest.raises(ValidationError):
            welch_t_test([1.0], [1.0, 2.0])


class TestEffectSize:
    def test_cohens_d_known_value(self):
        a = np.array([2.0, 4.0, 6.0, 8.0])
        b = np.array([1.0, 3.0, 5.0, 7.0])
        # means differ by 1, pooled sd = sqrt(20/3)
        assert cohens_d(a, b) == pytest.approx(1.0 / np.sqrt(20 / 3))

    def test_sign_follows_direction(self, rng):
        a = rng.normal(2.0, 1.0, size=100)
        b = rng.normal(0.0, 1.0, size=100)
        assert cohens_d(a, b) > 0 > cohens_d(b, a)

    def test_effect_size_zero_for_identical(self):
        a = np.array([1.0, 2.0, 3.0])
        assert effect_size(a, a) == 0.0

    def test_effect_size_constant_different(self):
        assert effect_size(np.full(3, 2.0), np.full(3, 1.0)) == np.inf

    def test_effect_size_scale_invariant(self, rng):
        a = rng.normal(1.0, 1.0, size=400)
        b = rng.normal(0.0, 1.0, size=400)
        assert effect_size(10 * a, 10 * b) == pytest.approx(effect_size(a, b))

    def test_small_sample_rejected(self):
        with pytest.raises(ValidationError):
            effect_size([1.0], [2.0, 3.0])
