"""Tests for the observability subsystem (repro.obs) and its integration.

Covers the tracer/counters primitives, the export sinks, the traced
``slice_line`` pipeline, priority-evaluation accounting, per-toggle pruning
counter coverage, and counter reconciliation against the brute-force
lattice oracle.
"""

import itertools
import json
import tracemalloc

import numpy as np
import pytest

from repro.baselines import enumerate_all_slices
from repro.core import PruningConfig, SliceLineConfig, slice_line
from repro.obs import (
    NULL_TRACER,
    SCHEMA,
    CounterRegistry,
    LevelCounters,
    NullTracer,
    Tracer,
    counters_table,
    format_trace,
    resolve_tracer,
    run_to_dict,
    write_json,
)


class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                pass
        assert [s.name for s in tracer.spans] == ["outer"]
        outer = tracer.spans[0]
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert tracer.num_spans == 3

    def test_spans_time_and_carry_attrs(self):
        tracer = Tracer()
        with tracer.span("work", items=7) as span:
            span.annotate(result="ok")
        assert span.elapsed_seconds > 0
        assert span.attrs == {"items": 7, "result": "ok"}

    def test_current_tracks_the_open_span(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("a"):
            assert tracer.current.name == "a"
            with tracer.span("b"):
                assert tracer.current.name == "b"
            assert tracer.current.name == "a"
        assert tracer.current is None

    def test_find_and_iter(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("deep"):
                with tracer.span("deeper"):
                    pass
        assert tracer.find("deeper").name == "deeper"
        assert tracer.find("missing") is None
        assert [s.name for s in tracer.iter_spans()] == ["root", "deep", "deeper"]

    def test_to_dict_and_json(self):
        tracer = Tracer()
        with tracer.span("root", n=1):
            with tracer.span("child"):
                pass
        doc = tracer.to_dict()
        assert doc["spans"][0]["name"] == "root"
        assert doc["spans"][0]["attrs"] == {"n": 1}
        assert doc["spans"][0]["children"][0]["name"] == "child"
        json.loads(tracer.to_json())  # must be valid JSON

    def test_memory_tracking_records_high_water(self):
        tracer = Tracer(track_memory=True)
        try:
            with tracer.span("alloc") as span:
                _ = np.zeros(200_000)
            assert span.mem_peak_bytes is not None
            assert span.mem_peak_bytes > 0
        finally:
            tracer.close()
        assert not tracemalloc.is_tracing()

    def test_null_tracer_is_inert_and_shared(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.num_spans == 0
        # the disabled path allocates nothing: span() returns one shared obj
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
        with NULL_TRACER.span("a", x=1) as span:
            span.annotate(y=2)
        assert NULL_TRACER.to_dict() == {"spans": []}
        assert NULL_TRACER.find("a") is None
        assert list(NULL_TRACER.iter_spans()) == []

    def test_resolve_tracer_variants(self):
        assert resolve_tracer(None) is NULL_TRACER
        assert resolve_tracer(False) is NULL_TRACER
        assert isinstance(resolve_tracer(True), Tracer)
        mem = resolve_tracer("memory")
        try:
            assert mem.track_memory
        finally:
            mem.close()
        tracer = Tracer()
        assert resolve_tracer(tracer) is tracer
        assert resolve_tracer(NULL_TRACER) is NULL_TRACER
        with pytest.raises(TypeError):
            resolve_tracer(42)


class TestCounters:
    def test_add_and_properties(self):
        c = LevelCounters(level=2)
        c.add("pairs_generated", 10)
        c.add("pairs_generated", 5)
        c.pruned_by_size = 2
        c.pruned_by_score = 3
        c.pruned_by_parents = 1
        c.candidates_before_dedup = 9
        c.deduplicated = 7
        assert c.pairs_generated == 15
        assert c.pruned_total == 6
        assert c.dedup_removed == 2
        as_dict = c.to_dict()
        assert as_dict["dedup_removed"] == 2
        assert as_dict["pruned_total"] == 6

    def test_registry_levels_on_demand_and_sorted(self):
        reg = CounterRegistry()
        reg.level(3).evaluated = 30
        reg.level(1).evaluated = 10
        assert reg.level(3) is reg.level(3)
        assert [c.level for c in reg.levels] == [1, 3]
        assert len(reg) == 2
        assert [c.level for c in reg] == [1, 3]
        assert reg.total("evaluated") == 40
        assert reg.totals()["evaluated"] == 40
        assert "level" not in reg.totals()
        doc = reg.to_dict()
        assert len(doc["levels"]) == 2
        assert doc["totals"]["evaluated"] == 40

    def test_reconcile_catches_violations(self):
        reg = CounterRegistry()
        c = reg.level(2)
        c.pairs_generated = 10
        c.invalid_feature_pairs = 1
        c.candidates_before_dedup = 5  # 1 + 0 + 5 != 10 -> violation
        violations = reg.reconcile()
        assert violations and "level 2" in violations[0]

    def test_reconcile_passes_consistent_level(self):
        reg = CounterRegistry()
        c = reg.level(2)
        c.pairs_generated = 10
        c.invalid_feature_pairs = 2
        c.pruned_by_score_pairs = 3
        c.candidates_before_dedup = 5
        c.deduplicated = 4
        c.pruned_by_size = 1
        c.candidates_emitted = 3
        c.evaluated = 2
        c.skipped_by_priority = 1
        assert reg.reconcile() == []
        assert reg.reconcile(start_level=3) == []


class TestTracedRun:
    @pytest.fixture
    def traced(self, planted_dataset):
        x0, errors, _ = planted_dataset
        return slice_line(
            x0, errors, SliceLineConfig(k=4, sigma=10), trace=True
        )

    def test_trace_has_the_pipeline_spans(self, traced):
        tracer = traced.trace
        assert tracer is not None and tracer.enabled
        for name in ("encode", "level1.basic", "level2", "level2.pairs",
                     "level2.evaluate", "pairs.join", "pairs.dedup",
                     "pairs.prune", "evaluate.blocks", "decode"):
            assert tracer.find(name) is not None, name
        # nesting: the join span sits under level2.pairs under level2
        level2 = tracer.find("level2")
        assert level2.find("pairs.join") is not None
        assert level2.attrs["level"] == 2
        assert "evaluated" in level2.attrs  # annotated at level end

    def test_counters_populated_and_consistent(self, traced):
        counters = traced.counters
        assert counters is not None
        assert counters.reconcile() == []
        level1 = counters.level(1)
        assert level1.evaluated == traced.num_onehot_columns
        assert level1.indicator_nnz > 0
        level2 = counters.level(2)
        assert level2.pairs_generated > 0
        assert level2.evaluated > 0
        assert level2.candidates_nnz == level2.candidates_emitted * 2
        # level_stats is the same records the registry owns (alias API)
        assert traced.level_stats == counters.levels

    def test_untraced_run_still_counts(self, planted_dataset):
        x0, errors, _ = planted_dataset
        res = slice_line(x0, errors, SliceLineConfig(k=4, sigma=10))
        assert res.trace is None
        assert res.counters is not None
        assert res.counters.reconcile() == []

    def test_memory_mode_attaches_high_water_marks(self, planted_dataset):
        x0, errors, _ = planted_dataset
        res = slice_line(
            x0, errors, SliceLineConfig(k=4, sigma=10), trace="memory"
        )
        try:
            marks = [s.mem_peak_bytes for s in res.trace.iter_spans()]
            assert marks and all(m is not None for m in marks)
        finally:
            res.trace.close()

    def test_run_to_dict_schema(self, traced):
        doc = run_to_dict(traced)
        assert doc["schema"] == SCHEMA == "repro.obs/v1"
        assert doc["run"]["num_rows"] == 500
        assert doc["counters"]["levels"][0]["level"] == 1
        assert doc["trace"]["spans"]
        json.dumps(doc)  # fully JSON-serializable
        assert traced.to_obs_dict() == doc

    def test_write_json_roundtrip(self, traced, tmp_path):
        path = tmp_path / "obs.json"
        doc = write_json(traced, str(path))
        assert json.loads(path.read_text()) == doc
        with open(tmp_path / "obs2.json", "w") as handle:
            write_json(traced, handle)
        assert json.loads((tmp_path / "obs2.json").read_text()) == doc

    def test_text_sinks_render(self, traced):
        table = counters_table(traced.counters, title="per-level")
        assert "evaluated" in table and "pr_size" in table
        outline = format_trace(traced.trace)
        assert "encode" in outline and "level2.pairs" in outline
        assert counters_table(CounterRegistry()).endswith("<no levels recorded>")
        assert format_trace(Tracer()) == "<no spans recorded>"
        shallow = format_trace(traced.trace, max_depth=0)
        assert "pairs.join" not in shallow

    def test_shared_tracer_collects_multiple_runs(self, planted_dataset):
        x0, errors, _ = planted_dataset
        tracer = Tracer()
        cfg = SliceLineConfig(k=4, sigma=10, max_level=2)
        slice_line(x0, errors, cfg, trace=tracer)
        slice_line(x0, errors, cfg, trace=tracer)
        assert [s.name for s in tracer.spans].count("encode") == 2


class TestPriorityAccounting:
    """Satellite: priority evaluation must account for every candidate and
    must never change the reported top-K (skips are bound-dominated)."""

    @pytest.fixture
    def configs(self):
        base = dict(k=1, sigma=10, alpha=0.95)
        priority = SliceLineConfig(
            **base, priority_evaluation=True, priority_chunk=4
        )
        plain = SliceLineConfig(**base, priority_evaluation=False)
        return priority, plain

    def test_every_candidate_is_accounted_for(self, planted_dataset, configs):
        x0, errors, _ = planted_dataset
        priority, _ = configs
        res = slice_line(x0, errors, priority)
        assert res.counters.reconcile() == []
        skipped_somewhere = False
        for c in res.counters.levels:
            if c.level == 1:
                continue
            assert c.candidates_emitted == c.evaluated + c.skipped_by_priority
            skipped_somewhere |= c.skipped_by_priority > 0
        # tiny chunks + k=1 must actually exercise the skip path
        assert skipped_somewhere

    def test_priority_never_changes_topk(self, planted_dataset, configs):
        x0, errors, _ = planted_dataset
        priority, plain = configs
        res_priority = slice_line(x0, errors, priority)
        res_plain = slice_line(x0, errors, plain)
        np.testing.assert_array_equal(
            res_priority.top_stats, res_plain.top_stats
        )
        np.testing.assert_array_equal(
            res_priority.top_slices_encoded, res_plain.top_slices_encoded
        )
        assert all(
            c.skipped_by_priority == 0 for c in res_plain.counters.levels
        )


class TestPruningCounterCoverage:
    """Satellite: disabling one pruning toggle zeroes exactly its counter."""

    def _run(self, planted_dataset, pruning, **overrides):
        x0, errors, _ = planted_dataset
        cfg = SliceLineConfig(
            k=4, sigma=10, pruning=pruning,
            priority_evaluation=overrides.pop("priority_evaluation", False),
            **overrides,
        )
        res = slice_line(x0, errors, cfg)
        assert res.counters.reconcile() == []
        return res.counters

    def test_all_enabled_exercises_the_counters(self, planted_dataset):
        counters = self._run(planted_dataset, PruningConfig.all_enabled())
        assert counters.total("pairs_generated") > 0
        assert counters.total("invalid_feature_pairs") > 0
        assert counters.total("pruned_total") > 0

    def test_no_size_pruning_zeroes_its_counter(self, planted_dataset):
        counters = self._run(planted_dataset, PruningConfig(by_size=False))
        assert counters.total("pruned_by_size") == 0

    def test_no_score_pruning_zeroes_all_score_counters(self, planted_dataset):
        counters = self._run(planted_dataset, PruningConfig(by_score=False))
        assert counters.total("pruned_by_score") == 0
        assert counters.total("pruned_by_score_pairs") == 0
        assert counters.total("pruned_by_score_groups") == 0

    def test_no_parent_handling_zeroes_its_counter(self, planted_dataset):
        counters = self._run(
            planted_dataset, PruningConfig(handle_missing_parents=False)
        )
        assert counters.total("pruned_by_parents") == 0

    def test_no_dedup_zeroes_dedup_removed(self, planted_dataset):
        counters = self._run(
            planted_dataset,
            PruningConfig(deduplicate=False, handle_missing_parents=False),
        )
        assert counters.total("dedup_removed") == 0

    def test_no_input_filter_zeroes_its_counter(self, planted_dataset):
        counters = self._run(
            planted_dataset, PruningConfig(filter_input_slices=False)
        )
        assert counters.total("input_filtered") == 0

    def test_no_priority_zeroes_skips(self, planted_dataset):
        counters = self._run(
            planted_dataset, PruningConfig.all_enabled(),
            priority_evaluation=False,
        )
        assert counters.total("skipped_by_priority") == 0


class TestOracleReconciliation:
    """Satellite: with pruning off, per-level evaluated counts must equal
    the lattice node counts of the brute-force oracle."""

    @pytest.fixture
    def full_factorial(self):
        # every (value...) combination appears (3 copies), so every lattice
        # node is non-empty and the enumeration must visit all of them
        domains = (2, 3, 2)
        rows = np.array(
            list(itertools.product(*[range(1, d + 1) for d in domains])),
            dtype=np.int64,
        )
        x0 = np.tile(rows, (3, 1))
        gen = np.random.default_rng(7)
        errors = gen.uniform(0.1, 1.0, size=x0.shape[0])
        return x0, errors

    def test_evaluated_matches_lattice_node_counts(self, full_factorial):
        x0, errors = full_factorial
        cfg = SliceLineConfig(
            k=4, sigma=1, alpha=0.95,
            pruning=PruningConfig(
                by_size=False, by_score=False,
                handle_missing_parents=False, filter_input_slices=False,
            ),
            priority_evaluation=False,
        )
        res = slice_line(x0, errors, cfg)
        assert res.counters.reconcile() == []

        oracle_counts: dict[int, int] = {}
        for node in enumerate_all_slices(x0, errors, alpha=0.95):
            oracle_counts[node.level] = oracle_counts.get(node.level, 0) + 1
        sliceline_counts = {
            c.level: c.evaluated for c in res.counters.levels if c.evaluated
        }
        assert sliceline_counts == oracle_counts


class TestDisabledOverheadSmoke:
    """Cheap CI-friendly bound; the strict 2% end-to-end assertion lives in
    benchmarks/bench_obs_overhead.py."""

    def test_noop_span_is_cheap_and_allocation_free(self):
        import time

        iterations = 50_000
        start = time.perf_counter()
        for _ in range(iterations):
            with NULL_TRACER.span("probe"):
                pass
        per_span = (time.perf_counter() - start) / iterations
        # a no-op span is two method calls; 5us leaves ~20x headroom
        assert per_span < 5e-6
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_TRACER.num_spans == 0
