"""Tests for the synthetic dataset generators and registry."""

import numpy as np
import pytest

from repro.datasets import (
    PlantedSlice,
    correlated_group,
    dataset_summary,
    inject_classification_errors,
    inject_regression_errors,
    load_dataset,
    make_classification_labels,
    make_regression_targets,
    plant_slices,
    replicate_dataset,
    sample_categorical,
)
from repro.datasets.registry import DATASET_NAMES, PAPER_CHARACTERISTICS
from repro.exceptions import DatasetError


class TestSampling:
    def test_codes_in_domain(self, rng):
        codes = sample_categorical(rng, 1000, 7, skew=1.0)
        assert codes.min() >= 1 and codes.max() <= 7

    def test_skew_concentrates_mass(self, rng):
        skewed = sample_categorical(rng, 5000, 10, skew=2.5)
        uniform = sample_categorical(rng, 5000, 10, skew=0.0)
        top_skewed = (skewed == 1).mean()
        top_uniform = (uniform == 1).mean()
        assert top_skewed > 2 * top_uniform

    def test_domain_one(self, rng):
        assert (sample_categorical(rng, 10, 1) == 1).all()

    def test_invalid_domain(self, rng):
        with pytest.raises(DatasetError):
            sample_categorical(rng, 10, 0)


class TestCorrelatedGroup:
    def test_shape_and_domains(self, rng):
        group = correlated_group(rng, 500, [4, 8, 4], strength=0.9)
        assert group.shape == (500, 3)
        assert group[:, 1].max() <= 8

    def test_high_strength_correlates(self, rng):
        group = correlated_group(rng, 4000, [4, 4], strength=0.95, skew=0.0)
        agreement = (group[:, 0] == group[:, 1]).mean()
        independent = correlated_group(rng, 4000, [4, 4], strength=0.0, skew=0.0)
        base = (independent[:, 0] == independent[:, 1]).mean()
        assert agreement > base + 0.3

    def test_invalid_strength(self, rng):
        with pytest.raises(DatasetError):
            correlated_group(rng, 10, [2], strength=1.5)


class TestPlanting:
    def test_planted_slices_have_support_in_range(self, rng):
        x0 = np.column_stack([rng.integers(1, 4, size=2000) for _ in range(5)])
        planted = plant_slices(
            x0, rng, num_slices=3, min_fraction=0.02, max_fraction=0.3
        )
        assert len(planted) == 3
        for sl in planted:
            frac = sl.mask(x0).mean()
            assert 0.02 <= frac <= 0.3

    def test_impossible_support_raises(self, rng):
        x0 = np.column_stack([rng.integers(1, 100, size=50) for _ in range(3)])
        with pytest.raises(DatasetError):
            plant_slices(
                x0, rng, num_slices=1, levels=(3, 3),
                min_fraction=0.9, max_attempts=30,
            )

    def test_classification_injection_elevates_slice(self, rng):
        x0 = np.column_stack([rng.integers(1, 4, size=3000) for _ in range(4)])
        planted = [PlantedSlice(predicates={0: 1}, error_rate=0.9)]
        errors = inject_classification_errors(x0, planted, rng, base_rate=0.05)
        mask = planted[0].mask(x0)
        assert errors[mask].mean() > 0.7
        assert errors[~mask].mean() < 0.15
        assert set(np.unique(errors).tolist()) <= {0.0, 1.0}

    def test_regression_injection_elevates_slice(self, rng):
        x0 = np.column_stack([rng.integers(1, 4, size=3000) for _ in range(4)])
        planted = [PlantedSlice(predicates={1: 2}, error_rate=0.8)]
        errors = inject_regression_errors(x0, planted, rng)
        mask = planted[0].mask(x0)
        assert errors[mask].mean() > 1.8 * errors[~mask].mean()
        assert (errors >= 0).all()

    def test_regression_tail_bounded(self, rng):
        # the injector's purpose: max/average error ratio stays moderate
        x0 = np.column_stack([rng.integers(1, 4, size=5000) for _ in range(4)])
        planted = [PlantedSlice(predicates={0: 2}, error_rate=0.9)]
        errors = inject_regression_errors(x0, planted, rng, slice_boost=3.5)
        assert errors.max() / errors.mean() < 6.2


class TestLabelGeneration:
    def test_classification_labels_learnable(self, rng):
        from repro.core.onehot import FeatureSpace
        from repro.linalg import to_dense
        from repro.ml import MultinomialLogisticRegression, inaccuracy

        x0 = np.column_stack([rng.integers(1, 4, size=1500) for _ in range(5)])
        planted = [PlantedSlice(predicates={0: 1, 1: 1}, error_rate=0.9)]
        data = make_classification_labels(x0, planted, rng)
        dense = to_dense(FeatureSpace.from_matrix(x0).encode(x0))
        model = MultinomialLogisticRegression(num_iterations=120).fit(
            dense, data.labels
        )
        errors = inaccuracy(data.labels, model.predict(dense))
        mask = planted[0].mask(x0)
        # the model genuinely fails harder inside the planted slice
        assert errors[mask].mean() > errors[~mask].mean() + 0.2

    def test_regression_targets_have_inflated_slice_residuals(self, rng):
        from repro.core.onehot import FeatureSpace
        from repro.linalg import to_dense
        from repro.ml import LinearRegression, squared_loss

        x0 = np.column_stack([rng.integers(1, 4, size=1500) for _ in range(5)])
        planted = [PlantedSlice(predicates={2: 3}, error_rate=0.9)]
        data = make_regression_targets(x0, planted, rng)
        dense = to_dense(FeatureSpace.from_matrix(x0).encode(x0))
        model = LinearRegression(l2=1e-6).fit(dense, data.labels)
        errors = squared_loss(data.labels, model.predict(dense))
        mask = planted[0].mask(x0)
        assert errors[mask].mean() > 3 * errors[~mask].mean()


class TestReplication:
    def test_row_replication(self):
        x0 = np.array([[1, 2], [2, 1]])
        errors = np.array([0.5, 1.0])
        x_rep, e_rep = replicate_dataset(x0, errors, row_factor=3)
        assert x_rep.shape == (6, 2)
        np.testing.assert_allclose(e_rep, [0.5, 1.0] * 3)

    def test_column_replication_correlates(self):
        x0 = np.array([[1, 2], [2, 1]])
        x_rep, _ = replicate_dataset(x0, np.ones(2), col_factor=2)
        assert x_rep.shape == (2, 4)
        np.testing.assert_array_equal(x_rep[:, :2], x_rep[:, 2:])

    def test_invalid_factor(self):
        with pytest.raises(DatasetError):
            replicate_dataset(np.ones((2, 2), dtype=int), np.ones(2), row_factor=0)


class TestRegistry:
    def test_all_names_load_small(self):
        # tiny scales: every loader must produce a consistent bundle
        for name in DATASET_NAMES:
            scale = 0.002 if name not in ("salaries", "salaries2x2") else 0.5
            bundle = load_dataset(name, scale=scale, seed=1)
            assert bundle.num_rows == bundle.errors.shape[0]
            assert bundle.x0.min() >= 1
            assert (bundle.errors >= 0).all()
            assert len(bundle.feature_names) == bundle.num_features

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load_dataset("nope")

    def test_invalid_scale(self):
        with pytest.raises(DatasetError):
            load_dataset("adult", scale=0.0)

    def test_table1_shapes_at_full_scale(self):
        """m and l match Table 1 exactly; n matches at scale=1."""
        for name in ("adult", "covtype", "kdd98", "uscensus", "salaries"):
            bundle = load_dataset(
                name, scale=0.01 if name != "salaries" else 1.0, seed=0
            )
            _, paper_m, paper_l = PAPER_CHARACTERISTICS[name]
            assert bundle.num_features == paper_m
            # observed l can fall slightly short of the schema maximum when
            # a rare top code is unsampled at small scale
            assert bundle.num_onehot_columns <= paper_l
            assert bundle.num_onehot_columns >= 0.8 * paper_l

    def test_salaries_full_scale_matches_exactly(self):
        bundle = load_dataset("salaries")
        summary = dataset_summary(bundle)
        assert (summary["n"], summary["m"], summary["l"]) == (397, 5, 27)

    def test_adult_full_scale_n(self):
        bundle = load_dataset("adult")
        assert bundle.num_rows == 32_561

    def test_uscensus10x_is_replication(self):
        base = load_dataset("uscensus", scale=0.001, seed=3)
        big = load_dataset("uscensus10x", scale=0.001, seed=3)
        assert big.num_rows == 10 * base.num_rows
        np.testing.assert_array_equal(big.x0[: base.num_rows], base.x0)

    def test_criteo_ultra_sparse_valid_fraction(self):
        bundle = load_dataset("criteod21", scale=0.02, seed=0)
        sigma = max(1, bundle.num_rows // 100)
        counts = np.zeros(0)
        # count one-hot columns above sigma without materializing X
        passing = 0
        total_cols = 0
        for j in range(bundle.num_features):
            values, freq = np.unique(bundle.x0[:, j], return_counts=True)
            passing += int((freq >= sigma).sum())
            total_cols += int(bundle.x0[:, j].max())
        # the defining Table 2 phenomenon: a tiny fraction of a huge
        # one-hot space satisfies the support constraint
        assert total_cols > 50_000
        assert passing < 600

    def test_planted_recoverable_by_sliceline(self):
        from repro.core import SliceLineConfig, slice_line

        bundle = load_dataset("adult", scale=0.15, seed=2)
        cfg = SliceLineConfig(k=10, sigma=max(10, bundle.num_rows // 100))
        res = slice_line(bundle.x0, bundle.errors, cfg)
        found = {frozenset(s.predicates.items()) for s in res.top_slices}
        planted = {frozenset(p.predicates.items()) for p in bundle.planted}
        # at least one planted slice (or a super/subset) surfaces in the top-K
        overlaps = any(
            p <= f or f <= p for p in planted for f in found
        )
        assert overlaps
