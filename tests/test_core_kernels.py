"""Tests for the core kernels: basic slices, evaluation, pairs, top-K."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    FeatureSpace,
    PruningConfig,
    create_and_score_basic_slices,
    evaluate_slices,
    get_pair_candidates,
    indicator_equal,
    maintain_topk,
    topk_min_score,
    empty_topk,
)
from repro.core.types import LevelStats, StatsCol, stats_matrix


def brute_stats(x0, errors, predicates):
    mask = np.ones(x0.shape[0], dtype=bool)
    for f, v in predicates.items():
        mask &= x0[:, f] == v
    size = int(mask.sum())
    return size, float(errors[mask].sum()), float(errors[mask].max() if size else 0.0)


class TestBasicSlices:
    def test_sizes_and_errors_match_brute_force(self, tiny_x0, tiny_errors, tiny_space):
        x = tiny_space.encode(tiny_x0)
        basic = create_and_score_basic_slices(x, tiny_errors, sigma=1, alpha=0.9)
        for row, col in enumerate(basic.selected_columns):
            feature = tiny_space.feature_of_column(int(col))
            value = tiny_space.column_value(int(col))
            size, err, max_err = brute_stats(tiny_x0, tiny_errors, {feature: value})
            assert basic.stats[row, StatsCol.SIZE] == size
            assert basic.stats[row, StatsCol.ERROR] == pytest.approx(err)
            assert basic.stats[row, StatsCol.MAX_ERROR] == pytest.approx(max_err)

    def test_sigma_filters_small_slices(self, tiny_x0, tiny_errors, tiny_space):
        x = tiny_space.encode(tiny_x0)
        basic = create_and_score_basic_slices(x, tiny_errors, sigma=3, alpha=0.9)
        assert (basic.stats[:, StatsCol.SIZE] >= 3).all()

    def test_zero_error_slices_filtered(self, tiny_x0, tiny_space):
        errors = np.zeros(8)
        errors[0] = 1.0  # only row 0 has error: slices not covering it drop
        x = tiny_space.encode(tiny_x0)
        basic = create_and_score_basic_slices(x, errors, sigma=1, alpha=0.9)
        assert (basic.stats[:, StatsCol.ERROR] > 0).all()
        # row 0 is [1, 1, 1]: exactly its three value-columns survive
        assert basic.num_slices == 3

    def test_slices_matrix_is_identity(self, tiny_x0, tiny_errors, tiny_space):
        x = tiny_space.encode(tiny_x0)
        basic = create_and_score_basic_slices(x, tiny_errors, sigma=1, alpha=0.9)
        np.testing.assert_allclose(
            basic.slices.toarray(), np.eye(basic.num_slices)
        )


class TestIndicatorEqual:
    def test_filters_to_exact_level(self):
        prod = sp.csr_matrix(np.array([[2.0, 1.0], [0.0, 2.0]]))
        ind = indicator_equal(prod, 2)
        np.testing.assert_allclose(ind.toarray(), [[1, 0], [0, 1]])

    def test_level_below_one_rejected(self):
        from repro.exceptions import ValidationError
        with pytest.raises(ValidationError):
            indicator_equal(sp.csr_matrix((2, 2)), 0)

    def test_does_not_mutate_input(self):
        prod = sp.csr_matrix(np.array([[2.0, 1.0]]))
        before = prod.toarray().copy()
        indicator_equal(prod, 2)
        np.testing.assert_allclose(prod.toarray(), before)


class TestEvaluateSlices:
    def test_matches_brute_force(self, tiny_x0, tiny_errors, tiny_space):
        x = tiny_space.encode(tiny_x0)
        # candidate slices: {F0=1, F1=1} and {F0=2, F2=2}
        s = np.zeros((2, 7))
        s[0, tiny_space.column_of(0, 1)] = 1
        s[0, tiny_space.column_of(1, 1)] = 1
        s[1, tiny_space.column_of(0, 2)] = 1
        s[1, tiny_space.column_of(2, 2)] = 1
        stats = evaluate_slices(x, tiny_errors, sp.csr_matrix(s), 2, 0.9)
        for i, predicates in enumerate([{0: 1, 1: 1}, {0: 2, 2: 2}]):
            size, err, max_err = brute_stats(tiny_x0, tiny_errors, predicates)
            assert stats[i, StatsCol.SIZE] == size
            assert stats[i, StatsCol.ERROR] == pytest.approx(err)
            assert stats[i, StatsCol.MAX_ERROR] == pytest.approx(max_err)

    def test_block_size_invariance(self, planted_dataset):
        x0, errors, _ = planted_dataset
        space = FeatureSpace.from_matrix(x0)
        x = space.encode(x0)
        gen = np.random.default_rng(5)
        cols = np.arange(space.num_onehot)
        rows = []
        for _ in range(23):
            pick = gen.choice(cols, size=2, replace=False)
            row = np.zeros(space.num_onehot)
            row[pick] = 1
            rows.append(row)
        s = sp.csr_matrix(np.array(rows))
        reference = evaluate_slices(x, errors, s, 2, 0.95, block_size=1)
        for block_size in (2, 7, 23, 64):
            out = evaluate_slices(x, errors, s, 2, 0.95, block_size=block_size)
            np.testing.assert_allclose(out, reference)

    def test_threaded_matches_serial(self, planted_dataset):
        x0, errors, _ = planted_dataset
        space = FeatureSpace.from_matrix(x0)
        x = space.encode(x0)
        s = sp.identity(space.num_onehot, format="csr")
        serial = evaluate_slices(x, errors, s, 1, 0.95, block_size=4)
        threaded = evaluate_slices(
            x, errors, s, 1, 0.95, block_size=4, num_threads=4
        )
        np.testing.assert_allclose(serial, threaded)

    def test_empty_slices(self, tiny_x0, tiny_errors, tiny_space):
        x = tiny_space.encode(tiny_x0)
        out = evaluate_slices(x, tiny_errors, sp.csr_matrix((0, 7)), 2, 0.9)
        assert out.shape == (0, 4)

    def test_nonmatching_slice_scores_minus_inf(self, tiny_x0, tiny_errors, tiny_space):
        x = tiny_space.encode(tiny_x0)
        s = np.zeros((1, 7))
        # F0=1 AND F0=2 is unsatisfiable (level-2 with both on one feature)
        s[0, 0] = 1
        s[0, 1] = 1
        stats = evaluate_slices(x, tiny_errors, sp.csr_matrix(s), 2, 0.9)
        assert stats[0, StatsCol.SIZE] == 0
        assert stats[0, StatsCol.SCORE] == -np.inf


class TestMaintainTopK:
    NUM_COLS = 16

    def _mk(self, scores, sizes, first_column=0):
        k = len(scores)
        rows = np.zeros((k, self.NUM_COLS))
        for i in range(k):
            rows[i, first_column + i] = 1.0
        stats = stats_matrix(
            np.array(scores), np.ones(k), np.ones(k), np.array(sizes)
        )
        return sp.csr_matrix(rows), stats

    def test_orders_by_score(self):
        slices, stats = self._mk([0.5, 2.0, 1.0], [10, 10, 10])
        ts, tr = maintain_topk(slices, stats, *empty_topk(self.NUM_COLS), k=3, sigma=1)
        np.testing.assert_allclose(tr[:, StatsCol.SCORE], [2.0, 1.0, 0.5])

    def test_filters_invalid(self):
        slices, stats = self._mk([2.0, -0.5, 1.0], [10, 10, 0])
        ts, tr = maintain_topk(slices, stats, *empty_topk(self.NUM_COLS), k=3, sigma=1)
        # only the first entry is valid (positive score and size >= sigma)
        assert tr.shape[0] == 1

    def test_keeps_existing_topk(self):
        slices, stats = self._mk([1.0], [10])
        ts, tr = maintain_topk(slices, stats, *empty_topk(self.NUM_COLS), k=2, sigma=1)
        slices2, stats2 = self._mk([3.0], [10], first_column=5)
        ts2, tr2 = maintain_topk(slices2, stats2, ts, tr, k=2, sigma=1)
        np.testing.assert_allclose(tr2[:, StatsCol.SCORE], [3.0, 1.0])

    def test_truncates_to_k(self):
        slices, stats = self._mk([1.0, 2.0, 3.0, 4.0], [10] * 4)
        ts, tr = maintain_topk(slices, stats, *empty_topk(self.NUM_COLS), k=2, sigma=1)
        assert tr.shape[0] == 2
        np.testing.assert_allclose(tr[:, StatsCol.SCORE], [4.0, 3.0])

    def test_tie_break_by_size(self):
        slices, stats = self._mk([1.0, 1.0], [5.0, 50.0])
        ts, tr = maintain_topk(slices, stats, *empty_topk(self.NUM_COLS), k=1, sigma=1)
        assert tr[0, StatsCol.SIZE] == 50.0

    def test_min_score_threshold(self):
        slices, stats = self._mk([2.0, 1.0], [10, 10])
        ts, tr = maintain_topk(slices, stats, *empty_topk(self.NUM_COLS), k=2, sigma=1)
        assert topk_min_score(tr, 2) == pytest.approx(1.0)
        assert topk_min_score(tr, 3) == 0.0  # not full yet


class TestGetPairCandidates:
    def _setup(self, x0, errors, sigma=1, alpha=0.9, k=4):
        space = FeatureSpace.from_matrix(x0)
        x = space.encode(x0)
        basic = create_and_score_basic_slices(x, errors, sigma, alpha)
        fmap = np.searchsorted(
            space.ends, basic.selected_columns, side="right"
        ).astype(np.int64)
        return space, x, basic, fmap

    def test_level2_candidates_are_valid_conjunctions(self, tiny_x0, tiny_errors):
        space, x, basic, fmap = self._setup(tiny_x0, tiny_errors)
        stats = LevelStats(level=2)
        cands, bounds = get_pair_candidates(
            basic.slices, basic.stats, 2,
            num_rows=8, total_error=float(tiny_errors.sum()),
            sigma=1, alpha=0.9, topk_min_score=0.0, feature_map=fmap,
            pruning=PruningConfig(), level_stats=stats,
        )
        dense = cands.toarray()
        assert (dense.sum(axis=1) == 2).all()
        # no candidate uses two values of one feature
        for row in dense:
            feats = fmap[np.flatnonzero(row)]
            assert len(set(feats.tolist())) == 2

    def test_no_duplicates_after_dedup(self, planted_dataset):
        x0, errors, _ = planted_dataset
        space, x, basic, fmap = self._setup(x0, errors, sigma=5)
        cands, _ = get_pair_candidates(
            basic.slices, basic.stats, 2,
            num_rows=x0.shape[0], total_error=float(errors.sum()),
            sigma=5, alpha=0.95, topk_min_score=0.0, feature_map=fmap,
        )
        keys = {tuple(row) for row in cands.toarray().astype(int).tolist()}
        assert len(keys) == cands.shape[0]

    def test_dedup_off_keeps_duplicates(self, planted_dataset):
        x0, errors, _ = planted_dataset
        space, x, basic, fmap = self._setup(x0, errors, sigma=5)
        kwargs = dict(
            num_rows=x0.shape[0], total_error=float(errors.sum()),
            sigma=5, alpha=0.95, topk_min_score=0.0, feature_map=fmap,
        )
        from repro.core.evaluate import evaluate_slices as ev
        s2, _ = get_pair_candidates(
            basic.slices, basic.stats, 2, pruning=PruningConfig(), **kwargs
        )
        r2 = ev(x[:, basic.selected_columns], errors, s2, 2, 0.95)
        s3_dedup, _ = get_pair_candidates(s2, r2, 3, pruning=PruningConfig(), **kwargs)
        s3_dup, _ = get_pair_candidates(
            s2, r2, 3, pruning=PruningConfig.none(), **kwargs
        )
        # without dedup, level-3 candidates appear once per generating pair
        assert s3_dup.shape[0] >= s3_dedup.shape[0]

    def test_score_pruning_reduces_candidates(self, planted_dataset):
        x0, errors, _ = planted_dataset
        space, x, basic, fmap = self._setup(x0, errors, sigma=5)
        kwargs = dict(
            num_rows=x0.shape[0], total_error=float(errors.sum()),
            sigma=5, alpha=0.95, feature_map=fmap,
        )
        with_pruning, _ = get_pair_candidates(
            basic.slices, basic.stats, 2, topk_min_score=0.5,
            pruning=PruningConfig(handle_missing_parents=False), **kwargs
        )
        without, _ = get_pair_candidates(
            basic.slices, basic.stats, 2, topk_min_score=0.5,
            pruning=PruningConfig(
                by_score=False, handle_missing_parents=False
            ),
            **kwargs
        )
        assert with_pruning.shape[0] <= without.shape[0]

    def test_empty_input_returns_empty(self, tiny_x0, tiny_errors):
        space, x, basic, fmap = self._setup(tiny_x0, tiny_errors)
        empty = basic.slices[:0]
        cands, bounds = get_pair_candidates(
            empty, basic.stats[:0], 2,
            num_rows=8, total_error=1.0, sigma=1, alpha=0.9,
            topk_min_score=0.0, feature_map=fmap,
        )
        assert cands.shape[0] == 0 and bounds is None

    def test_bounds_returned_with_score_pruning(self, planted_dataset):
        x0, errors, _ = planted_dataset
        space, x, basic, fmap = self._setup(x0, errors, sigma=5)
        cands, bounds = get_pair_candidates(
            basic.slices, basic.stats, 2,
            num_rows=x0.shape[0], total_error=float(errors.sum()),
            sigma=5, alpha=0.95, topk_min_score=0.0, feature_map=fmap,
        )
        assert bounds is not None and bounds.shape[0] == cands.shape[0]
        assert (bounds >= 0).all()
