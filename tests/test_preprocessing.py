"""Tests for recoding, binning, and the preprocessing pipeline."""

import numpy as np
import pytest

from repro.exceptions import EncodingError, ValidationError
from repro.preprocessing import (
    ColumnSpec,
    EquiWidthBinner,
    Preprocessor,
    QuantileBinner,
    Recoder,
)


class TestEquiWidthBinner:
    def test_codes_are_one_based_and_bounded(self):
        binner = EquiWidthBinner(num_bins=10)
        values = np.linspace(0, 100, 57)
        codes = binner.fit_transform(values)
        assert codes.min() == 1 and codes.max() == 10

    def test_constant_column_single_bin(self):
        codes = EquiWidthBinner(5).fit_transform(np.full(10, 3.3))
        assert (codes == 1).all()

    def test_out_of_range_clipped(self):
        binner = EquiWidthBinner(4).fit(np.array([0.0, 10.0]))
        codes = binner.transform(np.array([-5.0, 15.0]))
        np.testing.assert_array_equal(codes, [1, 4])

    def test_equal_width_property(self):
        binner = EquiWidthBinner(4).fit(np.array([0.0, 8.0]))
        codes = binner.transform(np.array([0.5, 2.5, 4.5, 6.5]))
        np.testing.assert_array_equal(codes, [1, 2, 3, 4])

    def test_bin_labels(self):
        binner = EquiWidthBinner(2).fit(np.array([0.0, 10.0]))
        labels = binner.bin_labels()
        assert len(labels) == 2 and labels[0].startswith("[0")

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            EquiWidthBinner(3).fit(np.array([1.0, np.nan]))

    def test_unfitted_transform_raises(self):
        with pytest.raises(RuntimeError):
            EquiWidthBinner(3).transform(np.array([1.0]))


class TestQuantileBinner:
    def test_roughly_equal_counts(self):
        gen = np.random.default_rng(0)
        values = gen.exponential(size=2000)
        codes = QuantileBinner(4).fit_transform(values)
        counts = np.bincount(codes)[1:]
        assert counts.min() > 400  # ~500 each

    def test_ties_collapse_bins(self):
        values = np.array([1.0] * 90 + [2.0] * 10)
        binner = QuantileBinner(10)
        codes = binner.fit_transform(values)
        assert binner.num_effective_bins < 10
        assert codes.min() == 1

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            QuantileBinner(3).fit(np.array([]))


class TestRecoder:
    def test_deterministic_sorted_codes(self):
        recoder = Recoder().fit(["b", "a", "c", "a"])
        np.testing.assert_array_equal(
            recoder.transform(["a", "b", "c"]), [1, 2, 3]
        )

    def test_inverse_round_trip(self):
        recoder = Recoder().fit(["x", "y"])
        codes = recoder.transform(["y", "x", "y"])
        assert recoder.inverse(codes) == ["y", "x", "y"]

    def test_unseen_category_errors_by_default(self):
        recoder = Recoder().fit(["a"])
        with pytest.raises(EncodingError):
            recoder.transform(["b"])

    def test_unseen_category_mapped_with_code_mode(self):
        recoder = Recoder(handle_unknown="code").fit(["a", "b"])
        np.testing.assert_array_equal(recoder.transform(["c"]), [3])
        assert recoder.domain_size == 3
        assert recoder.value_labels()[-1] == "<unknown>"

    def test_integer_categories(self):
        recoder = Recoder().fit([30, 10, 20])
        np.testing.assert_array_equal(recoder.transform([10, 20, 30]), [1, 2, 3])

    def test_invalid_mode(self):
        with pytest.raises(ValidationError):
            Recoder(handle_unknown="bogus")


class TestPreprocessor:
    @pytest.fixture
    def table(self):
        gen = np.random.default_rng(1)
        return {
            "id": np.arange(50),
            "age": gen.uniform(18, 90, size=50),
            "job": gen.choice(["eng", "law", "med"], size=50),
            "grade": gen.integers(1, 5, size=50),
        }

    @pytest.fixture
    def specs(self):
        return [
            ColumnSpec("id", "drop"),
            ColumnSpec("age", "numeric", num_bins=5),
            ColumnSpec("job", "categorical"),
            ColumnSpec("grade", "integer"),
        ]

    def test_fit_transform_shape(self, table, specs):
        encoded = Preprocessor(specs).fit_transform(table)
        assert encoded.x0.shape == (50, 3)  # id dropped
        assert encoded.feature_names == ("age", "job", "grade")

    def test_codes_one_based(self, table, specs):
        encoded = Preprocessor(specs).fit_transform(table)
        assert encoded.x0.min() >= 1

    def test_value_labels_align_with_domains(self, table, specs):
        encoded = Preprocessor(specs).fit_transform(table)
        for j in range(encoded.num_features):
            assert len(encoded.value_labels[j]) >= encoded.x0[:, j].max()

    def test_feature_space_consistency(self, table, specs):
        encoded = Preprocessor(specs).fit_transform(table)
        assert encoded.num_onehot_columns == int(encoded.x0.max(axis=0).sum())

    def test_missing_column_rejected(self, specs):
        with pytest.raises(ValidationError):
            Preprocessor(specs).fit({"age": np.array([1.0])})

    def test_length_mismatch_rejected(self, specs):
        bad = {
            "age": np.ones(3),
            "job": np.array(["a", "b"]),
            "grade": np.array([1, 2, 3]),
        }
        with pytest.raises(ValidationError):
            Preprocessor(specs).fit(bad)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            Preprocessor([ColumnSpec("a"), ColumnSpec("a")])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            ColumnSpec("a", kind="nope")

    def test_integer_column_must_be_one_based(self):
        specs = [ColumnSpec("g", "integer")]
        with pytest.raises(ValidationError):
            Preprocessor(specs).fit({"g": np.array([0, 1])})

    def test_transform_before_fit_raises(self, table, specs):
        with pytest.raises(RuntimeError):
            Preprocessor(specs).transform(table)

    def test_quantile_kind(self, table):
        specs = [ColumnSpec("age", "numeric_quantile", num_bins=4)]
        encoded = Preprocessor(specs).fit_transform(table)
        assert encoded.x0.max() <= 4


class TestMissingValueBinning:
    """Opt-in NaN handling: fit on finite values, transform NaN -> code 0."""

    def test_coerce_numeric_maps_blanks_to_nan(self):
        from repro.preprocessing import coerce_numeric

        out = coerce_numeric(np.array(["1.5", "", "2", "  "]))
        assert out[0] == 1.5 and out[2] == 2.0
        assert np.isnan(out[1]) and np.isnan(out[3])

    def test_coerce_numeric_passes_numeric_dtypes_through(self):
        from repro.preprocessing import coerce_numeric

        values = np.array([1.0, np.nan, 3.0])
        assert np.array_equal(coerce_numeric(values), values, equal_nan=True)

    def test_coerce_numeric_rejects_unparseable(self):
        from repro.preprocessing import coerce_numeric

        with pytest.raises(ValidationError):
            coerce_numeric(np.array(["1.5", "abc"]))

    @pytest.mark.parametrize("binner_cls", [EquiWidthBinner, QuantileBinner])
    def test_nan_becomes_missing_code(self, binner_cls):
        values = np.array([1.0, np.nan, 5.0, 3.0, np.nan])
        binner = binner_cls(num_bins=4, allow_missing=True)
        codes = binner.fit_transform(values)
        assert codes[1] == 0 and codes[4] == 0
        assert (codes[[0, 2, 3]] >= 1).all()

    @pytest.mark.parametrize("binner_cls", [EquiWidthBinner, QuantileBinner])
    def test_fit_ignores_nan(self, binner_cls):
        with_nan = np.array([0.0, np.nan, 10.0])
        without = np.array([0.0, 10.0])
        probe = np.array([0.0, 5.0, 10.0])
        a = binner_cls(num_bins=2, allow_missing=True).fit(with_nan)
        b = binner_cls(num_bins=2, allow_missing=True).fit(without)
        assert np.array_equal(a.transform(probe), b.transform(probe))

    @pytest.mark.parametrize("binner_cls", [EquiWidthBinner, QuantileBinner])
    def test_strict_default_still_rejects_nan(self, binner_cls):
        with pytest.raises(ValidationError):
            binner_cls(3).fit(np.array([1.0, np.nan]))
        fitted = binner_cls(3).fit(np.array([1.0, 2.0]))
        with pytest.raises(ValidationError):
            fitted.transform(np.array([np.nan]))

    @pytest.mark.parametrize("binner_cls", [EquiWidthBinner, QuantileBinner])
    def test_all_missing_column_rejected(self, binner_cls):
        with pytest.raises(ValidationError):
            binner_cls(3, allow_missing=True).fit(np.array([np.nan, np.nan]))

    def test_pipeline_encodes_missing_as_zero(self):
        table = {
            "age": np.array(["23", "", "54", "41", ""]),
            "job": np.array(["a", "b", "a", "b", "a"]),
        }
        specs = [ColumnSpec("age", "numeric", num_bins=3), ColumnSpec("job")]
        encoded = Preprocessor(specs).fit_transform(table)
        age = encoded.x0[:, encoded.feature_names.index("age")]
        assert age[1] == 0 and age[4] == 0
        assert (age[[0, 2, 3]] >= 1).all()
        # the feature space still validates (0 = missing is allowed)
        assert encoded.feature_space.num_onehot >= 3
