"""Tests for the fairness/bias error signals."""

import numpy as np
import pytest

from repro.exceptions import ShapeError, ValidationError
from repro.ml import (
    calibration_gap_signal,
    false_negative_signal,
    false_positive_signal,
    positive_prediction_signal,
)


class TestConfusionSignals:
    def test_false_negative(self):
        y = np.array([1, 1, 0, 0])
        y_hat = np.array([0, 1, 0, 1])
        np.testing.assert_allclose(false_negative_signal(y, y_hat), [1, 0, 0, 0])

    def test_false_positive(self):
        y = np.array([1, 1, 0, 0])
        y_hat = np.array([0, 1, 0, 1])
        np.testing.assert_allclose(false_positive_signal(y, y_hat), [0, 0, 0, 1])

    def test_signals_partition_the_errors(self, rng):
        y = rng.integers(0, 2, size=200)
        y_hat = rng.integers(0, 2, size=200)
        total_wrong = (y != y_hat).sum()
        fn = false_negative_signal(y, y_hat).sum()
        fp = false_positive_signal(y, y_hat).sum()
        assert fn + fp == total_wrong

    def test_non_binary_rejected(self):
        with pytest.raises(ValidationError):
            false_negative_signal([0, 2], [0, 1])

    def test_misaligned_rejected(self):
        with pytest.raises(ShapeError):
            false_negative_signal([0, 1], [0, 1, 1])

    def test_positive_prediction(self):
        np.testing.assert_allclose(
            positive_prediction_signal([1, 0, 1]), [1, 0, 1]
        )


class TestCalibrationGap:
    def test_perfect_calibration_zero(self):
        assert calibration_gap_signal([1, 0], [1.0, 0.0]).sum() == 0.0

    def test_gap_values(self):
        np.testing.assert_allclose(
            calibration_gap_signal([1, 0], [0.3, 0.2]), [0.7, 0.2]
        )

    def test_invalid_probability(self):
        with pytest.raises(ValidationError):
            calibration_gap_signal([1], [1.5])


class TestSignalsWithSliceLine:
    def test_fairness_audit_finds_biased_subgroup(self, rng):
        """End-to-end: SliceLine over a false-negative signal recovers the
        subgroup that was systematically denied."""
        from repro.core import SliceLineConfig, slice_line

        n = 4000
        x0 = np.column_stack(
            [rng.integers(1, 4, size=n), rng.integers(1, 3, size=n)]
        ).astype(np.int64)
        qualified = rng.integers(0, 2, size=n)
        predictions = qualified.copy()
        biased = (x0[:, 0] == 2) & (qualified == 1)
        predictions[biased & (rng.random(n) < 0.8)] = 0

        signal = false_negative_signal(qualified, predictions)
        res = slice_line(x0, signal, SliceLineConfig(k=3, sigma=50))
        assert res.top_slices
        assert res.top_slices[0].predicates.get(0) == 2
