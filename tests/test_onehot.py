"""Tests for FeatureSpace and the one-hot encoding contract."""

import numpy as np
import pytest

from repro.core import FeatureSpace, validate_encoded_matrix
from repro.exceptions import EncodingError, ShapeError


class TestValidateEncodedMatrix:
    def test_accepts_integer_matrix(self, tiny_x0):
        out = validate_encoded_matrix(tiny_x0)
        assert out.dtype == np.int64

    def test_accepts_integral_floats(self):
        out = validate_encoded_matrix(np.array([[1.0, 2.0]]))
        assert out.dtype == np.int64

    def test_rejects_fractional(self):
        with pytest.raises(EncodingError):
            validate_encoded_matrix(np.array([[1.5]]))

    def test_rejects_zero_without_missing_flag(self):
        with pytest.raises(EncodingError):
            validate_encoded_matrix(np.array([[0, 1]]))

    def test_zero_allowed_as_missing(self):
        out = validate_encoded_matrix(np.array([[0, 1]]), allow_missing=True)
        assert out[0, 0] == 0

    def test_rejects_negative(self):
        with pytest.raises(EncodingError):
            validate_encoded_matrix(np.array([[-1]]), allow_missing=True)

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            validate_encoded_matrix(np.array([1, 2, 3]))

    def test_rejects_empty(self):
        with pytest.raises(EncodingError):
            validate_encoded_matrix(np.zeros((0, 2), dtype=np.int64))


class TestFeatureSpace:
    def test_domains_from_matrix(self, tiny_x0):
        space = FeatureSpace.from_matrix(tiny_x0)
        np.testing.assert_array_equal(space.domains, [2, 3, 2])
        assert space.num_features == 3
        assert space.num_onehot == 7

    def test_offsets(self, tiny_space):
        np.testing.assert_array_equal(tiny_space.begins, [0, 2, 5])
        np.testing.assert_array_equal(tiny_space.ends, [2, 5, 7])

    def test_encode_shape_and_row_sums(self, tiny_x0, tiny_space):
        x = tiny_space.encode(tiny_x0)
        assert x.shape == (8, 7)
        # every row sets exactly one column per feature
        np.testing.assert_allclose(
            np.asarray(x.sum(axis=1)).ravel(), np.full(8, 3.0)
        )

    def test_encode_specific_row(self, tiny_x0, tiny_space):
        x = tiny_space.encode(tiny_x0).toarray()
        # row 2 is [1, 3, 2] -> columns 0, 4, 6
        np.testing.assert_allclose(x[2], [1, 0, 0, 0, 1, 0, 1])

    def test_column_round_trips(self, tiny_space):
        for feature in range(tiny_space.num_features):
            for value in range(1, tiny_space.domains[feature] + 1):
                col = tiny_space.column_of(feature, value)
                assert tiny_space.feature_of_column(col) == feature
                assert tiny_space.column_value(col) == value

    def test_column_of_validates(self, tiny_space):
        with pytest.raises(EncodingError):
            tiny_space.column_of(0, 3)
        with pytest.raises(ShapeError):
            tiny_space.column_of(5, 1)

    def test_decode_row(self, tiny_space):
        row = np.zeros(7)
        row[tiny_space.column_of(1, 3)] = 1
        row[tiny_space.column_of(2, 2)] = 1
        assert tiny_space.decode_row(row) == {1: 3, 2: 2}

    def test_decode_row_rejects_double_assignment(self, tiny_space):
        row = np.zeros(7)
        row[0] = 1
        row[1] = 1  # both values of feature 0
        with pytest.raises(EncodingError):
            tiny_space.decode_row(row)

    def test_decode_row_wrong_length(self, tiny_space):
        with pytest.raises(ShapeError):
            tiny_space.decode_row(np.zeros(6))

    def test_encode_rejects_unknown_codes(self, tiny_x0, tiny_space):
        bad = tiny_x0.copy()
        bad[0, 0] = 5
        with pytest.raises(EncodingError):
            tiny_space.encode(bad)

    def test_encode_rejects_wrong_width(self, tiny_space):
        with pytest.raises(ShapeError):
            tiny_space.encode(np.ones((3, 2), dtype=np.int64))

    def test_missing_codes_encode_as_empty(self, tiny_space):
        x0 = np.array([[0, 1, 1]])
        x = tiny_space.encode(x0)
        assert x[0].nnz == 2

    def test_feature_names_alignment(self, tiny_x0):
        space = FeatureSpace.from_matrix(tiny_x0, feature_names=["a", "b", "c"])
        assert space.feature_names == ("a", "b", "c")
        with pytest.raises(ShapeError):
            FeatureSpace.from_matrix(tiny_x0, feature_names=["a"])

    def test_value_count_matrix(self, tiny_space):
        vcm = tiny_space.value_count_matrix().toarray()
        assert vcm.shape == (7, 3)
        np.testing.assert_allclose(vcm.sum(axis=0), [2, 3, 2])

    def test_value_index_matrix(self, tiny_space):
        vim = tiny_space.value_index_matrix().toarray()
        # column block of feature 1 carries codes 1, 2, 3
        np.testing.assert_allclose(vim[2:5, 1], [1, 2, 3])
