"""Tests for the CSV command-line interface."""

import numpy as np
import pytest

from repro.cli import build_specs, is_numeric_column, main, read_csv_table
from repro.exceptions import ValidationError


@pytest.fixture
def csv_file(tmp_path, rng):
    """A CSV with a planted problematic slice (city=b AND plan=basic)."""
    n = 800
    city = rng.choice(["a", "b", "c"], size=n)
    plan = rng.choice(["basic", "pro"], size=n)
    age = rng.uniform(18, 80, size=n)
    err = (rng.random(n) < 0.05).astype(float)
    err[(city == "b") & (plan == "basic")] = 1.0
    path = tmp_path / "data.csv"
    with open(path, "w") as handle:
        handle.write("row_id,city,plan,age,err\n")
        for i in range(n):
            handle.write(f"{i},{city[i]},{plan[i]},{age[i]:.2f},{err[i]}\n")
    return str(path)


class TestCsvReading:
    def test_reads_columns(self, csv_file):
        table = read_csv_table(csv_file)
        assert set(table) == {"row_id", "city", "plan", "age", "err"}
        assert table["city"].shape[0] == 800

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValidationError):
            read_csv_table(str(path))

    def test_header_only(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValidationError):
            read_csv_table(str(path))

    def test_ragged_row(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(ValidationError):
            read_csv_table(str(path))


class TestSpecInference:
    def test_is_numeric(self):
        assert is_numeric_column(np.array(["1.5", "2"]))
        assert not is_numeric_column(np.array(["1.5", "x"]))

    def test_kinds_inferred(self, csv_file):
        table = read_csv_table(csv_file)
        specs = {
            s.name: s.kind
            for s in build_specs(table, "err", ["row_id"], [], [], 10)
        }
        assert specs["row_id"] == "drop"
        assert specs["city"] == "categorical"
        assert specs["age"] == "numeric"
        assert "err" not in specs

    def test_overrides_win(self, csv_file):
        table = read_csv_table(csv_file)
        specs = {
            s.name: s.kind
            for s in build_specs(table, "err", [], [], ["age"], 10)
        }
        assert specs["age"] == "categorical"

    def test_unknown_column_rejected(self, csv_file):
        table = read_csv_table(csv_file)
        with pytest.raises(ValidationError):
            build_specs(table, "err", ["nope"], [], [], 10)


class TestMain:
    def test_end_to_end_finds_planted_slice(self, csv_file, capsys):
        rc = main([
            csv_file, "--error-column", "err", "--drop", "row_id",
            "--k", "3", "--sigma", "20",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "#1" in out
        assert "city=b" in out and "plan=basic" in out

    def test_missing_error_column(self, csv_file, capsys):
        rc = main([csv_file, "--error-column", "nope"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        rc = main(["/does/not/exist.csv", "--error-column", "e"])
        assert rc == 2

    def test_no_problematic_slices(self, tmp_path, capsys):
        path = tmp_path / "flat.csv"
        with open(path, "w") as handle:
            handle.write("f,err\n")
            for i in range(200):
                handle.write(f"{'ab'[i % 2]},1.0\n")
        rc = main([str(path), "--error-column", "err", "--sigma", "10"])
        assert rc == 0
        assert "no slice scores above 0" in capsys.readouterr().out


@pytest.fixture
def blank_cell_csv(tmp_path, rng):
    """Numeric column with scattered empty cells + a planted slice."""
    n = 600
    city = rng.choice(["a", "b", "c"], size=n)
    plan = rng.choice(["basic", "pro"], size=n)
    age = rng.uniform(18, 80, size=n)
    blank = rng.random(n) < 0.08
    err = (rng.random(n) < 0.05).astype(float)
    err[(city == "b") & (plan == "basic")] = 1.0
    path = tmp_path / "blanks.csv"
    with open(path, "w") as handle:
        handle.write("city,plan,age,err\n")
        for i in range(n):
            cell = "" if blank[i] else f"{age[i]:.2f}"
            handle.write(f"{city[i]},{plan[i]},{cell},{err[i]}\n")
    return str(path)


class TestBlankNumericCells:
    """Regression: an empty cell must not flip a numeric column to
    categorical — it is a missing value and maps to code 0."""

    def test_blank_cells_do_not_break_numeric_inference(self):
        assert is_numeric_column(np.array(["1.5", "", "2", "  "]))
        assert not is_numeric_column(np.array(["1.5", "", "x"]))
        # a column of only blanks carries no numeric evidence
        assert not is_numeric_column(np.array(["", "", ""]))

    def test_kind_inferred_numeric_despite_blanks(self, blank_cell_csv):
        table = read_csv_table(blank_cell_csv)
        specs = {
            s.name: s.kind for s in build_specs(table, "err", [], [], [], 10)
        }
        assert specs["age"] == "numeric"

    def test_end_to_end_with_blank_cells(self, blank_cell_csv, capsys):
        rc = main([
            blank_cell_csv, "--error-column", "err", "--k", "3", "--sigma", "20",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "city=b" in out and "plan=basic" in out

    def test_blank_cells_encode_as_missing(self, blank_cell_csv):
        from repro.preprocessing import ColumnSpec, Preprocessor

        table = read_csv_table(blank_cell_csv)
        specs = build_specs(table, "err", [], [], [], 10)
        encoded = Preprocessor(specs).fit_transform(table)
        age_col = encoded.feature_names.index("age")
        codes = encoded.x0[:, age_col]
        blanks = np.array([not str(v).strip() for v in table["age"]])
        assert (codes[blanks] == 0).all()
        assert (codes[~blanks] >= 1).all()


class TestMonitorSubcommand:
    def test_monitor_end_to_end(self, csv_file, capsys, tmp_path):
        ticks_path = str(tmp_path / "ticks.json")
        rc = main([
            "monitor", csv_file, "--error-column", "err",
            "--drop", "row_id", "--batch-size", "200", "--window", "2",
            "--k", "3", "--sigma", "20", "--ticks-json", ticks_path,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tick 0:" in out and "tick 3:" in out
        assert "city=b" in out and "plan=basic" in out
        import json

        with open(ticks_path) as handle:
            docs = json.load(handle)
        assert len(docs) == 4
        assert all(doc["schema"] == "repro.obs/v1" for doc in docs)
        assert docs[-1]["monitor"]["tick"] == 3
        # warm-started ticks report their seed bookkeeping
        assert docs[-1]["warm_start"] is not None

    def test_monitor_cold_flag_matches_warm(self, csv_file, capsys):
        rc = main([
            "monitor", csv_file, "--error-column", "err", "--drop", "row_id",
            "--batch-size", "200", "--window", "2", "--sigma", "20", "--cold",
        ])
        assert rc == 0
        assert "warm=" not in capsys.readouterr().out

    def test_monitor_tumbling_policy(self, csv_file, capsys):
        rc = main([
            "monitor", csv_file, "--error-column", "err", "--drop", "row_id",
            "--batch-size", "200", "--policy", "tumbling",
            "--tick-every", "2", "--sigma", "10",
        ])
        assert rc == 0
        assert "batch(es)" in capsys.readouterr().out

    def test_monitor_bad_inputs(self, csv_file, capsys):
        assert main(["monitor", csv_file, "--error-column", "nope"]) == 2
        assert main([
            "monitor", csv_file, "--error-column", "err", "--batch-size", "0",
        ]) == 2
        assert main(["monitor", "/does/not/exist.csv", "--error-column", "e"]) == 2
        capsys.readouterr()
