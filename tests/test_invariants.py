"""Property-based tests of the paper's Section 3 monotonicity invariants.

These are the facts the pruning correctness rests on: slice sizes and
total errors decrease monotonically along every downward lattice path,
child statistics are bounded by parent minima, and the top-K threshold
only ever rises during a run.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.naive import enumerate_all_slices
from repro.core import SliceLineConfig, slice_line
from repro.core.scoring import score_upper_bound


def _random_problem(seed: int, max_m: int = 4):
    gen = np.random.default_rng(seed)
    n = int(gen.integers(40, 120))
    m = int(gen.integers(2, max_m + 1))
    x0 = np.column_stack(
        [gen.integers(1, int(gen.integers(2, 4)) + 1, size=n) for _ in range(m)]
    ).astype(np.int64)
    errors = gen.random(n) * (gen.random(n) < 0.6)
    if errors.sum() == 0:
        errors[0] = 1.0
    return x0, errors


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5_000))
def test_child_statistics_bounded_by_parent_minima(seed):
    """|S| <= min parent size; se <= min parent se; sm <= min parent sm."""
    x0, errors = _random_problem(seed)
    by_key = {
        frozenset(s.predicates.items()): s
        for s in enumerate_all_slices(x0, errors, alpha=0.9)
    }
    for key, child in by_key.items():
        if len(key) < 2:
            continue
        for item in key:
            parent = by_key.get(key - {item})
            if parent is None:
                continue
            assert child.size <= parent.size
            assert child.error <= parent.error + 1e-12
            assert child.max_error <= parent.max_error + 1e-12


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5_000))
def test_upper_bound_dominates_every_descendant(seed):
    """ceil(sc) from a slice's stats bounds the score of all its subsets
    meeting the support constraint — the score-pruning safety argument."""
    x0, errors = _random_problem(seed)
    n = x0.shape[0]
    total = float(errors.sum())
    sigma = 3
    by_key = {
        frozenset(s.predicates.items()): s
        for s in enumerate_all_slices(x0, errors, alpha=0.9)
    }
    for key, ancestor in by_key.items():
        if len(key) != 1:
            continue
        bound = score_upper_bound(
            np.array([float(ancestor.size)]),
            np.array([ancestor.error]),
            np.array([ancestor.max_error]),
            n, total, sigma, 0.9,
        )[0]
        for other_key, descendant in by_key.items():
            if key < other_key and descendant.size >= sigma:
                assert bound >= descendant.score - 1e-9


@pytest.mark.parametrize("seed", range(6))
def test_level_stats_skip_and_prune_counters_consistent(seed):
    """Counters never go negative and evaluated+skipped <= deduplicated."""
    x0, errors = _random_problem(seed, max_m=5)
    res = slice_line(
        x0, errors, SliceLineConfig(k=3, sigma=4, priority_chunk=4)
    )
    for ls in res.level_stats[1:]:
        assert ls.pruned_by_size >= 0
        assert ls.pruned_by_score >= 0
        assert ls.pruned_by_parents >= 0
        assert ls.skipped_by_priority >= 0
        if ls.deduplicated:
            assert ls.evaluated + ls.skipped_by_priority <= ls.deduplicated


@pytest.mark.parametrize("seed", range(6))
def test_scores_of_topk_respect_definition(seed):
    """Every returned slice satisfies Definition 2's constraints."""
    x0, errors = _random_problem(seed, max_m=5)
    sigma = 5
    res = slice_line(x0, errors, SliceLineConfig(k=4, sigma=sigma))
    for s in res.top_slices:
        assert s.size >= sigma
        assert s.score > 0
        # statistics are internally consistent
        assert 0 <= s.error <= s.size * s.max_error + 1e-9
        assert s.max_error >= 0


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5_000), k_small=st.integers(1, 3))
def test_topk_nesting(seed, k_small):
    """The top-k scores are a prefix of the top-(k+j) scores.

    Predicate-level nesting is only guaranteed where scores are untied:
    score pruning is *strict* (a candidate must beat the current k-th
    score to be worth evaluating once the top-K is full), so a small-k
    run may legitimately settle on a different — equally optimal —
    member of a score-tie class than a larger-k run that evaluated more
    of the class (e.g. deeper-level slices with the identical score).
    """
    x0, errors = _random_problem(seed)
    cfg_small = SliceLineConfig(k=k_small, sigma=3)
    cfg_big = SliceLineConfig(k=k_small + 3, sigma=3)
    small = slice_line(x0, errors, cfg_small).top_slices
    big = slice_line(x0, errors, cfg_big).top_slices
    assert [s.score for s in small] == [s.score for s in big[: len(small)]]
    big_scores = [s.score for s in big]
    for rank, s in enumerate(small):
        if big_scores.count(s.score) == 1:
            assert s.predicates == big[rank].predicates
