"""Tests for the resilience layer: budgets, checkpoint/resume, validation.

The two anchors are exactness guarantees: (1) a run resumed from any level
boundary checkpoint is **bitwise identical** — top-K slices, statistics,
and pruning counters — to the uninterrupted run; (2) a budget-tripped run
returns the exact top-K of everything evaluated before the stop with
``completed=False``, never an exception.  Errors are drawn as dyadic
rationals so float64 summation is exact and strict equality is the right
assertion throughout.
"""

import json
import os

import numpy as np
import pytest

from repro.core import SliceLine, SliceLineConfig, slice_line
from repro.core.config import PruningConfig
from repro.exceptions import (
    CheckpointError,
    ConfigError,
    InvalidErrorsError,
    ShapeError,
)
from repro.resilience import (
    BudgetConfig,
    BudgetTracker,
    CKPT_SCHEMA,
    estimate_level_memory,
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
)


def dyadic_problem(seed, n=None, m=None):
    """Random ``(x0, errors)`` with errors that are multiples of 1/16."""
    gen = np.random.default_rng(seed)
    n = n or int(gen.integers(200, 400))
    m = m or int(gen.integers(3, 6))
    domains = gen.integers(2, 5, size=m)
    x0 = np.column_stack(
        [gen.integers(1, d + 1, size=n) for d in domains]
    ).astype(np.int64)
    errors = gen.integers(0, 17, size=n) / 16.0
    if errors.sum() == 0:
        errors[0] = 1.0
    return x0, errors


def counters_records(result):
    """Per-level counter dicts without timing/execution-shape fields.

    A resumed run restarts with an empty indicator cache and may see a
    different candidate geometry per level, so the kernel and pair-plan
    cost models may legitimately make different (equally exact) choices
    than the uninterrupted run did — everything in
    :data:`repro.obs.counters.EXECUTION_FIELDS` is excluded.
    """
    from repro.obs.counters import EXECUTION_FIELDS

    records = []
    for record in result.counters.levels:
        as_dict = record.to_dict()
        for gauge in EXECUTION_FIELDS:
            as_dict.pop(gauge, None)
        records.append(as_dict)
    return records


def assert_identical(a, b, *, counters=True):
    """Bitwise equality of two results' top-K (and optionally counters)."""
    assert np.array_equal(a.top_stats, b.top_stats)
    assert np.array_equal(a.top_slices_encoded, b.top_slices_encoded)
    assert [s.predicates for s in a.top_slices] == [
        s.predicates for s in b.top_slices
    ]
    if counters:
        assert counters_records(a) == counters_records(b)


# ---------------------------------------------------------------------------
# input validation at the slice_line boundary
# ---------------------------------------------------------------------------


class TestInputValidation:
    def test_nan_errors_rejected(self):
        x0, errors = dyadic_problem(1)
        errors = errors.copy()
        errors[3] = np.nan
        with pytest.raises(InvalidErrorsError, match="finite"):
            slice_line(x0, errors)

    def test_inf_errors_rejected(self):
        x0, errors = dyadic_problem(1)
        errors = errors.copy()
        errors[0] = np.inf
        with pytest.raises(InvalidErrorsError, match="finite"):
            slice_line(x0, errors)

    def test_negative_errors_raise_typed_and_legacy(self):
        x0, errors = dyadic_problem(2)
        errors = errors.copy()
        errors[0] = -0.5
        # InvalidErrorsError subclasses ShapeError: callers that caught the
        # historical exception keep working.
        with pytest.raises(InvalidErrorsError):
            slice_line(x0, errors)
        with pytest.raises(ShapeError):
            slice_line(x0, errors)

    def test_row_mismatch_rejected(self):
        x0, errors = dyadic_problem(3)
        with pytest.raises(ShapeError):
            slice_line(x0, errors[:-1])

    def test_fractional_codes_rejected(self):
        x0, errors = dyadic_problem(4)
        bad = x0.astype(np.float64)
        bad[0, 0] = 1.5
        with pytest.raises(Exception):
            slice_line(bad, errors)

    def test_estimator_propagates_validation(self):
        x0, errors = dyadic_problem(5)
        errors = errors.copy()
        errors[1] = np.nan
        with pytest.raises(InvalidErrorsError):
            SliceLine().fit(x0, errors)


# ---------------------------------------------------------------------------
# budget configuration and tracker unit behaviour
# ---------------------------------------------------------------------------


class TestBudgetConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            BudgetConfig(deadline_s=-1.0)
        with pytest.raises(ConfigError):
            BudgetConfig(max_candidates_per_level=0)
        with pytest.raises(ConfigError):
            BudgetConfig(max_memory_bytes=0)

    def test_enabled(self):
        assert not BudgetConfig().enabled
        assert BudgetConfig(deadline_s=1.0).enabled
        assert BudgetConfig(max_candidates_per_level=10).enabled
        assert BudgetConfig(max_memory_bytes=1).enabled

    def test_tracker_records_first_trip_only(self):
        tracker = BudgetTracker(
            BudgetConfig(max_candidates_per_level=5, max_memory_bytes=10)
        )
        first = tracker.check_candidates(2, 100)
        assert first is not None and first.budget == "candidates"
        second = tracker.check_memory(3, 10**9)
        assert second is first

    def test_memory_estimate_scales(self):
        small = estimate_level_memory(10, 2, 100, 500, 16)
        big = estimate_level_memory(100000, 2, 100, 500, 16)
        assert big > small > 0


# ---------------------------------------------------------------------------
# anytime budgets through slice_line
# ---------------------------------------------------------------------------


class TestAnytimeBudgets:
    def test_candidate_budget_returns_partial(self):
        x0, errors = dyadic_problem(11, n=400, m=5)
        full = slice_line(x0, errors, SliceLineConfig(k=5, sigma=2))
        tripped = slice_line(
            x0, errors, SliceLineConfig(k=5, sigma=2),
            budgets=BudgetConfig(max_candidates_per_level=1),
        )
        assert full.completed and full.budget_trip is None
        assert not tripped.completed
        assert tripped.budget_trip.budget == "candidates"
        # The partial top-K is exactly the level-1 (basic slice) answer.
        basic_only = slice_line(
            x0, errors, SliceLineConfig(k=5, sigma=2, max_level=1)
        )
        assert np.array_equal(tripped.top_stats, basic_only.top_stats)

    def test_zero_deadline_returns_level1_topk(self):
        x0, errors = dyadic_problem(12)
        result = slice_line(
            x0, errors, SliceLineConfig(k=4),
            budgets=BudgetConfig(deadline_s=0.0),
        )
        assert not result.completed
        assert result.budget_trip.budget == "deadline"
        # The partial answer is exactly the level-1 top-K (possibly empty
        # when no basic slice scores positive — still a valid answer).
        level1 = slice_line(x0, errors, SliceLineConfig(k=4, max_level=1))
        assert np.array_equal(result.top_stats, level1.top_stats)

    def test_memory_budget_trips(self):
        x0, errors = dyadic_problem(13, n=400, m=5)
        result = slice_line(
            x0, errors, SliceLineConfig(k=4, sigma=2),
            budgets=BudgetConfig(max_memory_bytes=1),
        )
        assert not result.completed
        assert result.budget_trip.budget == "memory"

    def test_budget_trip_counted_and_exported(self):
        x0, errors = dyadic_problem(14, n=400, m=5)
        result = slice_line(
            x0, errors, SliceLineConfig(k=4, sigma=2),
            budgets=BudgetConfig(max_candidates_per_level=1),
        )
        assert result.counters.events.get("budget.trip") == 1
        doc = result.to_obs_dict()
        assert doc["run"]["completed"] is False
        assert doc["run"]["budget_trip"]["budget"] == "candidates"
        assert doc["counters"]["events"]["budget.trip"] == 1
        json.dumps(doc["run"])  # the trip record must be JSON-serializable

    def test_flow_conservation_with_skipped_by_budget(self):
        x0, errors = dyadic_problem(15, n=400, m=5)
        result = slice_line(
            x0, errors, SliceLineConfig(k=4, sigma=2),
            budgets=BudgetConfig(max_candidates_per_level=1),
        )
        assert result.counters.reconcile() == []
        tripped_level = result.counters.levels[-1]
        assert tripped_level.skipped_by_budget == tripped_level.candidates_emitted
        assert tripped_level.evaluated == 0

    def test_untripped_budgets_do_not_change_results(self):
        for seed in (21, 22, 23):
            x0, errors = dyadic_problem(seed)
            cfg = SliceLineConfig(k=5, sigma=2)
            plain = slice_line(x0, errors, cfg)
            budgeted = slice_line(
                x0, errors, cfg,
                budgets=BudgetConfig(
                    deadline_s=3600.0,
                    max_candidates_per_level=10**9,
                    max_memory_bytes=2**60,
                ),
            )
            assert budgeted.completed
            assert_identical(plain, budgeted)

    def test_deadline_chunked_evaluation_is_exact(self):
        # Force the deadline-chunked non-priority path and check bitwise
        # equality with the single-shot evaluation.
        x0, errors = dyadic_problem(24, n=500, m=6)
        cfg = SliceLineConfig(
            k=5, sigma=2, priority_evaluation=False, priority_chunk=4
        )
        plain = slice_line(x0, errors, cfg)
        budgeted = slice_line(
            x0, errors, cfg, budgets=BudgetConfig(deadline_s=3600.0)
        )
        assert budgeted.completed
        assert_identical(plain, budgeted)

    def test_monitor_forwards_budgets(self):
        from repro.datasets import replay_batches
        from repro.streaming import SliceMonitor

        x0, errors = dyadic_problem(25, n=300)
        monitor = SliceMonitor(
            config=SliceLineConfig(k=3),
            budgets=BudgetConfig(deadline_s=0.0),
        )
        for batch in replay_batches(x0, errors, 100):
            monitor.ingest(batch)
        tick = monitor.tick()
        assert tick.result.completed is False
        assert tick.to_obs_dict()["monitor"]["completed"] is False


# ---------------------------------------------------------------------------
# checkpoint/resume equivalence
# ---------------------------------------------------------------------------


def run_with_checkpoints(x0, errors, cfg, directory, **kwargs):
    return slice_line(x0, errors, cfg, checkpoint_dir=str(directory), **kwargs)


class TestCheckpointResume:
    def test_bundle_layout_and_schema(self, tmp_path):
        x0, errors = dyadic_problem(31)
        run_with_checkpoints(x0, errors, SliceLineConfig(k=4), tmp_path)
        bundles = sorted(os.listdir(tmp_path))
        assert bundles and bundles[0] == "level-0001"
        with open(tmp_path / bundles[0] / "meta.json") as handle:
            meta = json.load(handle)
        assert meta["schema"] == CKPT_SCHEMA
        assert set(meta["data"]) == {
            "num_rows", "num_features", "x0_sha256", "errors_sha256",
        }
        assert (tmp_path / bundles[0] / "arrays.npz").exists()

    @pytest.mark.parametrize("num_threads", [1, 3])
    @pytest.mark.parametrize("compaction", [True, False])
    def test_resume_any_level_bitwise_identical(
        self, tmp_path, compaction, num_threads
    ):
        x0, errors = dyadic_problem(32, n=400, m=5)
        cfg = SliceLineConfig(k=5, sigma=2, compaction=compaction)
        directory = tmp_path / f"ck-{compaction}-{num_threads}"
        full = run_with_checkpoints(
            x0, errors, cfg, directory, num_threads=num_threads
        )
        bundles = sorted(os.listdir(directory))
        assert len(bundles) >= 2
        for bundle in bundles:
            resumed = slice_line(
                x0, errors, cfg,
                num_threads=num_threads,
                resume_from=str(directory / bundle),
            )
            assert resumed.completed
            assert_identical(full, resumed)

    def test_resume_from_directory_picks_latest(self, tmp_path):
        x0, errors = dyadic_problem(33)
        cfg = SliceLineConfig(k=4)
        full = run_with_checkpoints(x0, errors, cfg, tmp_path)
        assert latest_checkpoint(str(tmp_path)) == str(
            tmp_path / sorted(os.listdir(tmp_path))[-1]
        )
        resumed = slice_line(x0, errors, cfg, resume_from=str(tmp_path))
        assert_identical(full, resumed)

    def test_resumed_run_rewrites_remaining_checkpoints(self, tmp_path):
        x0, errors = dyadic_problem(34, n=400, m=5)
        cfg = SliceLineConfig(k=4, sigma=2)
        first = tmp_path / "first"
        second = tmp_path / "second"
        full = run_with_checkpoints(x0, errors, cfg, first)
        resumed = slice_line(
            x0, errors, cfg,
            resume_from=str(first / "level-0002"),
            checkpoint_dir=str(second),
        )
        assert_identical(full, resumed)
        # Uninterrupted and resumed runs agree on the write-event totals.
        assert (
            resumed.counters.events["checkpoint.write"]
            == full.counters.events["checkpoint.write"]
        )

    def test_resume_preserves_warm_start_accounting(self, tmp_path):
        x0, errors = dyadic_problem(35, n=300, m=4)
        cfg = SliceLineConfig(k=4, sigma=2)
        cold = slice_line(x0, errors, cfg)
        seeds = cold.top_slices[:2]
        full = slice_line(
            x0, errors, cfg, seed_slices=seeds,
            checkpoint_dir=str(tmp_path),
        )
        resumed = slice_line(
            x0, errors, cfg, resume_from=str(tmp_path)
        )
        assert_identical(full, resumed)
        assert full.warm_start is not None
        assert resumed.warm_start is not None
        assert resumed.warm_start.hits == full.warm_start.hits

    def test_wrong_data_rejected(self, tmp_path):
        x0, errors = dyadic_problem(36)
        cfg = SliceLineConfig(k=4)
        run_with_checkpoints(x0, errors, cfg, tmp_path)
        other = errors.copy()
        other[0] += 1.0
        with pytest.raises(CheckpointError, match="input data"):
            slice_line(x0, other, cfg, resume_from=str(tmp_path))

    def test_wrong_config_rejected(self, tmp_path):
        x0, errors = dyadic_problem(37)
        run_with_checkpoints(x0, errors, SliceLineConfig(k=4), tmp_path)
        with pytest.raises(CheckpointError, match="configuration"):
            slice_line(
                x0, errors, SliceLineConfig(k=5), resume_from=str(tmp_path)
            )
        with pytest.raises(CheckpointError, match="configuration"):
            slice_line(
                x0, errors,
                SliceLineConfig(k=4, pruning=PruningConfig(by_score=False)),
                resume_from=str(tmp_path),
            )

    def test_missing_bundle_rejected(self, tmp_path):
        x0, errors = dyadic_problem(38)
        with pytest.raises(CheckpointError):
            slice_line(
                x0, errors, SliceLineConfig(),
                resume_from=str(tmp_path / "nope"),
            )
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path))

    def test_save_load_roundtrip_counters(self, tmp_path):
        x0, errors = dyadic_problem(39)
        cfg = SliceLineConfig(k=4)
        full = run_with_checkpoints(x0, errors, cfg, tmp_path)
        state = load_checkpoint(str(tmp_path))
        registry = state.restore_counters()
        levels = {record.level for record in registry.levels}
        assert 1 in levels
        assert registry.events["checkpoint.write"] >= 1
        # Rewriting the same bundle is idempotent (tmp staging + rename).
        save_checkpoint(str(tmp_path), state)
        again = load_checkpoint(str(tmp_path / f"level-{state.level:04d}"))
        assert again.level == state.level
        assert np.array_equal(again.top_stats, state.top_stats)

    def test_estimator_checkpoint_and_resume(self, tmp_path):
        x0, errors = dyadic_problem(40, n=300, m=4)
        finder = SliceLine(k=4, checkpoint_dir=str(tmp_path))
        finder.fit(x0, errors)
        assert finder.completed_
        full_stats = finder.top_stats_.copy()
        resumed = SliceLine(k=4)
        resumed.fit(x0, errors, resume_from=str(tmp_path))
        assert np.array_equal(resumed.top_stats_, full_stats)


# ---------------------------------------------------------------------------
# quarantine through the monitor
# ---------------------------------------------------------------------------


class TestMonitorQuarantine:
    def make_monitor(self, **kwargs):
        from repro.streaming import SliceMonitor

        return SliceMonitor(config=SliceLineConfig(k=3), **kwargs)

    def batches(self, seed=41, n=300, batch=100):
        from repro.datasets import replay_batches

        x0, errors = dyadic_problem(seed, n=n)
        return list(replay_batches(x0, errors, batch))

    def test_corrupt_batch_quarantined_monitor_keeps_ticking(self):
        from repro.resilience.chaos import make_corrupt_batch

        monitor = self.make_monitor()
        batches = self.batches()
        assert monitor.ingest(batches[0]) is None
        record = monitor.ingest(
            make_corrupt_batch(batches[1], "nonfinite-errors")
        )
        assert record is not None and record.reason == "nonfinite-errors"
        assert len(monitor.window) == 1
        tick = monitor.tick()
        assert tick.num_rows == batches[0].num_rows
        assert monitor.quarantine.reasons() == {"nonfinite-errors": 1}

    @pytest.mark.parametrize(
        "kind",
        [
            "nonfinite-errors",
            "negative-errors",
            "shape-mismatch",
            "encoding",
            "feature-mismatch",
        ],
    )
    def test_every_corruption_kind_is_caught(self, kind):
        from repro.resilience.chaos import make_corrupt_batch

        monitor = self.make_monitor()
        batches = self.batches()
        assert monitor.ingest(batches[0]) is None
        record = monitor.ingest(make_corrupt_batch(batches[1], kind))
        assert record is not None
        assert record.reason == kind

    def test_quarantine_persists_to_disk(self, tmp_path):
        from repro.resilience.chaos import make_corrupt_batch

        monitor = self.make_monitor(quarantine_dir=str(tmp_path))
        batches = self.batches()
        monitor.ingest(batches[0])
        record = monitor.ingest(
            make_corrupt_batch(batches[1], "negative-errors")
        )
        stem = tmp_path / f"batch-{record.batch_id:06d}"
        assert (tmp_path / f"{stem.name}.npz").exists()
        with open(tmp_path / f"{stem.name}.json") as handle:
            doc = json.load(handle)
        assert doc["reason"] == "negative-errors"

    def test_quarantine_emits_span(self):
        from repro.resilience.chaos import make_corrupt_batch

        monitor = self.make_monitor(trace=True)
        batches = self.batches()
        monitor.ingest(batches[0])
        monitor.ingest(make_corrupt_batch(batches[1], "encoding"))
        span = monitor.tracer.find("quarantine.batch")
        assert span is not None
        assert span.attrs["reason"] == "encoding"

    def test_healthy_stream_unaffected_by_quarantine_layer(self):
        monitor = self.make_monitor()
        reference = self.make_monitor()
        for batch in self.batches():
            assert monitor.ingest(batch) is None
            reference.window.push(batch)
        tick = monitor.tick()
        ref = reference.tick()
        assert np.array_equal(tick.result.top_stats, ref.result.top_stats)
        assert len(monitor.quarantine) == 0
