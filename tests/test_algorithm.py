"""End-to-end tests of the Algorithm-1 driver and the SliceLine estimator."""

import numpy as np
import pytest

from repro.core import (
    PruningConfig,
    Slice,
    SliceLine,
    SliceLineConfig,
    slice_line,
    slice_membership,
)
from repro.exceptions import ShapeError


class TestSliceLineFunction:
    def test_finds_planted_slice(self, planted_dataset):
        x0, errors, predicates = planted_dataset
        res = slice_line(x0, errors, SliceLineConfig(k=3, sigma=10))
        assert dict(res.top_slices[0].predicates) == predicates

    def test_result_sorted_descending(self, planted_dataset):
        x0, errors, _ = planted_dataset
        res = slice_line(x0, errors, SliceLineConfig(k=8, sigma=5))
        scores = [s.score for s in res.top_slices]
        assert scores == sorted(scores, reverse=True)

    def test_all_results_valid(self, planted_dataset):
        x0, errors, _ = planted_dataset
        sigma = 12
        res = slice_line(x0, errors, SliceLineConfig(k=8, sigma=sigma))
        for s in res.top_slices:
            assert s.score > 0
            assert s.size >= sigma

    def test_reported_stats_match_data(self, planted_dataset):
        x0, errors, _ = planted_dataset
        res = slice_line(x0, errors, SliceLineConfig(k=5, sigma=10))
        for s in res.top_slices:
            mask = slice_membership(x0, s)
            assert int(mask.sum()) == s.size
            assert errors[mask].sum() == pytest.approx(s.error)
            assert errors[mask].max() == pytest.approx(s.max_error)

    def test_encoded_output_matches_slices(self, planted_dataset):
        x0, errors, _ = planted_dataset
        res = slice_line(x0, errors, SliceLineConfig(k=5, sigma=10))
        assert res.top_slices_encoded.shape == (len(res.top_slices), x0.shape[1])
        for row, s in zip(res.top_slices_encoded, res.top_slices):
            for f, v in s.predicates.items():
                assert row[f] == v
            assert (row != 0).sum() == len(s.predicates)

    def test_max_level_caps_depth(self, planted_dataset):
        x0, errors, _ = planted_dataset
        res = slice_line(x0, errors, SliceLineConfig(k=5, sigma=5, max_level=2))
        assert max(len(s.predicates) for s in res.top_slices) <= 2
        assert max(ls.level for ls in res.level_stats) <= 2

    def test_zero_errors_returns_empty(self, tiny_x0):
        res = slice_line(tiny_x0, np.zeros(8), SliceLineConfig(k=3, sigma=1))
        assert len(res.top_slices) == 0

    def test_zero_errors_still_accounts_for_work(self, tiny_x0):
        """Regression: the empty result used to report level_stats=[] and
        total_seconds=0.0 even though the encoding pass over X0 ran."""
        res = slice_line(tiny_x0, np.zeros(8), SliceLineConfig(k=3, sigma=1))
        assert res.total_seconds > 0.0
        assert len(res.level_stats) == 1
        assert res.level_stats[0].level == 1
        assert res.level_stats[0].elapsed_seconds == res.total_seconds
        assert res.level_stats[0].evaluated == 0
        assert res.counters is not None and res.counters.reconcile() == []

    def test_zero_errors_traced(self, tiny_x0):
        res = slice_line(
            tiny_x0, np.zeros(8), SliceLineConfig(k=3, sigma=1), trace=True
        )
        assert res.trace is not None
        assert res.trace.find("encode") is not None

    def test_negative_errors_rejected(self, tiny_x0):
        with pytest.raises(ShapeError):
            slice_line(tiny_x0, np.full(8, -1.0))

    def test_error_length_mismatch_rejected(self, tiny_x0):
        with pytest.raises(ShapeError):
            slice_line(tiny_x0, np.ones(5))

    def test_level_stats_recorded(self, planted_dataset):
        x0, errors, _ = planted_dataset
        res = slice_line(x0, errors, SliceLineConfig(k=3, sigma=10))
        assert res.level_stats[0].level == 1
        assert res.level_stats[0].evaluated == res.num_onehot_columns
        assert all(ls.elapsed_seconds >= 0 for ls in res.level_stats)

    def test_sigma_default_rule_applied(self, planted_dataset):
        x0, errors, _ = planted_dataset
        res = slice_line(x0, errors, SliceLineConfig(k=3))
        # n=500 -> sigma = max(32, 5) = 32
        assert all(s.size >= 32 for s in res.top_slices)

    def test_deterministic_across_runs(self, planted_dataset):
        x0, errors, _ = planted_dataset
        cfg = SliceLineConfig(k=6, sigma=8)
        r1 = slice_line(x0, errors, cfg)
        r2 = slice_line(x0, errors, cfg)
        assert [s.predicates for s in r1.top_slices] == [
            s.predicates for s in r2.top_slices
        ]
        np.testing.assert_allclose(r1.top_stats, r2.top_stats)

    def test_priority_evaluation_matches_plain(self, planted_dataset):
        x0, errors, _ = planted_dataset
        base = SliceLineConfig(k=6, sigma=8, priority_chunk=4)
        plain = base.with_overrides(priority_evaluation=False)
        r_priority = slice_line(x0, errors, base)
        r_plain = slice_line(x0, errors, plain)
        np.testing.assert_allclose(
            r_priority.top_stats, r_plain.top_stats, rtol=1e-12
        )

    def test_pruning_off_same_topk(self, planted_dataset):
        # All pruning techniques are safe: disabling them changes work done,
        # never the result.
        x0, errors, _ = planted_dataset
        cfg_on = SliceLineConfig(k=5, sigma=10, max_level=3)
        cfg_off = SliceLineConfig(
            k=5, sigma=10, max_level=3,
            pruning=PruningConfig.none(), priority_evaluation=False,
        )
        r_on = slice_line(x0, errors, cfg_on)
        r_off = slice_line(x0, errors, cfg_off)
        np.testing.assert_allclose(
            r_on.top_stats[:, 0], r_off.top_stats[:, 0], rtol=1e-12
        )

    def test_report_renders(self, planted_dataset):
        x0, errors, _ = planted_dataset
        res = slice_line(x0, errors, SliceLineConfig(k=3, sigma=10))
        text = res.report(feature_names=["a", "b", "c", "d", "e"])
        assert "score=" in text and "a=" in text


class TestSliceLineEstimator:
    def test_fit_and_attributes(self, planted_dataset):
        x0, errors, predicates = planted_dataset
        model = SliceLine(k=4, sigma=10).fit(x0, errors)
        assert dict(model.top_slices_[0].predicates) == predicates
        assert model.top_stats_.shape[1] == 4

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SliceLine().top_slices_

    def test_transform_membership(self, planted_dataset):
        x0, errors, _ = planted_dataset
        model = SliceLine(k=3, sigma=10).fit(x0, errors)
        members = model.transform(x0)
        assert members.shape == (x0.shape[0], len(model.top_slices_))
        for j, s in enumerate(model.top_slices_):
            assert int(members[:, j].sum()) == s.size

    def test_feature_names_in_report(self, planted_dataset):
        x0, errors, _ = planted_dataset
        names = ["age", "job", "edu", "sex", "city"]
        model = SliceLine(k=2, sigma=10).fit(x0, errors, feature_names=names)
        assert any(name in model.report() for name in names)


class TestSliceObject:
    def test_describe_with_labels(self):
        s = Slice(predicates={0: 2, 2: 1}, score=1.0, error=5.0, max_error=1.0, size=10)
        text = s.describe(
            feature_names=["color", "size", "shape"],
            value_labels=[["red", "blue"], ["s"], ["round"]],
        )
        assert text == "color=blue AND shape=round"

    def test_describe_defaults(self):
        s = Slice(predicates={1: 3}, score=0.5, error=1.0, max_error=1.0, size=5)
        assert s.describe() == "F2=3"

    def test_empty_predicates(self):
        s = Slice(predicates={}, score=0.0, error=0.0, max_error=0.0, size=0)
        assert s.describe() == "<entire dataset>"
        assert s.level == 0

    def test_matches(self):
        s = Slice(predicates={0: 1, 1: 2}, score=1.0, error=1.0, max_error=1.0, size=1)
        assert s.matches(np.array([1, 2, 9]))
        assert not s.matches(np.array([1, 3, 9]))

    def test_average_error(self):
        s = Slice(predicates={0: 1}, score=1.0, error=6.0, max_error=2.0, size=3)
        assert s.average_error == pytest.approx(2.0)
