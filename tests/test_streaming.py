"""Tests for the incremental slice-monitoring subsystem (repro.streaming).

The anchor is the exactness oracle: whatever the monitor does with caches,
merges, and warm-started enumeration, its top-K must be *identical* — same
slices, same (size, error, score) — to a cold from-scratch ``slice_line``
on the concatenated live-window rows.  Errors are drawn as dyadic rationals
(multiples of 1/16) throughout so float64 sums are bitwise exact and strict
equality is the right assertion.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FeatureSpace,
    Slice,
    SliceLineConfig,
    WarmStartInfo,
    encode_slices,
    evaluate_slice_set,
    slice_line,
)
from repro.core.decode import slice_membership
from repro.datasets import replay_batches
from repro.distributed import partitioned_slice_stats
from repro.exceptions import DatasetError, StreamingError, ValidationError
from repro.stats import welch_t_test, welch_t_test_from_stats
from repro.streaming import (
    MergeableSliceStats,
    PredictionBatch,
    SliceMonitor,
    StreamWindow,
    ancestor_slices,
    concat_batches,
    expand_seed_slices,
    merge_stats,
)


def dyadic_problem(seed, n=None, m=None):
    """Random ``(x0, errors)`` with errors that are multiples of 1/16."""
    gen = np.random.default_rng(seed)
    n = n or int(gen.integers(60, 240))
    m = m or int(gen.integers(2, 5))
    domains = gen.integers(2, 5, size=m)
    x0 = np.column_stack(
        [gen.integers(1, d + 1, size=n) for d in domains]
    ).astype(np.int64)
    errors = gen.integers(0, 17, size=n) / 16.0
    if errors.sum() == 0:
        errors[0] = 1.0
    return x0, errors


def random_slices(x0, seed, count=6):
    """Random level-1/2 slices over the observed domains of *x0*."""
    gen = np.random.default_rng(seed)
    m = x0.shape[1]
    slices = []
    for _ in range(count):
        feats = gen.choice(m, size=int(gen.integers(1, min(2, m) + 1)), replace=False)
        predicates = {
            int(f): int(gen.integers(1, x0[:, f].max() + 1)) for f in feats
        }
        slices.append(
            Slice(predicates=predicates, score=0.0, error=0.0, max_error=0.0, size=0)
        )
    return slices


def stats_oracle(x0, errors, slices):
    """Recompute (sizes, errors, sq, max) per slice via boolean masks."""
    sizes, errs, sqs, maxes = [], [], [], []
    for slice_ in slices:
        mask = slice_membership(x0, slice_)
        sizes.append(float(mask.sum()))
        errs.append(float(errors[mask].sum()))
        sqs.append(float((errors[mask] ** 2).sum()))
        maxes.append(float(errors[mask].max()) if mask.any() else 0.0)
    return (
        np.array(sizes), np.array(errs), np.array(sqs), np.array(maxes)
    )


class TestMergeableSliceStats:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), num_parts=st.integers(1, 5))
    def test_merge_equals_batch_recompute_bitwise(self, seed, num_parts):
        """Folding per-chunk accumulators == one accumulator on all rows."""
        x0, errors = dyadic_problem(seed)
        slices = random_slices(x0, seed + 1)
        space = FeatureSpace.from_matrix(x0)
        bounds = np.linspace(0, x0.shape[0], num_parts + 1).astype(int)
        parts = [
            MergeableSliceStats.from_batch(
                x0[a:b], errors[a:b], slices, feature_space=space
            )
            for a, b in zip(bounds[:-1], bounds[1:])
            if b > a
        ]
        merged = merge_stats(parts)
        whole = MergeableSliceStats.from_batch(x0, errors, slices, feature_space=space)
        assert np.array_equal(merged.sizes, whole.sizes)
        assert np.array_equal(merged.errors, whole.errors)
        assert np.array_equal(merged.sq_errors, whole.sq_errors)
        assert np.array_equal(merged.max_errors, whole.max_errors)
        assert merged.num_rows == whole.num_rows
        assert merged.total_error == whole.total_error

    def test_matches_membership_oracle(self):
        x0, errors = dyadic_problem(3)
        slices = random_slices(x0, 4)
        acc = MergeableSliceStats.from_batch(x0, errors, slices)
        sizes, errs, sqs, maxes = stats_oracle(x0, errors, slices)
        assert np.array_equal(acc.sizes, sizes)
        assert np.array_equal(acc.errors, errs)
        assert np.array_equal(acc.sq_errors, sqs)
        assert np.array_equal(acc.max_errors, maxes)

    def test_merge_is_associative(self):
        x0, errors = dyadic_problem(7, n=90)
        slices = random_slices(x0, 8)
        a, b, c = (
            MergeableSliceStats.from_batch(x0[i::3], errors[i::3], slices,
                                           feature_space=FeatureSpace.from_matrix(x0))
            for i in range(3)
        )
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert np.array_equal(left.sizes, right.sizes)
        assert np.array_equal(left.errors, right.errors)
        assert left.num_batches == right.num_batches == 3

    def test_empty_is_identity(self):
        x0, errors = dyadic_problem(11)
        slices = random_slices(x0, 12)
        acc = MergeableSliceStats.from_batch(x0, errors, slices)
        merged = MergeableSliceStats.empty(len(slices)).merge(acc)
        assert np.array_equal(merged.sizes, acc.sizes)
        assert merged.num_rows == acc.num_rows

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(StreamingError):
            MergeableSliceStats.empty(3).merge(MergeableSliceStats.empty(4))
        with pytest.raises(StreamingError):
            merge_stats([])

    def test_unencodable_slice_contributes_zeros(self):
        x0 = np.array([[1, 1], [2, 1]], dtype=np.int64)
        errors = np.array([1.0, 0.0])
        off_domain = Slice(predicates={0: 9}, score=0, error=0, max_error=0, size=0)
        acc = MergeableSliceStats.from_batch(x0, errors, [off_domain])
        assert acc.sizes[0] == 0 and acc.errors[0] == 0
        assert acc.num_rows == 2  # batch totals still accumulate

    def test_variances_match_numpy(self):
        x0, errors = dyadic_problem(21, n=200)
        slices = random_slices(x0, 22)
        acc = MergeableSliceStats.from_batch(x0, errors, slices)
        variances = acc.error_variances()
        for i, slice_ in enumerate(slices):
            rows = errors[slice_membership(x0, slice_)]
            if rows.size >= 2:
                assert variances[i] == pytest.approx(rows.var(ddof=1), abs=1e-12)
            else:
                assert variances[i] == 0.0


class TestEvaluateSliceSet:
    """The public batch-evaluation helper against the membership oracle."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_matches_membership_oracle(self, seed):
        x0, errors = dyadic_problem(seed)
        slices = random_slices(x0, seed + 100, count=8)
        space = FeatureSpace.from_matrix(x0)
        matrix = encode_slices(slices, space)
        out = evaluate_slice_set(space.encode(x0), matrix, errors)
        sizes, errs, _, maxes = stats_oracle(x0, errors, slices)
        assert np.array_equal(out.sizes, sizes)
        assert np.array_equal(out.errors, errs)
        assert np.array_equal(out.max_errors, maxes)

    def test_threads_do_not_change_results(self):
        x0, errors = dyadic_problem(31, n=300)
        slices = random_slices(x0, 32, count=20)
        space = FeatureSpace.from_matrix(x0)
        matrix = encode_slices(slices, space)
        x = space.encode(x0)
        one = evaluate_slice_set(x, matrix, errors, num_threads=1)
        four = evaluate_slice_set(x, matrix, errors, num_threads=4, block_size=4)
        assert np.array_equal(one.sizes, four.sizes)
        assert np.array_equal(one.errors, four.errors)
        assert np.array_equal(one.max_errors, four.max_errors)

    def test_column_mismatch_rejected(self):
        x0, errors = dyadic_problem(41)
        slices = random_slices(x0, 42)
        space = FeatureSpace.from_matrix(x0)
        matrix = encode_slices(slices, space)
        import scipy.sparse as sp

        wrong = sp.csr_matrix((matrix.shape[0], matrix.shape[1] + 1))
        with pytest.raises(ValidationError):
            evaluate_slice_set(space.encode(x0), wrong, errors)


class TestWindow:
    def batch(self, i, rows=4, feats=2):
        x0 = np.full((rows, feats), 1, dtype=np.int64)
        return PredictionBatch(x0=x0, errors=np.zeros(rows), batch_id=i,
                               timestamp=float(i))

    def test_sliding_evicts_oldest(self):
        window = StreamWindow(size=2, policy="sliding")
        evicted = []
        for i in range(4):
            evicted += window.push(self.batch(i))
        assert [e.batch.batch_id for e in evicted] == [0, 1]
        assert [b.batch_id for b in window.batches] == [2, 3]

    def test_tumbling_grows_until_cleared(self):
        window = StreamWindow(policy="tumbling")
        for i in range(5):
            assert window.push(self.batch(i)) == []
        assert len(window) == 5
        window.clear()
        assert len(window) == 0

    def test_policy_validation(self):
        with pytest.raises(StreamingError):
            StreamWindow(policy="hopping")
        with pytest.raises(StreamingError):
            StreamWindow(size=None, policy="sliding")
        with pytest.raises(StreamingError):
            StreamWindow(size=3, policy="tumbling")

    def test_feature_mismatch_rejected(self):
        window = StreamWindow(size=4, policy="sliding")
        window.push(self.batch(0, feats=2))
        with pytest.raises(StreamingError):
            window.push(self.batch(1, feats=3))

    def test_concat_preserves_ingestion_order(self):
        window = StreamWindow(size=3, policy="sliding")
        for i in range(3):
            x0 = np.full((2, 1), i + 1, dtype=np.int64)
            window.push(PredictionBatch(x0=x0, errors=np.zeros(2), batch_id=i))
        x0, _ = window.concat()
        assert x0[:, 0].tolist() == [1, 1, 2, 2, 3, 3]


class TestReplay:
    def test_concatenates_back_exactly(self):
        x0, errors = dyadic_problem(51, n=103)
        batches = list(replay_batches(x0, errors, batch_size=20))
        assert [b.num_rows for b in batches] == [20] * 5 + [3]
        assert [b.batch_id for b in batches] == list(range(6))
        back_x0, back_errors = concat_batches(batches)
        assert np.array_equal(back_x0, x0)
        assert np.array_equal(back_errors, errors)

    def test_timestamps_advance(self):
        x0, errors = dyadic_problem(52, n=40)
        batches = list(
            replay_batches(x0, errors, 10, start_time=5.0, interval_seconds=2.0)
        )
        assert [b.timestamp for b in batches] == [5.0, 7.0, 9.0, 11.0]

    def test_shuffle_is_a_seeded_permutation(self):
        x0, errors = dyadic_problem(53, n=60)
        a = concat_batches(list(replay_batches(x0, errors, 7, shuffle=True, seed=9)))
        b = concat_batches(list(replay_batches(x0, errors, 7, shuffle=True, seed=9)))
        assert np.array_equal(a[0], b[0])
        assert not np.array_equal(a[0], x0)  # actually shuffled
        assert np.array_equal(np.sort(a[1]), np.sort(errors))

    def test_invalid_batch_size(self):
        x0, errors = dyadic_problem(54, n=20)
        with pytest.raises(DatasetError):
            list(replay_batches(x0, errors, 0))

    def test_negative_errors_rejected_at_batch(self):
        with pytest.raises(StreamingError):
            PredictionBatch(
                x0=np.ones((2, 1), dtype=np.int64), errors=np.array([-1.0, 0.0])
            )


class TestWarmStartSeeds:
    def make(self, predicates):
        return Slice(predicates=predicates, score=1.0, error=1.0,
                     max_error=1.0, size=10)

    def test_ancestors_are_all_proper_subsets(self):
        ancestors = ancestor_slices(self.make({0: 1, 1: 2, 3: 1}))
        keys = [frozenset(a.predicates.items()) for a in ancestors]
        assert len(keys) == 2 ** 3 - 2
        assert len(set(keys)) == len(keys)
        assert all(0 < len(k) < 3 for k in keys)

    def test_expand_dedups_shared_ancestors(self):
        a = self.make({0: 1, 1: 2})
        b = self.make({0: 1, 2: 3})
        expanded = expand_seed_slices([a, b])
        keys = [frozenset(s.predicates.items()) for s in expanded]
        assert len(set(keys)) == len(keys)
        # originals first, then the three distinct level-1 ancestors
        assert keys[:2] == [frozenset(a.predicates.items()),
                            frozenset(b.predicates.items())]
        assert len(expanded) == 5

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_seeded_run_identical_to_cold(self, seed):
        """Seeds only tighten the pruning threshold — results never change."""
        x0, errors = dyadic_problem(seed)
        seeds = expand_seed_slices(random_slices(x0, seed + 7, count=4))
        config = SliceLineConfig(k=4, sigma=5, alpha=0.9)
        cold = slice_line(x0, errors, config=config)
        warm = slice_line(x0, errors, config=config, seed_slices=seeds)
        assert np.array_equal(cold.top_stats, warm.top_stats)
        assert [s.predicates for s in cold.top_slices] == [
            s.predicates for s in warm.top_slices
        ]
        assert cold.warm_start is None
        assert isinstance(warm.warm_start, WarmStartInfo)

    def test_warm_run_evaluates_fewer_candidates(self):
        """With constant-magnitude errors the seeded threshold prunes work.

        All nonzero errors are exactly 1/16, so ``sm`` is uniform and the
        Equation-3 bound discriminates by slice error mass — seeding the
        previous winners then filters parents before the pair join.
        """
        gen = np.random.default_rng(11)
        n, m = 5000, 10
        x0 = np.column_stack(
            [gen.integers(1, 5, size=n) for _ in range(m)]
        ).astype(np.int64)
        errors = (gen.random(n) < 0.10).astype(np.float64) / 16.0
        for f0, v0, f1, v1 in ((0, 1, 1, 2), (2, 3, 3, 1)):
            mask = (x0[:, f0] == v0) & (x0[:, f1] == v1)
            errors[mask] = 1.0 / 16.0
        config = SliceLineConfig(k=2, sigma=50, alpha=0.95)
        cold = slice_line(x0, errors, config=config)
        seeds = expand_seed_slices(cold.top_slices)
        warm = slice_line(x0, errors, config=config, seed_slices=seeds)
        assert np.array_equal(cold.top_stats, warm.top_stats)
        cold_evaluated = sum(c.evaluated for c in cold.counters.levels)
        warm_evaluated = sum(c.evaluated for c in warm.counters.levels)
        assert warm_evaluated < cold_evaluated
        # 2 winners + 4 level-1 ancestors requested; only the level-2
        # winners are evaluated as seeds (level 1 is scored by the basic
        # pass anyway) and both survive into the final top-K
        assert warm.warm_start.requested == 6
        assert warm.warm_start.encoded == warm.warm_start.valid == 2
        assert warm.warm_start.hits == 2
        assert warm.warm_start.hit_rate == pytest.approx(2 / 6)

    def test_hit_rate_of_empty_request(self):
        info = WarmStartInfo(requested=0, encoded=0, valid=0, hits=0)
        assert info.hit_rate == 0.0


def run_monitor(policy, window_size, batch_size, seed, warm_start,
                n=1200, ticks_cap=None):
    """Drive a monitor over a replayed dyadic stream; return (monitor, frames).

    *frames* records, per tick, the concatenated window rows the tick ranked
    — the input of the cold oracle.
    """
    x0, errors = dyadic_problem(seed, n=n, m=4)
    config = SliceLineConfig(k=3, sigma=15, alpha=0.95)
    monitor = SliceMonitor(
        config=config,
        window_size=window_size if policy == "sliding" else None,
        policy=policy,
        warm_start=warm_start,
    )
    frames = []
    for batch in replay_batches(x0, errors, batch_size):
        monitor.ingest(batch)
        frames.append(monitor.window.concat())
        monitor.tick()
        if ticks_cap and len(monitor.ticks) >= ticks_cap:
            break
    return monitor, frames, config


class TestMonitorExactness:
    """The subsystem's acceptance criterion: every tick == the cold oracle."""

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 5_000),
        batch_size=st.integers(80, 200),
        window_size=st.integers(1, 5),
        policy=st.sampled_from(["sliding", "tumbling"]),
    )
    def test_ticks_match_cold_oracle(self, seed, batch_size, window_size, policy):
        monitor, frames, config = run_monitor(
            policy, window_size, batch_size, seed, warm_start=True, ticks_cap=6
        )
        assert monitor.ticks
        for tick, (x0, errors) in zip(monitor.ticks, frames):
            oracle = slice_line(x0, errors, config=config)
            assert np.array_equal(tick.result.top_stats, oracle.top_stats)
            assert [s.predicates for s in tick.top_slices] == [
                s.predicates for s in oracle.top_slices
            ]

    def test_warm_and_cold_monitors_agree(self):
        warm, _, _ = run_monitor("sliding", 3, 150, seed=77, warm_start=True)
        cold, _, _ = run_monitor("sliding", 3, 150, seed=77, warm_start=False)
        assert len(warm.ticks) == len(cold.ticks)
        for wt, ct in zip(warm.ticks, cold.ticks):
            assert np.array_equal(wt.result.top_stats, ct.result.top_stats)

    def test_tumbling_tick_consumes_window(self):
        monitor, _, _ = run_monitor("tumbling", None, 100, seed=13, warm_start=True, n=400)
        assert len(monitor.window) == 0
        assert all(t.num_batches == 1 for t in monitor.ticks)

    def test_tick_on_empty_window_raises(self):
        with pytest.raises(StreamingError):
            SliceMonitor().tick()

    def test_caches_reused_in_steady_state(self):
        """Once the tracked set stabilizes, only new batches are rescanned."""
        monitor, _, _ = run_monitor("sliding", 4, 100, seed=5, warm_start=True, n=2000)
        stable = [
            t for t in monitor.ticks[1:]
            if t.rebuilt_accumulators > 0 or t.rows_rescanned > 0
        ]
        # at least one steady-state tick must have rebuilt < window batches
        partial = [
            t for t in monitor.ticks[2:]
            if 0 < t.rebuilt_accumulators < t.num_batches
        ]
        assert stable, "drift baselines should require some accumulator work"
        assert partial, "caches were never reused across ticks"


class TestDrift:
    def test_welch_from_stats_matches_raw_samples(self, rng):
        a = rng.normal(0.6, 0.2, size=80)
        b = rng.normal(0.4, 0.3, size=120)
        raw = welch_t_test(a, b)
        summary = welch_t_test_from_stats(
            float(a.mean()), float(a.var(ddof=1)), a.size,
            float(b.mean()), float(b.var(ddof=1)), b.size,
        )
        assert summary.statistic == pytest.approx(raw.statistic, rel=1e-12)
        assert summary.p_value == pytest.approx(raw.p_value, rel=1e-12)
        assert summary.degrees_of_freedom == pytest.approx(
            raw.degrees_of_freedom, rel=1e-12
        )

    def test_planted_degradation_is_flagged(self):
        """A slice whose error rate jumps mid-stream produces a signal."""
        gen = np.random.default_rng(3)
        n = 2400
        x0 = np.column_stack(
            [gen.integers(1, 4, size=n) for _ in range(3)]
        ).astype(np.int64)
        slice_mask = (x0[:, 0] == 1) & (x0[:, 1] == 2)
        errors = (gen.random(n) < 0.05).astype(np.float64)
        errors[slice_mask] = 6.0 / 16.0  # problematic from the start
        # second half: the tracked slice degrades hard
        half = n // 2
        errors[slice_mask & (np.arange(n) >= half)] = 1.0
        monitor = SliceMonitor(
            config=SliceLineConfig(k=2, sigma=30, alpha=0.95),
            window_size=2, policy="sliding",
        )
        degraded = []
        for batch in replay_batches(x0, errors, 600):
            monitor.ingest(batch)
            tick = monitor.tick()
            degraded.extend(tick.degraded_slices())
        assert degraded, "the planted error jump was not detected"
        assert any(
            s.slice.predicates == {0: 1, 1: 2} and
            s.current_mean_error > s.baseline_mean_error
            for s in degraded
        )

    def test_no_drift_without_baseline(self):
        monitor, _, _ = run_monitor("sliding", 2, 200, seed=1, warm_start=True, n=400)
        assert monitor.ticks[0].drift == []


class TestDistributedAccumulate:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), parts=st.integers(1, 6))
    def test_partitioned_equals_single_batch(self, seed, parts):
        x0, errors = dyadic_problem(seed)
        slices = random_slices(x0, seed + 3)
        whole = MergeableSliceStats.from_batch(x0, errors, slices)
        scattered = partitioned_slice_stats(x0, errors, slices, parts)
        assert np.array_equal(scattered.sizes, whole.sizes)
        assert np.array_equal(scattered.errors, whole.errors)
        assert np.array_equal(scattered.max_errors, whole.max_errors)
        assert scattered.num_rows == whole.num_rows

    def test_threads_do_not_change_results(self):
        x0, errors = dyadic_problem(61, n=400)
        slices = random_slices(x0, 62, count=10)
        serial = partitioned_slice_stats(x0, errors, slices, 4, num_threads=1)
        threaded = partitioned_slice_stats(x0, errors, slices, 4, num_threads=4)
        assert np.array_equal(serial.errors, threaded.errors)
        assert np.array_equal(serial.sizes, threaded.sizes)


class TestObservability:
    def test_tick_obs_dict_schema(self):
        gen = np.random.default_rng(9)
        n = 900
        x0 = np.column_stack(
            [gen.integers(1, 4, size=n) for _ in range(3)]
        ).astype(np.int64)
        errors = (gen.random(n) < 0.05).astype(np.float64)
        errors[(x0[:, 0] == 1) & (x0[:, 1] == 2)] = 1.0
        monitor = SliceMonitor(
            config=SliceLineConfig(k=2, sigma=20, alpha=0.95), window_size=2
        )
        for batch in replay_batches(x0, errors, 300):
            monitor.ingest(batch)
            monitor.tick()
        assert monitor.ticks[-1].warm_start is not None
        doc = monitor.ticks[-1].to_obs_dict()
        assert doc["schema"] == "repro.obs/v1"
        monitor_block = doc["monitor"]
        for key in (
            "tick", "timestamp", "num_batches", "num_rows", "seconds",
            "rebuilt_accumulators", "accumulator_merges", "rows_rescanned",
            "num_drift_signals", "num_degraded",
        ):
            assert key in monitor_block
        warm = doc["warm_start"]
        assert warm is not None
        assert set(warm) == {"requested", "encoded", "valid", "hits", "hit_rate"}
        json.dumps(doc)  # must be serializable as-is

    def test_cold_run_reports_null_warm_start(self):
        x0, errors = dyadic_problem(71)
        result = slice_line(x0, errors, config=SliceLineConfig(k=2, sigma=5))
        from repro.obs.export import run_to_dict

        assert run_to_dict(result)["warm_start"] is None

    def test_monitor_tick_spans_recorded(self):
        x0, errors = dyadic_problem(73, n=600, m=3)
        monitor = SliceMonitor(
            config=SliceLineConfig(k=2, sigma=10),
            window_size=2, trace=True,
        )
        for batch in replay_batches(x0, errors, 200):
            monitor.ingest(batch)
            monitor.tick()
        ticks = [s for s in monitor.tracer.spans if s.name == "monitor.tick"]
        assert len(ticks) == len(monitor.ticks)
        assert "seconds" in ticks[-1].attrs
        assert "warm_hit_rate" in ticks[-1].attrs
        # the seeded enumeration nests its spans under the tick
        assert ticks[-1].find("slice_line") or ticks[-1].children
