"""Exactness certification: SliceLine vs the brute-force oracle.

The central claim of the paper is *exact* top-K enumeration despite
aggressive pruning.  These tests compare SliceLine's output against
exhaustive enumeration on randomized problems across the parameter space
(k, sigma, alpha, pruning configurations, priority evaluation).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import naive_top_k
from repro.core import PruningConfig, SliceLineConfig, slice_line
from tests.conftest import random_small_problem


def assert_matches_oracle(x0, errors, k, sigma, alpha, config=None):
    cfg = config or SliceLineConfig(k=k, sigma=sigma, alpha=alpha)
    oracle = naive_top_k(x0, errors, k, sigma, alpha)
    got = slice_line(x0, errors, cfg).top_slices
    assert len(got) == len(oracle), (
        f"result count differs: {len(got)} vs oracle {len(oracle)}"
    )
    for ours, theirs in zip(got, oracle):
        assert ours.score == pytest.approx(theirs.score, rel=1e-9)
        assert ours.size == theirs.size
        assert ours.error == pytest.approx(theirs.error, rel=1e-9)


@pytest.mark.parametrize("seed", range(20))
def test_exact_on_random_problems(seed):
    x0, errors, k, sigma, alpha = random_small_problem(seed)
    assert_matches_oracle(x0, errors, k, sigma, alpha)


@pytest.mark.parametrize("alpha", [0.05, 0.36, 0.5, 0.84, 0.95, 1.0])
def test_exact_across_alpha(alpha):
    x0, errors, k, sigma, _ = random_small_problem(777)
    assert_matches_oracle(x0, errors, 5, 3, alpha)


@pytest.mark.parametrize("sigma", [1, 2, 5, 15, 40])
def test_exact_across_sigma(sigma):
    x0, errors, _, _, alpha = random_small_problem(888)
    assert_matches_oracle(x0, errors, 5, sigma, 0.9)


@pytest.mark.parametrize("k", [1, 2, 4, 10, 50])
def test_exact_across_k(k):
    x0, errors, _, sigma, alpha = random_small_problem(999)
    assert_matches_oracle(x0, errors, k, max(sigma, 2), alpha)


@pytest.mark.parametrize("label", list(PruningConfig.ablation_arms()))
def test_exact_under_every_pruning_arm(label):
    """Disabling pruning techniques must never change the result set."""
    arm = PruningConfig.ablation_arms()[label]
    x0, errors, k, sigma, alpha = random_small_problem(4242)
    cfg = SliceLineConfig(
        k=k, sigma=sigma, alpha=alpha, pruning=arm, priority_evaluation=False
    )
    assert_matches_oracle(x0, errors, k, sigma, alpha, config=cfg)


def test_exact_with_priority_evaluation_tiny_chunks():
    x0, errors, k, sigma, alpha = random_small_problem(31337)
    cfg = SliceLineConfig(
        k=k, sigma=sigma, alpha=alpha, priority_evaluation=True, priority_chunk=2
    )
    assert_matches_oracle(x0, errors, k, sigma, alpha, config=cfg)


def test_exact_with_binary_errors():
    gen = np.random.default_rng(5)
    x0 = np.column_stack([gen.integers(1, 4, size=120) for _ in range(3)])
    errors = (gen.random(120) < 0.3).astype(float)
    assert_matches_oracle(x0, errors, 4, 5, 0.95)


def test_exact_with_constant_errors():
    gen = np.random.default_rng(6)
    x0 = np.column_stack([gen.integers(1, 3, size=80) for _ in range(3)])
    errors = np.ones(80)
    # every slice has exactly average error: nothing scores > 0
    assert naive_top_k(x0, errors, 5, 2, 0.9) == []
    assert slice_line(x0, errors, SliceLineConfig(k=5, sigma=2, alpha=0.9)).top_slices == []


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    k=st.integers(1, 6),
    sigma=st.integers(1, 12),
    alpha=st.floats(0.1, 1.0),
)
def test_property_exactness(seed, k, sigma, alpha):
    """Hypothesis sweep: SliceLine == oracle for arbitrary configurations."""
    gen = np.random.default_rng(seed)
    n = int(gen.integers(30, 100))
    m = int(gen.integers(2, 4))
    x0 = np.column_stack(
        [gen.integers(1, int(gen.integers(2, 4)) + 1, size=n) for _ in range(m)]
    ).astype(np.int64)
    errors = gen.random(n) * (gen.random(n) < 0.5)
    if errors.sum() == 0:
        errors[0] = 0.5
    assert_matches_oracle(x0, errors, k, sigma, alpha)
