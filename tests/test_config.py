"""Tests for SliceLineConfig and PruningConfig validation."""

import pytest

from repro.core import PruningConfig, SliceLineConfig
from repro.exceptions import ConfigError


class TestSliceLineConfig:
    def test_defaults_match_paper(self):
        cfg = SliceLineConfig()
        assert cfg.k == 4
        assert cfg.alpha == 0.95
        assert cfg.sigma is None
        assert cfg.max_level is None

    @pytest.mark.parametrize("field,value", [
        ("k", 0),
        ("sigma", 0),
        ("alpha", 0.0),
        ("alpha", 1.5),
        ("max_level", 0),
        ("block_size", 0),
        ("priority_chunk", 0),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigError):
            SliceLineConfig(**{field: value})

    def test_alpha_one_allowed(self):
        assert SliceLineConfig(alpha=1.0).alpha == 1.0

    def test_resolve_sigma_default_rule(self):
        cfg = SliceLineConfig()
        # max(32, ceil(n/100))
        assert cfg.resolve_sigma(1000) == 32
        assert cfg.resolve_sigma(10_000) == 100
        assert cfg.resolve_sigma(10_001) == 101

    def test_resolve_sigma_explicit(self):
        assert SliceLineConfig(sigma=7).resolve_sigma(10**6) == 7

    def test_resolve_max_level(self):
        assert SliceLineConfig().resolve_max_level(14) == 14
        assert SliceLineConfig(max_level=3).resolve_max_level(14) == 3
        assert SliceLineConfig(max_level=30).resolve_max_level(14) == 14

    def test_with_overrides(self):
        cfg = SliceLineConfig().with_overrides(k=9, alpha=0.5)
        assert cfg.k == 9 and cfg.alpha == 0.5


class TestPruningConfig:
    def test_all_enabled_default(self):
        cfg = PruningConfig()
        assert cfg.by_size and cfg.by_score
        assert cfg.handle_missing_parents and cfg.deduplicate

    def test_parent_handling_requires_dedup(self):
        with pytest.raises(ConfigError):
            PruningConfig(deduplicate=False)

    def test_none_config(self):
        cfg = PruningConfig.none()
        assert not any([
            cfg.by_size, cfg.by_score, cfg.handle_missing_parents,
            cfg.deduplicate, cfg.filter_input_slices,
        ])

    def test_ablation_arms_shape(self):
        arms = PruningConfig.ablation_arms()
        assert set(arms) == {
            "all", "no-parents", "no-parents-no-score",
            "no-parents-no-score-no-size", "none",
        }
        assert arms["all"].handle_missing_parents
        assert not arms["no-parents"].handle_missing_parents
        assert arms["no-parents"].by_score
        assert not arms["no-parents-no-score"].by_score
        assert not arms["no-parents-no-score-no-size"].by_size
        assert not arms["none"].deduplicate
