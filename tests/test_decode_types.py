"""Tests for decoding, result containers, and level statistics."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import FeatureSpace, SliceLineConfig, slice_line
from repro.core.decode import decode_topk, slice_membership
from repro.core.types import (
    LevelStats,
    Slice,
    SliceLineResult,
    StatsCol,
    empty_stats,
    stats_matrix,
)


class TestDecodeTopK:
    @pytest.fixture
    def space(self):
        return FeatureSpace(domains=np.array([2, 3, 2]))

    def test_decodes_projected_columns(self, space):
        # projection kept original one-hot columns [0, 3, 6]
        selected = np.array([0, 3, 6])
        top = sp.csr_matrix(np.array([[1.0, 1.0, 0.0], [0.0, 0.0, 1.0]]))
        stats = stats_matrix(
            np.array([2.0, 1.0]), np.array([4.0, 2.0]),
            np.array([1.0, 1.0]), np.array([10.0, 20.0]),
        )
        slices, encoded = decode_topk(top, stats, selected, space)
        # column 0 -> F0=1; column 3 -> F1=2; column 6 -> F2=2
        assert slices[0].predicates == {0: 1, 1: 2}
        assert slices[1].predicates == {2: 2}
        np.testing.assert_array_equal(encoded[0], [1, 2, 0])
        np.testing.assert_array_equal(encoded[1], [0, 0, 2])

    def test_stats_copied_through(self, space):
        selected = np.array([0])
        top = sp.csr_matrix(np.array([[1.0]]))
        stats = stats_matrix(
            np.array([0.5]), np.array([3.0]), np.array([1.5]), np.array([7.0])
        )
        slices, _ = decode_topk(top, stats, selected, space)
        assert slices[0].score == 0.5
        assert slices[0].error == 3.0
        assert slices[0].max_error == 1.5
        assert slices[0].size == 7

    def test_empty_topk(self, space):
        slices, encoded = decode_topk(
            sp.csr_matrix((0, 2)), empty_stats(0), np.array([0, 1]), space
        )
        assert slices == [] and encoded.shape == (0, 3)


class TestSliceMembership:
    def test_mask(self, tiny_x0):
        s = Slice(predicates={0: 1, 2: 2}, score=1.0, error=1.0,
                  max_error=1.0, size=2)
        mask = slice_membership(tiny_x0, s)
        expected = (tiny_x0[:, 0] == 1) & (tiny_x0[:, 2] == 2)
        np.testing.assert_array_equal(mask, expected)

    def test_empty_predicates_match_everything(self, tiny_x0):
        s = Slice(predicates={}, score=0.0, error=0.0, max_error=0.0, size=8)
        assert slice_membership(tiny_x0, s).all()


class TestLevelStats:
    def test_pruned_total(self):
        ls = LevelStats(level=2, pruned_by_size=3, pruned_by_score=4,
                        pruned_by_parents=5)
        assert ls.pruned_total == 12

    def test_defaults_zero(self):
        ls = LevelStats(level=1)
        assert ls.evaluated == 0 and ls.pruned_total == 0


class TestSliceLineResult:
    @pytest.fixture
    def result(self, planted_dataset):
        x0, errors, _ = planted_dataset
        return slice_line(x0, errors, SliceLineConfig(k=4, sigma=10))

    def test_len_and_scores(self, result):
        assert len(result) == len(result.top_slices)
        np.testing.assert_allclose(
            result.scores, [s.score for s in result.top_slices]
        )
        np.testing.assert_allclose(
            result.sizes, [s.size for s in result.top_slices]
        )

    def test_evaluated_per_level(self, result):
        assert result.evaluated_per_level == [
            ls.evaluated for ls in result.level_stats
        ]
        assert result.total_evaluated == sum(result.evaluated_per_level)

    def test_report_contains_every_slice(self, result):
        text = result.report()
        for rank in range(1, len(result) + 1):
            assert f"#{rank}" in text

    def test_stats_matrix_layout(self):
        r = stats_matrix(
            np.array([1.0]), np.array([2.0]), np.array([3.0]), np.array([4.0])
        )
        assert r[0, StatsCol.SCORE] == 1.0
        assert r[0, StatsCol.ERROR] == 2.0
        assert r[0, StatsCol.MAX_ERROR] == 3.0
        assert r[0, StatsCol.SIZE] == 4.0

    def test_encoded_row_round_trip(self):
        s = Slice(predicates={1: 3, 4: 2}, score=1.0, error=1.0,
                  max_error=1.0, size=5)
        row = s.encoded_row(6)
        np.testing.assert_array_equal(row, [0, 3, 0, 0, 2, 0])
