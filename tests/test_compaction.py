"""Per-level compaction: bitwise-identity oracle and unit coverage.

Compaction is a pure performance optimization — the enumeration must
produce *bitwise identical* output with it on or off, across thread
counts, pruning ablation arms, priority evaluation, and warm starts.
These tests certify that contract and unit-test the supporting pieces
(:class:`~repro.core.compaction.CompactionState`,
:func:`~repro.core.compaction.compact_slice_set`, mixed-radix key packing,
the int64 candidate-index dtype, and the shared kernel workspace).
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.core import (
    CompactionState,
    PruningConfig,
    SliceLineConfig,
    compact_slice_set,
    evaluate_slice_set,
    slice_line,
)
from repro.core.pairs import _dedup_keys, _keys_to_matrix
from repro.linalg import KernelWorkspace, pack_rows_mixed_radix, resolve_workspace
from repro.streaming import MergeableSliceStats, expand_seed_slices
from tests.conftest import random_small_problem

from repro.obs.counters import EXECUTION_FIELDS

#: counters whose values legitimately differ between the two modes: the
#: compaction gauges stay 0 when compaction is off, and the timing /
#: execution-shape fields (elapsed time, stage seconds, chunk grid,
#: backend choice, cache pressure) vary with what the cost models see
_MODE_DEPENDENT = {"rows_alive", "cols_alive"} | EXECUTION_FIELDS


def assert_bitwise_identical_runs(x0, errors, config, num_threads=1, seeds=None):
    on = slice_line(
        x0, errors, config=config.with_overrides(compaction=True),
        num_threads=num_threads, seed_slices=seeds,
    )
    off = slice_line(
        x0, errors, config=config.with_overrides(compaction=False),
        num_threads=num_threads, seed_slices=seeds,
    )
    # Bitwise equality: the exact floats, not approximate scores.
    assert np.array_equal(on.top_stats, off.top_stats)
    assert np.array_equal(on.top_slices_encoded, off.top_slices_encoded)
    assert [s.predicates for s in on.top_slices] == [
        s.predicates for s in off.top_slices
    ]
    assert len(on.counters.levels) == len(off.counters.levels)
    for level_on, level_off in zip(on.counters.levels, off.counters.levels):
        got = level_on.to_dict()
        want = level_off.to_dict()
        for name in _MODE_DEPENDENT:
            got.pop(name), want.pop(name)
        assert got == want, f"level {level_on.level} counters diverge"
    assert on.counters.reconcile() == []
    return on, off


class TestCompactionOracle:
    @pytest.mark.parametrize("label", list(PruningConfig.ablation_arms()))
    @pytest.mark.parametrize("num_threads", [1, 4])
    def test_identical_under_every_pruning_arm(self, label, num_threads):
        arm = PruningConfig.ablation_arms()[label]
        x0, errors, k, sigma, alpha = random_small_problem(4242)
        config = SliceLineConfig(k=k, sigma=sigma, alpha=alpha, pruning=arm)
        assert_bitwise_identical_runs(x0, errors, config, num_threads)

    @pytest.mark.parametrize("seed", range(8))
    def test_identical_on_random_problems(self, seed):
        x0, errors, k, sigma, alpha = random_small_problem(seed)
        config = SliceLineConfig(k=k, sigma=sigma, alpha=alpha)
        assert_bitwise_identical_runs(x0, errors, config)

    def test_identical_with_priority_tiny_chunks(self):
        x0, errors, k, sigma, alpha = random_small_problem(31337)
        config = SliceLineConfig(
            k=k, sigma=sigma, alpha=alpha,
            priority_evaluation=True, priority_chunk=2,
        )
        assert_bitwise_identical_runs(x0, errors, config, num_threads=4)

    def test_identical_with_warm_start_and_warm_equals_cold(self):
        x0, errors, k, sigma, alpha = random_small_problem(2024)
        config = SliceLineConfig(k=max(k, 3), sigma=sigma, alpha=alpha)
        cold = slice_line(x0, errors, config=config)
        seeds = expand_seed_slices(cold.top_slices)
        warm_on, warm_off = assert_bitwise_identical_runs(
            x0, errors, config, seeds=seeds
        )
        assert np.array_equal(cold.top_stats, warm_on.top_stats)
        assert warm_on.warm_start is not None
        assert warm_on.warm_start.hits == warm_off.warm_start.hits

    def test_compaction_gauges_are_recorded(self, planted_dataset):
        x0, errors, _ = planted_dataset
        result = slice_line(
            x0, errors, config=SliceLineConfig(k=4, sigma=5, max_level=3)
        )
        levels = result.counters.levels
        assert levels[0].rows_alive > 0
        assert levels[0].cols_alive > 0
        evaluated = [c for c in levels[1:] if c.evaluated > 0]
        assert evaluated, "the planted problem must reach level >= 2"
        for record in evaluated:
            assert 0 < record.rows_alive <= result.num_rows
            assert 0 < record.cols_alive <= levels[0].cols_alive

    def test_compact_span_annotations(self, planted_dataset):
        x0, errors, _ = planted_dataset
        result = slice_line(
            x0, errors,
            config=SliceLineConfig(k=4, sigma=5, max_level=3), trace=True,
        )
        span = result.trace.find("level2.compact")
        assert span is not None
        assert 0.0 < span.attrs["rows_retained"] <= 1.0
        assert 0.0 < span.attrs["cols_retained"] <= 1.0
        assert span.attrs["rows_alive"] == result.counters.level(2).rows_alive

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(1, 6),
        sigma=st.integers(1, 12),
        alpha=st.floats(0.1, 1.0),
        num_threads=st.sampled_from([1, 4]),
    )
    def test_property_identical(self, seed, k, sigma, alpha, num_threads):
        gen = np.random.default_rng(seed)
        n = int(gen.integers(30, 100))
        m = int(gen.integers(2, 4))
        x0 = np.column_stack(
            [gen.integers(1, int(gen.integers(2, 4)) + 1, size=n) for _ in range(m)]
        ).astype(np.int64)
        errors = gen.random(n) * (gen.random(n) < 0.5)
        if errors.sum() == 0:
            errors[0] = 0.5
        config = SliceLineConfig(k=k, sigma=sigma, alpha=alpha)
        assert_bitwise_identical_runs(x0, errors, config, num_threads)


class TestCompactionState:
    def test_initial_drops_empty_rows(self):
        x = sp.csr_matrix(
            np.array([[1.0, 0.0], [0.0, 0.0], [0.0, 1.0]], dtype=np.float64)
        )
        errors = np.array([0.5, 0.9, 0.25])
        state = CompactionState.initial(x, errors)
        assert state.num_rows_alive == 2
        assert state.num_cols_alive == 2
        assert np.array_equal(state.row_indices, [0, 2])
        assert np.array_equal(state.errors, [0.5, 0.25])
        assert state.rows_retained == pytest.approx(2 / 3)

    def test_begin_level_compacts_columns_and_rows(self):
        x = sp.csr_matrix(np.eye(4, dtype=np.float64))
        errors = np.arange(4, dtype=np.float64)
        state = CompactionState.initial(x, errors)
        state.row_coverage = np.array([True, False, True, True])
        candidates = sp.csr_matrix(
            (np.ones(2), np.array([0, 3]), np.array([0, 1, 2])), shape=(2, 4)
        )
        state.begin_level(candidates)
        assert state.num_rows_alive == 3
        assert state.num_cols_alive == 2
        assert np.array_equal(state.row_indices, [0, 2, 3])
        assert np.array_equal(state.col_map, [0, -1, -1, 1])
        assert state.row_coverage is None  # consumed

    def test_project_slices_remaps_and_rejects_dead_columns(self):
        x = sp.csr_matrix(np.eye(3, dtype=np.float64))
        state = CompactionState.initial(x, np.ones(3))
        candidates = sp.csr_matrix(
            (np.ones(2), np.array([0, 2]), np.array([0, 1, 2])), shape=(2, 3)
        )
        state.begin_level(candidates)
        projected = state.project_slices(candidates)
        assert projected.shape == (2, 2)
        assert np.array_equal(projected.indices, [0, 1])
        dead = sp.csr_matrix(
            (np.ones(1), np.array([1]), np.array([0, 1])), shape=(1, 3)
        )
        with pytest.raises(ValueError, match="compacted-away"):
            state.project_slices(dead)

    def test_begin_level_rejects_dead_candidate_columns(self):
        x = sp.csr_matrix(np.eye(3, dtype=np.float64))
        state = CompactionState.initial(x, np.ones(3))
        first = sp.csr_matrix(
            (np.ones(1), np.array([0]), np.array([0, 1])), shape=(1, 3)
        )
        state.begin_level(first)
        stale = sp.csr_matrix(
            (np.ones(1), np.array([2]), np.array([0, 1])), shape=(1, 3)
        )
        with pytest.raises(ValueError, match="surviving parents"):
            state.begin_level(stale)


class TestCompactSliceSet:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_uncompacted_evaluation(self, seed):
        gen = np.random.default_rng(seed)
        x = sp.random(
            60, 12, density=0.25, format="csr", random_state=gen
        )
        x.data[:] = 1.0
        errors = gen.random(60)
        rows = [np.sort(gen.choice(12, size=size, replace=False))
                for size in (1, 2, 3, 2)]
        indices = np.concatenate(rows)
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum([r.size for r in rows], out=indptr[1:])
        slices = sp.csr_matrix(
            (np.ones(indices.size), indices, indptr), shape=(len(rows), 12)
        )
        full = evaluate_slice_set(x, slices, errors)
        x_c, s_c, alive = compact_slice_set(x, slices)
        compacted = evaluate_slice_set(
            x_c, s_c, errors[alive],
            num_rows=x.shape[0],
            total_error=float(errors.sum()),
            max_error=float(errors.max()),
        )
        assert np.array_equal(full.sizes, compacted.sizes)
        assert np.array_equal(full.errors, compacted.errors)
        assert np.array_equal(full.max_errors, compacted.max_errors)

    def test_whole_dataset_row_uses_overrides(self):
        x = sp.csr_matrix(np.eye(3, dtype=np.float64))
        errors = np.array([0.2, 0.7, 0.1])
        slices = sp.csr_matrix(
            (np.ones(1), np.array([0]), np.array([0, 1, 1])), shape=(2, 3)
        )  # row 0: one predicate; row 1: no predicates = whole dataset
        x_c, s_c, alive = compact_slice_set(x, slices)
        stats = evaluate_slice_set(
            x_c, s_c, errors[alive],
            num_rows=3, total_error=1.0, max_error=0.7,
        )
        assert stats.sizes[1] == 3.0
        assert stats.errors[1] == 1.0
        assert stats.max_errors[1] == 0.7

    def test_streaming_accumulator_matches_direct_membership(self, planted_dataset):
        x0, errors, _ = planted_dataset
        result = slice_line(x0, errors, config=SliceLineConfig(k=3, sigma=5))
        assert result.top_slices
        acc = MergeableSliceStats.from_batch(x0, errors, result.top_slices)
        for index, sl in enumerate(result.top_slices):
            assert acc.sizes[index] == sl.size
            assert acc.errors[index] == pytest.approx(sl.error, rel=1e-12)


class TestMixedRadixPacking:
    def test_preserves_lexicographic_order(self):
        gen = np.random.default_rng(0)
        keys = gen.integers(0, 50, size=(200, 3)).astype(np.int64)
        keys.sort(axis=1)
        packed = pack_rows_mixed_radix(keys, 50)
        assert packed is not None
        order_rows = np.lexsort(keys.T[::-1])
        order_packed = np.argsort(packed, kind="stable")
        assert np.array_equal(keys[order_rows], keys[order_packed])

    def test_overflow_falls_back_to_none(self):
        keys = np.zeros((2, 9), dtype=np.int64)
        assert pack_rows_mixed_radix(keys, 2**8) is None  # 2^72 > int64
        assert pack_rows_mixed_radix(keys, 2**7) is None  # 2^63 is 1 too big
        assert pack_rows_mixed_radix(keys, 127) is not None  # 127^9 fits

    def test_zero_width_keys(self):
        packed = pack_rows_mixed_radix(np.zeros((3, 0), dtype=np.int64), 10)
        assert packed is not None
        assert np.array_equal(packed, [0, 0, 0])

    @pytest.mark.parametrize("seed", range(5))
    def test_dedup_matches_axis0_unique(self, seed):
        gen = np.random.default_rng(seed)
        num_cols = int(gen.integers(4, 30))
        keys = gen.integers(0, num_cols, size=(100, 2)).astype(np.int64)
        keys.sort(axis=1)
        unique_keys, first_index, group = _dedup_keys(keys, num_cols)
        want_keys, want_first, want_group = np.unique(
            keys, axis=0, return_index=True, return_inverse=True
        )
        assert np.array_equal(unique_keys, want_keys)
        assert np.array_equal(first_index, want_first)
        assert np.array_equal(group, want_group.ravel())


class TestKeysToMatrixDtype:
    def test_indices_stay_int64_beyond_int32_range(self):
        wide = np.int64(2**31) + 16
        keys = np.array([[2**31 + 3, 2**31 + 7]], dtype=np.int64)
        matrix = _keys_to_matrix(keys, level=2, num_cols=wide)
        assert matrix.indices.dtype == np.int64
        assert matrix.indices.min() > 2**31  # would be negative if wrapped
        assert matrix.shape == (1, wide)


class TestKernelWorkspace:
    def test_single_pool_across_calls(self):
        workspace = KernelWorkspace(num_threads=3)
        for _ in range(4):
            got = workspace.map(lambda v: v * v, [1, 2, 3])
            assert got == [1, 4, 9]
        assert workspace.pools_created == 1
        assert workspace.pool_active
        workspace.close()
        assert not workspace.pool_active

    def test_serial_mode_never_creates_a_pool(self):
        workspace = KernelWorkspace(num_threads=1)
        assert workspace.map(lambda v: v + 1, [1, 2]) == [2, 3]
        assert workspace.pools_created == 0
        workspace.close()

    def test_single_item_skips_the_pool(self):
        workspace = KernelWorkspace(num_threads=4)
        assert workspace.map(lambda v: -v, [5]) == [-5]
        assert workspace.pools_created == 0

    def test_context_manager_closes(self):
        with KernelWorkspace(num_threads=2) as workspace:
            workspace.map(lambda v: v, [1, 2])
            assert workspace.pool_active
        assert not workspace.pool_active

    def test_resolve_workspace_ownership(self):
        owned = KernelWorkspace(2)
        same, transient = resolve_workspace(owned, 2)
        assert same is owned and not transient
        fresh, transient = resolve_workspace(None, 2)
        assert isinstance(fresh, KernelWorkspace) and transient
        fresh.close()

    def test_run_reuses_one_pool(self, planted_dataset, monkeypatch):
        """The enumeration driver must create at most one pool per run."""
        created = []
        original = KernelWorkspace._ensure_pool

        def counting(self, width=None):
            pool = original(self, width)
            created.append(self)
            return pool

        monkeypatch.setattr(KernelWorkspace, "_ensure_pool", counting)
        x0, errors, _ = planted_dataset
        slice_line(
            x0, errors,
            config=SliceLineConfig(k=4, sigma=5, block_size=4),
            num_threads=4,
        )
        assert len(set(created)) <= 1
