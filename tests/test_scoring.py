"""Tests for the scoring function (Eq. 1/5) and its upper bound (Eq. 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scoring import (
    score,
    score_at_size,
    score_single,
    score_upper_bound,
)
from repro.exceptions import ValidationError


class TestScoreProperties:
    """The paper's stated properties of the scoring function (Section 2.2)."""

    def test_full_dataset_scores_zero_for_any_alpha(self):
        # Property 2: the score of X itself is always 0.
        for alpha in (0.1, 0.5, 0.95, 1.0):
            assert score_single(100, 40.0, 100, 40.0, alpha) == pytest.approx(0.0)

    def test_alpha_half_balances_error_and_size(self):
        # Property 1: at alpha=0.5 the two components carry equal weight:
        # sc = (se_bar/e_bar - n/|S|) / 2, so doubling the relative error
        # while halving the size doubles both components symmetrically.
        n, total = 1000, 500.0
        avg = total / n
        s1 = score_single(500, 500 * (2 * avg), n, total, 0.5)  # r=2, z=2
        s2 = score_single(250, 250 * (4 * avg), n, total, 0.5)  # r=4, z=4
        # on the zero contour (r == z) the trade is exactly score-neutral
        assert s1 == pytest.approx(0.0)
        assert s2 == pytest.approx(0.0)
        # off the contour the score scales linearly with the doubling
        a = score_single(500, 500 * (3 * avg), n, total, 0.5)  # r=3, z=2
        b = score_single(250, 250 * (6 * avg), n, total, 0.5)  # r=6, z=4
        assert b == pytest.approx(2 * a)

    def test_alpha_one_ignores_size(self):
        n, total = 1000, 100.0
        a = score_single(10, 10 * 0.5, n, total, 1.0)
        b = score_single(500, 500 * 0.5, n, total, 1.0)
        assert a == pytest.approx(b)

    def test_empty_slice_is_negative_infinity(self):
        assert score_single(0, 0.0, 100, 10.0, 0.9) == -np.inf

    def test_above_average_error_scores_positive_when_large(self):
        n, total = 1000, 100.0
        assert score_single(500, 500 * 0.2 * 2, n, total, 0.95) > 0

    def test_vectorized_matches_scalar(self):
        sizes = np.array([10.0, 50.0, 100.0])
        errors = np.array([5.0, 10.0, 30.0])
        vec = score(sizes, errors, 200, 60.0, 0.9)
        for i in range(3):
            assert vec[i] == pytest.approx(
                score_single(sizes[i], errors[i], 200, 60.0, 0.9)
            )

    def test_zero_total_error_rejected(self):
        with pytest.raises(ValidationError):
            score(np.array([1.0]), np.array([0.0]), 10, 0.0, 0.5)

    def test_zero_rows_rejected(self):
        with pytest.raises(ValidationError):
            score(np.array([1.0]), np.array([0.0]), 0, 1.0, 0.5)


class TestScoreUpperBound:
    def test_bound_dominates_actual_score(self):
        # For a slice with known stats, the bound computed from those exact
        # stats must be >= its true score.
        n, total, sigma, alpha = 500, 100.0, 5, 0.9
        size, error, max_error = 50.0, 30.0, 2.0
        actual = score_single(size, error, n, total, alpha)
        bound = score_upper_bound(
            np.array([size]), np.array([error]), np.array([max_error]),
            n, total, sigma, alpha,
        )[0]
        assert bound >= actual - 1e-9

    def test_bound_empty_interval_is_minus_inf(self):
        # size bound below sigma: no valid slice can exist underneath
        bound = score_upper_bound(
            np.array([3.0]), np.array([5.0]), np.array([1.0]), 100, 10.0, 5, 0.9
        )[0]
        assert bound == -np.inf

    def test_bound_monotone_in_size_bound(self):
        n, total, sigma, alpha = 1000, 200.0, 10, 0.9
        bounds = score_upper_bound(
            np.array([20.0, 50.0, 400.0]),
            np.array([30.0, 30.0, 30.0]),
            np.array([1.5, 1.5, 1.5]),
            n, total, sigma, alpha,
        )
        assert bounds[0] <= bounds[1] + 1e-12
        assert bounds[1] <= bounds[2] + 1e-12

    def test_bound_monotone_in_error_bound(self):
        n, total, sigma, alpha = 1000, 200.0, 10, 0.9
        bounds = score_upper_bound(
            np.array([100.0, 100.0]),
            np.array([10.0, 40.0]),
            np.array([1.0, 1.0]),
            n, total, sigma, alpha,
        )
        assert bounds[0] <= bounds[1] + 1e-12

    def test_zero_max_error_gives_nonpositive_interesting_scores(self):
        # With sm = 0 the hypothetical child carries zero error.
        bound = score_upper_bound(
            np.array([50.0]), np.array([10.0]), np.array([0.0]),
            200, 50.0, 5, 0.9,
        )[0]
        assert bound <= 0.0

    def test_score_at_size_caps_error_by_size_times_max(self):
        vals = score_at_size(
            np.array([10.0]), np.array([100.0]), np.array([0.5]),
            100, 50.0, 0.9,
        )
        # effective error is min(100, 10*0.5) = 5
        manual = 0.9 * ((100 * 5.0) / (10.0 * 50.0) - 1) - 0.1 * (100 / 10.0 - 1)
        assert vals[0] == pytest.approx(manual)

    @settings(max_examples=200, deadline=None)
    @given(
        size=st.floats(1, 1000),
        avg_err=st.floats(0.001, 10),
        max_err_factor=st.floats(1.0, 20.0),
        alpha=st.floats(0.01, 1.0),
        sigma=st.integers(1, 50),
    )
    def test_property_bound_dominates_own_score(
        self, size, avg_err, max_err_factor, alpha, sigma
    ):
        """ceil(sc) from a slice's exact stats bounds its own score."""
        n, total = 2000, 1500.0
        error = size * avg_err
        max_error = avg_err * max_err_factor
        if size < sigma:
            return  # bound legitimately -inf; slice itself invalid
        actual = score_single(size, min(error, size * max_error), n, total, alpha)
        bound = score_upper_bound(
            np.array([size]), np.array([error]), np.array([max_error]),
            n, total, sigma, alpha,
        )[0]
        assert bound >= actual - 1e-6
