"""Shared fixtures: small, deterministic datasets with known ground truth."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FeatureSpace


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_x0():
    """A hand-written 8x3 matrix with domains (2, 3, 2)."""
    return np.array(
        [
            [1, 1, 1],
            [1, 2, 1],
            [1, 3, 2],
            [2, 1, 2],
            [2, 2, 1],
            [2, 3, 2],
            [1, 1, 2],
            [2, 1, 1],
        ],
        dtype=np.int64,
    )


@pytest.fixture
def tiny_errors():
    """Errors concentrated on rows where F1=1 and F2=1."""
    return np.array([1.0, 0.0, 0.0, 0.0, 0.1, 0.0, 1.0, 0.2])


@pytest.fixture
def tiny_space(tiny_x0):
    return FeatureSpace.from_matrix(tiny_x0)


@pytest.fixture
def planted_dataset(rng):
    """500x5 random data with a strongly problematic planted slice.

    The slice ``F1=1 AND F2=2`` has every row erroneous; the background
    error rate is 10%.  Returns (x0, errors, planted_predicates).
    """
    x0 = np.column_stack(
        [rng.integers(1, d + 1, size=500) for d in (3, 3, 4, 2, 3)]
    ).astype(np.int64)
    errors = (rng.random(500) < 0.1).astype(np.float64)
    mask = (x0[:, 0] == 1) & (x0[:, 1] == 2)
    errors[mask] = 1.0
    return x0, errors, {0: 1, 1: 2}


def random_small_problem(seed: int):
    """A random small slice-finding problem for oracle comparisons."""
    gen = np.random.default_rng(seed)
    n = int(gen.integers(40, 160))
    m = int(gen.integers(2, 5))
    domains = gen.integers(2, 5, size=m)
    x0 = np.column_stack(
        [gen.integers(1, d + 1, size=n) for d in domains]
    ).astype(np.int64)
    errors = gen.random(n) * (gen.random(n) < 0.5)
    if errors.sum() == 0:
        errors[0] = 1.0
    k = int(gen.integers(1, 6))
    sigma = int(gen.integers(1, 10))
    alpha = float(gen.uniform(0.3, 1.0))
    return x0, errors, k, sigma, alpha
