"""Differential tests for the pluggable evaluation-kernel backends.

The contract under test (see :mod:`repro.linalg.kernels`) is strict
bitwise equality: every backend — sparse, bitset, incremental, and the
``auto`` cost model — must produce the exact same floats for every slice
statistic and the exact same final top-K, across thread counts, block
sizes, compaction modes, warm starts, cache evictions, checkpoints and
budgets.  Errors in these tests are dyadic rationals (multiples of 1/16)
so even *independently recomputed* oracle sums are exact, not merely
close; the backends themselves must agree bitwise on arbitrary floats,
which the oracle-free cross-backend assertions cover.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.linalg.kernels as kernels_mod
from repro.core import (
    FeatureSpace,
    Slice,
    SliceLineConfig,
    encode_slices,
    evaluate_slice_set,
    slice_line,
)
from repro.exceptions import ValidationError
from repro.linalg.kernels import (
    BACKENDS,
    MIN_BITSET_CANDIDATES,
    MIN_BITSET_CELLS,
    BitsetTable,
    IndicatorCache,
    KernelState,
    choose_backend,
    estimate_table_bytes,
    is_binary_matrix,
    num_packed_words,
    pack_bool_rows,
    popcount_rows,
    unpack_bool_rows,
    words_block_stats,
)
from repro.linalg.kernels import _popcount_rows_lut
from repro.resilience import BudgetConfig

#: The three concrete backends plus the cost model — the full request space.
ALL_BACKENDS = list(BACKENDS)
FORCED = ["sparse", "bitset", "incremental"]


def backend_problem(seed=7, n=480, m=6):
    """A problem deep enough that levels 2-3 emit hundreds of candidates.

    Errors are dyadic so any summation order is exact; a planted slice
    keeps the search from terminating at level 1.
    """
    gen = np.random.default_rng(seed)
    x0 = np.column_stack(
        [gen.integers(1, 4, size=n) for _ in range(m)]
    ).astype(np.int64)
    errors = gen.integers(0, 17, size=n) / 16.0
    errors[(x0[:, 0] == 1) & (x0[:, 1] == 2)] = 1.0
    return x0, errors


def run_backend(x0, errors, backend, *, num_threads=1, seeds=None, **overrides):
    config = SliceLineConfig(
        k=6, sigma=5, kernel_backend=backend, **overrides
    )
    return slice_line(
        x0, errors, config, num_threads=num_threads, seed_slices=seeds
    )


def assert_same_result(ref, other, label=""):
    """Bitwise equality of two runs' top-K output."""
    assert np.array_equal(ref.top_stats, other.top_stats), label
    assert np.array_equal(
        ref.top_slices_encoded, other.top_slices_encoded
    ), label
    assert [s.predicates for s in ref.top_slices] == [
        s.predicates for s in other.top_slices
    ], label


# ---------------------------------------------------------------------------
# bit packing and popcount primitives


class TestPacking:
    @pytest.mark.parametrize("num_bits", [0, 1, 7, 8, 63, 64, 65, 130, 511])
    def test_pack_unpack_round_trip(self, num_bits):
        gen = np.random.default_rng(num_bits)
        rows = gen.random((5, num_bits)) < 0.4
        words = pack_bool_rows(rows)
        assert words.dtype == np.uint64
        assert words.shape == (5, num_packed_words(num_bits))
        assert np.array_equal(unpack_bool_rows(words, num_bits), rows)

    def test_pack_zero_rows(self):
        words = pack_bool_rows(np.zeros((0, 77), dtype=bool))
        assert words.shape == (0, num_packed_words(77))
        assert unpack_bool_rows(words, 77).shape == (0, 77)

    def test_num_packed_words(self):
        assert num_packed_words(0) == 0
        assert num_packed_words(1) == 1
        assert num_packed_words(64) == 1
        assert num_packed_words(65) == 2

    def test_popcount_matches_unpacked_sum(self):
        gen = np.random.default_rng(0)
        rows = gen.random((9, 200)) < 0.3
        words = pack_bool_rows(rows)
        expected = rows.sum(axis=1)
        assert np.array_equal(popcount_rows(words), expected)
        # The byte-LUT fallback (numpy without np.bitwise_count) must agree.
        assert np.array_equal(_popcount_rows_lut(words), expected)

    def test_popcount_empty_words(self):
        assert np.array_equal(
            popcount_rows(np.zeros((3, 0), dtype=np.uint64)),
            np.zeros(3, dtype=np.int64),
        )

    def test_is_binary_matrix(self):
        assert is_binary_matrix(sp.csr_matrix(np.eye(3)))
        assert is_binary_matrix(sp.csr_matrix((3, 4)))
        assert not is_binary_matrix(sp.csr_matrix(np.eye(3) * 2.0))


# ---------------------------------------------------------------------------
# block statistics vs an independent dense oracle


class TestWordsBlockStats:
    def build(self, seed, n=150, cols=9):
        gen = np.random.default_rng(seed)
        x = (gen.random((n, cols)) < 0.5).astype(np.float64)
        x[:, 0] = 1.0  # one full column -> a full-coverage slice exists
        errors = gen.integers(0, 17, size=n) / 16.0
        return sp.csr_matrix(x), errors

    def test_matches_dense_oracle(self):
        x, errors = self.build(3)
        table = BitsetTable.from_matrix(x)
        dense = x.toarray() != 0
        # Pairs incl. (0, 0) -> the full slice, and a likely-empty AND.
        keys = np.array([[0, 0], [1, 2], [3, 4], [5, 6], [7, 8]])
        words = table.candidate_words(keys)
        sizes, se, sm, covered = words_block_stats(
            words, errors, x.shape[0], track_rows=True
        )
        for i, (a, b) in enumerate(keys):
            mask = dense[:, a] & dense[:, b]
            count = int(mask.sum())
            assert sizes[i] == float(count)
            assert se[i] == float(errors[mask].sum())
            member_max = errors[mask].max() if count else 0.0
            if 0 < count < x.shape[0]:
                member_max = max(member_max, 0.0)
            assert sm[i] == member_max
        expected_cover = np.zeros(x.shape[0], dtype=bool)
        for a, b in keys:
            expected_cover |= dense[:, a] & dense[:, b]
        assert np.array_equal(covered, expected_cover)

    def test_empty_block(self):
        _, errors = self.build(4)
        sizes, se, sm, covered = words_block_stats(
            np.zeros((0, 3), dtype=np.uint64), errors, errors.size, True
        )
        assert sizes.shape == (0,)
        assert not covered.any()


# ---------------------------------------------------------------------------
# the cost model: `auto` never violates a backend's preconditions


class TestChooseBackend:
    KDD98_LEVEL2 = dict(
        num_rows=1000, num_cols=4446, num_candidates=696_320
    )

    def test_kdd98_level2_auto_picks_bitset(self):
        assert (
            choose_backend(
                "auto", binary_data=True, cache_ready=False, **self.KDD98_LEVEL2
            )
            == "bitset"
        )

    def test_kdd98_level3_auto_picks_incremental(self):
        assert (
            choose_backend(
                "auto", binary_data=True, cache_ready=True, **self.KDD98_LEVEL2
            )
            == "incremental"
        )

    def test_tiny_level_stays_sparse(self):
        # Work below MIN_BITSET_CELLS: packing costs more than it saves.
        assert (
            choose_backend(
                "auto",
                num_rows=100,
                num_cols=20,
                num_candidates=50,
                binary_data=True,
                cache_ready=True,
            )
            == "sparse"
        )
        assert 100 * 50 < MIN_BITSET_CELLS

    def test_few_candidates_stay_sparse(self):
        assert (
            choose_backend(
                "auto",
                num_rows=100_000,
                num_cols=20,
                num_candidates=MIN_BITSET_CANDIDATES - 1,
                binary_data=True,
                cache_ready=False,
            )
            == "sparse"
        )

    @pytest.mark.parametrize("requested", ALL_BACKENDS)
    def test_non_binary_always_sparse(self, requested):
        assert (
            choose_backend(
                requested,
                num_rows=10_000,
                num_cols=100,
                num_candidates=10_000,
                binary_data=False,
                cache_ready=True,
            )
            == "sparse"
        )

    def test_bitset_over_table_cap_falls_back(self):
        assert (
            choose_backend(
                "bitset",
                num_rows=1000,
                num_cols=100,
                num_candidates=1000,
                binary_data=True,
                cache_ready=False,
                max_table_bytes=8,
            )
            == "sparse"
        )

    def test_incremental_without_cache_degrades_to_bitset(self):
        assert (
            choose_backend(
                "incremental",
                num_rows=1000,
                num_cols=100,
                num_candidates=1000,
                binary_data=True,
                cache_ready=False,
            )
            == "bitset"
        )

    def test_incremental_without_cache_or_table_degrades_to_sparse(self):
        assert (
            choose_backend(
                "incremental",
                num_rows=1000,
                num_cols=100,
                num_candidates=1000,
                binary_data=True,
                cache_ready=False,
                max_table_bytes=8,
            )
            == "sparse"
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError):
            choose_backend(
                "gpu",
                num_rows=1,
                num_cols=1,
                num_candidates=1,
                binary_data=True,
                cache_ready=False,
            )

    @settings(max_examples=100, deadline=None)
    @given(
        requested=st.sampled_from(ALL_BACKENDS),
        num_rows=st.integers(1, 1_000_000),
        num_cols=st.integers(0, 10_000),
        num_candidates=st.integers(0, 1_000_000),
        binary_data=st.booleans(),
        cache_ready=st.booleans(),
        cap=st.integers(0, 1 << 30),
    )
    def test_choice_preconditions_always_hold(
        self, requested, num_rows, num_cols, num_candidates, binary_data,
        cache_ready, cap,
    ):
        chosen = choose_backend(
            requested,
            num_rows=num_rows,
            num_cols=num_cols,
            num_candidates=num_candidates,
            binary_data=binary_data,
            cache_ready=cache_ready,
            max_table_bytes=cap,
        )
        assert chosen in ("sparse", "bitset", "incremental")
        if chosen == "bitset":
            assert binary_data
            assert estimate_table_bytes(num_rows, num_cols) <= cap
        if chosen == "incremental":
            assert binary_data
            assert cache_ready


# ---------------------------------------------------------------------------
# KernelState / IndicatorCache unit behaviour


class TestKernelState:
    def onehot(self, seed=11, n=200):
        x0, errors = backend_problem(seed, n=n, m=4)
        space = FeatureSpace.from_matrix(x0)
        return space.encode(x0), errors

    def test_incremental_words_match_bitset_words(self):
        """Parent-AND indicators == column-AND indicators, hit or miss."""
        x, _ = self.onehot()
        table = BitsetTable.from_matrix(x)
        # A fake "previous level": every one-hot column is a parent.
        num_parents = x.shape[1]
        parent_cols = np.arange(num_parents)
        parent_words = table.words[parent_cols]
        # Candidates pair up parents; key = their two columns sorted.
        pairs = np.array(
            [
                (i, j)
                for i in range(num_parents)
                for j in range(i + 1, num_parents)
            ]
        )
        keys = np.sort(parent_cols[pairs], axis=1)
        cached = num_parents * 2 // 3

        state = KernelState("incremental")
        state.cache.parent_words = parent_words[:cached]  # a prefix only
        state.cache.parent_rows = x.shape[0]
        state.backend = "incremental"
        state._x_eval = x
        state.prepare_chunks(pairs)
        words, hits, misses = state.chunk_words(keys, pairs)
        assert hits == int((pairs < cached).all(axis=1).sum())
        assert misses == len(pairs) - hits
        assert misses > 0 and hits > 0
        assert np.array_equal(words, table.candidate_words(keys))

    def test_cache_cap_keeps_aligned_prefix(self):
        cache = IndicatorCache(max_bytes=100)
        cache.begin_level(64)
        first = np.full((5, 1), 3, dtype=np.uint64)  # 40 bytes
        second = np.full((5, 1), 7, dtype=np.uint64)  # would exceed 100 - no
        cache.store(first)
        cache.store(second)  # 80 bytes total, fits
        cache.store(np.full((5, 1), 9, dtype=np.uint64))  # 120 > cap: dropped
        cache.store(first)  # after truncation nothing else is accepted
        cache.end_level()
        assert cache.stored_parents == 10
        assert np.array_equal(
            cache.parent_words, np.vstack([first, second])
        )

    def test_end_level_always_replaces_stale_table(self):
        cache = IndicatorCache()
        cache.begin_level(8)
        cache.store(np.ones((2, 1), dtype=np.uint64))
        cache.end_level()
        assert cache.ready
        # A level that stores nothing must clear the (now misaligned) table.
        cache.begin_level(8)
        cache.end_level()
        assert not cache.ready

    def test_select_rows_follows_compaction(self):
        gen = np.random.default_rng(1)
        bits = gen.random((7, 100)) < 0.5
        cache = IndicatorCache()
        cache.parent_words = pack_bool_rows(bits)
        cache.parent_rows = 100
        alive = np.flatnonzero(gen.random(100) < 0.6)
        cache.select_rows(alive, chunk=3)
        assert cache.parent_rows == alive.size
        assert np.array_equal(
            unpack_bool_rows(cache.parent_words, alive.size), bits[:, alive]
        )


# ---------------------------------------------------------------------------
# the differential matrix: backends x threads x block size x compaction x warm


@pytest.fixture(scope="module")
def matrix_problem():
    x0, errors = backend_problem()
    cold = run_backend(x0, errors, "sparse")
    assert len(cold.top_slices) >= 2
    # Non-sparse levels must actually have run somewhere in this suite.
    probe = run_backend(x0, errors, "incremental")
    chosen = [lv.backend_chosen for lv in probe.counters.levels]
    assert "bitset" in chosen and "incremental" in chosen
    return x0, errors, cold


@pytest.mark.parametrize("num_threads", [1, 4])
@pytest.mark.parametrize("block_size", [1, 16, "n"])
@pytest.mark.parametrize("compaction", [True, False])
@pytest.mark.parametrize("warm", [False, True])
class TestDifferentialMatrix:
    def test_all_backends_bitwise_identical(
        self, matrix_problem, num_threads, block_size, compaction, warm
    ):
        x0, errors, cold = matrix_problem
        block = x0.shape[0] if block_size == "n" else block_size
        seeds = cold.top_slices[:2] if warm else None
        ref = run_backend(
            x0, errors, "sparse",
            num_threads=num_threads, seeds=seeds,
            block_size=block, compaction=compaction,
        )
        for backend in ("bitset", "incremental", "auto"):
            other = run_backend(
                x0, errors, backend,
                num_threads=num_threads, seeds=seeds,
                block_size=block, compaction=compaction,
            )
            assert_same_result(
                ref, other,
                f"{backend} t={num_threads} b={block_size} "
                f"compact={compaction} warm={warm}",
            )


class TestGauges:
    def test_backend_gauges_populate(self, matrix_problem):
        x0, errors, _ = matrix_problem
        result = run_backend(x0, errors, "incremental")
        by_level = {
            lv.level: lv for lv in result.counters.levels if lv.evaluated
        }
        # Level 2 has no parent cache yet (level 1 runs the basic pass) so
        # incremental degrades to bitset; level 3+ hits the cache.
        assert by_level[2].backend_chosen == "bitset"
        assert by_level[3].backend_chosen == "incremental"
        assert by_level[3].cache_hits > 0
        assert by_level[3].cache_misses == 0

    def test_sparse_run_reports_sparse(self, matrix_problem):
        x0, errors, _ = matrix_problem
        result = run_backend(x0, errors, "sparse")
        for lv in result.counters.levels:
            if lv.evaluated and lv.level >= 2:
                assert lv.backend_chosen == "sparse"
                assert lv.cache_hits == 0 and lv.cache_misses == 0

    def test_text_gauge_excluded_from_totals(self, matrix_problem):
        x0, errors, _ = matrix_problem
        result = run_backend(x0, errors, "bitset")
        totals = result.counters.totals()
        assert "backend_chosen" not in totals
        assert "cache_hits" in totals


# ---------------------------------------------------------------------------
# hypothesis sweep, including missing codes (0 entries -> no one-hot column)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_random_problems_with_missing_codes(seed):
    gen = np.random.default_rng(seed)
    n = int(gen.integers(60, 260))
    m = int(gen.integers(2, 5))
    domains = gen.integers(2, 5, size=m)
    # Code 0 == missing: roughly 10% of entries carry no predicate.
    x0 = np.column_stack(
        [gen.integers(0, d + 1, size=n) for d in domains]
    ).astype(np.int64)
    errors = gen.integers(0, 17, size=n) / 16.0
    if errors.sum() == 0:
        errors[0] = 1.0
    k = int(gen.integers(1, 6))
    sigma = int(gen.integers(1, 10))
    cfg = dict(k=k, sigma=sigma, alpha=float(gen.uniform(0.3, 1.0)))
    ref = slice_line(
        x0, errors, SliceLineConfig(kernel_backend="sparse", **cfg)
    )
    for backend in ("bitset", "incremental", "auto"):
        other = slice_line(
            x0, errors, SliceLineConfig(kernel_backend=backend, **cfg)
        )
        assert_same_result(ref, other, f"{backend} seed={seed}")


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_continuous_float_errors_bitwise_identical(seed):
    """Arbitrary float errors over large slices: summation ORDER matters.

    Dyadic errors sum exactly under any association, so only continuous
    floats catch a backend whose accumulation order differs from scipy's
    strict sequential csc_matvec (pairwise np.sum / np.add.reduceat round
    differently on slices longer than ~8 rows).
    """
    gen = np.random.default_rng(seed)
    n = 700
    x0 = np.column_stack(
        [gen.integers(1, 4, size=n) for _ in range(5)]
    ).astype(np.int64)
    errors = gen.random(n)  # continuous: every slice sum rounds
    ref = slice_line(
        x0, errors, SliceLineConfig(k=6, sigma=5, kernel_backend="sparse")
    )
    for backend in ("bitset", "incremental", "auto"):
        other = slice_line(
            x0, errors, SliceLineConfig(k=6, sigma=5, kernel_backend=backend)
        )
        assert_same_result(ref, other, f"{backend} seed={seed}")


# ---------------------------------------------------------------------------
# evaluate_slice_set: mixed-level external slice sets


class TestEvaluateSliceSetBackends:
    def test_mixed_levels_identical_across_backends(self):
        x0, errors = backend_problem(23, n=300, m=5)
        space = FeatureSpace.from_matrix(x0)
        gen = np.random.default_rng(24)
        slices = [Slice(predicates={}, score=0, error=0, max_error=0, size=0)]
        for _ in range(40):
            feats = gen.choice(5, size=int(gen.integers(1, 4)), replace=False)
            slices.append(
                Slice(
                    predicates={
                        int(f): int(gen.integers(1, x0[:, f].max() + 1))
                        for f in feats
                    },
                    score=0, error=0, max_error=0, size=0,
                )
            )
        matrix = encode_slices(slices, space)
        x = space.encode(x0)
        ref = evaluate_slice_set(x, matrix, errors, backend="sparse")
        # The all-zero row denotes the whole dataset.
        assert ref.sizes[0] == float(x0.shape[0])
        for backend in ("bitset", "incremental", "auto"):
            for threads in (1, 4):
                out = evaluate_slice_set(
                    x, matrix, errors, backend=backend, num_threads=threads
                )
                assert np.array_equal(ref.sizes, out.sizes), backend
                assert np.array_equal(ref.errors, out.errors), backend
                assert np.array_equal(ref.max_errors, out.max_errors), backend


# ---------------------------------------------------------------------------
# cache eviction, checkpoints and budgets compose with every backend


class TestComposition:
    def eviction_problem(self):
        gen = np.random.default_rng(3)
        n, m = 600, 7
        x0 = np.column_stack(
            [gen.integers(1, 4, size=n) for _ in range(m)]
        ).astype(np.int64)
        errors = gen.integers(0, 17, size=n) / 16.0
        errors[(x0[:, 0] == 1) & (x0[:, 1] == 2)] = 1.0
        return x0, errors

    def test_cache_eviction_serves_misses_exactly(self, monkeypatch):
        """A byte-capped cache mixes hits and misses; results are identical."""
        x0, errors = self.eviction_problem()
        overrides = dict(priority_chunk=32)
        ref = run_backend(x0, errors, "sparse", **overrides)
        # Cap sized between one 32-candidate store chunk and a full level,
        # so the cache keeps a usable prefix and the rest must miss.
        monkeypatch.setattr(kernels_mod, "MAX_CACHE_BYTES", 6000)
        capped = run_backend(x0, errors, "incremental", **overrides)
        assert_same_result(ref, capped, "capped incremental")
        hits = sum(lv.cache_hits for lv in capped.counters.levels)
        misses = sum(lv.cache_misses for lv in capped.counters.levels)
        assert hits > 0 and misses > 0

    @pytest.mark.parametrize("backend", ["bitset", "incremental", "auto"])
    def test_resume_from_checkpoint(self, tmp_path, backend):
        """A resumed run (empty cache) still matches the sparse reference."""
        x0, errors = backend_problem(9)
        cfg = SliceLineConfig(k=5, sigma=5, kernel_backend=backend)
        full = slice_line(x0, errors, cfg, checkpoint_dir=str(tmp_path))
        ref = slice_line(
            x0, errors, cfg.with_overrides(kernel_backend="sparse")
        )
        assert_same_result(ref, full, f"{backend} full")
        bundles = sorted(p.name for p in tmp_path.iterdir())
        assert bundles
        for bundle in bundles:
            resumed = slice_line(
                x0, errors, cfg, resume_from=str(tmp_path / bundle)
            )
            assert resumed.completed
            assert_same_result(ref, resumed, f"{backend} from {bundle}")

    @pytest.mark.parametrize("backend", ["bitset", "incremental", "auto"])
    def test_candidate_budget_identical_across_backends(self, backend):
        x0, errors = backend_problem(13)
        budgets = BudgetConfig(max_candidates_per_level=100)
        ref = run_backend(x0, errors, "sparse")
        ref_b = slice_line(
            x0, errors,
            SliceLineConfig(k=6, sigma=5, kernel_backend="sparse"),
            budgets=budgets,
        )
        out = slice_line(
            x0, errors,
            SliceLineConfig(k=6, sigma=5, kernel_backend=backend),
            budgets=budgets,
        )
        assert_same_result(ref_b, out, f"{backend} budgeted")
        # The budget genuinely bites (otherwise this test proves nothing).
        assert ref_b.budget_trip is not None or np.array_equal(
            ref.top_stats, ref_b.top_stats
        )
