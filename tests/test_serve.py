"""Tests for the multi-tenant job service (repro.serve).

The load-bearing guarantees:

- job fingerprints are deterministic content hashes (same data + config
  -> same id; any result-affecting change -> different id);
- an exact-fingerprint resubmission is served from cache with zero
  enumeration (no ``level{L}.evaluate`` spans on its trace);
- a same-data/different-config miss warm-starts from the cached top-K
  and still matches a cold run bitwise;
- a suspended-then-resumed job matches an uninterrupted run bitwise;
- admission control and fair-share scheduling behave under concurrency
  (N tenants x M jobs always terminate, cancellations release slots).
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithm import slice_line
from repro.core.config import SliceLineConfig
from repro.exceptions import ConfigError, ServeError
from repro.resilience.budgets import BudgetConfig, SuspendHook
from repro.resilience.checkpoint import (
    fingerprint_config,
    fingerprint_digest,
    fingerprint_inputs,
    job_fingerprint,
)
from repro.serve import (
    JobQueue,
    JobSpec,
    JobState,
    ResultCache,
    SliceService,
    TenantQuota,
    load_job_document,
    load_job_file,
)
from repro.serve.scheduler import Scheduler
from repro.streaming import PredictionBatch, SliceMonitor


def _span_names(tracer):
    return [span.name for root in tracer.spans for span in root.iter_spans()]


@pytest.fixture
def service_workdir(tmp_path):
    return str(tmp_path / "serve-work")


# ---------------------------------------------------------------------------
# fingerprints


class TestJobFingerprint:
    def test_deterministic_across_calls(self, planted_dataset):
        x0, errors, _ = planted_dataset
        cfg = SliceLineConfig(k=3)
        assert job_fingerprint(x0, errors, cfg) == job_fingerprint(
            x0.copy(), errors.copy(), cfg
        )

    def test_is_a_hex_digest(self, planted_dataset):
        x0, errors, _ = planted_dataset
        digest = job_fingerprint(x0, errors, SliceLineConfig())
        assert len(digest) == 64
        int(digest, 16)

    def test_sensitive_to_data_and_config(self, planted_dataset):
        x0, errors, _ = planted_dataset
        cfg = SliceLineConfig(k=3)
        base = job_fingerprint(x0, errors, cfg)
        assert job_fingerprint(x0, errors, SliceLineConfig(k=4)) != base
        flipped = errors.copy()
        flipped[0] = 1.0 - flipped[0]
        assert job_fingerprint(x0, flipped, cfg) != base

    def test_digest_separates_fingerprint_order(self, planted_dataset):
        x0, errors, _ = planted_dataset
        data = fingerprint_inputs(x0, errors)
        cfg = fingerprint_config(SliceLineConfig())
        assert fingerprint_digest(data, cfg) != fingerprint_digest(cfg, data)
        assert fingerprint_digest(data) != fingerprint_digest(data, cfg)


# ---------------------------------------------------------------------------
# BudgetConfig.merged


class TestBudgetMerge:
    def test_tightest_wins_per_field(self):
        tenant = BudgetConfig(deadline_s=10.0, max_candidates_per_level=1000)
        job = BudgetConfig(deadline_s=30.0, max_memory_bytes=1 << 20)
        merged = tenant.merged(job)
        assert merged.deadline_s == 10.0
        assert merged.max_candidates_per_level == 1000
        assert merged.max_memory_bytes == 1 << 20

    def test_job_cannot_loosen_tenant_limits(self):
        tenant = BudgetConfig(max_candidates_per_level=100)
        job = BudgetConfig(max_candidates_per_level=100_000)
        assert tenant.merged(job).max_candidates_per_level == 100

    def test_none_returns_self(self):
        tenant = BudgetConfig(deadline_s=5.0)
        assert tenant.merged(None) is tenant

    def test_type_validation(self):
        with pytest.raises(ConfigError):
            BudgetConfig().merged({"deadline_s": 1.0})

    def test_merged_is_commutative(self):
        a = BudgetConfig(deadline_s=10.0, max_memory_bytes=1 << 30)
        b = BudgetConfig(deadline_s=3.0, max_candidates_per_level=50)
        assert a.merged(b) == b.merged(a)


# ---------------------------------------------------------------------------
# SuspendHook + slice_line suspension


class TestSuspension:
    def test_suspend_hook_roundtrip(self):
        hook = SuspendHook()
        assert not hook.requested
        hook.request()
        assert hook.requested
        hook.clear()
        assert not hook.requested

    def test_pre_requested_hook_suspends_at_first_boundary(
        self, planted_dataset, tmp_path
    ):
        x0, errors, _ = planted_dataset
        cfg = SliceLineConfig(k=3, max_level=3)
        hook = SuspendHook()
        hook.request()
        result = slice_line(
            x0, errors, cfg, checkpoint_dir=str(tmp_path), suspend=hook
        )
        assert result.suspended
        assert not result.completed
        assert result.budget_trip is None
        assert result.counters.events.get("suspend.yield") == 1

    def test_resume_after_suspend_is_bitwise_identical(
        self, planted_dataset, tmp_path
    ):
        x0, errors, _ = planted_dataset
        cfg = SliceLineConfig(k=5, max_level=4)
        hook = SuspendHook()
        hook.request()
        partial = slice_line(
            x0, errors, cfg, checkpoint_dir=str(tmp_path), suspend=hook
        )
        assert partial.suspended
        hook.clear()
        resumed = slice_line(
            x0, errors, cfg, resume_from=str(tmp_path), suspend=hook
        )
        cold = slice_line(x0, errors, cfg)
        assert resumed.completed and not resumed.suspended
        assert np.array_equal(resumed.top_stats, cold.top_stats)
        assert np.array_equal(
            resumed.top_slices_encoded, cold.top_slices_encoded
        )

    def test_unrequested_hook_changes_nothing(self, planted_dataset):
        x0, errors, _ = planted_dataset
        cfg = SliceLineConfig(k=3)
        with_hook = slice_line(x0, errors, cfg, suspend=SuspendHook())
        without = slice_line(x0, errors, cfg)
        assert np.array_equal(with_hook.top_stats, without.top_stats)
        assert with_hook.completed


# ---------------------------------------------------------------------------
# result cache


class TestResultCache:
    def _result(self, planted, cfg):
        x0, errors, _ = planted
        return slice_line(x0, errors, cfg)

    def test_exact_hit_and_lru_eviction(self, planted_dataset):
        cache = ResultCache(capacity=2)
        result = self._result(planted_dataset, SliceLineConfig(k=2))
        cache.put("fp-a", "data", result)
        cache.put("fp-b", "data", result)
        assert cache.get("fp-a") is result
        cache.put("fp-c", "data", result)  # evicts fp-b (LRU)
        assert cache.get("fp-b") is None
        assert cache.get("fp-a") is result
        assert len(cache) == 2

    def test_partial_results_are_never_cached(self, planted_dataset):
        x0, errors, _ = planted_dataset
        partial = slice_line(
            x0, errors, SliceLineConfig(k=2),
            budgets=BudgetConfig(max_candidates_per_level=1),
        )
        assert not partial.completed
        cache = ResultCache()
        assert not cache.put("fp", "data", partial)
        assert len(cache) == 0

    def test_warm_seeds_prefers_most_recent_same_data(self, planted_dataset):
        cache = ResultCache()
        r1 = self._result(planted_dataset, SliceLineConfig(k=2))
        r2 = self._result(planted_dataset, SliceLineConfig(k=4))
        cache.put("fp-1", "data-x", r1)
        cache.put("fp-2", "data-x", r2)
        assert cache.warm_seeds("data-x") == list(r2.top_slices)
        assert cache.warm_seeds("data-unknown") == []


# ---------------------------------------------------------------------------
# declarative job files


class TestDeclarative:
    DOC = {
        "defaults": {
            "tenant": "analytics",
            "dataset": "salaries",
            "config": {"k": 4, "max_level": 3},
        },
        "jobs": [
            {"name": "baseline"},
            {"name": "deep", "config": {"max_level": 5}},
            {
                "name": "mon",
                "kind": "monitor",
                "tenant": "ops",
                "batch_size": 64,
            },
        ],
    }

    def test_defaults_merge_key_wise(self):
        specs = load_job_document(self.DOC)
        assert [s.name for s in specs] == ["baseline", "deep", "mon"]
        assert specs[0].config.k == 4 and specs[0].config.max_level == 3
        # "deep" overrides max_level but inherits k from the defaults
        assert specs[1].config.k == 4 and specs[1].config.max_level == 5
        assert specs[2].kind == "monitor" and specs[2].tenant == "ops"

    def test_unknown_keys_rejected(self):
        doc = {"jobs": [{"dataset": "salaries", "bogus_knob": 1}]}
        with pytest.raises(ConfigError, match="bogus_knob"):
            load_job_document(doc)
        doc = {"jobs": [{"dataset": "salaries", "config": {"topk": 3}}]}
        with pytest.raises(ConfigError, match="topk"):
            load_job_document(doc)

    def test_jobs_array_required(self):
        with pytest.raises(ConfigError, match="non-empty"):
            load_job_document({"defaults": {}, "jobs": []})

    def test_json_file_roundtrip(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(self.DOC))
        specs = load_job_file(str(path))
        assert len(specs) == 3

    def test_toml_file(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")
        assert tomllib is not None
        path = tmp_path / "jobs.toml"
        path.write_text(
            "[defaults]\n"
            'tenant = "analytics"\n'
            'dataset = "salaries"\n'
            "[defaults.config]\n"
            "k = 4\n"
            "[[jobs]]\n"
            'name = "baseline"\n'
            "[[jobs]]\n"
            'name = "deep"\n'
            "[jobs.config]\n"
            "max_level = 5\n"
        )
        specs = load_job_file(str(path))
        assert len(specs) == 2
        assert specs[1].config.k == 4 and specs[1].config.max_level == 5

    def test_budgets_table(self):
        doc = {
            "jobs": [
                {"dataset": "salaries", "budgets": {"deadline_s": 2.5}}
            ]
        }
        specs = load_job_document(doc)
        assert specs[0].budgets == BudgetConfig(deadline_s=2.5)


# ---------------------------------------------------------------------------
# job spec validation


class TestJobSpec:
    def test_needs_exactly_one_data_source(self, planted_dataset):
        x0, errors, _ = planted_dataset
        with pytest.raises(ConfigError):
            JobSpec(tenant="t")  # no source
        with pytest.raises(ConfigError):
            JobSpec(tenant="t", dataset="salaries", x0=x0, errors=errors)

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigError):
            JobSpec(kind="train", dataset="salaries")


# ---------------------------------------------------------------------------
# queue: admission control + fair share


class TestJobQueue:
    def _record(self, tenant="a", interactive=False):
        return __import__("repro.serve.spec", fromlist=["JobRecord"]).JobRecord(
            job_id=f"{tenant}/{id(object())}",
            spec=JobSpec(
                tenant=tenant,
                dataset="salaries",
                interactive=interactive,
            ),
            fingerprint="fp",
            data_digest="dd",
        )

    def test_backlog_limit_rejects_with_typed_reason(self):
        quota = TenantQuota(max_running=1, max_queued=2)
        queue = JobQueue(lambda tenant: quota)
        assert queue.admit(self._record(), quota).admitted
        assert queue.admit(self._record(), quota).admitted
        decision = queue.admit(self._record(), quota)
        assert not decision.admitted
        assert decision.reason == "queue-full"

    def test_over_quota_submission_is_queued_not_rejected(self):
        quota = TenantQuota(max_running=1, max_queued=10)
        queue = JobQueue(lambda tenant: quota)
        queue.admit(self._record(), quota)
        first = queue.take(timeout=0.1)
        assert first is not None
        decision = queue.admit(self._record(), quota)
        assert decision.admitted
        assert decision.reason == "queued-over-quota"
        # tenant at max_running: nothing is dispatchable until release
        assert queue.take(timeout=0.05) is None
        queue.release(first)
        assert queue.take(timeout=0.1) is not None

    def test_fair_share_alternates_tenants(self):
        quota = TenantQuota(max_running=4, max_queued=16)
        queue = JobQueue(lambda tenant: quota)
        for _ in range(2):
            queue.admit(self._record("noisy"), quota)
        queue.admit(self._record("quiet"), quota)
        first = queue.take(timeout=0.1)
        second = queue.take(timeout=0.1)
        # both tenants get a slot before any tenant gets its second
        assert {first.spec.tenant, second.spec.tenant} == {"noisy", "quiet"}

    def test_weight_biases_fair_share(self):
        quotas = {
            "heavy": TenantQuota(max_running=8, weight=4.0),
            "light": TenantQuota(max_running=8, weight=1.0),
        }
        queue = JobQueue(lambda tenant: quotas[tenant])
        for _ in range(4):
            queue.admit(self._record("heavy"), quotas["heavy"])
            queue.admit(self._record("light"), quotas["light"])
        taken = [queue.take(timeout=0.1).spec.tenant for _ in range(5)]
        # with 4x weight, "heavy" accumulates service 4x slower
        assert taken.count("heavy") > taken.count("light")

    def test_interactive_jumps_batch_jobs(self):
        quota = TenantQuota(max_running=4, max_queued=16)
        queue = JobQueue(lambda tenant: quota)
        queue.admit(self._record("batch"), quota)
        queue.admit(self._record("live", interactive=True), quota)
        assert queue.take(timeout=0.1).spec.tenant == "live"

    def test_requeue_goes_to_the_front(self):
        quota = TenantQuota(max_running=4, max_queued=16)
        queue = JobQueue(lambda tenant: quota)
        first = self._record("a")
        second = self._record("a")
        queue.admit(first, quota)
        queue.admit(second, quota)
        taken = queue.take(timeout=0.1)
        assert taken is first
        queue.requeue(taken)
        assert queue.take(timeout=0.1) is first

    def test_remove_withdraws_queued_job(self):
        quota = TenantQuota()
        queue = JobQueue(lambda tenant: quota)
        record = self._record()
        queue.admit(record, quota)
        assert queue.remove(record)
        assert not queue.remove(record)
        assert queue.depth() == 0

    def test_served_is_charged_once_across_preemption_retakes(self):
        quota = TenantQuota(max_running=4, max_queued=16)
        queue = JobQueue(lambda tenant: quota)
        record = self._record("a")
        queue.admit(record, quota)
        assert queue.take(timeout=0.1) is record
        queue.requeue(record)  # preempted
        assert queue.take(timeout=0.1) is record  # resumed
        # one unit of historical service, not one per dispatch
        assert queue.tenant_stats()["a"]["served"] == 1

    def test_interactive_behind_same_tenant_batch_still_jumps(self):
        quota = TenantQuota(max_running=4, max_queued=16)
        queue = JobQueue(lambda tenant: quota)
        batch = self._record("t")
        live = self._record("t", interactive=True)
        queue.admit(batch, quota)
        queue.admit(live, quota)
        assert queue.take(timeout=0.1) is live
        assert queue.take(timeout=0.1) is batch


# ---------------------------------------------------------------------------
# service end-to-end


class TestSliceService:
    def _spec(self, planted, cfg=None, **kwargs):
        x0, errors, _ = planted
        return JobSpec(
            x0=x0, errors=errors, config=cfg or SliceLineConfig(k=3),
            **kwargs,
        )

    def test_exact_resubmission_hits_cache_without_enumeration(
        self, planted_dataset, service_workdir
    ):
        with SliceService(
            num_workers=1, workdir=service_workdir, trace=True
        ) as service:
            first = service.submit(self._spec(planted_dataset))
            result = service.result(first.job_id, timeout=60)
            second = service.submit(self._spec(planted_dataset))
            again = service.result(second.job_id, timeout=60)
            assert second.cache_hit
            assert again is result
            # zero enumeration on the hit: no evaluate spans at any level
            names = _span_names(second.tracer)
            assert not any(".evaluate" in name for name in names)
            assert service.registry.gauges["serve.cache_hits"] >= 1
            assert service.registry.events["serve.cache_hits"] == 1

    def test_cache_hit_matches_cold_run_bitwise(
        self, planted_dataset, service_workdir
    ):
        x0, errors, _ = planted_dataset
        cfg = SliceLineConfig(k=4)
        with SliceService(num_workers=1, workdir=service_workdir) as service:
            service.result(
                service.submit(self._spec(planted_dataset, cfg)).job_id,
                timeout=60,
            )
            hit = service.submit(self._spec(planted_dataset, cfg))
            cached = service.result(hit.job_id, timeout=60)
        cold = slice_line(x0, errors, cfg)
        assert np.array_equal(cached.top_stats, cold.top_stats)
        assert np.array_equal(
            cached.top_slices_encoded, cold.top_slices_encoded
        )

    def test_same_data_different_config_warm_starts_bitwise(
        self, planted_dataset, service_workdir
    ):
        x0, errors, _ = planted_dataset
        with SliceService(num_workers=1, workdir=service_workdir) as service:
            service.result(
                service.submit(
                    self._spec(planted_dataset, SliceLineConfig(k=3))
                ).job_id,
                timeout=60,
            )
            miss = service.submit(
                self._spec(planted_dataset, SliceLineConfig(k=5))
            )
            warmed = service.result(miss.job_id, timeout=60)
            assert not miss.cache_hit
            assert len(miss.warm_seeds) > 0
            assert warmed.warm_start is not None
        cold = slice_line(x0, errors, SliceLineConfig(k=5))
        assert np.array_equal(warmed.top_stats, cold.top_stats)
        assert np.array_equal(
            warmed.top_slices_encoded, cold.top_slices_encoded
        )

    def test_concurrent_duplicates_coalesce(
        self, planted_dataset, service_workdir
    ):
        service = SliceService(
            num_workers=1, workdir=service_workdir, start=False
        )
        try:
            first = service.submit(self._spec(planted_dataset))
            second = service.submit(self._spec(planted_dataset))
            assert second.coalesced
            service.start()
            r1 = service.result(first.job_id, timeout=60)
            r2 = service.result(second.job_id, timeout=60)
            assert r2 is r1
            assert second.cache_hit
        finally:
            service.shutdown()

    def test_budget_tripped_origin_does_not_settle_waiters(
        self, planted_dataset, service_workdir
    ):
        x0, errors, _ = planted_dataset
        service = SliceService(
            num_workers=1, workdir=service_workdir, start=False
        )
        try:
            origin = service.submit(
                self._spec(
                    planted_dataset,
                    budgets=BudgetConfig(max_candidates_per_level=1),
                )
            )
            # budgets are not part of the fingerprint, so this coalesces
            waiter = service.submit(self._spec(planted_dataset))
            assert waiter.coalesced
            service.start()
            partial = service.result(origin.job_id, timeout=60)
            assert not partial.completed
            # the waiter must not inherit the truncated top-K: it is
            # promoted and re-run under its own (absent) budgets
            full = service.result(waiter.job_id, timeout=60)
            assert full.completed
            assert not waiter.cache_hit
            assert len(service.cache) == 1  # only the full result is cached
        finally:
            service.shutdown()
        cold = slice_line(x0, errors, SliceLineConfig(k=3))
        assert np.array_equal(full.top_stats, cold.top_stats)
        assert np.array_equal(
            full.top_slices_encoded, cold.top_slices_encoded
        )

    def test_cancelled_pending_origin_promotes_coalesced_waiter(
        self, planted_dataset, service_workdir
    ):
        service = SliceService(
            num_workers=1, workdir=service_workdir, start=False
        )
        try:
            origin = service.submit(self._spec(planted_dataset))
            waiter = service.submit(self._spec(planted_dataset))
            assert waiter.coalesced
            assert service.cancel(origin.job_id)
            assert origin.state == JobState.CANCELLED
            service.start()
            result = service.result(waiter.job_id, timeout=60)
            assert result.completed
            assert waiter.state == JobState.COMPLETED
        finally:
            service.shutdown()

    def test_preempted_then_resumed_matches_cold_bitwise(
        self, planted_dataset, service_workdir
    ):
        x0, errors, _ = planted_dataset
        cfg = SliceLineConfig(k=5, max_level=4)
        service = SliceService(
            num_workers=1, workdir=service_workdir, start=False, trace=True
        )
        try:
            record = service.submit(self._spec(planted_dataset, cfg))
            record.suspend.request()  # suspend at the first level boundary
            service.start()
            result = service.result(record.job_id, timeout=120)
            assert record.preemptions >= 1
            assert record.resumes >= 1
            assert "suspend.yield" in _span_names(record.tracer)
        finally:
            service.shutdown()
        cold = slice_line(x0, errors, cfg)
        assert np.array_equal(result.top_stats, cold.top_stats)
        assert np.array_equal(
            result.top_slices_encoded, cold.top_slices_encoded
        )

    def test_interactive_submission_preempts_running_batch_job(
        self, planted_dataset, service_workdir
    ):
        quotas = {"batch": TenantQuota(max_running=2)}
        service = SliceService(
            quotas=quotas, num_workers=1, workdir=service_workdir,
            start=False,
        )
        try:
            batch = service.submit(
                self._spec(
                    planted_dataset,
                    SliceLineConfig(k=5, max_level=4),
                    tenant="batch",
                )
            )
            scheduler = service.scheduler
            scheduler._executing[batch.job_id] = batch  # simulate running
            batch.started_at = time.time()
            assert not batch.suspend.requested
            # submit() itself triggers preemption for interactive jobs
            live = service.submit(
                self._spec(planted_dataset, tenant="live", interactive=True)
            )
            assert live.spec.interactive
            assert batch.suspend.requested
            # the victim is now suspending; no second victim is picked
            assert scheduler.maybe_preempt(live) is None
        finally:
            service.shutdown()

    def test_no_preemption_when_interactive_tenant_has_no_free_slot(
        self, planted_dataset, service_workdir
    ):
        quotas = {
            "batch": TenantQuota(max_running=2),
            "live": TenantQuota(max_running=1),
        }
        service = SliceService(
            quotas=quotas, num_workers=1, workdir=service_workdir,
            start=False,
        )
        try:
            batch = service.submit(
                self._spec(
                    planted_dataset,
                    SliceLineConfig(k=5, max_level=4),
                    tenant="batch",
                )
            )
            scheduler = service.scheduler
            scheduler._executing[batch.job_id] = batch  # simulate running
            batch.started_at = time.time()
            service.queue._running["live"] = 1  # live is at max_running
            live = service.submit(
                self._spec(planted_dataset, tenant="live", interactive=True)
            )
            assert live.spec.interactive
            # suspending the batch job would free a worker "live" cannot
            # use yet, so no victim is picked
            assert not batch.suspend.requested
            assert scheduler.maybe_preempt(live) is None
        finally:
            service.shutdown()

    def test_rejection_carries_typed_reason(
        self, planted_dataset, service_workdir
    ):
        quotas = {"t": TenantQuota(max_running=1, max_queued=1)}
        service = SliceService(
            quotas=quotas, num_workers=1, workdir=service_workdir,
            start=False,
        )
        try:
            okay = service.submit(self._spec(planted_dataset, tenant="t"))
            assert okay.state == JobState.PENDING
            # different config -> different fingerprint -> no coalescing
            rejected = service.submit(
                self._spec(
                    planted_dataset, SliceLineConfig(k=7), tenant="t"
                )
            )
            assert rejected.state == JobState.REJECTED
            assert rejected.reason == "queue-full"
            with pytest.raises(ServeError, match="queue-full"):
                service.result(rejected.job_id, timeout=1)
        finally:
            service.shutdown()

    def test_cancelled_queued_job_releases_slot(
        self, planted_dataset, service_workdir
    ):
        service = SliceService(
            num_workers=1, workdir=service_workdir, start=False
        )
        try:
            record = service.submit(self._spec(planted_dataset))
            assert service.cancel(record.job_id)
            assert record.state == JobState.CANCELLED
            assert service.queue.depth() == 0
            assert not service.cancel(record.job_id)  # already terminal
            with pytest.raises(ServeError, match="cancelled"):
                service.result(record.job_id, timeout=1)
        finally:
            service.shutdown()

    def test_tenant_quota_budgets_clamp_job_budgets(
        self, planted_dataset, service_workdir
    ):
        quotas = {
            "t": TenantQuota(budgets=BudgetConfig(max_candidates_per_level=5))
        }
        with SliceService(
            quotas=quotas, num_workers=1, workdir=service_workdir
        ) as service:
            record = service.submit(
                self._spec(
                    planted_dataset,
                    tenant="t",
                    budgets=BudgetConfig(
                        max_candidates_per_level=10_000, deadline_s=60.0
                    ),
                )
            )
            assert record.effective_budgets.max_candidates_per_level == 5
            assert record.effective_budgets.deadline_s == 60.0
            result = service.result(record.job_id, timeout=60)
            # tripped budget -> partial result, completed job, not cached
            assert not result.completed
            assert len(service.cache) == 0

    def test_failed_job_raises_from_result(self, service_workdir):
        bad = np.array([[1, 1], [1, 2]], dtype=np.int64)
        with SliceService(num_workers=1, workdir=service_workdir) as service:
            record = service.submit(
                JobSpec(x0=bad, errors=np.array([-1.0, 1.0]))
            )
            record.wait(timeout=30)
            assert record.state == JobState.FAILED
            with pytest.raises(ServeError, match="failed"):
                service.result(record.job_id, timeout=5)
            assert service.registry.events["serve.failures"] == 1

    def test_unknown_job_id(self, service_workdir):
        service = SliceService(
            num_workers=1, workdir=service_workdir, start=False
        )
        try:
            with pytest.raises(ServeError, match="unknown job id"):
                service.status("nope")
        finally:
            service.shutdown()

    def test_monitor_job_exposes_quarantine_and_drift(
        self, planted_dataset, service_workdir
    ):
        x0, errors, _ = planted_dataset
        with SliceService(num_workers=1, workdir=service_workdir) as service:
            record = service.submit(
                JobSpec(
                    kind="monitor", x0=x0, errors=errors,
                    config=SliceLineConfig(k=3, max_level=2),
                    batch_size=100, tick_every=2,
                )
            )
            service.result(record.job_id, timeout=120)
            status = service.status(record.job_id)
            assert status["monitor"]["num_ticks"] >= 2
            assert isinstance(status["monitor"]["quarantined"], list)
            assert isinstance(status["monitor"]["drift"], list)
            # ticks after the first carry drift signals for tracked slices
            assert record.monitor.drift_history()[-1] == (
                record.monitor.latest_drift()
            )
            json.dumps(status)  # the whole record must be JSON-safe

    def test_status_is_consistent_while_monitor_job_runs(
        self, planted_dataset, service_workdir
    ):
        x0, errors, _ = planted_dataset
        with SliceService(num_workers=1, workdir=service_workdir) as service:
            record = service.submit(
                JobSpec(
                    kind="monitor", x0=x0, errors=errors,
                    config=SliceLineConfig(k=3, max_level=2),
                    batch_size=50, tick_every=1,
                )
            )
            seen_errors = []

            def hammer():
                # status() must never observe torn monitor state while the
                # worker ingests/ticks concurrently
                while not record.done.is_set():
                    try:
                        json.dumps(service.status(record.job_id))
                    except Exception as exc:  # pragma: no cover
                        seen_errors.append(exc)
                        return
                    time.sleep(0.001)

            thread = threading.Thread(target=hammer)
            thread.start()
            service.result(record.job_id, timeout=120)
            thread.join(timeout=30)
            assert seen_errors == []

    def test_status_document_schema(self, planted_dataset, service_workdir):
        with SliceService(num_workers=1, workdir=service_workdir) as service:
            record = service.submit(self._spec(planted_dataset))
            service.result(record.job_id, timeout=60)
            doc = service.status_document()
        assert doc["schema"] == "repro.serve/v1"
        assert [job["job_id"] for job in doc["jobs"]] == [record.job_id]
        assert "default" in doc["tenants"]
        assert doc["gauges"]["serve.queue_depth"] == 0
        json.dumps(doc)


# ---------------------------------------------------------------------------
# monitor plumbing (streaming satellite)


class TestMonitorStatusPlumbing:
    def test_quarantine_records_retrievable_without_dir(self, planted_dataset):
        x0, errors, _ = planted_dataset
        monitor = SliceMonitor(config=SliceLineConfig(k=2, max_level=2))
        monitor.ingest(PredictionBatch(x0=x0, errors=errors, timestamp=0.0))
        bad = PredictionBatch.__new__(PredictionBatch)
        object.__setattr__(bad, "x0", x0)
        object.__setattr__(bad, "errors", np.full(x0.shape[0], np.nan))
        object.__setattr__(bad, "timestamp", 1.0)
        object.__setattr__(bad, "batch_id", 1)
        record = monitor.ingest(bad)
        assert record is not None
        assert monitor.quarantine_records() == [record]

    def test_drift_history_aligns_with_ticks(self, planted_dataset):
        x0, errors, _ = planted_dataset
        monitor = SliceMonitor(
            config=SliceLineConfig(k=2, max_level=2), window_size=4
        )
        assert monitor.latest_drift() == []
        for start in (0, 250):
            monitor.ingest(
                PredictionBatch(
                    x0=x0[start : start + 250],
                    errors=errors[start : start + 250],
                    timestamp=float(start),
                )
            )
            monitor.tick()
        history = monitor.drift_history()
        assert len(history) == len(monitor.ticks) == 2
        assert history[-1] == monitor.latest_drift()
        assert history[0] == []  # no baseline before the first tick
        assert len(history[1]) == len(monitor.ticks[0].top_slices)


# ---------------------------------------------------------------------------
# concurrency stress


class TestSchedulerStress:
    @settings(max_examples=5, deadline=None)
    @given(
        num_tenants=st.integers(min_value=1, max_value=3),
        jobs_per_tenant=st.integers(min_value=1, max_value=3),
        num_workers=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_n_tenants_m_jobs_always_terminate(
        self, num_tenants, jobs_per_tenant, num_workers, seed, tmp_path_factory
    ):
        rng = np.random.default_rng(seed)
        x0 = np.column_stack(
            [rng.integers(1, 4, size=120) for _ in range(3)]
        ).astype(np.int64)
        errors = rng.random(120)
        workdir = str(tmp_path_factory.mktemp("stress"))
        with SliceService(
            num_workers=num_workers, workdir=workdir,
            default_quota=TenantQuota(max_running=2, max_queued=32),
        ) as service:
            records = []
            for tenant_index in range(num_tenants):
                for job_index in range(jobs_per_tenant):
                    records.append(
                        service.submit(
                            JobSpec(
                                tenant=f"tenant-{tenant_index}",
                                x0=x0,
                                errors=errors,
                                # vary k so fingerprints differ across jobs
                                config=SliceLineConfig(
                                    k=1 + job_index, max_level=2
                                ),
                            )
                        )
                    )
            assert service.wait(timeout=120)
            for record in records:
                assert record.terminal
                assert record.state in (
                    JobState.COMPLETED, JobState.REJECTED
                )
            # every slot released: nothing queued or running afterwards
            assert service.queue.depth() == 0
            assert service.queue.running_count() == 0

    def test_concurrent_identical_submissions_one_enumeration(
        self, planted_dataset, service_workdir
    ):
        x0, errors, _ = planted_dataset
        service = SliceService(
            num_workers=2, workdir=service_workdir, start=False
        )
        try:
            records = []
            lock = threading.Lock()

            def submit():
                record = service.submit(
                    JobSpec(x0=x0, errors=errors, config=SliceLineConfig(k=3))
                )
                with lock:
                    records.append(record)

            threads = [
                threading.Thread(target=submit) for _ in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            service.start()
            assert service.wait(timeout=120)
            results = {id(record.result) for record in records}
            assert len(results) == 1  # every duplicate shares one result
            assert (
                sum(1 for record in records if record.coalesced)
                == len(records) - 1
            )
        finally:
            service.shutdown()

    def test_cancelled_jobs_release_slots_under_load(
        self, planted_dataset, service_workdir
    ):
        service = SliceService(
            num_workers=1, workdir=service_workdir, start=False,
            default_quota=TenantQuota(max_running=1, max_queued=32),
        )
        try:
            x0, errors, _ = planted_dataset
            records = [
                service.submit(
                    JobSpec(
                        x0=x0, errors=errors,
                        config=SliceLineConfig(k=1 + index, max_level=2),
                    )
                )
                for index in range(4)
            ]
            # cancel two while everything is still queued
            assert service.cancel(records[1].job_id)
            assert service.cancel(records[2].job_id)
            service.start()
            assert service.wait(timeout=120)
            assert records[0].state == JobState.COMPLETED
            assert records[1].state == JobState.CANCELLED
            assert records[2].state == JobState.CANCELLED
            assert records[3].state == JobState.COMPLETED
            assert service.queue.running_count() == 0
        finally:
            service.shutdown()


# ---------------------------------------------------------------------------
# CLI


class TestServeCli:
    def test_cli_runs_job_file_and_writes_status(self, tmp_path, capsys):
        from repro.cli import main

        jobs = {
            "defaults": {
                "tenant": "analytics",
                "dataset": "salaries",
                "config": {"k": 3, "max_level": 3},
            },
            "jobs": [{"name": "one"}, {"name": "one-again"}],
        }
        jobs_path = tmp_path / "jobs.json"
        jobs_path.write_text(json.dumps(jobs))
        status_path = tmp_path / "status.json"
        code = main(
            [
                "serve", str(jobs_path),
                "--workers", "1",
                "--workdir", str(tmp_path / "work"),
                "--status-json", str(status_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cache hit" in out
        doc = json.loads(status_path.read_text())
        assert doc["schema"] == "repro.serve/v1"
        assert doc["events"]["serve.cache_hits"] >= 1
        states = [job["state"] for job in doc["jobs"]]
        assert states == ["completed", "completed"]
        assert any(job["cache_hit"] for job in doc["jobs"])

    def test_cli_reports_bad_job_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["serve", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_cli_accepts_job_directory(self, tmp_path, capsys):
        from repro.cli import main

        jobs_dir = tmp_path / "jobs"
        jobs_dir.mkdir()
        (jobs_dir / "a.json").write_text(
            json.dumps(
                {
                    "jobs": [
                        {
                            "dataset": "salaries",
                            "config": {"k": 2, "max_level": 2},
                        }
                    ]
                }
            )
        )
        code = main(
            [
                "serve", str(jobs_dir),
                "--workers", "1",
                "--workdir", str(tmp_path / "work"),
            ]
        )
        assert code == 0
        assert "completed" in capsys.readouterr().out
