"""Parallel chunk-local pair pipeline: bitwise oracle matrix + unit coverage.

The pair-candidate pipeline (chunked join, fused merge/validity/prune,
chunk-local dedup with group-min folding, deterministic merge, global
dedup over shrunk keys) is a pure performance optimization — every
configuration must reproduce :func:`reference_pair_candidates` (the
preserved pre-pipeline implementation) bitwise: candidate matrices,
bounds, parent representatives, and all non-execution counters, across
any ``pair_parallelism``, chunk grid, pruning arm, compaction mode, and
kernel backend.  These tests certify that contract end-to-end and
unit-test the supporting pieces (the geometric :class:`_PairAccumulator`,
the :func:`choose_pair_plan` cost model,
:func:`~repro.linalg.cell_bounded_partitions`,
:func:`~repro.linalg.upper_tri_pairs_in_range`, and the per-call
``width`` of :class:`~repro.linalg.KernelWorkspace`).
"""

from dataclasses import fields

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.core import PruningConfig, SliceLineConfig, slice_line
from repro.core.basic import create_and_score_basic_slices
from repro.core.onehot import FeatureSpace
from repro.core.pairs import (
    _PairAccumulator,
    choose_pair_plan,
    get_pair_candidates,
    reference_pair_candidates,
)
from repro.exceptions import ValidationError
from repro.linalg import (
    KernelWorkspace,
    cell_bounded_partitions,
    upper_tri_pairs,
    upper_tri_pairs_in_range,
)
from repro.linalg import ops as ops_mod
from repro.obs import EXECUTION_FIELDS, LevelCounters


# ---------------------------------------------------------------------------
# shared problem + runners


def pairs_problem(seed=11, n=700, m=6, missing=0.0):
    """A slice-finding instance projected the way the driver projects it."""
    gen = np.random.default_rng(seed)
    x0 = np.column_stack(
        [gen.integers(1, 5, size=n) for _ in range(m)]
    ).astype(np.int64)
    if missing:
        x0[gen.random(size=x0.shape) < missing] = 0
    errors = gen.integers(0, 17, size=n) / 16.0
    errors[(x0[:, 0] == 1) & (x0[:, 1] == 2)] = 1.0
    space = FeatureSpace.from_matrix(x0)
    x_onehot = space.encode(x0)
    sigma = max(5, n // 100)
    alpha = 0.95
    basic = create_and_score_basic_slices(x_onehot, errors, sigma, alpha)
    feature_map = np.searchsorted(
        space.ends, basic.selected_columns, side="right"
    ).astype(np.int64)
    return {
        "num_rows": n,
        "total_error": float(errors.sum()),
        "sigma": sigma,
        "alpha": alpha,
        "feature_map": feature_map,
        "slices": basic.slices,
        "stats": basic.stats,
        "x0": x0,
        "errors": errors,
    }


def run_pairs(fn, problem, *, level=2, pruning=None, topk_min_score=0.0, **kw):
    recorder = LevelCounters(level=level)
    matrix, bounds, parents = fn(
        problem["slices"],
        problem["stats"],
        level,
        num_rows=problem["num_rows"],
        total_error=problem["total_error"],
        sigma=problem["sigma"],
        alpha=problem["alpha"],
        topk_min_score=topk_min_score,
        feature_map=problem["feature_map"],
        pruning=pruning,
        level_stats=recorder,
        return_parents=True,
        **kw,
    )
    return matrix, bounds, parents, recorder


def assert_pairs_identical(ref, new, label=""):
    ref_matrix, ref_bounds, ref_parents, ref_rec = ref
    new_matrix, new_bounds, new_parents, new_rec = new
    assert ref_matrix.shape == new_matrix.shape, label
    assert (ref_matrix != new_matrix).nnz == 0, label
    assert (ref_bounds is None) == (new_bounds is None), label
    if ref_bounds is not None:
        assert np.array_equal(ref_bounds, new_bounds), label
    assert (ref_parents is None) == (new_parents is None), label
    if ref_parents is not None:
        assert np.array_equal(ref_parents, new_parents), label
    for field in fields(ref_rec):
        if field.name in EXECUTION_FIELDS:
            continue
        assert getattr(ref_rec, field.name) == getattr(new_rec, field.name), (
            label, field.name
        )


PRUNING_ARMS = {
    "all": PruningConfig(),
    "no-dedup": PruningConfig(handle_missing_parents=False, deduplicate=False),
    "no-score": PruningConfig(by_score=False),
    "none": PruningConfig.none(),
}


# ---------------------------------------------------------------------------
# bitwise oracle: pipeline vs the preserved reference implementation


class TestPipelineMatchesReference:
    @pytest.mark.parametrize("arm", sorted(PRUNING_ARMS))
    @pytest.mark.parametrize("parallelism", [1, 2, 8])
    def test_level2_oracle(self, arm, parallelism):
        problem = pairs_problem()
        pruning = PRUNING_ARMS[arm]
        ref = run_pairs(reference_pair_candidates, problem, pruning=pruning)
        with KernelWorkspace(parallelism) as workspace:
            new = run_pairs(
                get_pair_candidates, problem, pruning=pruning,
                workspace=workspace, pair_parallelism=parallelism,
            )
        assert_pairs_identical(ref, new, f"{arm}/p{parallelism}")

    @pytest.mark.parametrize("parallelism", [1, 2, 8])
    def test_tiny_chunk_grid(self, parallelism, monkeypatch):
        """Results are invariant under any chunk grid, however degenerate."""
        problem = pairs_problem()
        ref = run_pairs(reference_pair_candidates, problem)
        monkeypatch.setattr(ops_mod, "_PAIR_CHUNK_CELLS", 64)
        with KernelWorkspace(parallelism) as workspace:
            new = run_pairs(
                get_pair_candidates, problem,
                workspace=workspace, pair_parallelism=parallelism,
            )
        assert_pairs_identical(ref, new, f"tiny-grid/p{parallelism}")

    def test_topk_threshold_pruning(self):
        """Score pruning against a live top-K threshold reduces identically."""
        problem = pairs_problem()
        for threshold in (0.1, 0.5, 2.0):
            ref = run_pairs(
                reference_pair_candidates, problem, topk_min_score=threshold
            )
            new = run_pairs(
                get_pair_candidates, problem, topk_min_score=threshold,
                pair_parallelism=4, workspace=None,
            )
            assert_pairs_identical(ref, new, f"threshold={threshold}")

    def test_without_workspace_defaults_serial(self):
        """Direct callers without a workspace keep the old call shape."""
        problem = pairs_problem()
        ref = run_pairs(reference_pair_candidates, problem)
        new = run_pairs(get_pair_candidates, problem)
        assert_pairs_identical(ref, new, "defaults")

    def test_missing_codes(self):
        problem = pairs_problem(seed=23, missing=0.15)
        ref = run_pairs(reference_pair_candidates, problem)
        with KernelWorkspace(3) as workspace:
            new = run_pairs(
                get_pair_candidates, problem,
                workspace=workspace, pair_parallelism=3,
            )
        assert_pairs_identical(ref, new, "missing-codes")

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        missing=st.sampled_from([0.0, 0.1, 0.3]),
        parallelism=st.sampled_from([1, 2, 8]),
        arm=st.sampled_from(sorted(PRUNING_ARMS)),
    )
    def test_hypothesis_sweep(self, seed, missing, parallelism, arm):
        gen = np.random.default_rng(seed)
        problem = pairs_problem(
            seed=seed,
            n=int(gen.integers(60, 300)),
            m=int(gen.integers(2, 6)),
            missing=missing,
        )
        pruning = PRUNING_ARMS[arm]
        ref = run_pairs(reference_pair_candidates, problem, pruning=pruning)
        with KernelWorkspace(parallelism) as workspace:
            new = run_pairs(
                get_pair_candidates, problem, pruning=pruning,
                workspace=workspace, pair_parallelism=parallelism,
            )
        assert_pairs_identical(ref, new, f"seed={seed}")


# ---------------------------------------------------------------------------
# bitwise oracle: end-to-end runs across the full configuration matrix


class TestEndToEndOracle:
    @pytest.mark.parametrize("deduplicate", [True, False])
    @pytest.mark.parametrize("compaction", [True, False])
    @pytest.mark.parametrize("parallelism", [2, 8])
    def test_full_run_matrix(self, deduplicate, compaction, parallelism):
        problem = pairs_problem(n=400)
        pruning = (
            PruningConfig()
            if deduplicate
            else PruningConfig(handle_missing_parents=False, deduplicate=False)
        )
        config = SliceLineConfig(
            k=6, sigma=problem["sigma"], pruning=pruning, compaction=compaction,
        )
        baseline = slice_line(
            problem["x0"], problem["errors"],
            config=config.with_overrides(pair_parallelism=1),
        )
        run = slice_line(
            problem["x0"], problem["errors"],
            config=config.with_overrides(pair_parallelism=parallelism),
        )
        assert np.array_equal(baseline.top_stats, run.top_stats)
        assert np.array_equal(
            baseline.top_slices_encoded, run.top_slices_encoded
        )
        ref_records = _records(baseline)
        new_records = _records(run)
        assert ref_records == new_records

    @pytest.mark.parametrize(
        "backend", ["auto", "sparse", "bitset", "incremental"]
    )
    def test_kernel_backends(self, backend):
        problem = pairs_problem(n=400)
        config = SliceLineConfig(
            k=6, sigma=problem["sigma"], kernel_backend=backend,
        )
        baseline = slice_line(
            problem["x0"], problem["errors"],
            config=config.with_overrides(pair_parallelism=1),
        )
        run = slice_line(
            problem["x0"], problem["errors"],
            config=config.with_overrides(pair_parallelism=4),
        )
        assert np.array_equal(baseline.top_stats, run.top_stats)
        assert np.array_equal(
            baseline.top_slices_encoded, run.top_slices_encoded
        )
        assert _records(baseline) == _records(run)

    def test_flow_conservation_on_chunked_counters(self, monkeypatch):
        """The chunk-reduced counters still satisfy every flow identity."""
        monkeypatch.setattr(ops_mod, "_PAIR_CHUNK_CELLS", 256)
        problem = pairs_problem(n=500)
        result = slice_line(
            problem["x0"], problem["errors"],
            config=SliceLineConfig(
                k=6, sigma=problem["sigma"], pair_parallelism=8,
            ),
        )
        assert result.counters.reconcile() == []
        level2 = result.counters.level(2)
        assert level2.pairs_generated > 0
        assert level2.join_chunks >= 1
        assert level2.join_parallelism >= 1


def _records(result):
    records = []
    for record in result.counters.levels:
        as_dict = record.to_dict()
        for name in EXECUTION_FIELDS:
            as_dict.pop(name, None)
        records.append(as_dict)
    return records


# ---------------------------------------------------------------------------
# unit coverage: accumulator, cost model, partitions, workspace width


class TestPairAccumulator:
    @staticmethod
    def _batch(gen, count, level=3):
        return (
            gen.integers(0, 50, size=(count, level)).astype(np.int64),
            gen.integers(0, 20, size=count).astype(np.int64),
            gen.integers(0, 20, size=count).astype(np.int64),
            gen.random(count),
            gen.random(count),
            gen.random(count),
        )

    def test_single_batch_adopted_without_copy(self):
        gen = np.random.default_rng(0)
        batch = self._batch(gen, 17)
        acc = _PairAccumulator()
        acc.append(*batch)
        out = acc.concatenated()
        for original, returned in zip(batch, out):
            assert returned is original  # adopted by reference, zero copies

    def test_multi_batch_matches_concatenate(self):
        gen = np.random.default_rng(1)
        batches = [self._batch(gen, int(gen.integers(1, 400))) for _ in range(9)]
        acc = _PairAccumulator()
        for batch in batches:
            acc.append(*batch)
        out = acc.concatenated()
        for part in range(6):
            expected = np.concatenate([batch[part] for batch in batches])
            assert np.array_equal(out[part], expected)
            assert out[part].dtype == expected.dtype

    def test_empty_batches_ignored(self):
        gen = np.random.default_rng(2)
        acc = _PairAccumulator()
        assert acc.empty
        empty = self._batch(gen, 0)
        acc.append(*empty)
        assert acc.empty
        real = self._batch(gen, 5)
        acc.append(*empty)
        acc.append(*real)
        acc.append(*empty)
        assert not acc.empty
        out = acc.concatenated()
        assert np.array_equal(out[0], real[0])

    def test_growth_is_geometric(self):
        gen = np.random.default_rng(3)
        acc = _PairAccumulator()
        for _ in range(64):
            acc.append(*self._batch(gen, 100))
        # 6400 rows through doubling from 1024 -> at most a handful of
        # reallocations; capacity never exceeds 2x the final size + slack
        assert acc._capacity <= 2 * 6400
        assert acc.concatenated()[1].shape[0] == 6400


class TestChoosePairPlan:
    def test_empty_and_singleton_inputs(self):
        assert choose_pair_plan(0, 0, 8).ranges == ()
        assert choose_pair_plan(1, 3, 8).ranges == ()

    def test_small_levels_run_serially(self):
        plan = choose_pair_plan(50, 150, 8)
        assert plan.parallelism == 1
        assert plan.num_chunks >= 1

    def test_large_levels_go_parallel_with_spare_chunks(self):
        num_parents, nnz = 5000, 200_000
        plan = choose_pair_plan(num_parents, nnz, 4)
        assert plan.parallelism == 4
        assert plan.num_chunks >= 8  # several chunks per worker
        covered = []
        for start, stop in plan.ranges:
            covered.extend(range(start, stop))
        assert covered == list(range(num_parents - 1))

    def test_parallelism_one_never_goes_parallel(self):
        plan = choose_pair_plan(5000, 25000, 1)
        assert plan.parallelism == 1

    def test_level2_disjoint_join_counts_quadratic_pairs(self):
        """At overlap 0 the pair volume is ~parents^2/2 regardless of nnz."""
        num_parents = 1500
        serial_by_gram = choose_pair_plan(num_parents, num_parents, 4)
        assert serial_by_gram.parallelism == 1  # Gram estimate alone: tiny
        plan = choose_pair_plan(num_parents, num_parents, 4, level=2)
        assert plan.parallelism == 4

    def test_plan_respects_chunk_cell_budget(self, monkeypatch):
        monkeypatch.setattr(ops_mod, "_PAIR_CHUNK_CELLS", 1000)
        plan = choose_pair_plan(200, 500, 1)
        for start, stop in plan.ranges:
            assert (stop - start) * 200 <= 1000


class TestCellBoundedPartitions:
    def test_covers_rows_contiguously(self):
        parts = cell_bounded_partitions(100, 7, 100)
        assert parts[0][0] == 0 and parts[-1][1] == 100
        for (_, prev_stop), (start, _) in zip(parts, parts[1:]):
            assert prev_stop == start

    def test_respects_cell_budget(self):
        for rows, cols, budget in [(100, 7, 100), (37, 19, 50), (5, 1, 1)]:
            for start, stop in cell_bounded_partitions(rows, cols, budget):
                assert (stop - start) * cols <= max(budget, cols)

    def test_min_parts_forced(self):
        parts = cell_bounded_partitions(100, 2, 10_000, min_parts=8)
        assert len(parts) == 8

    def test_never_more_parts_than_rows(self):
        parts = cell_bounded_partitions(3, 2, 10_000, min_parts=50)
        assert len(parts) == 3

    def test_empty_rows(self):
        assert cell_bounded_partitions(0, 5, 100) == []

    def test_validation(self):
        with pytest.raises(ValidationError):
            cell_bounded_partitions(10, 2, 0)
        with pytest.raises(ValidationError):
            cell_bounded_partitions(10, 2, 5, min_parts=0)


class TestUpperTriPairsInRange:
    @pytest.mark.parametrize("overlap", [0.0, 1.0, 2.0])
    def test_range_union_equals_full_scan(self, overlap):
        gen = np.random.default_rng(5)
        matrix = sp.csr_matrix(
            (gen.random((40, 12)) < 0.3).astype(np.float64)
        )
        full_rows, full_cols = upper_tri_pairs(matrix, overlap)
        st_matrix = matrix.T.tocsc()
        rows_parts, cols_parts = [], []
        for start, stop in [(0, 13), (13, 14), (14, 39)]:
            rows, cols = upper_tri_pairs_in_range(
                matrix, st_matrix, start, stop, overlap
            )
            rows_parts.append(rows)
            cols_parts.append(cols)
        assert np.array_equal(np.concatenate(rows_parts), full_rows)
        assert np.array_equal(np.concatenate(cols_parts), full_cols)

    def test_empty_range(self):
        matrix = sp.csr_matrix(np.eye(4))
        rows, cols = upper_tri_pairs_in_range(
            matrix, matrix.T.tocsc(), 2, 2, 1.0
        )
        assert rows.size == 0 and cols.size == 0
        assert rows.dtype == np.int64 and cols.dtype == np.int64


class TestWorkspaceWidth:
    def test_width_overrides_configured_threads(self):
        with KernelWorkspace(1) as workspace:
            out = workspace.map(lambda v: v * 2, [1, 2, 3], width=4)
            assert out == [2, 4, 6]
            assert workspace.pools_created == 1

    def test_pool_grows_to_widest_request(self):
        with KernelWorkspace(2) as workspace:
            workspace.map(lambda v: v, [1, 2], width=2)
            assert workspace._pool_width == 2
            workspace.map(lambda v: v, [1, 2], width=6)
            assert workspace._pool_width == 6
            # narrower maps reuse the wider pool without recreating it
            created = workspace.pools_created
            workspace.map(lambda v: v, [1, 2], width=3)
            assert workspace.pools_created == created

    def test_serial_width_never_creates_pool(self):
        with KernelWorkspace(4) as workspace:
            out = workspace.map(lambda v: v + 1, [1, 2, 3], width=1)
            assert out == [2, 3, 4]
            assert workspace.pools_created == 0
