"""Unit tests for the DML-style linear-algebra primitives."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ShapeError, ValidationError
from repro.linalg import (
    col_maxs,
    col_mins,
    col_sums,
    contingency_table,
    cumprod,
    cumsum,
    iter_upper_tri_pair_chunks,
    one_hot_encode,
    remove_empty_rows,
    row_index_max,
    row_maxs,
    row_sums,
    selection_matrix,
    upper_tri_pairs,
)


@pytest.fixture
def dense():
    return np.array([[1.0, 0.0, 3.0], [0.0, 2.0, 1.0], [4.0, 0.0, 0.0]])


@pytest.fixture
def sparse(dense):
    return sp.csr_matrix(dense)


class TestReductions:
    def test_col_sums_dense_and_sparse_agree(self, dense, sparse):
        np.testing.assert_allclose(col_sums(dense), col_sums(sparse))
        np.testing.assert_allclose(col_sums(dense), [5.0, 2.0, 4.0])

    def test_row_sums_dense_and_sparse_agree(self, dense, sparse):
        np.testing.assert_allclose(row_sums(dense), row_sums(sparse))
        np.testing.assert_allclose(row_sums(dense), [4.0, 3.0, 4.0])

    def test_col_maxs_includes_implicit_zeros(self):
        m = sp.csr_matrix(np.array([[-1.0, 0.0], [-2.0, -3.0]]))
        # column 1 has an implicit zero in row 0: max must be 0, not -3
        np.testing.assert_allclose(col_maxs(m), [-1.0, 0.0])

    def test_col_mins_includes_implicit_zeros(self):
        m = sp.csr_matrix(np.array([[5.0, 0.0], [2.0, 3.0]]))
        np.testing.assert_allclose(col_mins(m), [2.0, 0.0])

    def test_row_maxs(self, dense, sparse):
        np.testing.assert_allclose(row_maxs(dense), row_maxs(sparse))

    def test_row_index_max_dense_sparse(self, dense, sparse):
        np.testing.assert_array_equal(row_index_max(dense), row_index_max(sparse))
        np.testing.assert_array_equal(row_index_max(dense), [2, 1, 0])

    def test_row_index_max_all_zero_row(self):
        m = sp.csr_matrix((2, 3))
        np.testing.assert_array_equal(row_index_max(m), [0, 0])

    def test_col_maxs_empty_raises(self):
        with pytest.raises(ValidationError):
            col_maxs(np.zeros((0, 3)))

    def test_row_maxs_no_columns_raises(self):
        with pytest.raises(ValidationError):
            row_maxs(np.zeros((3, 0)))


class TestCumulative:
    def test_cumsum(self):
        np.testing.assert_array_equal(cumsum([1, 2, 3]), [1, 3, 6])

    def test_cumprod_small(self):
        np.testing.assert_array_equal(cumprod([2, 3, 4]), [2, 6, 24])

    def test_cumprod_huge_domains_exact(self):
        # 40 features of domain 1000 would overflow int64 (1000^40); the
        # object-dtype path keeps the IDs exact.
        domains = np.full(40, 1000, dtype=np.int64)
        result = cumprod(domains)
        assert result[-1] == 1000**40


class TestTables:
    def test_contingency_counts_duplicates(self):
        table = contingency_table([0, 0, 1], [1, 1, 0], 2, 2)
        np.testing.assert_allclose(table.toarray(), [[0, 2], [1, 0]])

    def test_contingency_shape_mismatch(self):
        with pytest.raises(ShapeError):
            contingency_table([0, 1], [0], 2, 2)

    def test_one_hot_encode_basic(self):
        x0 = np.array([[1, 2], [2, 1]])
        offsets = np.array([0, 2])  # domains (2, 2)
        x = one_hot_encode(x0, offsets, 4)
        np.testing.assert_allclose(
            x.toarray(), [[1, 0, 0, 1], [0, 1, 1, 0]]
        )

    def test_one_hot_encode_missing_code_zero(self):
        x0 = np.array([[0, 2]])
        x = one_hot_encode(x0, np.array([0, 2]), 4)
        np.testing.assert_allclose(x.toarray(), [[0, 0, 0, 1]])

    def test_one_hot_encode_out_of_range(self):
        with pytest.raises(ValidationError):
            one_hot_encode(np.array([[3]]), np.array([0]), 2)

    def test_selection_matrix_selects_rows(self, dense):
        p = selection_matrix([2, 0], 3)
        np.testing.assert_allclose((p @ dense), dense[[2, 0]])

    def test_selection_matrix_out_of_range(self):
        with pytest.raises(ValidationError):
            selection_matrix([3], 3)


class TestRemoveEmpty:
    def test_removes_zero_rows(self):
        m = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 0.0]])
        out, kept = remove_empty_rows(m)
        np.testing.assert_array_equal(kept, [1])
        np.testing.assert_allclose(out, [[1.0, 0.0]])

    def test_select_vector(self):
        m = sp.csr_matrix(np.eye(3))
        out, kept = remove_empty_rows(m, select=np.array([1, 0, 1]))
        np.testing.assert_array_equal(kept, [0, 2])
        assert out.shape == (2, 3)


class TestUpperTriPairs:
    def test_zero_overlap_handles_implicit_zeros(self):
        # identity rows: every distinct pair has dot product 0
        s = sp.identity(4, format="csr")
        i, j = upper_tri_pairs(s, 0.0)
        assert len(i) == 6
        assert all(a < b for a, b in zip(i, j))

    def test_exact_overlap_match(self):
        s = sp.csr_matrix(
            np.array([[1, 1, 0, 0], [1, 0, 1, 0], [0, 0, 1, 1]], dtype=float)
        )
        i, j = upper_tri_pairs(s, 1.0)
        pairs = set(zip(i.tolist(), j.tolist()))
        assert pairs == {(0, 1), (1, 2)}

    def test_single_row_no_pairs(self):
        s = sp.csr_matrix(np.array([[1.0, 0.0]]))
        i, j = upper_tri_pairs(s, 0.0)
        assert i.size == 0 and j.size == 0

    def test_iterator_matches_materialized(self):
        gen = np.random.default_rng(3)
        s = sp.csr_matrix((gen.random((30, 12)) < 0.3).astype(float))
        collected = [
            (a, b)
            for rows, cols in iter_upper_tri_pair_chunks(s, 1.0)
            for a, b in zip(rows.tolist(), cols.tolist())
        ]
        i, j = upper_tri_pairs(s, 1.0)
        assert collected == list(zip(i.tolist(), j.tolist()))

    def test_matches_brute_force(self):
        gen = np.random.default_rng(11)
        dense = (gen.random((25, 10)) < 0.4).astype(float)
        s = sp.csr_matrix(dense)
        for overlap in (0.0, 1.0, 2.0):
            i, j = upper_tri_pairs(s, overlap)
            got = set(zip(i.tolist(), j.tolist()))
            expected = {
                (a, b)
                for a in range(25)
                for b in range(a + 1, 25)
                if dense[a] @ dense[b] == overlap
            }
            assert got == expected

    def test_zero_overlap_fully_disjoint_rows(self):
        # Disjoint support: the Gram matrix has NO stored off-diagonal
        # entries, so only the dense comparison sees the matches.
        dense = np.zeros((6, 12))
        for row in range(6):
            dense[row, 2 * row : 2 * row + 2] = 1.0
        i, j = upper_tri_pairs(sp.csr_matrix(dense), 0.0)
        expected = {(a, b) for a in range(6) for b in range(a + 1, 6)}
        assert set(zip(i.tolist(), j.tolist())) == expected

    @pytest.mark.parametrize("overlap", [0.0, 1.0, 2.0])
    def test_chunk_boundary_crossing(self, monkeypatch, overlap):
        # Force many tiny row chunks so matches span chunk boundaries.
        import repro.linalg.ops as ops_mod

        gen = np.random.default_rng(29)
        dense = (gen.random((23, 9)) < 0.35).astype(float)
        s = sp.csr_matrix(dense)
        baseline = upper_tri_pairs(s, overlap)
        monkeypatch.setattr(ops_mod, "_PAIR_CHUNK_CELLS", 3 * 23)
        chunked = upper_tri_pairs(s, overlap)
        np.testing.assert_array_equal(baseline[0], chunked[0])
        np.testing.assert_array_equal(baseline[1], chunked[1])
        expected = {
            (a, b)
            for a in range(23)
            for b in range(a + 1, 23)
            if dense[a] @ dense[b] == overlap
        }
        assert set(zip(chunked[0].tolist(), chunked[1].tolist())) == expected


class TestPackRowsMixedRadix:
    def test_orders_like_lexicographic(self):
        from repro.linalg import pack_rows_mixed_radix

        gen = np.random.default_rng(5)
        rows = gen.integers(0, 7, size=(50, 4))
        packed = pack_rows_mixed_radix(rows, 7)
        order = np.argsort(packed, kind="stable")
        lex = np.lexsort(rows.T[::-1])
        np.testing.assert_array_equal(order, lex)

    def test_width_zero_packs_to_zeros(self):
        from repro.linalg import pack_rows_mixed_radix

        packed = pack_rows_mixed_radix(np.zeros((4, 0), dtype=np.int64), 9)
        np.testing.assert_array_equal(packed, np.zeros(4, dtype=np.int64))

    def test_base_one_is_exact(self):
        from repro.linalg import pack_rows_mixed_radix

        # base 1 admits only digit 0; 1**width == 1 never overflows,
        # regardless of width.
        packed = pack_rows_mixed_radix(np.zeros((3, 100), dtype=np.int64), 1)
        np.testing.assert_array_equal(packed, np.zeros(3, dtype=np.int64))

    def test_base_zero_rejected(self):
        from repro.linalg import pack_rows_mixed_radix

        with pytest.raises(ValidationError):
            pack_rows_mixed_radix(np.zeros((1, 2), dtype=np.int64), 0)

    def test_overflow_boundary_at_int64_max(self):
        from repro.linalg import pack_rows_mixed_radix

        # 2**62 fits int64; 2**63 exceeds int64 max -> caller fallback.
        fits = pack_rows_mixed_radix(np.ones((2, 62), dtype=np.int64), 2)
        assert fits is not None
        assert fits[0] == 2**62 - 1
        assert pack_rows_mixed_radix(np.ones((2, 63), dtype=np.int64), 2) is None
        # The check is an exact Python-int comparison, immune to the
        # float rounding that makes (2.0**63 - 1) == 2.0**63.
        assert (
            pack_rows_mixed_radix(np.ones((1, 1), dtype=np.int64), 2**62)
            is not None
        )
        assert (
            pack_rows_mixed_radix(np.ones((1, 2), dtype=np.int64), 2**62)
            is None
        )

    def test_large_ids_round_trip_uniquely(self):
        from repro.linalg import pack_rows_mixed_radix

        # Near the top of the int64 range distinct rows keep distinct IDs.
        gen = np.random.default_rng(6)
        rows = gen.integers(0, 2, size=(200, 62))
        packed = pack_rows_mixed_radix(rows, 2)
        unique_rows = np.unique(rows, axis=0).shape[0]
        assert np.unique(packed).size == unique_rows


class TestCumprodBoundaries:
    def test_object_fallback_triggers_at_62_bits(self):
        # sum(log2) == 62 exactly: must take the exact object path.
        result = cumprod(np.full(62, 2, dtype=np.int64))
        assert result.dtype == object
        assert result[-1] == 2**62

    def test_int64_path_below_threshold(self):
        result = cumprod(np.full(61, 2, dtype=np.int64))
        assert result.dtype == np.int64
        assert result[-1] == 2**61

    def test_object_fallback_is_exact_past_int64(self):
        result = cumprod(np.full(70, 2, dtype=np.int64))
        assert result[-1] == 2**70  # would wrap negative under int64

    def test_float_input_unaffected(self):
        np.testing.assert_allclose(
            cumprod(np.array([0.5, 2.0, 4.0])), [0.5, 1.0, 4.0]
        )
