"""Tests for the parallel executors and the cluster cost model."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FeatureSpace, evaluate_slices
from repro.distributed import (
    ClusterCostModel,
    ClusterSpec,
    DistributedPForExecutor,
    MTOpsExecutor,
    MTPForExecutor,
    SerialExecutor,
    make_executor,
    partition_work,
)
from repro.distributed.simulate import WorkProfile
from repro.exceptions import ExecutionError, ValidationError
from repro.obs import Tracer

#: one spec per strategy, with deliberately awkward partition counts
ALL_EXECUTORS = [
    ("serial", {"block_size": 8}),
    ("mt-ops", {"num_threads": 3}),
    ("mt-pfor", {"num_threads": 3, "block_size": 8}),
    ("dist-pfor", {"num_nodes": 3, "executors_per_node": 2}),
]


@pytest.fixture
def eval_problem(planted_dataset):
    x0, errors, _ = planted_dataset
    space = FeatureSpace.from_matrix(x0)
    x = space.encode(x0)
    gen = np.random.default_rng(9)
    rows = []
    for _ in range(40):
        pick = gen.choice(space.num_onehot, size=2, replace=False)
        row = np.zeros(space.num_onehot)
        row[pick] = 1
        rows.append(row)
    slices = sp.csr_matrix(np.array(rows))
    reference = evaluate_slices(x, errors, slices, 2, 0.95)
    return x, errors, slices, reference


class TestPartitionWork:
    def test_covers_all_items(self):
        ranges = partition_work(17, 4)
        items = [i for r in ranges for i in r]
        assert items == list(range(17))

    def test_balanced(self):
        sizes = [len(r) for r in partition_work(10, 3)]
        assert max(sizes) - min(sizes) <= 1

    def test_empty_ranges_dropped(self):
        assert len(partition_work(2, 8)) == 2

    def test_invalid(self):
        with pytest.raises(ValidationError):
            partition_work(5, 0)
        with pytest.raises(ValidationError):
            partition_work(-1, 2)


class TestExecutorsAgree:
    """All strategies must produce identical statistics (they differ only
    in scheduling)."""

    @pytest.mark.parametrize("strategy,kwargs", [
        ("serial", {"block_size": 8}),
        ("mt-ops", {"num_threads": 3}),
        ("mt-pfor", {"num_threads": 3, "block_size": 8}),
        ("dist-pfor", {"num_nodes": 3, "executors_per_node": 2}),
    ])
    def test_matches_reference(self, eval_problem, strategy, kwargs):
        x, errors, slices, reference = eval_problem
        executor = make_executor(strategy, **kwargs)
        out = executor.evaluate(x, errors, slices, 2, 0.95)
        np.testing.assert_allclose(out, reference, rtol=1e-12)

    def test_unknown_strategy(self):
        with pytest.raises(ExecutionError):
            make_executor("spark")

    def test_factory_types(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("mt-ops"), MTOpsExecutor)
        assert isinstance(make_executor("mt-pfor"), MTPForExecutor)
        assert isinstance(make_executor("dist-pfor"), DistributedPForExecutor)

    def test_each_executor_reports_a_span(self, eval_problem):
        x, errors, slices, _ = eval_problem
        for strategy, kwargs in ALL_EXECUTORS:
            tracer = Tracer()
            executor = make_executor(strategy, **kwargs)
            executor.evaluate(x, errors, slices, 2, 0.95, tracer=tracer)
            span = tracer.find(f"executor.{executor.name}.evaluate")
            assert span is not None, strategy
            assert span.elapsed_seconds > 0
            assert span.attrs["num_slices"] == slices.shape[0]


class TestExecutorParityProperty:
    """Property: all four strategies produce *bitwise-identical* stats R.

    Errors are drawn as dyadic rationals (multiples of 1/16) so every
    partial sum any executor can form is exact in float64 — summation
    order cannot perturb a single bit, which makes strict equality the
    right assertion (scheduling must not change results at all).
    """

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        num_slices=st.integers(1, 30),
        level=st.integers(1, 3),
    )
    def test_bitwise_identical_stats(self, seed, num_slices, level):
        gen = np.random.default_rng(seed)
        n = int(gen.integers(20, 120))
        m = int(gen.integers(3, 6))
        x0 = np.column_stack(
            [gen.integers(1, int(gen.integers(2, 5)) + 1, size=n) for _ in range(m)]
        ).astype(np.int64)
        space = FeatureSpace.from_matrix(x0)
        x = space.encode(x0)
        errors = gen.integers(0, 17, size=n) / 16.0
        if errors.sum() == 0:
            errors[0] = 1.0
        rows = np.zeros((num_slices, space.num_onehot))
        for i in range(num_slices):
            pick = gen.choice(
                space.num_onehot,
                size=min(level, space.num_onehot),
                replace=False,
            )
            rows[i, pick] = 1
        slices = sp.csr_matrix(rows)

        results = {
            strategy: make_executor(strategy, **kwargs).evaluate(
                x, errors, slices, level, 0.95
            )
            for strategy, kwargs in ALL_EXECUTORS
        }
        reference = results["serial"]
        assert reference.shape == (num_slices, 4)
        for strategy, out in results.items():
            assert np.array_equal(out, reference), (
                f"{strategy} diverged from serial on seed={seed}"
            )


class TestClusterCostModel:
    @pytest.fixture
    def work(self):
        return WorkProfile(
            serial_compute_seconds=100.0,
            slice_matrix_mb=2.0,
            stats_mb=1.0,
            num_jobs=3,
        )

    def test_figure7b_ordering(self, work):
        """MT-PFor beats MT-Ops; Dist-PFor beats MT-PFor (paper's shape)."""
        model = ClusterCostModel()
        times = model.compare(work, num_threads=32)
        assert times["mt-pfor"] < times["mt-ops"]
        assert times["dist-pfor"] < times["mt-pfor"]

    def test_mt_pfor_speedup_factor(self, work):
        # the paper reports ~2x for MT-PFor over MT-Ops
        times = ClusterCostModel().compare(work, num_threads=32)
        ratio = times["mt-ops"] / times["mt-pfor"]
        assert 1.3 < ratio < 3.5

    def test_dist_overhead_dominates_tiny_work(self):
        tiny = WorkProfile(serial_compute_seconds=0.5)
        times = ClusterCostModel().compare(tiny, num_threads=32)
        # for tiny inputs the cluster overheads make Dist-PFor slower
        assert times["dist-pfor"] > times["mt-pfor"]

    def test_more_threads_never_slower(self, work):
        model = ClusterCostModel()
        assert model.mt_pfor_seconds(work, 64) <= model.mt_pfor_seconds(work, 8)

    def test_invalid_cluster(self):
        with pytest.raises(ValidationError):
            ClusterSpec(num_nodes=0)


class TestTopKTieBreakDeterminism:
    """Equal-score slices must rank identically however the stats were made.

    Perfectly correlated (duplicated) features make the slices ``F_i = v``
    carry bitwise-equal (score, size, error) triples for every feature
    ``i`` — including positive-score winners — so the top-K order is decided
    purely by the tie-break.  Whatever executor strategy or thread count
    produced the stats matrix — and however the candidate rows were permuted
    on arrival — ``maintain_topk`` must return one canonical ranking.
    """

    def _problem(self):
        from repro.core import FeatureSpace

        reps, d, m = 30, 4, 3
        base = (np.arange(reps * d) % d + 1).astype(np.int64)
        x0 = np.column_stack([base] * m)
        errors = (base == 1).astype(np.float64) / 16.0
        space = FeatureSpace.from_matrix(x0)
        x = space.encode(x0)
        slices = sp.identity(space.num_onehot, format="csr")
        return x, errors, slices, d, m

    def test_identical_ranking_across_executors_and_threads(self):
        from repro.core.topk import empty_topk, maintain_topk

        x, errors, slices, _, _ = self._problem()
        sweeps = ALL_EXECUTORS + [
            ("mt-pfor", {"num_threads": 1, "block_size": 4}),
            ("mt-pfor", {"num_threads": 5, "block_size": 2}),
        ]
        rankings = []
        permutations = [
            np.arange(slices.shape[0]),
            np.arange(slices.shape[0])[::-1].copy(),
            np.random.default_rng(17).permutation(slices.shape[0]),
        ]
        for (strategy, kwargs), perm in zip(
            sweeps * len(permutations), permutations * len(sweeps)
        ):
            stats = make_executor(strategy, **kwargs).evaluate(
                x, errors, slices, 1, 0.95
            )
            shuffled = sp.csr_matrix(slices.toarray()[perm])
            empty_s, empty_r = empty_topk(slices.shape[1])
            top_slices, top_stats = maintain_topk(
                shuffled, stats[perm], empty_s, empty_r, k=6, sigma=1
            )
            rankings.append(
                (top_slices.toarray().tolist(), top_stats.tolist())
            )
        reference = rankings[0]
        for ranking in rankings[1:]:
            assert ranking == reference

    def test_exact_ties_ranked_by_predicate_columns(self):
        from repro.core.topk import empty_topk, maintain_topk

        x, errors, slices, d, m = self._problem()
        stats = make_executor("serial").evaluate(x, errors, slices, 1, 0.95)
        # the m duplicated features give m bitwise-identical positive rows
        # (the slices F_i = 1); the canonical order among them is ascending
        # one-hot column index, whatever the arrival order was
        winners = [i * d for i in range(m)]
        assert len({tuple(stats[i].tolist()) for i in winners}) == 1
        assert stats[winners[0], 0] > 0
        empty_s, empty_r = empty_topk(slices.shape[1])
        top_slices, _ = maintain_topk(
            sp.csr_matrix(slices.toarray()[::-1].copy()), stats[::-1],
            empty_s, empty_r, k=m, sigma=1,
        )
        assert [row.indices.tolist() for row in top_slices] == [
            [col] for col in winners
        ]
