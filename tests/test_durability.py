"""Tests for crash durability: WAL journal, durable cache, process workers.

The load-bearing guarantees:

- the ``repro.wal/v1`` journal replays any byte-prefix of itself to a
  consistent state — a torn tail (crash mid-append) or corrupt suffix is
  quarantined with a typed reason, never silently decoded, and no
  completed job in the valid prefix is duplicated or lost;
- a :class:`DurableResultCache` reloads its spill directory on
  construction: readable entries round-trip bitwise, corrupt or misnamed
  files are quarantined, eviction keeps disk and memory in sync;
- a :class:`SliceService` constructed over a ``state_dir`` recovers the
  pre-crash job table: completed results are cache hits again, in-flight
  jobs re-admit at the front and finish bitwise-identically;
- process workers survive SIGKILL and heartbeat-timeout kills with an
  orphan requeue, and a poison-pill job fails typed, not forever.
"""

from __future__ import annotations

import json
import os
import signal
import struct
import time
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithm import slice_line
from repro.core.config import SliceLineConfig
from repro.exceptions import ConfigError, ServeError
from repro.resilience.chaos import corrupt_file, truncate_file
from repro.serve import (
    DurableResultCache,
    JobJournal,
    JobSpec,
    JobState,
    ResultCache,
    SliceService,
    WAL_SCHEMA,
    decode_result,
    encode_result,
    frame_record,
    scan_wal,
)


def _wal_record(record_type: str, job_id: str, **fields) -> dict:
    return {
        "schema": WAL_SCHEMA,
        "type": record_type,
        "job_id": job_id,
        **fields,
    }


def _lifecycle(job_id: str, terminal: str = "complete") -> list[dict]:
    return [
        _wal_record("submit", job_id, serial=0),
        _wal_record("dispatch", job_id),
        _wal_record(terminal, job_id),
    ]


def _assert_results_equal(a, b) -> None:
    """Bitwise equality of everything a cached result is trusted for."""
    assert [s.predicates for s in a.top_slices] == [
        s.predicates for s in b.top_slices
    ]
    assert [s.score for s in a.top_slices] == [s.score for s in b.top_slices]
    assert [s.error for s in a.top_slices] == [s.error for s in b.top_slices]
    assert [s.max_error for s in a.top_slices] == [
        s.max_error for s in b.top_slices
    ]
    assert [s.size for s in a.top_slices] == [s.size for s in b.top_slices]
    np.testing.assert_array_equal(a.top_slices_encoded, b.top_slices_encoded)
    np.testing.assert_array_equal(a.top_stats, b.top_stats)
    assert a.completed == b.completed
    assert a.average_error == b.average_error
    assert a.num_rows == b.num_rows
    assert a.num_features == b.num_features


@pytest.fixture
def small_result(planted_dataset):
    x0, errors, _ = planted_dataset
    return x0, errors, slice_line(x0, errors)


# ---------------------------------------------------------------------------
# WAL framing and replay


class TestWalFraming:
    def test_round_trip(self):
        records = _lifecycle("t/j0") + _lifecycle("t/j1", terminal="fail")
        data = b"".join(frame_record(r) for r in records)
        scanned, valid, quarantined = scan_wal(data)
        assert scanned == records
        assert valid == len(data)
        assert quarantined == []

    def test_empty(self):
        assert scan_wal(b"") == ([], 0, [])

    def test_torn_tail_every_byte_boundary(self):
        """Truncating inside the last record must never invent records."""
        records = _lifecycle("t/j0")
        frames = [frame_record(r) for r in records]
        prefix = b"".join(frames[:-1])
        last = frames[-1]
        for cut in range(len(last)):
            scanned, valid, quarantined = scan_wal(prefix + last[:cut])
            assert scanned == records[:-1]
            assert valid == len(prefix)
            if cut == 0:
                assert quarantined == []
            else:
                assert len(quarantined) == 1
                assert quarantined[0].reason in (
                    "torn-header",
                    "torn-body",
                    "checksum-mismatch",
                    "bad-length",
                )

    def test_checksum_mismatch_stops_replay(self):
        records = _lifecycle("t/j0")
        data = bytearray(b"".join(frame_record(r) for r in records))
        # Flip one payload byte of the second frame.
        first_len = len(frame_record(records[0]))
        data[first_len + 8] ^= 0xFF
        scanned, valid, quarantined = scan_wal(bytes(data))
        assert scanned == records[:1]
        assert valid == first_len
        assert [q.reason for q in quarantined] == ["checksum-mismatch"]

    def test_bad_length_field(self):
        frame = struct.pack("<II", 1 << 30, 0) + b"x"
        scanned, valid, quarantined = scan_wal(frame)
        assert scanned == []
        assert [q.reason for q in quarantined] == ["bad-length"]

    def test_bad_json_and_bad_record(self):
        payload = b"not json"
        frame = struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        assert [q.reason for q in scan_wal(frame)[2]] == ["bad-json"]
        wrong = json.dumps({"schema": "other", "type": "submit"}).encode()
        frame = struct.pack("<II", len(wrong), zlib.crc32(wrong)) + wrong
        assert [q.reason for q in scan_wal(frame)[2]] == ["bad-record"]

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_prefix_replay_is_consistent(self, data):
        """Property: any byte-prefix of a valid WAL replays to a state
        with no duplicated and no lost *completed* jobs.

        The scanned records must be an exact list-prefix of the full
        record stream (nothing reordered, invented, or skipped), so the
        set of jobs whose ``complete`` record survived is exactly the
        completed jobs whose frame fits the prefix — each exactly once.
        """
        n_jobs = data.draw(st.integers(min_value=1, max_value=5))
        terminals = data.draw(
            st.lists(
                st.sampled_from(["complete", "cancel", "fail"]),
                min_size=n_jobs,
                max_size=n_jobs,
            )
        )
        records = []
        for index, terminal in enumerate(terminals):
            records.extend(_lifecycle(f"t/j{index}", terminal=terminal))
        full = b"".join(frame_record(r) for r in records)
        cut = data.draw(st.integers(min_value=0, max_value=len(full)))
        scanned, valid, quarantined = scan_wal(full[:cut])
        # Exact prefix of the logical stream.
        assert scanned == records[: len(scanned)]
        assert valid <= cut
        assert len(quarantined) <= 1
        completed = [r["job_id"] for r in scanned if r["type"] == "complete"]
        assert len(completed) == len(set(completed))  # no duplicates
        expected = [
            r["job_id"]
            for r in records[: len(scanned)]
            if r["type"] == "complete"
        ]
        assert completed == expected  # none lost within the valid prefix


class TestJobJournal:
    def test_append_replay_round_trip(self, tmp_path):
        path = str(tmp_path / "wal" / "journal.wal")
        with JobJournal(path) as journal:
            journal.append("submit", "t/j0", serial=0)
            journal.append("complete", "t/j0")
        replayed = JobJournal(path)
        assert [(r["type"], r["job_id"]) for r in replayed.records] == [
            ("submit", "t/j0"),
            ("complete", "t/j0"),
        ]
        assert replayed.quarantined == []
        replayed.close()

    def test_torn_tail_truncated_and_quarantined(self, tmp_path):
        path = str(tmp_path / "journal.wal")
        with JobJournal(path) as journal:
            journal.append("submit", "t/j0", serial=0)
            journal.append("dispatch", "t/j0")
        truncate_file(path, os.path.getsize(path) - 3)
        journal = JobJournal(path)
        assert [r["type"] for r in journal.records] == ["submit"]
        assert [q.reason for q in journal.quarantined] == ["torn-body"]
        sidecar = path + ".quarantined-0"
        assert os.path.exists(sidecar)
        # New appends extend the clean prefix.
        journal.append("cancel", "t/j0")
        journal.close()
        final = JobJournal(path)
        assert [r["type"] for r in final.records] == ["submit", "cancel"]
        assert final.quarantined == []
        final.close()

    def test_rejects_unknown_record_type(self, tmp_path):
        journal = JobJournal(str(tmp_path / "j.wal"))
        with pytest.raises(ConfigError):
            journal.append("explode", "t/j0")
        journal.close()

    def test_append_after_close_raises(self, tmp_path):
        journal = JobJournal(str(tmp_path / "j.wal"))
        journal.close()
        with pytest.raises(ServeError):
            journal.append("submit", "t/j0")


# ---------------------------------------------------------------------------
# result encoding + durable cache


class TestResultEncoding:
    def test_round_trip_bitwise(self, small_result):
        _, _, result = small_result
        payload = encode_result("fp0", "dd0", result)
        fingerprint, data_digest, decoded = decode_result(payload)
        assert (fingerprint, data_digest) == ("fp0", "dd0")
        _assert_results_equal(result, decoded)
        assert decoded.total_seconds == result.total_seconds
        assert [s.level for s in decoded.level_stats] == [
            s.level for s in result.level_stats
        ]

    def test_rejects_garbage(self):
        with pytest.raises(ServeError):
            decode_result(b"not an npz")


class TestSizeAwareEviction:
    def test_max_bytes_evicts_lru(self, small_result):
        _, _, result = small_result
        entry_size = len(encode_result("fp0", "dd", result))
        cache = ResultCache(capacity=64, max_bytes=2 * entry_size)
        for index in range(3):
            cache.put(f"fp{index}", "dd", result)
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["bytes"] <= 2 * entry_size
        assert cache.peek("fp0") is None  # LRU victim
        assert cache.peek("fp2") is not None

    def test_always_keeps_one_entry(self, small_result):
        _, _, result = small_result
        cache = ResultCache(capacity=64, max_bytes=1)
        cache.put("fp0", "dd", result)
        assert len(cache) == 1

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigError):
            ResultCache(max_bytes=0)


class TestDurableResultCache:
    def test_spill_and_reload(self, tmp_path, small_result):
        _, _, result = small_result
        directory = str(tmp_path / "cache")
        cache = DurableResultCache(directory=directory)
        cache.put("fp0", "dd0", result)
        assert os.path.exists(os.path.join(directory, "fp0.npz"))
        reloaded = DurableResultCache(directory=directory)
        recovered = reloaded.peek("fp0")
        assert recovered is not None
        _assert_results_equal(result, recovered)
        assert reloaded.quarantined == []

    def test_eviction_deletes_spill_file(self, tmp_path, small_result):
        _, _, result = small_result
        directory = str(tmp_path / "cache")
        cache = DurableResultCache(capacity=1, directory=directory)
        cache.put("fp0", "dd0", result)
        cache.put("fp1", "dd0", result)
        assert not os.path.exists(os.path.join(directory, "fp0.npz"))
        assert os.path.exists(os.path.join(directory, "fp1.npz"))

    def test_corrupt_spill_file_quarantined(self, tmp_path, small_result):
        _, _, result = small_result
        directory = str(tmp_path / "cache")
        cache = DurableResultCache(directory=directory)
        cache.put("fp0", "dd0", result)
        cache.put("fp1", "dd0", result)
        truncate_file(os.path.join(directory, "fp0.npz"), 10)
        reloaded = DurableResultCache(directory=directory)
        assert reloaded.peek("fp0") is None
        assert reloaded.peek("fp1") is not None
        assert [q.reason for q in reloaded.quarantined] == ["undecodable"]
        assert os.path.exists(
            os.path.join(directory, "quarantine", "fp0.npz")
        )

    def test_misnamed_spill_file_quarantined(self, tmp_path, small_result):
        _, _, result = small_result
        directory = str(tmp_path / "cache")
        cache = DurableResultCache(directory=directory)
        cache.put("fp0", "dd0", result)
        os.replace(
            os.path.join(directory, "fp0.npz"),
            os.path.join(directory, "stolen.npz"),
        )
        reloaded = DurableResultCache(directory=directory)
        assert len(reloaded) == 0
        assert [q.reason for q in reloaded.quarantined] == [
            "fingerprint-mismatch"
        ]

    def test_reload_preserves_lru_order(self, tmp_path, small_result):
        _, _, result = small_result
        directory = str(tmp_path / "cache")
        cache = DurableResultCache(directory=directory)
        for index in range(3):
            cache.put(f"fp{index}", "dd0", result)
            # mtime resolution on some filesystems is coarse; force
            # distinct stamps so the reload order is deterministic.
            stamp = time.time() + index
            os.utime(
                os.path.join(directory, f"fp{index}.npz"), (stamp, stamp)
            )
        reloaded = DurableResultCache(capacity=2, directory=directory)
        assert reloaded.peek("fp0") is None  # stalest entry evicted on load
        assert reloaded.peek("fp1") is not None
        assert reloaded.peek("fp2") is not None

    def test_requires_directory(self):
        with pytest.raises(ConfigError):
            DurableResultCache()


# ---------------------------------------------------------------------------
# service recovery


class TestServiceRecovery:
    def test_completed_job_recovers_and_resubmission_hits_cache(
        self, tmp_path, planted_dataset
    ):
        x0, errors, _ = planted_dataset
        state = str(tmp_path / "state")
        with SliceService(state_dir=state, num_workers=1) as service:
            record = service.submit(JobSpec(x0=x0, errors=errors))
            baseline = service.result(record.job_id, timeout=60)

        recovered = SliceService(state_dir=state, num_workers=1)
        try:
            old = recovered.jobs[record.job_id]
            assert old.recovered
            assert old.state == JobState.COMPLETED
            _assert_results_equal(old.result, baseline)

            resubmit = recovered.submit(JobSpec(x0=x0, errors=errors))
            assert resubmit.cache_hit
            assert resubmit.state == JobState.COMPLETED
            _assert_results_equal(resubmit.result, baseline)
        finally:
            recovered.shutdown()

    def test_pending_job_recovers_and_completes_bitwise(
        self, tmp_path, planted_dataset
    ):
        x0, errors, _ = planted_dataset
        state = str(tmp_path / "state")
        # start=False: the job is journaled as submitted but never runs —
        # the service "crashes" (shutdown without completing it).
        service = SliceService(state_dir=state, num_workers=1, start=False)
        record = service.submit(JobSpec(x0=x0, errors=errors))
        assert record.state == JobState.PENDING
        service.shutdown()

        recovered = SliceService(state_dir=state, num_workers=1)
        try:
            old = recovered.jobs[record.job_id]
            assert old.recovered
            result = recovered.result(record.job_id, timeout=60)
            _assert_results_equal(result, slice_line(x0, errors))
        finally:
            recovered.shutdown()

    def test_suspended_job_resumes_from_checkpoint(
        self, tmp_path, planted_dataset
    ):
        x0, errors, _ = planted_dataset
        config = SliceLineConfig(max_level=3)
        state = str(tmp_path / "state")
        service = SliceService(state_dir=state, num_workers=1, start=False)
        record = service.submit(JobSpec(x0=x0, errors=errors, config=config))
        record.suspend.request()  # suspend at the first level boundary
        # Run one execution attempt synchronously (the scheduler never
        # starts, so nothing resumes the suspended job before the "crash").
        taken = service.queue.take(timeout=5)
        assert taken is record
        service._execute(record)
        assert record.state == JobState.SUSPENDED
        service.journal.close()

        recovered = SliceService(state_dir=state, num_workers=1)
        try:
            old = recovered.jobs[record.job_id]
            assert old.recovered
            assert old.has_checkpoint
            result = recovered.result(record.job_id, timeout=60)
            assert old.resumes >= 1
            _assert_results_equal(result, slice_line(x0, errors, config=config))
        finally:
            recovered.shutdown()

    def test_recovery_survives_torn_journal_tail(
        self, tmp_path, planted_dataset
    ):
        x0, errors, _ = planted_dataset
        state = str(tmp_path / "state")
        with SliceService(state_dir=state, num_workers=1) as service:
            record = service.submit(JobSpec(x0=x0, errors=errors))
            baseline = service.result(record.job_id, timeout=60)
        wal = os.path.join(state, "wal", "journal.wal")
        truncate_file(wal, os.path.getsize(wal) - 2)
        recovered = SliceService(state_dir=state, num_workers=1)
        try:
            stats = recovered.stats()
            assert len(stats["durability"]["wal_quarantined"]) == 1
            # The torn record was this job's `complete`; the job re-admits
            # as pending, finds its result in the durable cache, and
            # completes as a hit with zero enumeration.
            old = recovered.jobs[record.job_id]
            assert old.state == JobState.COMPLETED
            assert old.cache_hit
            _assert_results_equal(old.result, baseline)
        finally:
            recovered.shutdown()

    def test_corrupt_cache_spill_forces_rerun_not_failure(
        self, tmp_path, planted_dataset
    ):
        x0, errors, _ = planted_dataset
        state = str(tmp_path / "state")
        with SliceService(state_dir=state, num_workers=1) as service:
            record = service.submit(JobSpec(x0=x0, errors=errors))
            baseline = service.result(record.job_id, timeout=60)
            spill = os.path.join(
                state, "cache", f"{record.fingerprint}.npz"
            )
        corrupt_file(spill, seed=7, nflips=8)
        recovered = SliceService(state_dir=state, num_workers=1)
        try:
            # decode may or may not survive 8 random flips of an npz; either
            # the entry was quarantined (resubmission re-runs) or it decoded
            # bitwise-identically (crc of the zip member caught nothing
            # because the flips hit padding). Both must yield the baseline.
            resubmit = recovered.submit(JobSpec(x0=x0, errors=errors))
            result = recovered.result(resubmit.job_id, timeout=60)
            _assert_results_equal(result, baseline)
        finally:
            recovered.shutdown()

    def test_recovered_serials_do_not_collide(self, tmp_path, planted_dataset):
        x0, errors, _ = planted_dataset
        state = str(tmp_path / "state")
        with SliceService(state_dir=state, num_workers=1) as service:
            record = service.submit(JobSpec(x0=x0, errors=errors))
            service.result(record.job_id, timeout=60)
        recovered = SliceService(state_dir=state, num_workers=1)
        try:
            resubmit = recovered.submit(JobSpec(x0=x0, errors=errors))
            assert resubmit.job_id != record.job_id
            assert resubmit.job_id in recovered.jobs
        finally:
            recovered.shutdown()

    def test_dataset_spec_recovers_without_input_spill(self, tmp_path):
        state = str(tmp_path / "state")
        spec = JobSpec(dataset="salaries", seed=3)
        service = SliceService(state_dir=state, num_workers=1, start=False)
        record = service.submit(spec)
        service.shutdown()
        safe_dir = os.path.join(state, "jobs")
        spills = [
            name
            for _, _, names in os.walk(safe_dir)
            for name in names
            if name == "inputs.npz"
        ]
        assert spills == []  # dataset specs re-resolve by name
        recovered = SliceService(state_dir=state, num_workers=1)
        try:
            result = recovered.result(record.job_id, timeout=60)
            assert result.completed
        finally:
            recovered.shutdown()

    def test_cache_bytes_gauge(self, tmp_path, planted_dataset):
        x0, errors, _ = planted_dataset
        with SliceService(num_workers=1, cache_bytes=1 << 20) as service:
            record = service.submit(JobSpec(x0=x0, errors=errors))
            service.result(record.job_id, timeout=60)
            stats = service.stats()
        assert stats["gauges"]["serve.cache_bytes"] > 0
        assert stats["cache"]["max_bytes"] == 1 << 20

    def test_rejects_bad_worker_mode(self):
        with pytest.raises(ConfigError):
            SliceService(worker_mode="fibers", start=False)


# ---------------------------------------------------------------------------
# process workers


@pytest.fixture
def chunky_dataset(rng):
    """Big enough that a kill lands mid-run, small enough to stay quick."""
    x0 = np.column_stack(
        [rng.integers(1, 6, size=20000) for _ in range(20)]
    ).astype(np.int64)
    errors = (rng.random(20000) < 0.3).astype(np.float64)
    return x0, errors


def _wait_for_state(service, job_id, state, timeout=30.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if service.status(job_id)["state"] == state:
            return True
        time.sleep(0.02)
    return False


class TestProcessWorkers:
    def test_completes_and_matches_thread_mode(self, planted_dataset):
        x0, errors, _ = planted_dataset
        with SliceService(num_workers=1, worker_mode="process") as service:
            record = service.submit(JobSpec(x0=x0, errors=errors))
            result = service.result(record.job_id, timeout=120)
        _assert_results_equal(result, slice_line(x0, errors))

    def test_sigkill_requeues_orphan_and_result_is_bitwise(
        self, chunky_dataset
    ):
        x0, errors = chunky_dataset
        with SliceService(num_workers=1, worker_mode="process") as service:
            record = service.submit(JobSpec(x0=x0, errors=errors))
            assert _wait_for_state(service, record.job_id, "running")
            time.sleep(0.3)
            pid = service.stats()["workers"][0]["pid"]
            os.kill(pid, signal.SIGKILL)
            result = service.result(record.job_id, timeout=180)
            status = service.status(record.job_id)
            events = service.stats()["events"]
        if status["crashes"] == 0:
            pytest.skip("job finished before the kill landed")
        assert events.get("serve.worker_crashes", 0) >= 1
        assert events.get("serve.orphan_requeues", 0) >= 1
        assert events.get("serve.worker_restarts", 0) >= 1
        _assert_results_equal(result, slice_line(x0, errors))

    def test_poison_pill_fails_typed_after_crash_budget(
        self, chunky_dataset
    ):
        x0, errors = chunky_dataset
        with SliceService(
            num_workers=1, worker_mode="process", max_job_crashes=0
        ) as service:
            record = service.submit(JobSpec(x0=x0, errors=errors))
            assert _wait_for_state(service, record.job_id, "running")
            time.sleep(0.2)
            pid = service.stats()["workers"][0]["pid"]
            os.kill(pid, signal.SIGKILL)
            assert record.wait(timeout=120)
        if record.state == JobState.COMPLETED:
            pytest.skip("job finished before the kill landed")
        assert record.state == JobState.FAILED
        assert record.reason == "worker-crash"

    def test_heartbeat_timeout_kills_hung_worker(self, chunky_dataset):
        x0, errors = chunky_dataset
        with SliceService(
            num_workers=1,
            worker_mode="process",
            heartbeat_timeout_s=1.0,
        ) as service:
            record = service.submit(JobSpec(x0=x0, errors=errors))
            assert _wait_for_state(service, record.job_id, "running")
            time.sleep(0.2)
            pid = service.stats()["workers"][0]["pid"]
            os.kill(pid, signal.SIGSTOP)  # hung: alive but silent
            result = service.result(record.job_id, timeout=180)
            events = service.stats()["events"]
        if service.status(record.job_id)["crashes"] == 0:
            pytest.skip("job finished before the stop landed")
        assert events.get("serve.worker_crashes", 0) >= 1
        _assert_results_equal(result, slice_line(x0, errors))

    def test_worker_error_fails_job_not_worker(self):
        bad = JobSpec(
            x0=np.array([[1, 1], [1, 2]], dtype=np.int64),
            errors=np.array([0.5, -1.0]),  # negative error: rejected
        )
        good_x0 = np.array([[1, 1], [1, 2], [2, 1]], dtype=np.int64)
        good = JobSpec(x0=good_x0, errors=np.array([1.0, 0.0, 0.0]))
        with SliceService(num_workers=1, worker_mode="process") as service:
            record = service.submit(bad)
            assert record.wait(timeout=120)
            assert record.state == JobState.FAILED
            follow_up = service.submit(good)
            result = service.result(follow_up.job_id, timeout=120)
            assert result is not None
            # The worker survived the job failure: no crash counted.
            assert service.stats()["events"].get(
                "serve.worker_crashes", 0
            ) == 0
